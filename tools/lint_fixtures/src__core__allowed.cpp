// Fixture: the escape hatch.  Every violation here is suppressed with
// `yoso-lint: allow(<rule>)`, so the self-test expects zero findings.
#include <cstdlib>

namespace yoso {

int seeded_benchmark_noise() {
  // Same-line form.
  return std::rand();  // yoso-lint: allow(global-rng)
}

int legacy_counter() {
  // Preceding-line form.
  // yoso-lint: allow(static-state)
  static int count = 0;
  return ++count;
}

}  // namespace yoso
