// Fixture: parallel-region purity.  Writes to namespace-scope mutable state
// reachable from a parallel_for body — directly or through the call graph —
// are a data race and make results depend on the thread count.  Only the
// AST-grade engines own this rule (it needs scope classification plus a
// call-graph walk), so the violations are tagged `[ast]` and the regex
// engine must report nothing in this file.

namespace yoso {

struct Pool {
  template <typename Fn>
  void parallel_for(unsigned long begin, unsigned long end, Fn&& fn) {
    for (unsigned long i = begin; i < end; ++i) fn(i);
  }
};

namespace {

long g_eval_count = 0;  // namespace-scope mutable state the rule protects

void bump_counter() {
  ++g_eval_count;  // writes the global: directly impure
}

double record_and_scale(double x) {
  bump_counter();  // calls a writer: transitively impure
  return x * 2.0;
}

}  // namespace

double run_batch(Pool& pool, double* out, unsigned long n) {
  if (out == nullptr) return 0.0;
  pool.parallel_for(0, n, [&](unsigned long i) {
    g_eval_count += 1;               // expect-lint[ast]: parallel-purity
    out[i] = record_and_scale(1.0);  // expect-lint[ast]: parallel-purity
  });
  return static_cast<double>(g_eval_count);
}

// Not a violation: the body writes only caller-owned slots indexed by i —
// the canonical deterministic pattern the evaluator uses.
double run_batch_pure(Pool& pool, double* out, unsigned long n) {
  if (out == nullptr) return 0.0;
  pool.parallel_for(0, n, [&](unsigned long i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  return out[0];
}

}  // namespace yoso
