// Fixture: hot-virtual — virtual dispatch inside a hot INNER loop (nesting
// depth >= 2).  A per-batch virtual call amortises over the elements it
// dispatches for; a per-element one pays the indirect branch every time.
// Only the AST tiers own this rule: it needs function spans, loop nesting
// and the virtual-vs-plain declaration index, so every case is `[ast]`.
#include <vector>

#define YOSO_TRACE_SPAN(name) (void)0

namespace yoso {

struct ModelFx {
  virtual ~ModelFx() = default;
  virtual double score_one_fx(double x) const = 0;
  double scale_fx(double x) const { return x * 2.0; }
};

// AST only: per-element dispatch in the inner loop.
double hot_score_all_fx(const ModelFx& m,
                        const std::vector<std::vector<double>>& rows) {
  YOSO_TRACE_SPAN("eval.pipeline");
  double acc = 0.0;
  for (const std::vector<double>& row : rows) {
    for (double v : row) {
      acc += m.score_one_fx(v);  // expect-lint[ast]: hot-virtual
    }
  }
  return acc;
}

// Not a violation: depth-1 dispatch is per-batch and amortises.
double hot_score_rows_fx(const ModelFx& m,
                         const std::vector<std::vector<double>>& rows) {
  YOSO_TRACE_SPAN("eval.pipeline");
  double acc = 0.0;
  for (const std::vector<double>& row : rows) {
    acc += m.score_one_fx(row.empty() ? 0.0 : row.front());
  }
  return acc;
}

// Not a violation: `scale_fx` has a plain declaration, so the call is not
// unambiguously virtual dispatch.
double hot_scale_all_fx(const ModelFx& m,
                        const std::vector<std::vector<double>>& rows) {
  YOSO_TRACE_SPAN("eval.pipeline");
  double acc = 0.0;
  for (const std::vector<double>& row : rows) {
    for (double v : row) {
      acc += m.scale_fx(v);
    }
  }
  return acc;
}

}  // namespace yoso
