// Fixture: the allow() escape hatch is budgeted, not free.  Four
// suppressions live here; the self-test asserts that the default budget of
// three trips (the fourth allow must fail the gate) while an explicit
// budget of four accepts the same tree.  Scanned only by the allow-budget
// self-test, not by the per-engine fixture loop.

namespace yoso {

struct Blob {
  int value = 0;
};

Blob* g_slots[4];

void fill_slots() {
  g_slots[0] = new Blob;  // yoso-lint: allow(naked-new)
  g_slots[1] = new Blob;  // yoso-lint: allow(naked-new)
  g_slots[2] = new Blob;  // yoso-lint: allow(naked-new)
  g_slots[3] = new Blob;  // yoso-lint: allow(naked-new)
}

}  // namespace yoso
