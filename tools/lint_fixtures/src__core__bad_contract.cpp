// Fixture: the contract-coverage rule.  Public entry points whose raw
// pointer / index parameters reach indexing without a
// YOSO_REQUIRE/YOSO_CHECK/YOSO_DCHECK guard naming them.
//
// The one-line definition is catchable by the regex tier (no tag); the
// multi-line body needs function-span analysis, so only the AST tiers may
// catch it — if the regex engine ever starts matching it, the fixture
// stops proving the AST engines' superiority and the self-test fails.
#include "base/contract.h"

namespace yoso {

double pick(const double* xs, std::size_t i) { return xs[i]; }  // expect-lint: contract-coverage

double nth_entry(const double* vals, std::size_t i) {
  double v = 0.0;
  v = vals[i];  // expect-lint[ast]: contract-coverage
  return v;
}

// Not violations below this line. -----------------------------------------

// Guarded: the contract names both parameters before the access.
double nth_checked(const double* vals, std::size_t i, std::size_t n) {
  YOSO_REQUIRE(vals != nullptr && i < n, "nth_checked: bad index ", i);
  return vals[i];
}

// Optional out-parameter: the explicit nullptr test IS the contract.
void maybe_store(double* out, double v) {
  if (out != nullptr) *out = v;
}

// File-local helpers are not public entry points.
static double pick_local(const double* xs, std::size_t i) { return xs[i]; }

double pick_first_local(const double* xs) { return pick_local(xs, 0); }

}  // namespace yoso
