// Fixture: profile-guided ranking.  Two hot-alloc violations under two
// different profiled spans, deliberately in ASCENDING cost order in the
// file: step1.fit_gp is the cheapest profiled span and sim.network the
// most expensive, so a rank-sorted report must REVERSE file order.  The
// self-test locks this (and the v4 JSON schema) against the committed
// tools/yoso_hot_profile.json.
#include <memory>

#define YOSO_TRACE_SPAN(name) (void)0

namespace yoso {

void consume_rank_fx(int);

void cheap_span_loop_fx(int n) {
  YOSO_TRACE_SPAN("step1.fit_gp");
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<int>(i);
    consume_rank_fx(*p);
  }
}

void expensive_span_loop_fx(int n) {
  YOSO_TRACE_SPAN("sim.network");
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<int>(i);
    consume_rank_fx(*p);
  }
}

}  // namespace yoso
