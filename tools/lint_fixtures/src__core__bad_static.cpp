// Fixture: mutable static state in src/ outside util/.
#include <string>
#include <vector>

namespace yoso {

static int g_call_count = 0;  // expect-lint: static-state
static std::vector<double> g_cache;  // expect-lint: static-state
thread_local int tls_scratch = 0;  // expect-lint: static-state

int bump() {
  static int counter = 0;  // expect-lint: static-state
  return ++counter + g_call_count + tls_scratch +
         static_cast<int>(g_cache.size());
}

// Not violations: immutable data and static functions.
static const int kLimit = 64;
static constexpr double kScale = 2.0;
static std::string helper_name() { return "helper"; }

int limit() { return kLimit + static_cast<int>(kScale) + bump(); }

}  // namespace yoso
