// Fixture: hot-alloc — per-iteration heap allocation on a hot path.  The
// file stands in for src/core/hot_alloc.cpp, so the perf family applies.
// The span names are real profiled spans (tools/yoso_hot_profile.json), so
// the functions below are hot with nonzero rank.  The regex tier only sees
// the single-line loop+allocation shape; everything spanning lines is
// AST-only.
#include <memory>
#include <vector>

#define YOSO_TRACE_SPAN(name) (void)0

namespace yoso {

void consume_fx(int);

// All tiers: loop head and allocation share a line.
void hot_fill_fx(std::vector<std::unique_ptr<int>>& out, int n) {
  YOSO_TRACE_SPAN("sim.network");
  for (int i = 0; i < n; ++i) { out.push_back(std::make_unique<int>(i)); }  // expect-lint: hot-alloc
}

// AST only: the allocation sits on its own line inside the loop body, so
// the line-local regex tier cannot connect it to the loop.
void hot_scratch_fx(int n) {
  YOSO_TRACE_SPAN("sim.network");
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<int>(i);  // expect-lint[ast]: hot-alloc
    consume_fx(*p);
  }
}

// AST only: a std::vector constructed per iteration re-allocates its
// buffer every pass.
void hot_rows_fx(int n, int dim) {
  YOSO_TRACE_SPAN("gp.fit");
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<unsigned long>(dim));  // expect-lint[ast]: hot-alloc
    consume_fx(static_cast<int>(row.size()));
  }
}

// AST only: growth with no dominating reserve before the loop.
void hot_grow_fx(std::vector<int>& acc, int n) {
  YOSO_TRACE_SPAN("gp.fit");
  for (int i = 0; i < n; ++i) {
    acc.push_back(i);  // expect-lint[ast]: hot-alloc
  }
}

// Not a violation: the reserve before the loop caps reallocation.
void hot_grow_capped_fx(std::vector<int>& acc, int n) {
  YOSO_TRACE_SPAN("gp.fit");
  acc.reserve(acc.size() + static_cast<unsigned long>(n));
  for (int i = 0; i < n; ++i) {
    acc.push_back(i);
  }
}

// Not a violation: this function opens no span and is not reachable from
// any profiled one, so its per-iteration allocation is cold.
void cold_prepare_fx(int n) {
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<int>(i);
    consume_fx(*p);
  }
}

}  // namespace yoso
