// Fixture: raw ownership instead of containers / smart pointers.
#include <memory>

namespace yoso {

struct Node {
  int value = 0;
  Node* next = nullptr;
};

Node* make_node(int v) {
  Node* n = new Node;  // expect-lint: naked-new
  n->value = v;
  return n;
}

void free_node(Node* n) {
  delete n;  // expect-lint: naked-new
}

int* make_buffer(int count) {
  return new int[count];  // expect-lint: naked-new
}

void free_buffer(int* p) {
  delete[] p;  // expect-lint: naked-new
}

// Not violations: smart pointers and deleted special members.
struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
};

std::unique_ptr<Node> make_owned(int v) {
  auto n = std::make_unique<Node>();
  n->value = v;
  return n;
}

}  // namespace yoso
