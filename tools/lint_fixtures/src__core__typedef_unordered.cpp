// Fixture: unordered containers hidden behind typedef/using aliases.  The
// v1 regex engine resolves neither, so every violation here is tagged
// `[ast]`: the semantic and clang engines must catch it AND the regex
// engine must provably miss it — the self-test fails if regex ever "sees"
// one of these, because then the fixture no longer demonstrates why the
// AST-grade engines exist.
//
// Hermetic std:: stand-ins keep the fixture parseable by libclang without
// system headers; the canonical type names are what the engines key on.

namespace std {

template <typename K, typename V>
struct umap_entry {
  K first;
  V second;
};

template <typename K, typename V>
struct unordered_map {
  using value_type = umap_entry<K, V>;
  struct iterator {
    value_type* pos;
    iterator& operator++() { return *this; }
    bool operator!=(const iterator& other) const { return pos != other.pos; }
    value_type& operator*() const { return *pos; }
  };
  iterator begin() const { return iterator{nullptr}; }
  iterator end() const { return iterator{nullptr}; }
  iterator find(const K&) const { return iterator{nullptr}; }
};

template <typename K, typename V>
struct map {
  using value_type = umap_entry<K, V>;
  struct iterator {
    value_type* pos;
    iterator& operator++() { return *this; }
    bool operator!=(const iterator& other) const { return pos != other.pos; }
    value_type& operator*() const { return *pos; }
  };
  iterator begin() const { return iterator{nullptr}; }
  iterator end() const { return iterator{nullptr}; }
};

}  // namespace std

namespace yoso {

using CacheTable = std::unordered_map<int, double>;
typedef std::unordered_map<int, int> HitCounts;
using SortedTable = std::map<int, double>;

double sum_cache(const CacheTable& table) {
  double total = 0.0;
  for (const auto& entry : table) {  // expect-lint[ast]: unordered-iter
    total += entry.second;
  }
  return total;
}

int walk_hits(HitCounts& hits) {
  int n = 0;
  for (auto it = hits.begin(); it != hits.end(); ++it) {  // expect-lint[ast]: unordered-iter
    ++n;
  }
  return n;
}

CacheTable copy_cache(const CacheTable& table) {
  return table;
}

double sum_twice(const CacheTable& table) {
  double total = 0.0;
  for (const auto& entry : copy_cache(table)) {  // expect-lint[ast]: unordered-iter
    total += entry.second;
  }
  return total;
}

// Not violations: iteration over an ordered alias, and unordered lookups
// that never depend on iteration order.
double sum_sorted(const SortedTable& totals) {
  double total = 0.0;
  for (const auto& entry : totals) {
    total += entry.second;
  }
  return total;
}

bool cache_has(const CacheTable& table, int key) {
  auto hit = table.find(key);
  return hit != table.end();
}

}  // namespace yoso
