// Fixture: forbidden nondeterministic randomness sources.  Each violating
// line carries an `expect-lint` annotation the self-test checks against.
#include <cstdlib>
#include <ctime>
#include <random>

namespace yoso {

double noise() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // expect-lint: global-rng  // expect-lint: global-rng
  return std::rand() / 2.0;  // expect-lint: global-rng
}

int roll() {
  return rand() % 6;  // expect-lint: global-rng
}

unsigned seed_from_hardware() {
  std::random_device rd;  // expect-lint: global-rng
  return rd();
}

// Not violations: identifiers merely containing the banned tokens.
int randomize_count(int brand) { return brand; }
double uptime(double t) { return t; }

}  // namespace yoso
