// Fixture: the layer-dag rule.  The filename maps this to src/util/, and
// util sits below core in tools/yoso_layers.json, so the include is an
// upward dependency.  Include parsing needs no AST — every engine tier
// must catch it, which is why the expectation carries no [ast] tag.
//
// FinalistPool is referenced below so the include-hygiene rule cannot also
// fire (the fixture isolates layer-dag).
#include "core/search.h"  // expect-lint: layer-dag

namespace yoso {

std::size_t pool_capacity_probe(const FinalistPool& pool);

}  // namespace yoso
