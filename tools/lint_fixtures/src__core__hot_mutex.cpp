// Fixture: hot-mutex — lock acquisition in worker-role code.  Workers must
// stay lock-free (DESIGN.md §9): a lock inside a parallel_for body (or in
// any function the body calls) serialises the very region the pool exists
// to parallelise.  Worker-region detection needs lambda spans and the call
// graph, so every case is `[ast]`.  src/base, src/obs and src/util are
// exempt — the pool's own handshake and the obs registries ARE the locks —
// but this fixture maps to src/core where the rule applies in full.
#include <mutex>
#include <vector>

namespace yoso {

struct PoolFx {
  template <typename Fn>
  void parallel_for(unsigned long begin, unsigned long end, Fn&& fn) {
    for (unsigned long i = begin; i < end; ++i) fn(i);
  }
};

struct SharedTallyFx {
  std::mutex mu;
  double sum = 0.0;
};

// AST only: lock taken directly inside the worker lambda body.
void hot_tally_fx(PoolFx& pool, SharedTallyFx& shared,
                  const std::vector<double>& xs) {
  pool.parallel_for(0, xs.size(), [&](unsigned long i) {
    std::lock_guard<std::mutex> g(shared.mu);  // expect-lint[ast]: hot-mutex
    shared.sum += xs[i];
  });
}

// AST only: the lock hides one call deep — `record_hit_fx` is a transitive
// worker callee.
void record_hit_fx(SharedTallyFx& shared, double x) {
  std::lock_guard<std::mutex> g(shared.mu);  // expect-lint[ast]: hot-mutex
  shared.sum += x;
}

void hot_tally_indirect_fx(PoolFx& pool, SharedTallyFx& shared,
                           const std::vector<double>& xs) {
  pool.parallel_for(0, xs.size(), [&](unsigned long i) {
    record_hit_fx(shared, xs[i]);
  });
}

// Not a violation: the coordinator may lock — only worker-role code is
// constrained.  Per-slot accumulation plus a coordinator-side merge is the
// pattern the rule pushes towards.
void coordinator_merge_fx(PoolFx& pool, SharedTallyFx& shared,
                          std::vector<double>& slots) {
  pool.parallel_for(0, slots.size(), [&](unsigned long i) {
    slots[i] *= 2.0;
  });
  std::lock_guard<std::mutex> g(shared.mu);
  for (double s : slots) shared.sum += s;
}

}  // namespace yoso
