// Fixture: mutable statics inside templates.  Every engine must catch these
// — the regex engine sees the `static` keyword, the AST engines the
// VAR_DECL — but the declarations are template-local, a shape the v1 suite
// never covered (each instantiation gets its own hidden mutable state, so
// the reproducibility hazard multiplies with the instantiation set).

namespace yoso {

template <typename T>
T accumulate_with_memo(T x) {
  static T memo = T();  // expect-lint: static-state
  memo += x;
  return memo;
}

template <typename T>
struct TicketCounter {
  int next() {
    static int last_issued = 0;  // expect-lint: static-state
    return ++last_issued;
  }
};

// Not violations: immutable template-local data.
template <typename T>
T scaled(T x) {
  static constexpr double kScale = 2.0;
  static const int kOffset = 1;
  return static_cast<T>(x * kScale) + static_cast<T>(kOffset);
}

}  // namespace yoso
