// Fixture: the include-hygiene rule family, scanned against the real
// repository header index.
//
//  - duplicate include: textual, caught at every engine tier (no tag);
//  - unused include: needs the symbol index, AST tiers only;
//  - transitive-only dependency: `Genotype` lives in arch/genotype.h,
//    which core/evaluator.h pulls in transitively; using it without a
//    direct include is flagged by the AST tiers at the first use site.
#include "core/evaluator.h"
#include "core/pareto.h"
#include "core/pareto.h"  // expect-lint: include-hygiene
#include "util/table.h"   // expect-lint[ast]: include-hygiene

namespace yoso {

// Uses TradeoffMetric (pareto.h) and FastEvaluator (evaluator.h) so those
// includes are not ALSO flagged as unused.
double hygiene_probe(TradeoffMetric metric, const FastEvaluator& evaluator,
                     const Genotype& genotype);  // expect-lint[ast]: include-hygiene

}  // namespace yoso
