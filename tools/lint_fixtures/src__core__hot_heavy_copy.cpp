// Fixture: hot-heavy-copy — heavy values copied on a hot path.  The regex
// tier only catches an explicitly heavy-typed range-for on one line; the
// by-value parameter, the `auto` element copy and the loop-body copy-init
// all need the AST tiers' function spans and declaration tracking.
#include <string>
#include <vector>

#define YOSO_TRACE_SPAN(name) (void)0

namespace yoso {

struct Matrix {
  std::vector<double> data;
};

void consume_copy_fx(double);

// All tiers: an explicitly heavy-typed range-for element without `&`.
double hot_row_sums_fx(const std::vector<std::vector<double>>& rows) {
  YOSO_TRACE_SPAN("sim.network");
  double acc = 0.0;
  for (std::vector<double> row : rows) {  // expect-lint: hot-heavy-copy
    acc += row.empty() ? 0.0 : row.front();
  }
  return acc;
}

// AST only: a hot function taking a heavy argument by value.
double hot_mean_fx(std::vector<double> values) {  // expect-lint[ast]: hot-heavy-copy
  YOSO_TRACE_SPAN("gp.fit");
  double acc = 0.0;
  for (double v : values) acc += v;
  return values.empty() ? 0.0 : acc / static_cast<double>(values.size());
}

// AST only: `auto` hides the heavy element type from the regex tier; the
// semantic engine resolves it through the container declaration.
double hot_name_lengths_fx() {
  YOSO_TRACE_SPAN("gp.fit");
  std::vector<std::string> names_fx = {"a", "b"};
  double acc = 0.0;
  for (auto name : names_fx) {  // expect-lint[ast]: hot-heavy-copy
    acc += static_cast<double>(name.size());
  }
  return acc;
}

// AST only: copy-initialising a matrix-like value from an lvalue inside a
// hot loop.
void hot_panel_fx(const Matrix& src, int n) {
  YOSO_TRACE_SPAN("sim.network");
  for (int i = 0; i < n; ++i) {
    const Matrix panel = src;  // expect-lint[ast]: hot-heavy-copy
    consume_copy_fx(static_cast<double>(panel.data.size()));
  }
}

// Not a violation: by-value + std::move is the sink idiom — the caller's
// copy is the only one, exactly what pass-by-const-ref + copy would cost.
struct TagFx {
  explicit TagFx(std::string label) : label_(std::move(label)) {
    YOSO_TRACE_SPAN("sim.network");
  }
  std::string label_;
};

void hot_make_tag_fx() {
  YOSO_TRACE_SPAN("sim.network");
  TagFx t("hot");
  consume_copy_fx(static_cast<double>(t.label_.size()));
}

// Not a violation: the reference loop is the fix the rule asks for.
double hot_row_sums_ref_fx(const std::vector<std::vector<double>>& rows) {
  YOSO_TRACE_SPAN("sim.network");
  double acc = 0.0;
  for (const std::vector<double>& row : rows) {
    acc += row.empty() ? 0.0 : row.front();
  }
  return acc;
}

}  // namespace yoso
