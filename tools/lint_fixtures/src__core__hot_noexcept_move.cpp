// Fixture: hot-noexcept-move — a type used on hot paths whose user-declared
// move operation is not `noexcept`.  std::vector only moves elements during
// growth when the move cannot throw; otherwise it copies every element to
// keep the strong exception guarantee.  Connecting a type's special members
// to the hot set needs class spans plus the hot-function index, so every
// case is `[ast]`.
#include <string>
#include <vector>

#define YOSO_TRACE_SPAN(name) (void)0

namespace yoso {

// Its move ctor is user-declared but neither noexcept nor defaulted, and
// the type appears in a hot function body below.
class RecordFx {
 public:
  explicit RecordFx(int v) : tag_(static_cast<unsigned long>(v), 'x') {}
  RecordFx(RecordFx&& other);  // expect-lint[ast]: hot-noexcept-move
  std::string tag_;
};

// Not a violation: the noexcept move is exactly what vector growth wants.
class SafeRecordFx {
 public:
  explicit SafeRecordFx(int v) : tag_(static_cast<unsigned long>(v), 'x') {}
  SafeRecordFx(SafeRecordFx&& other) noexcept;
  std::string tag_;
};

// Not a violation: throwing move, but nothing hot ever touches it.
class ColdRecordFx {
 public:
  ColdRecordFx(ColdRecordFx&& other);
  std::string tag_;
};

void hot_rotate_fx(std::vector<RecordFx>& items,
                   std::vector<SafeRecordFx>& safe_items) {
  YOSO_TRACE_SPAN("step1.collect_samples");
  items.push_back(RecordFx(3));
  safe_items.push_back(SafeRecordFx(3));
}

void cold_rotate_fx(std::vector<ColdRecordFx>& items) {
  items.push_back(ColdRecordFx(3));
}

}  // namespace yoso
