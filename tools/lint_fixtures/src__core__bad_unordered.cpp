// Fixture: implementation-defined iteration order feeding output.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace yoso {

double sum_rewards(const std::unordered_map<std::string, double>& rewards) {
  double total = 0.0;
  for (const auto& [key, value] : rewards) {  // expect-lint: unordered-iter
    total += value * static_cast<double>(key.size());
  }
  return total;
}

int walk(const std::unordered_set<int>& seen) {
  int acc = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // expect-lint: unordered-iter
    acc += *it;
  }
  return acc;
}

// Not violations: ordered map iteration and unordered membership lookups.
// (The checker matches by variable name per file, so the ordered map gets a
// name no unordered container in this file uses.)
double sum_ordered(const std::map<std::string, double>& ordered_rewards,
                   const std::unordered_set<std::string>& filter) {
  double total = 0.0;
  for (const auto& [key, value] : ordered_rewards) {
    if (filter.count(key) > 0) total += value;
  }
  return total;
}

}  // namespace yoso
