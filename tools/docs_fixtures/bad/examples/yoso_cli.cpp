// Fixture CLI stub for yoso_docs_check --self-test (never compiled).
//
// Flags:
//   --seed N     RNG seed
//   --threads N  worker count
int parse_args(const char* key_str) {
  const char* key = key_str;
  if (key == "seed") return 1;
  if (key == "threads") return 2;
  return 0;
}
