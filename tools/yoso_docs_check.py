#!/usr/bin/env python3
"""Documentation gate: dead links, dead anchors and stale CLI flag refs.

Checks, all tuned to fail loudly in CI rather than guess:

1. Relative markdown links.  Every ``[text](target)`` in a tracked ``*.md``
   file whose target is not an absolute URL must resolve to an existing
   file (relative to the markdown file's directory).

2. Anchors.  A ``#section`` fragment — pure (``(#section)``) or trailing a
   markdown target (``(DESIGN.md#section)``) — must match a heading slug
   (GitHub style) or an explicit ``<a name=...>``/``<a id=...>`` anchor in
   the target file.

3. Reference-style links.  ``[text][label]`` (and the ``[text][]``
   shortcut) must have a matching ``[label]: target`` definition in the
   same file, and the definition's target is validated like an inline one.
   Fenced code blocks and inline code spans are ignored throughout.

4. CLI flag reference.  The source of truth is ``parse_args`` in
   ``examples/yoso_cli.cpp`` (the ``key == "..."`` comparisons).  The flag
   list in the file's header comment and the region of ``README.md`` fenced
   by ``<!-- cli-flags:begin -->`` / ``<!-- cli-flags:end -->`` must both
   mention exactly that flag set — no missing flags, no stale ones (a flag
   documented in README but absent from parse_args fails, and vice versa).

Usage: tools/yoso_docs_check.py [repo_root]   (exit 0 clean, 1 otherwise)
       tools/yoso_docs_check.py --self-test   (fixture cases under
                                               tools/docs_fixtures/)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REF_USE_RE = re.compile(r"\[([^\]]+)\]\[([^\]]*)\]")
REF_DEF_RE = re.compile(r"^\s*\[([^\]]+)\]:\s*(\S+)")
FENCE_RE = re.compile(r"^\s*(?:```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$")
HTML_ANCHOR_RE = re.compile(r"<a\s+(?:name|id)\s*=\s*[\"']([^\"']+)[\"']")
CLI_KEY_RE = re.compile(r'key == "([a-z][a-z0-9-]*)"')
HEADER_FLAG_RE = re.compile(r"^//\s+--([a-z][a-z0-9-]*)\b")
FLAG_TOKEN_RE = re.compile(r"--([a-z][a-z0-9-]*)")


def markdown_files(root: Path) -> list[Path]:
    skipped = {"build", ".git", "third_party", "docs_fixtures"}
    files = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in skipped or part.startswith("build")
                   for part in path.relative_to(root).parts):
            files.append(path)
    return files


def prose_lines(text: str):
    """(line_no, line) pairs with fenced code blocks skipped and inline
    code spans blanked — link syntax inside code is not a link."""
    in_fence = False
    for line_no, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield line_no, CODE_SPAN_RE.sub("``", line)


def slugify(heading: str) -> str:
    """GitHub-style heading slug: strip emphasis markers and punctuation,
    lower-case, spaces to hyphens."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md: Path, cache: dict) -> set[str]:
    if md not in cache:
        anchors = set()
        for _, line in prose_lines(md.read_text()):
            m = HEADING_RE.match(line)
            if m:
                anchors.add(slugify(m.group(1)))
            anchors.update(HTML_ANCHOR_RE.findall(line))
        cache[md] = anchors
    return cache[md]


def check_target(md: Path, line_no: int, target: str, root: Path,
                 anchor_cache: dict, errors: list[str]) -> None:
    if target.startswith(("http://", "https://", "mailto:")):
        return
    rel = md.relative_to(root)
    if target.startswith("#"):
        if target[1:] not in anchors_of(md, anchor_cache):
            errors.append(f"{rel}:{line_no}: dead anchor '{target}' — no "
                          "matching heading or <a name=...> in this file")
        return
    path_part, _, fragment = target.partition("#")
    resolved = (md.parent / path_part).resolve()
    if not resolved.exists():
        errors.append(f"{rel}:{line_no}: dead link '{target}'")
        return
    if fragment and resolved.suffix == ".md":
        if fragment not in anchors_of(resolved, anchor_cache):
            errors.append(f"{rel}:{line_no}: dead anchor '#{fragment}' — "
                          f"no matching heading in {path_part}")


def check_links(root: Path) -> list[str]:
    errors: list[str] = []
    anchor_cache: dict = {}
    for md in markdown_files(root):
        text = md.read_text()
        rel = md.relative_to(root)
        # Reference definitions first: `[label]: target` (case-insensitive
        # labels, per the markdown spec).
        defs: dict[str, tuple[int, str]] = {}
        for line_no, line in prose_lines(text):
            m = REF_DEF_RE.match(line)
            if m:
                defs[m.group(1).lower()] = (line_no, m.group(2))
        for line_no, line in prose_lines(text):
            if REF_DEF_RE.match(line):
                continue
            for target in LINK_RE.findall(line):
                check_target(md, line_no, target, root, anchor_cache, errors)
            for text_part, label in REF_USE_RE.findall(line):
                label = (label or text_part).lower()
                if label not in defs:
                    errors.append(f"{rel}:{line_no}: reference-style link "
                                  f"'[{label}]' has no '[{label}]: target' "
                                  "definition in this file")
        for label, (line_no, target) in sorted(defs.items()):
            check_target(md, line_no, target, root, anchor_cache, errors)
    return errors


def implemented_flags(cli: Path) -> set[str]:
    return set(CLI_KEY_RE.findall(cli.read_text()))


def header_comment_flags(cli: Path) -> set[str]:
    flags = set()
    for line in cli.read_text().splitlines():
        if not line.startswith("//"):
            break  # the header comment ends at the first non-comment line
        match = HEADER_FLAG_RE.match(line)
        if match:
            flags.add(match.group(1))
    return flags


def readme_region_flags(readme: Path) -> set[str] | None:
    text = readme.read_text()
    begin = text.find("<!-- cli-flags:begin -->")
    end = text.find("<!-- cli-flags:end -->")
    if begin < 0 or end < 0 or end < begin:
        return None
    return set(FLAG_TOKEN_RE.findall(text[begin:end]))


def check_flags(root: Path) -> list[str]:
    cli = root / "examples" / "yoso_cli.cpp"
    readme = root / "README.md"
    implemented = implemented_flags(cli)
    if not implemented:
        return [f"{cli.relative_to(root)}: found no parsed flags — "
                "has parse_args been restructured?"]
    errors = []

    in_header = header_comment_flags(cli)
    for flag in sorted(implemented - in_header):
        errors.append(f"{cli.relative_to(root)}: --{flag} is parsed but "
                      "missing from the header comment flag list")
    for flag in sorted(in_header - implemented):
        errors.append(f"{cli.relative_to(root)}: header comment documents "
                      f"--{flag}, which parse_args does not accept")

    in_readme = readme_region_flags(readme)
    if in_readme is None:
        errors.append("README.md: missing <!-- cli-flags:begin/end --> "
                      "markers around the yoso_cli flag reference")
    else:
        for flag in sorted(implemented - in_readme):
            errors.append(f"README.md: flag reference is missing --{flag}")
        for flag in sorted(in_readme - implemented):
            errors.append(f"README.md: flag reference lists --{flag}, "
                          "which yoso_cli does not accept")
    return errors


def check_tree(root: Path) -> list[str]:
    return check_links(root) + check_flags(root)


def run_self_test(script_dir: Path) -> int:
    """Fixture cases: docs_fixtures/good must be clean; every seeded defect
    in docs_fixtures/bad must be reported (and nothing else)."""
    fixtures = script_dir / "docs_fixtures"
    good, bad = fixtures / "good", fixtures / "bad"
    failures = 0

    good_errors = check_tree(good)
    for e in good_errors:
        print(f"SELF-TEST FAIL good/: unexpected error: {e}")
        failures += 1

    expected = [
        # anchor links
        "dead anchor '#missing-section'",
        "dead anchor '#nowhere'",
        # reference-style links
        "reference-style link '[undefined-ref]'",
        "dead link 'missing_target.md'",
        # README flag documented but absent from parse_args (the reverse
        # direction of the missing-from-README check)
        "flag reference lists --bogus",
        # ...and the existing direction still holds
        "flag reference is missing --seed",
    ]
    bad_errors = check_tree(bad)
    for needle in expected:
        if not any(needle in e for e in bad_errors):
            print(f"SELF-TEST FAIL bad/: seeded defect not reported: "
                  f"{needle}")
            failures += 1
    if len(bad_errors) != len(expected):
        print(f"SELF-TEST FAIL bad/: expected exactly {len(expected)} "
              f"errors, got {len(bad_errors)}:")
        for e in bad_errors:
            print(f"  - {e}")
        failures += 1

    print(f"yoso-docs-check --self-test: {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return run_self_test(Path(__file__).resolve().parent)
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    errors = check_tree(root)
    for error in errors:
        print(f"yoso-docs-check: {error}")
    print(f"yoso-docs-check: {'FAIL' if errors else 'OK'} "
          f"({len(markdown_files(root))} markdown files checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
