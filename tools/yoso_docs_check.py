#!/usr/bin/env python3
"""Documentation gate: dead relative links and stale CLI flag references.

Two checks, both tuned to fail loudly in CI rather than guess:

1. Relative markdown links.  Every ``[text](target)`` in a tracked ``*.md``
   file whose target is not an absolute URL or a pure anchor must resolve to
   an existing file (relative to the markdown file's directory, ``#anchor``
   suffixes stripped).

2. CLI flag reference.  The source of truth is ``parse_args`` in
   ``examples/yoso_cli.cpp`` (the ``key == "..."`` comparisons).  The flag
   list in the file's header comment and the region of ``README.md`` fenced
   by ``<!-- cli-flags:begin -->`` / ``<!-- cli-flags:end -->`` must both
   mention exactly that flag set — no missing flags, no stale ones.

Usage: tools/yoso_docs_check.py [repo_root]   (exit 0 clean, 1 otherwise)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CLI_KEY_RE = re.compile(r'key == "([a-z][a-z0-9-]*)"')
HEADER_FLAG_RE = re.compile(r"^//\s+--([a-z][a-z0-9-]*)\b")
FLAG_TOKEN_RE = re.compile(r"--([a-z][a-z0-9-]*)")


def markdown_files(root: Path) -> list[Path]:
    skipped = {"build", ".git", "third_party"}
    files = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in skipped or part.startswith("build")
                   for part in path.relative_to(root).parts):
            files.append(path)
    return files


def check_links(root: Path) -> list[str]:
    errors = []
    for md in markdown_files(root):
        for line_no, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (md.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(root)}:{line_no}: dead link "
                        f"'{target}'")
    return errors


def implemented_flags(cli: Path) -> set[str]:
    return set(CLI_KEY_RE.findall(cli.read_text()))


def header_comment_flags(cli: Path) -> set[str]:
    flags = set()
    for line in cli.read_text().splitlines():
        if not line.startswith("//"):
            break  # the header comment ends at the first non-comment line
        match = HEADER_FLAG_RE.match(line)
        if match:
            flags.add(match.group(1))
    return flags


def readme_region_flags(readme: Path) -> set[str] | None:
    text = readme.read_text()
    begin = text.find("<!-- cli-flags:begin -->")
    end = text.find("<!-- cli-flags:end -->")
    if begin < 0 or end < 0 or end < begin:
        return None
    return set(FLAG_TOKEN_RE.findall(text[begin:end]))


def check_flags(root: Path) -> list[str]:
    cli = root / "examples" / "yoso_cli.cpp"
    readme = root / "README.md"
    implemented = implemented_flags(cli)
    if not implemented:
        return [f"{cli.relative_to(root)}: found no parsed flags — "
                "has parse_args been restructured?"]
    errors = []

    in_header = header_comment_flags(cli)
    for flag in sorted(implemented - in_header):
        errors.append(f"{cli.relative_to(root)}: --{flag} is parsed but "
                      "missing from the header comment flag list")
    for flag in sorted(in_header - implemented):
        errors.append(f"{cli.relative_to(root)}: header comment documents "
                      f"--{flag}, which parse_args does not accept")

    in_readme = readme_region_flags(readme)
    if in_readme is None:
        errors.append("README.md: missing <!-- cli-flags:begin/end --> "
                      "markers around the yoso_cli flag reference")
    else:
        for flag in sorted(implemented - in_readme):
            errors.append(f"README.md: flag reference is missing --{flag}")
        for flag in sorted(in_readme - implemented):
            errors.append(f"README.md: flag reference lists --{flag}, "
                          "which yoso_cli does not accept")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    errors = check_links(root) + check_flags(root)
    for error in errors:
        print(f"yoso-docs-check: {error}")
    print(f"yoso-docs-check: {'FAIL' if errors else 'OK'} "
          f"({len(markdown_files(root))} markdown files checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
