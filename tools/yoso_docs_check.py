#!/usr/bin/env python3
"""Documentation gate: dead links, dead anchors and stale CLI flag refs.

Checks, all tuned to fail loudly in CI rather than guess:

1. Relative markdown links.  Every ``[text](target)`` in a tracked ``*.md``
   file whose target is not an absolute URL must resolve to an existing
   file (relative to the markdown file's directory).

2. Anchors.  A ``#section`` fragment — pure (``(#section)``) or trailing a
   markdown target (``(DESIGN.md#section)``) — must match a heading slug
   (GitHub style) or an explicit ``<a name=...>``/``<a id=...>`` anchor in
   the target file.

3. Reference-style links.  ``[text][label]`` (and the ``[text][]``
   shortcut) must have a matching ``[label]: target`` definition in the
   same file, and the definition's target is validated like an inline one.
   Fenced code blocks and inline code spans are ignored throughout.

4. CLI flag reference.  The source of truth is ``parse_args`` in
   ``examples/yoso_cli.cpp`` (the ``key == "..."`` comparisons).  The flag
   list in the file's header comment and the region of ``README.md`` fenced
   by ``<!-- cli-flags:begin -->`` / ``<!-- cli-flags:end -->`` must both
   mention exactly that flag set — no missing flags, no stale ones (a flag
   documented in README but absent from parse_args fails, and vice versa).

5. Serve-op reference.  The operation table fenced by
   ``<!-- serve-ops:begin -->`` / ``<!-- serve-ops:end -->`` in
   ``docs/SERVING.md`` must list exactly the handler names registered with
   ``register_op("...")`` in ``src/serve/server.cpp``.  Skipped when either
   file is absent (fixture trees).

6. Artifact-section registry.  The id table fenced by
   ``<!-- artifact-sections:begin -->`` / ``<!-- artifact-sections:end -->``
   in ``docs/ARTIFACTS.md`` must list exactly the ``ArtifactSection``
   enumerators of ``src/core/artifact.h`` — names *and* hex ids.  Skipped
   when either file is absent.

Usage: tools/yoso_docs_check.py [repo_root]   (exit 0 clean, 1 otherwise)
       tools/yoso_docs_check.py --self-test   (fixture cases under
                                               tools/docs_fixtures/)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REF_USE_RE = re.compile(r"\[([^\]]+)\]\[([^\]]*)\]")
REF_DEF_RE = re.compile(r"^\s*\[([^\]]+)\]:\s*(\S+)")
FENCE_RE = re.compile(r"^\s*(?:```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$")
HTML_ANCHOR_RE = re.compile(r"<a\s+(?:name|id)\s*=\s*[\"']([^\"']+)[\"']")
CLI_KEY_RE = re.compile(r'key == "([a-z][a-z0-9-]*)"')
HEADER_FLAG_RE = re.compile(r"^//\s+--([a-z][a-z0-9-]*)\b")
FLAG_TOKEN_RE = re.compile(r"--([a-z][a-z0-9-]*)")
SERVE_OP_RE = re.compile(r'register_op\("([a-z_]+)"')
DOC_OP_ROW_RE = re.compile(r"^\|\s*`([a-z_]+)`\s*\|")
ENUM_SECTION_RE = re.compile(r"^\s*k(\w+)\s*=\s*(0x[0-9a-fA-F]+)\s*,")
DOC_SECTION_ROW_RE = re.compile(
    r"^\|\s*`(0x[0-9a-fA-F]+)`\s*\|\s*`k(\w+)`\s*\|")


def markdown_files(root: Path) -> list[Path]:
    skipped = {"build", ".git", "third_party", "docs_fixtures"}
    files = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in skipped or part.startswith("build")
                   for part in path.relative_to(root).parts):
            files.append(path)
    return files


def prose_lines(text: str):
    """(line_no, line) pairs with fenced code blocks skipped and inline
    code spans blanked — link syntax inside code is not a link."""
    in_fence = False
    for line_no, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield line_no, CODE_SPAN_RE.sub("``", line)


def slugify(heading: str) -> str:
    """GitHub-style heading slug: strip emphasis markers and punctuation,
    lower-case, spaces to hyphens."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md: Path, cache: dict) -> set[str]:
    if md not in cache:
        anchors = set()
        for _, line in prose_lines(md.read_text()):
            m = HEADING_RE.match(line)
            if m:
                anchors.add(slugify(m.group(1)))
            anchors.update(HTML_ANCHOR_RE.findall(line))
        cache[md] = anchors
    return cache[md]


def check_target(md: Path, line_no: int, target: str, root: Path,
                 anchor_cache: dict, errors: list[str]) -> None:
    if target.startswith(("http://", "https://", "mailto:")):
        return
    rel = md.relative_to(root)
    if target.startswith("#"):
        if target[1:] not in anchors_of(md, anchor_cache):
            errors.append(f"{rel}:{line_no}: dead anchor '{target}' — no "
                          "matching heading or <a name=...> in this file")
        return
    path_part, _, fragment = target.partition("#")
    resolved = (md.parent / path_part).resolve()
    if not resolved.exists():
        errors.append(f"{rel}:{line_no}: dead link '{target}'")
        return
    if fragment and resolved.suffix == ".md":
        if fragment not in anchors_of(resolved, anchor_cache):
            errors.append(f"{rel}:{line_no}: dead anchor '#{fragment}' — "
                          f"no matching heading in {path_part}")


def check_links(root: Path) -> list[str]:
    errors: list[str] = []
    anchor_cache: dict = {}
    for md in markdown_files(root):
        text = md.read_text()
        rel = md.relative_to(root)
        # Reference definitions first: `[label]: target` (case-insensitive
        # labels, per the markdown spec).
        defs: dict[str, tuple[int, str]] = {}
        for line_no, line in prose_lines(text):
            m = REF_DEF_RE.match(line)
            if m:
                defs[m.group(1).lower()] = (line_no, m.group(2))
        for line_no, line in prose_lines(text):
            if REF_DEF_RE.match(line):
                continue
            for target in LINK_RE.findall(line):
                check_target(md, line_no, target, root, anchor_cache, errors)
            for text_part, label in REF_USE_RE.findall(line):
                label = (label or text_part).lower()
                if label not in defs:
                    errors.append(f"{rel}:{line_no}: reference-style link "
                                  f"'[{label}]' has no '[{label}]: target' "
                                  "definition in this file")
        for label, (line_no, target) in sorted(defs.items()):
            check_target(md, line_no, target, root, anchor_cache, errors)
    return errors


def implemented_flags(cli: Path) -> set[str]:
    return set(CLI_KEY_RE.findall(cli.read_text()))


def header_comment_flags(cli: Path) -> set[str]:
    flags = set()
    for line in cli.read_text().splitlines():
        if not line.startswith("//"):
            break  # the header comment ends at the first non-comment line
        match = HEADER_FLAG_RE.match(line)
        if match:
            flags.add(match.group(1))
    return flags


def readme_region_flags(readme: Path) -> set[str] | None:
    text = readme.read_text()
    begin = text.find("<!-- cli-flags:begin -->")
    end = text.find("<!-- cli-flags:end -->")
    if begin < 0 or end < 0 or end < begin:
        return None
    return set(FLAG_TOKEN_RE.findall(text[begin:end]))


def check_flags(root: Path) -> list[str]:
    cli = root / "examples" / "yoso_cli.cpp"
    readme = root / "README.md"
    implemented = implemented_flags(cli)
    if not implemented:
        return [f"{cli.relative_to(root)}: found no parsed flags — "
                "has parse_args been restructured?"]
    errors = []

    in_header = header_comment_flags(cli)
    for flag in sorted(implemented - in_header):
        errors.append(f"{cli.relative_to(root)}: --{flag} is parsed but "
                      "missing from the header comment flag list")
    for flag in sorted(in_header - implemented):
        errors.append(f"{cli.relative_to(root)}: header comment documents "
                      f"--{flag}, which parse_args does not accept")

    in_readme = readme_region_flags(readme)
    if in_readme is None:
        errors.append("README.md: missing <!-- cli-flags:begin/end --> "
                      "markers around the yoso_cli flag reference")
    else:
        for flag in sorted(implemented - in_readme):
            errors.append(f"README.md: flag reference is missing --{flag}")
        for flag in sorted(in_readme - implemented):
            errors.append(f"README.md: flag reference lists --{flag}, "
                          "which yoso_cli does not accept")
    return errors


def marker_region(text: str, name: str) -> str | None:
    begin = text.find(f"<!-- {name}:begin -->")
    end = text.find(f"<!-- {name}:end -->")
    if begin < 0 or end < 0 or end < begin:
        return None
    return text[begin:end]


def check_serve_ops(root: Path) -> list[str]:
    """docs/SERVING.md's op table vs the register_op() calls in the
    server.  Skips when either side is absent so fixture trees (and
    hypothetical serve-less checkouts) stay checkable."""
    server = root / "src" / "serve" / "server.cpp"
    doc = root / "docs" / "SERVING.md"
    if not server.exists() or not doc.exists():
        return []
    registered = set(SERVE_OP_RE.findall(server.read_text()))
    if not registered:
        return [f"{server.relative_to(root)}: found no register_op(\"...\") "
                "calls — has the dispatch table been restructured?"]
    region = marker_region(doc.read_text(), "serve-ops")
    if region is None:
        return ["docs/SERVING.md: missing <!-- serve-ops:begin/end --> "
                "markers around the operation table"]
    documented = set()
    for line in region.splitlines():
        m = DOC_OP_ROW_RE.match(line)
        if m:
            documented.add(m.group(1))
    errors = []
    for op in sorted(registered - documented):
        errors.append(f"docs/SERVING.md: op table is missing `{op}` "
                      "(registered in src/serve/server.cpp)")
    for op in sorted(documented - registered):
        errors.append(f"docs/SERVING.md: op table lists `{op}`, which "
                      "src/serve/server.cpp does not register")
    return errors


def check_artifact_sections(root: Path) -> list[str]:
    """docs/ARTIFACTS.md's section-id registry vs the ArtifactSection enum
    — both the names and the hex ids must agree.  Skips when either side
    is absent (fixture trees)."""
    header = root / "src" / "core" / "artifact.h"
    doc = root / "docs" / "ARTIFACTS.md"
    if not header.exists() or not doc.exists():
        return []
    in_enum = False
    declared: dict[str, int] = {}
    for line in header.read_text().splitlines():
        if "enum class ArtifactSection" in line:
            in_enum = True
            continue
        if in_enum:
            if line.strip().startswith("};"):
                break
            m = ENUM_SECTION_RE.match(line)
            if m:
                declared[m.group(1)] = int(m.group(2), 16)
    if not declared:
        return [f"{header.relative_to(root)}: could not parse the "
                "ArtifactSection enum — has it been restructured?"]
    region = marker_region(doc.read_text(), "artifact-sections")
    if region is None:
        return ["docs/ARTIFACTS.md: missing <!-- artifact-sections:"
                "begin/end --> markers around the section-id table"]
    documented: dict[str, int] = {}
    for line in region.splitlines():
        m = DOC_SECTION_ROW_RE.match(line)
        if m:
            documented[m.group(2)] = int(m.group(1), 16)
    errors = []
    for name in sorted(set(declared) - set(documented)):
        errors.append(f"docs/ARTIFACTS.md: section table is missing "
                      f"`k{name}` (declared in src/core/artifact.h)")
    for name in sorted(set(documented) - set(declared)):
        errors.append(f"docs/ARTIFACTS.md: section table lists `k{name}`, "
                      "which src/core/artifact.h does not declare")
    for name in sorted(set(declared) & set(documented)):
        if declared[name] != documented[name]:
            errors.append(
                f"docs/ARTIFACTS.md: `k{name}` documented as "
                f"0x{documented[name]:02x} but declared as "
                f"0x{declared[name]:02x} in src/core/artifact.h")
    return errors


def check_tree(root: Path) -> list[str]:
    return (check_links(root) + check_flags(root) + check_serve_ops(root) +
            check_artifact_sections(root))


def run_self_test(script_dir: Path) -> int:
    """Fixture cases: docs_fixtures/good must be clean; every seeded defect
    in docs_fixtures/bad must be reported (and nothing else)."""
    fixtures = script_dir / "docs_fixtures"
    good, bad = fixtures / "good", fixtures / "bad"
    failures = 0

    good_errors = check_tree(good)
    for e in good_errors:
        print(f"SELF-TEST FAIL good/: unexpected error: {e}")
        failures += 1

    expected = [
        # anchor links
        "dead anchor '#missing-section'",
        "dead anchor '#nowhere'",
        # reference-style links
        "reference-style link '[undefined-ref]'",
        "dead link 'missing_target.md'",
        # README flag documented but absent from parse_args (the reverse
        # direction of the missing-from-README check)
        "flag reference lists --bogus",
        # ...and the existing direction still holds
        "flag reference is missing --seed",
    ]
    bad_errors = check_tree(bad)
    for needle in expected:
        if not any(needle in e for e in bad_errors):
            print(f"SELF-TEST FAIL bad/: seeded defect not reported: "
                  f"{needle}")
            failures += 1
    if len(bad_errors) != len(expected):
        print(f"SELF-TEST FAIL bad/: expected exactly {len(expected)} "
              f"errors, got {len(bad_errors)}:")
        for e in bad_errors:
            print(f"  - {e}")
        failures += 1

    print(f"yoso-docs-check --self-test: {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return run_self_test(Path(__file__).resolve().parent)
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    errors = check_tree(root)
    for error in errors:
        print(f"yoso-docs-check: {error}")
    print(f"yoso-docs-check: {'FAIL' if errors else 'OK'} "
          f"({len(markdown_files(root))} markdown files checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
