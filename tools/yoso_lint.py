#!/usr/bin/env python3
"""yoso-lint: project-specific determinism / thread-safety checker.

Machine-enforces the rules DESIGN.md states in prose (§9 threading model,
§10 correctness tooling).  The search loop is multithreaded and results must
be bit-identical at any thread count, so the classic sources of silent
nondeterminism are banned outright:

  global-rng        std::rand / srand / random_device / time()-seeded RNG
                    anywhere outside src/util/rng.* — every draw must go
                    through the seedable yoso::Rng.
  static-state      mutable function-local or global `static` data in src/
                    outside src/util/ — hidden state breaks reproducibility
                    and is a data race under the parallel evaluator.
  unordered-iter    iteration over std::unordered_map / std::unordered_set —
                    iteration order is implementation-defined, so anything it
                    feeds (rewards, finalist pools, reports) varies run to
                    run.  Use std::map or sort the keys first.
  naked-new         raw `new` / `delete` — ownership must be expressed with
                    containers or smart pointers (make_unique/make_shared).
  header-self-contained (with --check-headers)
                    every header under src/ must compile standalone, so any
                    TU can include it first without hidden include-order
                    dependencies.

Escape hatch: append `// yoso-lint: allow(<rule>)` to the offending line (or
the line directly above it) to suppress one rule there.  Allows are counted
and capped (--max-allows, default 5) so the hatch stays an exception, not a
policy.

Exit status: 0 when no violations (and the allow budget holds), 1 otherwise.
`--self-test` checks the linter itself against tools/lint_fixtures/, where
every seeded violation is annotated with `// expect-lint: <rule>`.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

RULES = (
    "global-rng",
    "static-state",
    "unordered-iter",
    "naked-new",
    "header-self-contained",
)

SCAN_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".h", ".hpp")

ALLOW_RE = re.compile(r"//\s*yoso-lint:\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def collect_allows(raw_lines):
    """Maps line number -> set of allowed rules.  An allow comment applies to
    its own line and, when it is the only thing on the line, to the next."""
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            rule = m.group(1)
            allows.setdefault(idx, set()).add(rule)
            if line.strip().startswith("//"):
                allows.setdefault(idx + 1, set()).add(rule)
    return allows


GLOBAL_RNG_RE = re.compile(
    r"(?:(?<![\w:])(?:std::)?s?rand\s*\(|\brandom_device\b"
    r"|(?<![\w:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)?\s*\))"
)

STATIC_DECL_RE = re.compile(r"^\s*(?:\[\[[^\]]*\]\]\s*)*(static|thread_local)\b")
STATIC_EXEMPT_RE = re.compile(
    r"\b(?:const\b|constexpr\b|consteval\b|constinit\b|static_assert|static_cast)"
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*[&*]?\s*(\w+)"
)
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;]*?(?<!:):(?!:)\s*(.+)\)\s*\{?\s*$")
IDENT_RE = re.compile(r"\b(\w+)\b")

NAKED_NEW_RE = re.compile(r"(?<![\w_])new\b(?!\s*\()")
NAKED_DELETE_RE = re.compile(r"(?<![\w_])delete\b(\s*\[\s*\])?\s")


def is_function_decl(line, m_end):
    """After `static <type...>`, decide whether the declared entity is a
    function (first declarator identifier followed by '(') or data."""
    rest = line[m_end:]
    # Walk identifiers; the declarator is the last identifier before one of
    # '=', ';', '{', '[' or '('.  Template args may contain commas; strip
    # angle-bracket contents first to keep the walk simple.
    depth = 0
    flat = []
    for ch in rest:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            flat.append(ch)
    flat = "".join(flat)
    m = re.search(r"(\w+)\s*([(=;{\[])", flat)
    if not m:
        return True  # no declarator on this line (e.g. `static` + linebreak)
    return m.group(2) == "("


def scan_file(path, rel, text):
    raw_lines = text.splitlines()
    clean_lines = strip_comments_and_strings(text).splitlines()
    violations = []

    in_util = rel.replace(os.sep, "/").startswith("src/util/")
    is_rng_impl = re.match(r"src/util/rng\.(h|cpp)$", rel.replace(os.sep, "/"))
    in_src = rel.replace(os.sep, "/").startswith("src/")

    unordered_vars = set()
    for line in clean_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group(1))

    for idx, line in enumerate(clean_lines, start=1):
        # global-rng: everywhere except the seedable RNG's own implementation.
        if not is_rng_impl:
            m = GLOBAL_RNG_RE.search(line)
            if m:
                violations.append(Violation(
                    rel, idx, "global-rng",
                    f"forbidden nondeterministic source `{m.group(0).strip()}`"
                    " — route randomness through util/rng (yoso::Rng)"))

        # static-state: src/ outside util/ only.
        if in_src and not in_util:
            m = STATIC_DECL_RE.search(line)
            if m and not STATIC_EXEMPT_RE.search(line):
                if not is_function_decl(line, m.end()):
                    violations.append(Violation(
                        rel, idx, "static-state",
                        "mutable static/thread_local state — hidden state "
                        "breaks run-to-run reproducibility and races under "
                        "the parallel evaluator"))

        # unordered-iter: iteration over a container declared unordered here.
        mfor = RANGE_FOR_RE.search(line)
        if mfor:
            range_expr = mfor.group(1)
            idents = set(IDENT_RE.findall(range_expr))
            hit = idents & unordered_vars
            if hit:
                violations.append(Violation(
                    rel, idx, "unordered-iter",
                    f"range-for over unordered container `{sorted(hit)[0]}` "
                    "— iteration order is implementation-defined"))
        for var in unordered_vars:
            if re.search(rf"\b{re.escape(var)}\s*\.\s*(begin|cbegin)\s*\(",
                         line):
                violations.append(Violation(
                    rel, idx, "unordered-iter",
                    f"iterator walk over unordered container `{var}` — "
                    "iteration order is implementation-defined"))

        # naked-new / naked-delete.
        if NAKED_NEW_RE.search(line):
            violations.append(Violation(
                rel, idx, "naked-new",
                "raw `new` — use std::make_unique/make_shared or a container"))
        if NAKED_DELETE_RE.search(line) and not re.search(
                r"=\s*delete|delete\s*;", line):
            violations.append(Violation(
                rel, idx, "naked-new",
                "raw `delete` — ownership belongs in a smart pointer"))

    # Apply escape hatch.
    allows = collect_allows(raw_lines)
    kept, used_allows = [], 0
    for v in violations:
        if v.rule in allows.get(v.line, set()):
            used_allows += 1
        else:
            kept.append(v)
    return kept, used_allows


def iter_cpp_files(root, dirs=SCAN_DIRS):
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [x for x in dirnames if not x.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def check_headers(root, cxx):
    """Compiles every header under src/ standalone (first include of an empty
    TU); a header that relies on its includer's includes fails here."""
    violations = []
    headers = [p for p in iter_cpp_files(root, dirs=("src",))
               if p.endswith((".h", ".hpp"))]
    for path in headers:
        rel = os.path.relpath(path, root)
        include = os.path.relpath(path, os.path.join(root, "src"))
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cpp", delete=False) as tu:
            tu.write(f'#include "{include}"\n')
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [cxx, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(root, "src"), tu_path],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                violations.append(Violation(
                    rel, 1, "header-self-contained",
                    f"header does not compile standalone: {detail}"))
        finally:
            os.unlink(tu_path)
    return violations


def run_tree(root, check_hdrs, cxx, max_allows):
    violations, total_allows = [], 0
    for path in iter_cpp_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        found, used = scan_file(path, rel, text)
        violations.extend(found)
        total_allows += used
    if check_hdrs:
        violations.extend(check_headers(root, cxx))

    for v in violations:
        print(v)
    print(f"yoso-lint: {len(violations)} violation(s), "
          f"{total_allows} allow(s) used (budget {max_allows})")
    if total_allows > max_allows:
        print(f"yoso-lint: allow budget exceeded ({total_allows} > "
              f"{max_allows}); remove suppressions or fix the code")
        return 1
    return 1 if violations else 0


def run_self_test(script_dir):
    fixtures = os.path.join(script_dir, "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"yoso-lint --self-test: fixture dir missing: {fixtures}")
        return 1
    failures = 0
    for name in sorted(os.listdir(fixtures)):
        if not name.endswith(CPP_EXTENSIONS):
            continue
        path = os.path.join(fixtures, name)
        # Fixtures mimic tree layout via their name: src__core__x.cpp maps to
        # src/core/x.cpp so path-scoped rules (static-state) apply.
        rel = name.replace("__", "/")
        with open(path, encoding="utf-8") as f:
            text = f.read()
        expected = set()
        for idx, line in enumerate(text.splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                expected.add((idx, m.group(1)))
        found_list, _ = scan_file(path, rel, text)
        found = {(v.line, v.rule) for v in found_list}
        missed = expected - found
        spurious = found - expected
        for line, rule in sorted(missed):
            print(f"SELF-TEST FAIL {name}:{line}: seeded [{rule}] "
                  "not detected")
            failures += 1
        for line, rule in sorted(spurious):
            print(f"SELF-TEST FAIL {name}:{line}: spurious [{rule}]")
            failures += 1
        status = "ok" if not (missed or spurious) else "FAIL"
        print(f"self-test {name}: {len(expected)} seeded, "
              f"{len(found & expected)} detected — {status}")
    print(f"yoso-lint --self-test: {failures} failure(s)")
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every src/ header standalone")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                        help="compiler for --check-headers")
    parser.add_argument("--max-allows", type=int, default=5,
                        help="budget of yoso-lint: allow() suppressions")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against tools/lint_fixtures/")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return run_self_test(script_dir)
    return run_tree(os.path.abspath(args.root), args.check_headers, args.cxx,
                    args.max_allows)


if __name__ == "__main__":
    sys.exit(main())
