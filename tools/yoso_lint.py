#!/usr/bin/env python3
"""yoso-lint v3: determinism, thread-safety and architecture checker.

Machine-enforces the rules DESIGN.md states in prose (§9 threading model,
§10/§11 correctness tooling).  The search loop is multithreaded and results
must be bit-identical at any thread count, so the classic sources of silent
nondeterminism are banned outright:

  global-rng        std::rand / srand / random_device / time()-seeded RNG
                    anywhere outside src/util/rng.* — every draw must go
                    through the seedable yoso::Rng.
  static-state      mutable function-local or global `static` data in src/
                    outside the two bottom infrastructure layers (src/util/,
                    src/obs/ — the RNG and the process-wide metrics/trace
                    registries are singletons by design) — hidden state
                    breaks reproducibility and is a data race under the
                    parallel evaluator.
  unordered-iter    iteration over std::unordered_map / std::unordered_set —
                    iteration order is implementation-defined, so anything it
                    feeds (rewards, finalist pools, reports) varies run to
                    run.  Use std::map or sort the keys first.
  naked-new         raw `new` / `delete` — ownership must be expressed with
                    containers or smart pointers (make_unique/make_shared).
  parallel-purity   writes to namespace-scope mutable state reachable from a
                    parallel_for body (directly or through the call graph) —
                    a data race and a determinism leak at once.
  header-self-contained (with --check-headers)
                    every header under src/ must compile standalone, so any
                    TU can include it first without hidden include-order
                    dependencies.

v3 adds three architecture rule families on top (DESIGN.md §14,
docs/STATIC_ANALYSIS.md):

  layer-dag         the module layering is a committed, machine-readable DAG
                    (tools/yoso_layers.json: base → obs → util →
                    {linalg, arch} → {accel, nn, surrogate, rl} →
                    predictor → core).  Every cross-module `#include` in
                    src/ must be a declared edge — an upward or lateral
                    include (say util/ → core/) is a violation, the declared
                    DAG is cycle-checked, a declared-but-never-included
                    dependency is flagged as drift, and each
                    src/<mod>/CMakeLists.txt target_link_libraries set must
                    agree with the JSON exactly.
  include-hygiene   IWYU-lite over the project include graph: (a) a direct
                    include none of whose exported symbols the file uses is
                    dead weight [AST tiers]; (b) a file that uses a symbol
                    owned by a header it only reaches transitively must
                    include that header directly [AST tiers]; (c) a TU that
                    includes its paired header must include it FIRST, which
                    machine-proves the header self-contained on every build;
                    (d) duplicate includes.
  contract-coverage public entry points (named, non-static functions and
                    methods outside detail/anonymous namespaces in src/)
                    whose raw pointer or integral size/index parameters
                    reach array indexing or a resize/reserve without a
                    YOSO_REQUIRE / YOSO_CHECK / YOSO_DCHECK guard naming the
                    parameter.  The regex tier sees single-line definitions
                    only; the AST tiers analyse whole function bodies.

v2 replaced the v1 regex-only scanner with tiered engines:

  regex     the v1 line scanner.  Fast, zero dependencies, blind through
            typedefs, `auto`, templates and call graphs.  Kept as the
            fallback of last resort so CI without clang still gates.
  semantic  pure-Python AST-grade analysis: resolves typedef/using aliases
            and function return types, tracks scopes with a brace
            classifier, builds a per-file call graph, and walks it from
            parallel_for bodies for the purity rule.  No dependencies, so
            this is the default everywhere.
  clang     libclang (clang.cindex) over the CMake-exported
            compile_commands.json: canonical-type resolution, so aliases,
            `auto` and template instantiations are seen exactly as the
            compiler sees them.  Selected automatically when libclang is
            importable and a compile database is present.

`--engine auto` (the default) picks clang > semantic.  `--engine regex`
exists for comparison and for the self-test, which uses it to prove the
fixtures under tools/lint_fixtures/ that regex *cannot* catch
(`expect-lint[ast]: ...`) stay caught by the AST-grade engines.

Escape hatch: append `// yoso-lint: allow(<rule>)` to the offending line (or
the line directly above it) to suppress one rule there.  Allows are counted
and capped (--max-allows, default 3) so the hatch stays an exception, not a
policy.  The tree currently carries ZERO allows; keep it that way.

Exit status (scripts/check.sh and CI branch on the distinction):
  0  clean — no violations and the allow budget holds
  1  violations found (or allow budget exceeded)
  2  tool/configuration error — the lint could not run as asked: --engine
     clang without libclang, a missing/stale compile database under
     --require-fresh-db, or a broken tools/yoso_layers.json (unparseable,
     unknown module, or a cycle in the declared DAG).

`--json PATH` additionally writes a machine-readable report (engine,
violations, per-rule counts, allows, exit code); CI archives it.
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile

RULES = (
    "global-rng",
    "static-state",
    "unordered-iter",
    "naked-new",
    "parallel-purity",
    "header-self-contained",
    "layer-dag",
    "include-hygiene",
    "contract-coverage",
)

SCAN_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".h", ".hpp")

ALLOW_RE = re.compile(r"//\s*yoso-lint:\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect-lint(?:\[([a-z,]+)\])?:\s*([a-z-]+)")

UNORDERED_NAME_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def collect_allows(raw_lines):
    """Maps line number -> set of allowed rules.  An allow comment applies to
    its own line and, when it is the only thing on the line, to the next."""
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            rule = m.group(1)
            allows.setdefault(idx, set()).add(rule)
            if line.strip().startswith("//"):
                allows.setdefault(idx + 1, set()).add(rule)
    return allows


# ---------------------------------------------------------------------------
# Shared per-line rules (global-rng, static-state, naked-new) — identical in
# the regex and semantic engines; the clang engine re-derives them from the
# AST so typedef'd aliases cannot hide them either.
# ---------------------------------------------------------------------------

GLOBAL_RNG_RE = re.compile(
    r"(?:(?<![\w:])(?:std::)?s?rand\s*\(|\brandom_device\b"
    r"|(?<![\w:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)?\s*\))"
)

STATIC_DECL_RE = re.compile(r"^\s*(?:\[\[[^\]]*\]\]\s*)*(static|thread_local)\b")
STATIC_EXEMPT_RE = re.compile(
    r"\b(?:const\b|constexpr\b|consteval\b|constinit\b|static_assert|static_cast)"
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*[&*]?\s*(\w+)"
)
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;]*?(?<!:):(?!:)\s*(.+)\)\s*\{?\s*$")
IDENT_RE = re.compile(r"\b(\w+)\b")

NAKED_NEW_RE = re.compile(r"(?<![\w_])new\b(?!\s*\()")
NAKED_DELETE_RE = re.compile(r"(?<![\w_])delete\b(\s*\[\s*\])?\s")


def path_scopes(rel):
    # static-state exempts the two infrastructure layers at the bottom of
    # the DAG: util/ (the seedable RNG, pool internals) and obs/ (the
    # process-wide metrics/trace registries are singletons BY DESIGN —
    # DESIGN.md §13 — and their statics are atomics/mutex-guarded).
    # Everything above them stays banned from hidden static state.
    norm = rel.replace(os.sep, "/")
    return {
        "in_exempt_layer": norm.startswith(("src/util/", "src/obs/")),
        "is_rng_impl": bool(re.match(r"src/util/rng\.(h|cpp)$", norm)),
        "in_src": norm.startswith("src/"),
    }


def is_function_decl(line, m_end):
    """After `static <type...>`, decide whether the declared entity is a
    function (first declarator identifier followed by '(') or data."""
    rest = line[m_end:]
    # Walk identifiers; the declarator is the last identifier before one of
    # '=', ';', '{', '[' or '('.  Template args may contain commas; strip
    # angle-bracket contents first to keep the walk simple.
    depth = 0
    flat = []
    for ch in rest:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            flat.append(ch)
    flat = "".join(flat)
    m = re.search(r"(\w+)\s*([(=;{\[])", flat)
    if not m:
        return True  # no declarator on this line (e.g. `static` + linebreak)
    return m.group(2) == "("


def scan_lines_shared(rel, clean_lines, scopes):
    """global-rng / static-state / naked-new, line by line."""
    violations = []
    for idx, line in enumerate(clean_lines, start=1):
        # global-rng: everywhere except the seedable RNG's own implementation.
        if not scopes["is_rng_impl"]:
            m = GLOBAL_RNG_RE.search(line)
            if m:
                violations.append(Violation(
                    rel, idx, "global-rng",
                    f"forbidden nondeterministic source `{m.group(0).strip()}`"
                    " — route randomness through util/rng (yoso::Rng)"))

        # static-state: src/ outside util/ only.
        if scopes["in_src"] and not scopes["in_exempt_layer"]:
            m = STATIC_DECL_RE.search(line)
            if m and not STATIC_EXEMPT_RE.search(line):
                if not is_function_decl(line, m.end()):
                    violations.append(Violation(
                        rel, idx, "static-state",
                        "mutable static/thread_local state — hidden state "
                        "breaks run-to-run reproducibility and races under "
                        "the parallel evaluator"))

        # naked-new / naked-delete.
        if NAKED_NEW_RE.search(line):
            violations.append(Violation(
                rel, idx, "naked-new",
                "raw `new` — use std::make_unique/make_shared or a container"))
        if NAKED_DELETE_RE.search(line) and not re.search(
                r"=\s*delete|delete\s*;", line):
            violations.append(Violation(
                rel, idx, "naked-new",
                "raw `delete` — ownership belongs in a smart pointer"))
    return violations


def unordered_iter_violations(rel, clean_lines, unordered_vars,
                              unordered_fns=()):
    """Range-for / iterator-walk findings over a known set of container
    variable names (and optionally functions returning unordered)."""
    violations = []
    for idx, line in enumerate(clean_lines, start=1):
        mfor = RANGE_FOR_RE.search(line)
        if mfor:
            range_expr = mfor.group(1)
            idents = set(IDENT_RE.findall(range_expr))
            hit = idents & set(unordered_vars)
            if hit:
                violations.append(Violation(
                    rel, idx, "unordered-iter",
                    f"range-for over unordered container `{sorted(hit)[0]}` "
                    "— iteration order is implementation-defined"))
            else:
                called = {m.group(1) for m in
                          re.finditer(r"\b(\w+)\s*\(", range_expr)}
                fn_hit = called & set(unordered_fns)
                if fn_hit:
                    violations.append(Violation(
                        rel, idx, "unordered-iter",
                        f"range-for over `{sorted(fn_hit)[0]}()` which "
                        "returns an unordered container — iteration order is "
                        "implementation-defined"))
        for var in unordered_vars:
            if re.search(rf"\b{re.escape(var)}\s*\.\s*(begin|cbegin)\s*\(",
                         line):
                violations.append(Violation(
                    rel, idx, "unordered-iter",
                    f"iterator walk over unordered container `{var}` — "
                    "iteration order is implementation-defined"))
    return violations


# ---------------------------------------------------------------------------
# v3 architecture analysis: ProjectContext + layer-dag / include-hygiene /
# contract-coverage rule families.  The rules are engine-tiered: `tier` is
# "regex" (line-local subset) or "ast" (full include-graph / function-span
# analysis, shared by the semantic and clang engines; the clang engine
# additionally validates the compile database it was pointed at).
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)", re.MULTILINE)
TYPE_DECL_RE = re.compile(
    r"\b(?:class|struct|union|enum(?:\s+class|\s+struct)?)\s+([A-Za-z_]\w*)")
ENUM_BODY_RE = re.compile(
    r"\benum\s+(?:class\s+|struct\s+)?\w*\s*(?::[^{;]*)?\{([^}]*)\}")
FUNC_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
LINK_LIBS_RE = re.compile(
    r"target_link_libraries\s*\(\s*(\w+)\s+(?:PUBLIC|PRIVATE|INTERFACE)?"
    r"([^)]*)\)", re.S)

#: Integral parameter types the contract-coverage rule treats as potential
#: sizes/indices/dimensions when they reach a subscript or resize.
INT_PARAM_TYPES = frozenset((
    "size_t", "std::size_t", "int", "long", "unsigned", "unsigned int",
    "unsigned long", "long long", "unsigned long long", "short",
    "ptrdiff_t", "std::ptrdiff_t",
    "int32_t", "std::int32_t", "uint32_t", "std::uint32_t",
    "int64_t", "std::int64_t", "uint64_t", "std::uint64_t",
))

GUARD_MACROS = ("YOSO_REQUIRE", "YOSO_CHECK", "YOSO_DCHECK")


def extract_header_symbols(clean):
    """Returns (broad, confident) identifier sets exported by a header.

    `broad` over-collects (types, macros, aliases, enumerators, functions,
    namespace-scope variables) and drives the unused-include check — a
    direct include is dead only when NONE of these appear in the file, so
    over-collection only makes the check more conservative.  `confident`
    under-collects (types, macros, aliases, enumerators — names that are
    unmistakably owned by their declaring header) and drives the
    transitive-only check, where a wrong ownership claim would be a false
    positive."""
    broad, confident = set(), set()
    for m in DEFINE_RE.finditer(clean):
        broad.add(m.group(1))
        confident.add(m.group(1))
    for m in TYPE_DECL_RE.finditer(clean):
        broad.add(m.group(1))
        confident.add(m.group(1))
    for m in ALIAS_USING_RE.finditer(clean):
        broad.add(m.group(1))
        confident.add(m.group(1))
    for m in ALIAS_TYPEDEF_RE.finditer(clean):
        broad.add(m.group(2))
        confident.add(m.group(2))
    for m in ENUM_BODY_RE.finditer(clean):
        for piece in m.group(1).split(","):
            mm = re.match(r"\s*([A-Za-z_]\w*)", piece)
            if mm:
                broad.add(mm.group(1))
                confident.add(mm.group(1))
    # Function/method names: collected from the DECLARATION skeleton (inline
    # bodies blanked out), otherwise every call inside an inline body would
    # count as an exported symbol and the unused-include check would never
    # fire.
    skeleton = _blank_function_bodies(clean)
    for m in FUNC_NAME_RE.finditer(skeleton):
        if m.group(1) not in CALL_KEYWORDS:
            broad.add(m.group(1))
    for line in skeleton.splitlines():
        m = NS_VAR_DECL_RE.match(line)
        if m:
            broad.add(m.group(1))
    return broad, confident


def _blank_function_bodies(clean):
    """Replaces the contents of every function-like body with spaces,
    preserving offsets/line structure."""
    _, spans = SemanticEngine._classify_braces(clean)
    out = list(clean)
    for _, start, end in spans:
        for i in range(start + 1, min(end, len(out))):
            if out[i] != "\n":
                out[i] = " "
    return "".join(out)


def file_module(rel):
    """src/<mod>/... -> <mod>, else None (tests/bench/examples/tools)."""
    parts = rel.replace(os.sep, "/").split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


class ProjectContext:
    """Whole-tree state shared by the v3 rules: the declared layer DAG, the
    project include graph, and per-header exported-symbol indexes.  Built
    once per run; per-file scans and fixtures both consult it."""

    def __init__(self, root):
        self.root = root
        self.src = os.path.join(root, "src")
        self.layers_path = os.path.join(root, "tools", "yoso_layers.json")
        self.layers = None          # {module: set(direct deps)}
        self.config_errors = []     # fatal tool-level problems (exit 2)
        self.header_clean = {}      # "mod/f.h" -> comment-stripped text
        self.header_includes = {}   # "mod/f.h" -> [(path, line)]
        self.header_broad = {}      # "mod/f.h" -> broad symbol set
        self.header_confident = {}  # "mod/f.h" -> confident symbol set
        self.owner = {}             # symbol -> unique owning header key
        self._closure = {}
        self._load_layers()
        self._index_headers()

    # -- layers DAG ---------------------------------------------------------

    def _load_layers(self):
        if not os.path.isfile(self.layers_path):
            self.config_errors.append(
                f"{os.path.relpath(self.layers_path, self.root)} is missing "
                "— the layer DAG is committed infrastructure; restore it")
            return
        try:
            with open(self.layers_path, encoding="utf-8") as f:
                data = json.load(f)
            modules = data["modules"]
            layers = {mod: set(spec["deps"]) for mod, spec in modules.items()}
        except (json.JSONDecodeError, KeyError, TypeError) as e:
            self.config_errors.append(
                f"tools/yoso_layers.json is unparseable: {e}")
            return
        for mod, deps in layers.items():
            for dep in deps:
                if dep not in layers:
                    self.config_errors.append(
                        f"tools/yoso_layers.json: module `{mod}` depends on "
                        f"undeclared module `{dep}`")
        cycle = self._find_cycle(layers)
        if cycle:
            self.config_errors.append(
                "tools/yoso_layers.json: dependency cycle "
                + " -> ".join(cycle))
        if not self.config_errors:
            self.layers = layers

    @staticmethod
    def _find_cycle(graph):
        WHITE, GREY, BLACK = 0, 1, 2
        color = {n: WHITE for n in graph}
        trail = []

        def dfs(n):
            color[n] = GREY
            trail.append(n)
            for dep in sorted(graph.get(n, ())):
                if dep not in color:
                    continue
                if color[dep] == GREY:
                    return trail[trail.index(dep):] + [dep]
                if color[dep] == WHITE:
                    found = dfs(dep)
                    if found:
                        return found
            trail.pop()
            color[n] = BLACK
            return None

        for n in sorted(graph):
            if color[n] == WHITE:
                found = dfs(n)
                if found:
                    return found
        return None

    # -- header index -------------------------------------------------------

    def _index_headers(self):
        if not os.path.isdir(self.src):
            return
        for dirpath, dirnames, filenames in os.walk(self.src):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if not name.endswith((".h", ".hpp")):
                    continue
                path = os.path.join(dirpath, name)
                key = os.path.relpath(path, self.src).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    raw = f.read()
                clean = strip_comments_and_strings(raw)
                self.header_clean[key] = clean
                self.header_includes[key] = self.parse_includes(
                    raw.splitlines(), clean.splitlines())
                broad, confident = extract_header_symbols(clean)
                self.header_broad[key] = broad
                self.header_confident[key] = confident
        # Unique-ownership map over the confident sets.
        counts = {}
        for key, syms in self.header_confident.items():
            for s in syms:
                counts.setdefault(s, []).append(key)
        self.owner = {s: keys[0] for s, keys in counts.items()
                      if len(keys) == 1}

    def closure_of(self, header_key):
        """Transitive project includes reachable from a header (inclusive)."""
        if header_key in self._closure:
            return self._closure[header_key]
        seen = set()
        stack = [header_key]
        while stack:
            k = stack.pop()
            if k in seen or k not in self.header_clean:
                continue
            seen.add(k)
            stack.extend(inc for inc, _ in self.header_includes.get(k, ()))
        self._closure[header_key] = seen
        return seen

    def parse_includes(self, raw_lines, clean_lines):
        """[(header_key, line)] of a file's direct project includes.
        Include paths are string literals, which the comment/string stripper
        blanks, so the PATH comes from the raw line; the comment-stripped
        line gates out commented-out directives."""
        out = []
        for idx, (raw, clean) in enumerate(zip(raw_lines, clean_lines),
                                           start=1):
            m = INCLUDE_RE.match(raw)
            if not m or not INCLUDE_RE.match(clean):
                continue
            inc = m.group(1)
            if inc in self.header_clean or \
                    os.path.isfile(os.path.join(self.src, inc)):
                out.append((inc, idx))
        return out


# -- rule: layer-dag --------------------------------------------------------

def layer_dag_violations(rel, raw_lines, clean_lines, ctx):
    """Per-file half of layer-dag: every cross-module include must be a
    declared edge of tools/yoso_layers.json."""
    if ctx is None or ctx.layers is None:
        return []
    mod = file_module(rel)
    if mod is None or mod not in ctx.layers:
        return []
    deps = ctx.layers[mod]
    violations = []
    for inc, idx in ctx.parse_includes(raw_lines, clean_lines):
        inc_mod = inc.split("/")[0]
        if inc_mod == mod or inc_mod not in ctx.layers:
            continue
        if inc_mod not in deps:
            violations.append(Violation(
                rel, idx, "layer-dag",
                f"`{mod}` may not include `{inc_mod}` — not a declared "
                "dependency in tools/yoso_layers.json (no upward or lateral "
                "includes)"))
    return violations


def layer_dag_tree_violations(root, ctx, observed_includes):
    """Tree-level half of layer-dag: declared-but-unused edges, include
    cycles among headers, and CMake link-dependency agreement.
    `observed_includes` maps module -> set of modules it actually includes,
    accumulated by the driver while scanning src/."""
    if ctx is None or ctx.layers is None:
        return []
    violations = []
    rel_json = "tools/yoso_layers.json"

    # Declared dependencies that no include uses are drift: the JSON must
    # describe the tree as it is, not as it once was.
    for mod in sorted(ctx.layers):
        observed = observed_includes.get(mod, set())
        for dep in sorted(ctx.layers[mod] - observed):
            violations.append(Violation(
                rel_json, 1, "layer-dag",
                f"declared dependency `{mod}` -> `{dep}` is never used by "
                "any include — remove it (or the code that should use it)"))

    # Include cycles among src/ headers (the file-level graph, finer than
    # the module DAG).
    state = {}

    def dfs(key, trail):
        state[key] = 1
        trail.append(key)
        for inc, _ in ctx.header_includes.get(key, ()):
            if inc not in ctx.header_clean:
                continue
            if state.get(inc) == 1:
                return trail[trail.index(inc):] + [inc]
            if state.get(inc, 0) == 0:
                found = dfs(inc, trail)
                if found:
                    return found
        trail.pop()
        state[key] = 2
        return None

    for key in sorted(ctx.header_clean):
        if state.get(key, 0) == 0:
            cycle = dfs(key, [])
            if cycle:
                violations.append(Violation(
                    "src/" + cycle[0], 1, "layer-dag",
                    "header include cycle: " + " -> ".join(cycle)))
                break

    # CMake agreement: each src/<mod>/CMakeLists.txt must link exactly
    # yoso_<dep> for the declared deps (Threads:: etc. are ignored).
    for mod in sorted(ctx.layers):
        cmk = os.path.join(root, "src", mod, "CMakeLists.txt")
        if not os.path.isfile(cmk):
            violations.append(Violation(
                f"src/{mod}/CMakeLists.txt", 1, "layer-dag",
                f"module `{mod}` declared in {rel_json} has no "
                "CMakeLists.txt"))
            continue
        with open(cmk, encoding="utf-8") as f:
            text = f.read()
        linked = set()
        for m in LINK_LIBS_RE.finditer(text):
            if m.group(1) != f"yoso_{mod}":
                continue
            linked.update(re.findall(r"\byoso_(\w+)", m.group(2)))
        declared = ctx.layers[mod]
        for extra in sorted(linked - declared):
            violations.append(Violation(
                f"src/{mod}/CMakeLists.txt", 1, "layer-dag",
                f"links yoso_{extra} but `{extra}` is not a declared "
                f"dependency of `{mod}` in {rel_json}"))
        for missing in sorted(declared - linked):
            violations.append(Violation(
                f"src/{mod}/CMakeLists.txt", 1, "layer-dag",
                f"declared dependency `{mod}` -> `{missing}` is not linked "
                f"(add yoso_{missing} to target_link_libraries)"))
    return violations


# -- rule: include-hygiene --------------------------------------------------

def paired_header(rel):
    """src/<mod>/<name>.cpp -> "<mod>/<name>.h" (the include key)."""
    norm = rel.replace(os.sep, "/")
    if not norm.endswith(".cpp"):
        return None
    parts = norm.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return "/".join(parts[1:])[:-4] + ".h"
    return None


def include_hygiene_violations(rel, raw_lines, clean, clean_lines, ctx,
                               tier):
    if ctx is None:
        return []
    violations = []
    includes = ctx.parse_includes(raw_lines, clean_lines)
    pair = paired_header(rel)

    # (c) paired header first — any tier.  A TU that includes its own header
    # behind other includes hides missing includes in that header.
    pair_entries = [e for e in includes if e[0] == pair]
    if pair_entries and includes and includes[0][0] != pair:
        violations.append(Violation(
            rel, pair_entries[0][1], "include-hygiene",
            f'paired header "{pair}" must be the first include — including '
            "it first proves it self-contained on every build"))

    # (d) duplicate includes — any tier.
    seen = {}
    for inc, idx in includes:
        if inc in seen:
            violations.append(Violation(
                rel, idx, "include-hygiene",
                f'duplicate include "{inc}" (first at line {seen[inc]})'))
        else:
            seen[inc] = idx

    if tier != "ast":
        return violations

    # Token set of the file minus its include lines.
    body_lines = [("" if INCLUDE_RE.match(raw) else clean_line)
                  for raw, clean_line in zip(raw_lines, clean_lines)]
    body_tokens = set(IDENT_RE.findall("\n".join(body_lines)))

    own_key = None
    norm = rel.replace(os.sep, "/")
    if norm.startswith("src/") and norm.endswith((".h", ".hpp")):
        own_key = norm[len("src/"):]

    # (a) unused direct includes.
    for inc, idx in includes:
        if inc == pair or inc == own_key:
            continue
        syms = ctx.header_broad.get(inc)
        if not syms:
            continue  # unindexed or symbol-free header: cannot judge
        if syms & body_tokens:
            continue
        violations.append(Violation(
            rel, idx, "include-hygiene",
            f'unused include "{inc}" — no symbol it exports is referenced '
            "here"))

    # (b) transitive-only dependencies that must become direct.
    direct = {inc for inc, _ in includes}
    reachable = set()
    for inc in direct:
        reachable |= ctx.closure_of(inc)
    own_syms, _ = extract_header_symbols(clean)
    direct_syms = set()
    for inc in direct:
        direct_syms |= ctx.header_broad.get(inc, set())
    flagged = set()
    for tok in sorted(body_tokens):
        h = ctx.owner.get(tok)
        if h is None or h in direct or h == own_key or h == pair:
            continue
        if h not in reachable or h in flagged:
            continue
        if tok in direct_syms or tok in own_syms:
            continue  # some direct include (or the file itself) declares it
        flagged.add(h)
        line = next((i for i, ln in enumerate(clean_lines, start=1)
                     if re.search(rf"\b{re.escape(tok)}\b", ln)
                     and not INCLUDE_RE.match(ln)), 1)
        violations.append(Violation(
            rel, line, "include-hygiene",
            f"`{tok}` is owned by \"{h}\" which is only included "
            "transitively — include it directly"))
    return violations


# -- rule: contract-coverage ------------------------------------------------

def _split_params(param_text):
    """Splits a parameter list at top-level commas, honouring (), [] and {}
    nesting (angle brackets were stripped by the caller)."""
    parts, depth, cur = [], 0, []
    for ch in param_text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


def _classify_param(piece):
    """Returns (kind, name) for one parameter: kind is "pointer",
    "integral" or None."""
    if "(" in piece or "[" in piece or "..." in piece:
        return None, None  # function pointers / lambdas / packs: skip
    piece = piece.split("=")[0].strip()  # drop default argument
    m = re.match(r"^(.*?)([A-Za-z_]\w*)$", piece)
    if not m:
        return None, None
    type_part, name = m.group(1).strip(), m.group(2)
    if not type_part:
        return None, None  # unnamed or type-only parameter
    if "*" in type_part:
        return "pointer", name
    base = re.sub(r"\b(?:const|volatile)\b", "", type_part)
    base = base.replace("&", " ").strip()
    base = re.sub(r"\s+", " ", base)
    if base in INT_PARAM_TYPES:
        return "integral", name
    return None, None


def _risky_use(body, kind, name):
    """Offset of the first use of the parameter that indexes/sizes memory,
    or None."""
    pats = []
    esc = re.escape(name)
    # `new T[n]` is an allocation sized by the parameter, not an access
    # into existing storage — outside this rule's charter.
    body = re.sub(r"\bnew\b[^;({\[]*\[[^\][]*\]", lambda m: " " * len(m.group(0)), body)
    if kind == "integral":
        pats.append(rf"\[[^\][]*\b{esc}\b[^\][]*\]")
        pats.append(rf"\.\s*(?:resize|reserve)\s*\([^()]*\b{esc}\b")
    else:  # pointer
        pats.append(rf"\b{esc}\s*\[")
        pats.append(rf"(?<![\w)\]])\*\s*{esc}\b")
    best = None
    for pat in pats:
        m = re.search(pat, body)
        if m and (best is None or m.start() < best):
            best = m.start()
    return best


def _guarded(body, name, kind="index"):
    esc = re.escape(name)
    if re.search(rf"(?:{'|'.join(GUARD_MACROS)})\s*\([^;]*\b{esc}\b", body):
        return True
    if kind == "pointer":
        # The optional-out-parameter idiom: a pointer the function
        # explicitly compares against nullptr is handled, not assumed —
        # the nullability test IS its contract.  Index parameters get no
        # such escape; a bare `if (i < n)` is a silent wrong-answer path,
        # not a contract.
        return bool(
            re.search(rf"\b{esc}\s*[!=]=\s*nullptr\b", body) or
            re.search(rf"\bnullptr\s*[!=]=\s*{esc}\b", body))
    return False


def _shadowed(body, name):
    esc = re.escape(name)
    return re.search(
        rf"\b(?:auto|size_t|int|long|unsigned|std::size_t)\s*[&*]?\s*"
        rf"{esc}\b\s*[=;:)]", body)


def _ns_spans(clean, names=("detail",), anonymous=True):
    """Character spans of `namespace detail { ... }` / anonymous-namespace
    bodies (entry points never live there)."""
    spans = []
    for m in re.finditer(r"\bnamespace\s+(\w*)\s*\{", clean):
        nm = m.group(1)
        if (nm in names) or (anonymous and nm == ""):
            open_pos = m.end() - 1
            close = SemanticEngine._match_close(clean, open_pos)
            spans.append((open_pos, close))
    for m in re.finditer(r"\bnamespace\s*\{", clean):
        open_pos = m.end() - 1
        close = SemanticEngine._match_close(clean, open_pos)
        if anonymous:
            spans.append((open_pos, close))
    return spans


def contract_coverage_violations(rel, clean, ctx, tier):
    norm = rel.replace(os.sep, "/")
    if not norm.startswith("src/"):
        return []
    if tier != "ast":
        return _contract_coverage_regex(rel, clean)

    hidden = _ns_spans(clean)
    _, function_spans = SemanticEngine._classify_braces(clean)
    violations = []
    reported = set()
    for fn_name, bstart, bend in function_spans:
        if fn_name == "main" or any(a <= bstart < b for a, b in hidden):
            continue
        sig = _signature_before(clean, bstart)
        if sig is None:
            continue
        name, params, preamble = sig
        if name == "main":
            continue
        if re.search(r"\bstatic\b", preamble):
            continue  # file-local helper, not a public entry point
        body = clean[bstart:bend]
        for piece in params:
            kind, pname = _classify_param(piece)
            if kind is None:
                continue
            off = _risky_use(body, kind, pname)
            if off is None:
                continue
            if _guarded(body, pname, kind) or _shadowed(body, pname):
                continue
            line = SemanticEngine._line_of(clean, bstart + off)
            key = (line, pname)
            if key in reported:
                continue
            reported.add(key)
            what = ("raw pointer" if kind == "pointer"
                    else "size/index parameter")
            violations.append(Violation(
                rel, line, "contract-coverage",
                f"public entry point `{name}` lets {what} `{pname}` reach "
                "indexing/resize with no YOSO_REQUIRE/YOSO_CHECK/YOSO_DCHECK "
                "guard naming it"))
    return violations


def _signature_before(clean, brace_pos):
    """Parses the function signature whose body opens at `brace_pos`.
    Returns (name, [param pieces], preamble) or None.  Works on the
    angle-stripped preamble so template arguments cannot confuse the
    parameter-list match; lambdas (introducer `]` before the parameter
    list) and control statements yield None."""
    boundary = max(clean.rfind(";", 0, brace_pos),
                   clean.rfind("{", 0, brace_pos),
                   clean.rfind("}", 0, brace_pos))
    preamble = clean[boundary + 1:brace_pos]
    flat = preamble
    for _ in range(4):
        new = re.sub(r"<[^<>]*>", "", flat)
        if new == flat:
            break
        flat = new
    first = None
    for m in re.finditer(r"(~?[A-Za-z_]\w*)\s*\(", flat):
        if m.group(1) in CALL_KEYWORDS or m.group(1) in GUARD_MACROS:
            continue
        before = flat[:m.start()].rstrip()
        if before.endswith("]"):
            continue  # lambda introducer
        first = m
        break
    if first is None:
        return None
    open_pos = flat.index("(", first.end() - 1)
    depth, close_pos = 0, None
    for i in range(open_pos, len(flat)):
        if flat[i] == "(":
            depth += 1
        elif flat[i] == ")":
            depth -= 1
            if depth == 0:
                close_pos = i
                break
    if close_pos is None:
        return None
    params = _split_params(flat[open_pos + 1:close_pos])
    return first.group(1).lstrip("~"), params, flat[:first.start()]


ONE_LINE_DEF_RE = re.compile(
    r"\(([^()]*)\)\s*(?:const\s*)?(?:noexcept\s*)?\{(.*)\}")


def _contract_coverage_regex(rel, clean):
    """Regex tier: single-line definitions only — `T f(size_t i) { v[i] }`
    with no guard on the line.  Multi-line bodies need the AST tiers."""
    violations = []
    for idx, line in enumerate(clean.splitlines(), start=1):
        if any(g in line for g in GUARD_MACROS):
            continue
        m = ONE_LINE_DEF_RE.search(line)
        if not m:
            continue
        head = line[:m.start()].rstrip()
        if head.endswith("]") or re.search(r"\bstatic\b", head):
            continue
        params, body = m.group(1), m.group(2)
        for piece in _split_params(params):
            kind, pname = _classify_param(piece)
            if kind is None:
                continue
            if _risky_use(body, kind, pname) is not None:
                what = ("raw pointer" if kind == "pointer"
                        else "size/index parameter")
                violations.append(Violation(
                    rel, idx, "contract-coverage",
                    f"single-line definition lets {what} `{pname}` reach "
                    "indexing with no contract guard"))
    return violations


# ---------------------------------------------------------------------------
# Engine: regex (the v1 scanner + regex tiers of the v3 rules)
# ---------------------------------------------------------------------------

class RegexEngine:
    name = "regex"
    tier = "regex"

    def scan_file(self, rel, text, ctx=None):
        clean = strip_comments_and_strings(text)
        clean_lines = clean.splitlines()
        scopes = path_scopes(rel)
        unordered_vars = set()
        for line in clean_lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered_vars.add(m.group(1))
        violations = scan_lines_shared(rel, clean_lines, scopes)
        violations.extend(
            unordered_iter_violations(rel, clean_lines, unordered_vars))
        violations.extend(scan_architecture(rel, text, clean, clean_lines,
                                            ctx, self.tier))
        return violations


def scan_architecture(rel, text, clean, clean_lines, ctx, tier):
    """The v3 per-file rules, shared by every engine at its tier."""
    raw_lines = text.splitlines()
    violations = []
    violations.extend(layer_dag_violations(rel, raw_lines, clean_lines, ctx))
    violations.extend(include_hygiene_violations(
        rel, raw_lines, clean, clean_lines, ctx, tier))
    violations.extend(contract_coverage_violations(rel, clean, ctx, tier))
    return violations


# ---------------------------------------------------------------------------
# Engine: semantic (pure-Python AST-grade analysis)
# ---------------------------------------------------------------------------

ALIAS_USING_RE = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
ALIAS_TYPEDEF_RE = re.compile(r"\btypedef\s+([^;]+?)\s+(\w+)\s*;")

WRITE_RE = re.compile(
    r"\b(\w+)\s*(?:\+\+|--|(?<![=!<>+\-*/%&|^])=(?!=)"
    r"|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=)"
    r"|(?:\+\+|--)\s*(\w+)")

CALL_RE = re.compile(r"\b(\w+)\s*\(")
CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "assert", "defined", "static_cast", "const_cast",
    "reinterpret_cast", "dynamic_cast", "noexcept",
))

NS_VAR_DECL_RE = re.compile(
    r"^\s*(?:inline\s+|static\s+|thread_local\s+)*"
    r"(?!const\b|constexpr\b|constinit\b|using\b|typedef\b|namespace\b"
    r"|class\b|struct\b|enum\b|union\b|template\b|extern\b|friend\b"
    r"|return\b|static_assert\b)"
    r"[A-Za-z_][\w:<>,\s*&]*?[\s*&](\w+)\s*(?:=[^;]*|\{[^;()]*\})?;\s*$")


class _Scope:
    __slots__ = ("kind", "name", "start")

    def __init__(self, kind, name, start):
        self.kind = kind    # namespace | class | function | block
        self.name = name
        self.start = start  # offset of the opening brace


class SemanticEngine:
    """AST-grade analysis without libclang: a brace/scope classifier plus
    alias and return-type resolution and a per-file call graph.  Sees through
    `typedef`/`using`, `auto`, and templates where the regex engine is blind;
    powers the parallel-purity rule."""

    name = "semantic"
    tier = "ast"

    # -- alias resolution ---------------------------------------------------

    @staticmethod
    def _collect_aliases(clean):
        aliases = {}
        for m in ALIAS_USING_RE.finditer(clean):
            aliases[m.group(1)] = m.group(2)
        for m in ALIAS_TYPEDEF_RE.finditer(clean):
            aliases[m.group(2)] = m.group(1)
        # Resolve transitively (aliases of aliases), bounded to avoid cycles.
        for _ in range(4):
            changed = False
            for name, rhs in list(aliases.items()):
                def sub(mm):
                    return aliases[mm.group(0)]
                new = re.sub(
                    r"\b(" + "|".join(map(re.escape, aliases)) + r")\b",
                    sub, rhs) if aliases else rhs
                if new != rhs and name not in IDENT_RE.findall(new):
                    aliases[name] = new
                    changed = True
            if not changed:
                break
        return aliases

    @staticmethod
    def _unordered_aliases(aliases):
        return {name for name, rhs in aliases.items()
                if UNORDERED_NAME_RE.search(rhs)}

    # -- scope classification ----------------------------------------------

    @staticmethod
    def _classify_braces(clean):
        """Returns (scopes_at, function_spans): for every opening-brace
        offset its scope kind, and [(name, start, end)] for function-like
        bodies.  Classification looks at the preamble between the previous
        ';' / '{' / '}' and the brace."""
        stack = []
        scopes_at = {}
        function_spans = []
        boundary = 0
        i, n = 0, len(clean)
        while i < n:
            c = clean[i]
            if c in ";":
                boundary = i + 1
            elif c == "{":
                preamble = clean[boundary:i]
                kind, name = SemanticEngine._classify_preamble(preamble)
                # A brace directly inside a class with no '(' is usually a
                # member initializer — treat as block; close enough.
                scopes_at[i] = kind
                stack.append(_Scope(kind, name, i))
                boundary = i + 1
            elif c == "}":
                if stack:
                    scope = stack.pop()
                    if scope.kind == "function" and scope.name:
                        function_spans.append((scope.name, scope.start, i))
                boundary = i + 1
            i += 1
        return scopes_at, function_spans

    @staticmethod
    def _classify_preamble(preamble):
        p = preamble.strip()
        if re.search(r"\bnamespace\b", p):
            return "namespace", None
        if re.search(r'\bextern\s*$', p):
            return "namespace", None
        m_class = re.match(r"^(?:template\s*<[^{]*>\s*)?"
                           r"(?:class|struct|union|enum)\b", p)
        if m_class:
            return "class", None
        if "=" in p.split("(")[0] and "(" not in p:
            return "block", None  # brace initializer
        # Function-ish: has a parameter list; name is the identifier before
        # the last top-level '('.
        if "(" in p:
            flat = re.sub(r"<[^<>]*>", "", p)
            m = None
            for m in re.finditer(r"(~?\w+)\s*\(", flat):
                pass
            if m and m.group(1) not in ("if", "for", "while", "switch",
                                        "catch"):
                name = m.group(1).lstrip("~")
                return "function", name
            return "block", None
        return "block", None

    @staticmethod
    def _scope_kind_stack(clean, offset, scopes_at):
        """Kinds of all scopes enclosing `offset`."""
        kinds = []
        depth_stack = []
        for i in range(offset):
            c = clean[i]
            if c == "{":
                depth_stack.append(scopes_at.get(i, "block"))
            elif c == "}":
                if depth_stack:
                    depth_stack.pop()
        return depth_stack or kinds

    # -- main scan ----------------------------------------------------------

    def scan_file(self, rel, text, ctx=None):
        clean = strip_comments_and_strings(text)
        clean_lines = clean.splitlines()
        scopes = path_scopes(rel)

        violations = scan_lines_shared(rel, clean_lines, scopes)
        violations.extend(scan_architecture(rel, text, clean, clean_lines,
                                            ctx, self.tier))

        aliases = self._collect_aliases(clean)
        unordered_alias_names = self._unordered_aliases(aliases)

        # Unordered variables: direct declarations (v1) + alias-typed
        # declarations + `auto` bound to a known unordered variable.
        unordered_vars = set()
        for line in clean_lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered_vars.add(m.group(1))
        for alias in unordered_alias_names:
            for m in re.finditer(
                    rf"\b{re.escape(alias)}\b\s*[&*]?\s*(\w+)\s*[;,)({{=]",
                    clean):
                unordered_vars.add(m.group(1))
        for m in re.finditer(r"\bauto\s*[&*]?\s*(\w+)\s*=\s*([^;]+);", clean):
            rhs_idents = set(IDENT_RE.findall(m.group(2)))
            if rhs_idents & unordered_vars and not re.search(
                    r"\.\s*(find|count|at|size|contains|emplace|insert|"
                    r"erase)\b", m.group(2)):
                unordered_vars.add(m.group(1))

        # Functions returning unordered containers: `Ret name(...) {` where
        # Ret resolves (through aliases) to an unordered container.
        unordered_fns = set()
        for m in re.finditer(
                r"^[ \t]*((?:[\w:]+\s*(?:<[^;{}()]*>)?[\s&*]+))(\w+)"
                r"\s*\([^;{}]*\)\s*(?:const\s*)?\{",
                clean, re.MULTILINE):
            ret = m.group(1)
            ret_resolved = ret
            for alias in unordered_alias_names:
                if re.search(rf"\b{re.escape(alias)}\b", ret):
                    ret_resolved = aliases[alias]
            if UNORDERED_NAME_RE.search(ret_resolved):
                unordered_fns.add(m.group(2))

        violations.extend(unordered_iter_violations(
            rel, clean_lines, unordered_vars, unordered_fns))

        violations.extend(self._parallel_purity(rel, clean))
        return violations

    # -- parallel-region purity --------------------------------------------

    @staticmethod
    def _line_of(clean, offset):
        return clean.count("\n", 0, offset) + 1

    @staticmethod
    def _match_close(clean, open_pos, open_ch="{", close_ch="}"):
        depth = 0
        for i in range(open_pos, len(clean)):
            if clean[i] == open_ch:
                depth += 1
            elif clean[i] == close_ch:
                depth -= 1
                if depth == 0:
                    return i
        return len(clean) - 1

    def _parallel_purity(self, rel, clean):
        scopes_at, function_spans = self._classify_braces(clean)

        # Namespace-scope mutable variables (the shared state the rule
        # protects).  thread_local is exempt here — it is per-thread by
        # construction (and already banned in src/ by static-state).
        global_vars = set()
        offset = 0
        depth_stack = []
        for raw_line in clean.splitlines(keepends=True):
            at_ns_scope = all(k == "namespace" for k in depth_stack)
            if at_ns_scope and "thread_local" not in raw_line:
                m = NS_VAR_DECL_RE.match(raw_line.rstrip("\n"))
                if m and "(" not in raw_line.split("=")[0]:
                    global_vars.add(m.group(1))
            for i, ch in enumerate(raw_line):
                if ch == "{":
                    depth_stack.append(scopes_at.get(offset + i, "block"))
                elif ch == "}" and depth_stack:
                    depth_stack.pop()
            offset += len(raw_line)

        if not global_vars:
            return []

        def writes_in(span_text):
            found = {}
            for m in WRITE_RE.finditer(span_text):
                name = m.group(1) or m.group(2)
                if name in global_vars:
                    found.setdefault(name, m.start())
            return found

        def calls_in(span_text):
            return {m.group(1) for m in CALL_RE.finditer(span_text)
                    if m.group(1) not in CALL_KEYWORDS}

        # Direct writers, then transitive closure over the call graph.
        body_of = {}
        for fn_name, start, end in function_spans:
            body_of.setdefault(fn_name, []).append(clean[start:end])
        impure = {fn for fn, bodies in body_of.items()
                  if any(writes_in(b) for b in bodies)}
        for _ in range(len(body_of)):
            grew = False
            for fn, bodies in body_of.items():
                if fn in impure:
                    continue
                if any(calls_in(b) & impure for b in bodies):
                    impure.add(fn)
                    grew = True
            if not grew:
                break

        violations = []
        for m in re.finditer(r"\bparallel_for\s*\(", clean):
            args_open = m.end() - 1
            args_close = self._match_close(clean, args_open, "(", ")")
            body_open = clean.find("{", args_open, args_close)
            if body_open == -1:
                continue
            body_close = self._match_close(clean, body_open)
            body = clean[body_open:body_close]
            for name, rel_off in sorted(writes_in(body).items(),
                                        key=lambda kv: kv[1]):
                violations.append(Violation(
                    rel, self._line_of(clean, body_open + rel_off),
                    "parallel-purity",
                    f"parallel_for body writes namespace-scope mutable "
                    f"`{name}` — a data race and thread-count-dependent "
                    "behaviour"))
            for cm in CALL_RE.finditer(body):
                callee = cm.group(1)
                if callee in CALL_KEYWORDS or callee == "parallel_for":
                    continue
                if callee in impure:
                    violations.append(Violation(
                        rel, self._line_of(clean, body_open + cm.start()),
                        "parallel-purity",
                        f"parallel_for body calls `{callee}` which "
                        "(transitively) writes namespace-scope mutable "
                        "state — not pure, races under the pool"))
        return violations


# ---------------------------------------------------------------------------
# Engine: clang (libclang over compile_commands.json)
# ---------------------------------------------------------------------------

def find_libclang():
    """Best-effort discovery of the libclang shared object."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    try:
        ci.Index.create()
        return ci
    except Exception:
        pass
    candidates = []
    import ctypes.util
    lib = ctypes.util.find_library("clang")
    if lib:
        candidates.append(lib)
    for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/llvm-*/lib/libclang-*.so*",
                    "/usr/lib/*/libclang.so*",
                    "/usr/lib/*/libclang-*.so*"):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for cand in candidates:
        if "cpp" in os.path.basename(cand):
            continue  # libclang-cpp is the C++ API, not the C API
        try:
            ci.Config.set_library_file(cand)
            ci.Index.create()
            return ci
        except Exception:
            ci.conf.lib = None  # reset and try the next candidate
            ci.Config.loaded = False
    return None


class ClangEngine:
    """libclang-backed analysis: rules resolved through canonical types, so
    typedefs, `auto` and template instantiations cannot hide a container or
    a static.  Uses per-file flags from compile_commands.json when given."""

    name = "clang"
    tier = "ast"

    def __init__(self, cindex, compile_db=None):
        self.ci = cindex
        self.index = cindex.Index.create()
        self.db = {}
        if compile_db and os.path.isfile(compile_db):
            with open(compile_db, encoding="utf-8") as f:
                for entry in json.load(f):
                    path = os.path.normpath(
                        os.path.join(entry["directory"], entry["file"]))
                    args = self._clean_args(entry)
                    self.db[path] = args

    @staticmethod
    def _clean_args(entry):
        if "arguments" in entry:
            args = list(entry["arguments"])[1:]
        else:
            args = entry.get("command", "").split()[1:]
        cleaned, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-c", "-o"):
                skip = a == "-o"
                continue
            if a.endswith((".cpp", ".cc", ".cxx", ".o")):
                continue
            cleaned.append(a)
        return cleaned

    def _args_for(self, path):
        return self.db.get(os.path.normpath(os.path.abspath(path)),
                           ["-std=c++20"])

    def scan_file(self, rel, text, ctx=None, path=None):
        ci = self.ci
        path = path or rel
        clean = strip_comments_and_strings(text)
        arch_violations = scan_architecture(rel, text, clean,
                                            clean.splitlines(), ctx,
                                            self.tier)
        try:
            tu = self.index.parse(
                path, args=self._args_for(path),
                unsaved_files=[(path, text)],
                options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        except ci.TranslationUnitLoadError as e:
            return arch_violations + [
                Violation(rel, 1, "parallel-purity",
                          f"libclang failed to parse: {e}")]
        scopes = path_scopes(rel)
        violations = list(arch_violations)
        global_vars = set()
        fn_writes_global = {}
        fn_calls = {}
        parallel_bodies = []

        def canonical(node_type):
            try:
                return node_type.get_canonical().spelling
            except Exception:
                return ""

        def in_this_file(node):
            f = node.location.file
            return f is not None and os.path.normpath(f.name) == \
                os.path.normpath(path)

        def tokens_text(node):
            try:
                return " ".join(t.spelling for t in node.get_tokens())
            except Exception:
                return ""

        def visit(node, fn_stack):
            k = node.kind
            K = ci.CursorKind
            here = in_this_file(node)

            if k in (K.FUNCTION_DECL, K.CXX_METHOD, K.FUNCTION_TEMPLATE,
                     K.CONSTRUCTOR, K.DESTRUCTOR, K.LAMBDA_EXPR):
                fn_stack = fn_stack + [node.spelling or "<lambda>"]

            if here:
                if k == K.VAR_DECL:
                    toks = tokens_text(node)
                    is_static = re.search(r"\b(static|thread_local)\b", toks)
                    is_immutable = re.search(
                        r"\b(const|constexpr|constinit)\b", toks)
                    sem = node.semantic_parent
                    at_ns = sem is not None and sem.kind in (
                        K.NAMESPACE, K.TRANSLATION_UNIT)
                    if at_ns and not is_immutable and \
                            "thread_local" not in toks:
                        global_vars.add(node.spelling)
                    if is_static and not is_immutable and \
                            scopes["in_src"] and not scopes["in_exempt_layer"]:
                        violations.append(Violation(
                            rel, node.location.line, "static-state",
                            "mutable static/thread_local state — hidden "
                            "state breaks run-to-run reproducibility and "
                            "races under the parallel evaluator"))
                elif k == K.CXX_NEW_EXPR:
                    violations.append(Violation(
                        rel, node.location.line, "naked-new",
                        "raw `new` — use std::make_unique/make_shared or a "
                        "container"))
                elif k == K.CXX_DELETE_EXPR:
                    violations.append(Violation(
                        rel, node.location.line, "naked-new",
                        "raw `delete` — ownership belongs in a smart "
                        "pointer"))
                elif k == K.CALL_EXPR:
                    name = node.spelling
                    if not scopes["is_rng_impl"] and name in (
                            "rand", "srand", "time"):
                        violations.append(Violation(
                            rel, node.location.line, "global-rng",
                            f"forbidden nondeterministic source `{name}` — "
                            "route randomness through util/rng (yoso::Rng)"))
                    if name in ("begin", "cbegin"):
                        for ch in node.get_children():
                            if UNORDERED_NAME_RE.search(canonical(ch.type)):
                                violations.append(Violation(
                                    rel, node.location.line, "unordered-iter",
                                    "iterator walk over unordered container "
                                    "— iteration order is implementation-"
                                    "defined"))
                                break
                    if name == "parallel_for":
                        parallel_bodies.append(node)
                    if fn_stack:
                        fn_calls.setdefault(fn_stack[-1], set()).add(name)
                elif k in (K.TYPE_REF, K.DECL_REF_EXPR):
                    if not scopes["is_rng_impl"] and \
                            "random_device" in (node.spelling or ""):
                        violations.append(Violation(
                            rel, node.location.line, "global-rng",
                            "forbidden nondeterministic source "
                            "`random_device` — route randomness through "
                            "util/rng (yoso::Rng)"))
                elif k == K.CXX_FOR_RANGE_STMT:
                    children = list(node.get_children())
                    body = children[-1] if children else None
                    for ch in children:
                        if ch is body:
                            continue
                        if self._subtree_has_unordered(ch, canonical):
                            violations.append(Violation(
                                rel, node.location.line, "unordered-iter",
                                "range-for over unordered container — "
                                "iteration order is implementation-defined"))
                            break

            for ch in node.get_children():
                visit(ch, fn_stack)

        visit(tu.cursor, [])

        # Call-graph purity: functions (by name) that write namespace-scope
        # mutable state, then the closure over calls.
        if global_vars:
            for fn_name, start, end in self._function_extents(tu, path):
                body = text[start:end]
                writes = {m.group(1) or m.group(2)
                          for m in WRITE_RE.finditer(body)}
                if writes & global_vars:
                    fn_writes_global[fn_name] = True
            impure = {fn for fn, w in fn_writes_global.items() if w}
            for _ in range(len(fn_calls)):
                grew = False
                for fn, callees in fn_calls.items():
                    if fn not in impure and callees & impure:
                        impure.add(fn)
                        grew = True
                if not grew:
                    break
            import bisect
            for call in parallel_bodies:
                # Re-join the call's tokens into scannable text, remembering
                # which source line each character came from so findings land
                # on the precise write/call line, not the call head.
                try:
                    toks = [(t.spelling, t.location.line)
                            for t in call.get_tokens()]
                except Exception:
                    toks = []
                parts, starts, pos = [], [], 0
                for spelling, _ in toks:
                    starts.append(pos)
                    parts.append(spelling)
                    pos += len(spelling) + 1
                body_text = " ".join(parts)

                def line_at(off, toks=toks, starts=starts, call=call):
                    if not toks:
                        return call.location.line
                    return toks[bisect.bisect_right(starts, off) - 1][1]

                for m in WRITE_RE.finditer(body_text):
                    name = m.group(1) or m.group(2)
                    if name in global_vars:
                        violations.append(Violation(
                            rel, line_at(m.start()), "parallel-purity",
                            f"parallel_for body writes namespace-scope "
                            f"mutable `{name}` — a data race and "
                            "thread-count-dependent behaviour"))
                for m in CALL_RE.finditer(body_text):
                    if m.group(1) in impure:
                        violations.append(Violation(
                            rel, line_at(m.start()), "parallel-purity",
                            f"parallel_for body calls `{m.group(1)}` which "
                            "(transitively) writes namespace-scope mutable "
                            "state — not pure, races under the pool"))
        return violations

    def _function_extents(self, tu, path):
        K = self.ci.CursorKind
        out = []

        def walk(node):
            if node.kind in (K.FUNCTION_DECL, K.CXX_METHOD,
                             K.FUNCTION_TEMPLATE, K.CONSTRUCTOR):
                f = node.location.file
                if f and os.path.normpath(f.name) == os.path.normpath(path) \
                        and node.is_definition():
                    ext = node.extent
                    out.append((node.spelling, ext.start.offset,
                                ext.end.offset))
            for ch in node.get_children():
                walk(ch)

        walk(tu.cursor)
        return out

    def _subtree_has_unordered(self, node, canonical):
        if UNORDERED_NAME_RE.search(canonical(node.type)):
            return True
        return any(self._subtree_has_unordered(ch, canonical)
                   for ch in node.get_children())


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def make_engine(choice, compile_db, for_self_test=False):
    """Resolves --engine to an instance; returns (engine, note)."""
    if choice == "regex":
        return RegexEngine(), None
    if choice == "clang":
        ci = find_libclang()
        if ci is None:
            return None, ("--engine clang: libclang (python3 clang.cindex + "
                          "libclang.so) is not available")
        if not for_self_test and (
                not compile_db or not os.path.isfile(compile_db)):
            return None, ("--engine clang: compile database not found"
                          f" ({compile_db or 'none given'}); configure with "
                          "CMake first (compile_commands.json is exported "
                          "unconditionally) and pass --compile-db")
        return ClangEngine(ci, compile_db), None
    if choice == "semantic":
        return SemanticEngine(), None
    # auto: clang when fully available, else semantic.
    ci = find_libclang()
    if ci is not None and compile_db and os.path.isfile(compile_db):
        return ClangEngine(ci, compile_db), "engine: clang (auto)"
    return SemanticEngine(), "engine: semantic (auto)"


def scan_with_allows(engine, rel, text, path=None, ctx=None):
    raw_lines = text.splitlines()
    if isinstance(engine, ClangEngine):
        violations = engine.scan_file(rel, text, ctx=ctx, path=path)
    else:
        violations = engine.scan_file(rel, text, ctx=ctx)
    allows = collect_allows(raw_lines)
    kept, used_allows = [], 0
    seen = set()
    for v in violations:
        key = (v.line, v.rule, v.message)
        if key in seen:
            continue  # engines may derive the same finding twice
        seen.add(key)
        if v.rule in allows.get(v.line, set()):
            used_allows += 1
        else:
            kept.append(v)
    return kept, used_allows


def iter_cpp_files(root, dirs=SCAN_DIRS):
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [x for x in dirnames if not x.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def check_headers(root, cxx):
    """Compiles every header under src/ standalone (first include of an empty
    TU); a header that relies on its includer's includes fails here."""
    violations = []
    headers = [p for p in iter_cpp_files(root, dirs=("src",))
               if p.endswith((".h", ".hpp"))]
    for path in headers:
        rel = os.path.relpath(path, root)
        include = os.path.relpath(path, os.path.join(root, "src"))
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cpp", delete=False) as tu:
            tu.write(f'#include "{include}"\n')
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [cxx, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(root, "src"), tu_path],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                violations.append(Violation(
                    rel, 1, "header-self-contained",
                    f"header does not compile standalone: {detail}"))
        finally:
            os.unlink(tu_path)
    return violations


def collect_observed_includes(root, ctx):
    """module -> set of other modules its files directly include, for the
    declared-but-unused-dependency half of layer-dag."""
    observed = {}
    for path in iter_cpp_files(root, dirs=("src",)):
        rel = os.path.relpath(path, root)
        mod = file_module(rel)
        if mod is None:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        clean_lines = strip_comments_and_strings(raw).splitlines()
        for inc, _ in ctx.parse_includes(raw.splitlines(), clean_lines):
            inc_mod = inc.split("/")[0]
            if inc_mod != mod:
                observed.setdefault(mod, set()).add(inc_mod)
    return observed


def write_json_report(path, engine_name, violations, total_allows,
                      max_allows, exit_code):
    counts = {}
    for v in violations:
        counts[v.rule] = counts.get(v.rule, 0) + 1
    report = {
        "tool": "yoso-lint",
        "version": 3,
        "engine": engine_name,
        "violations": [
            {"path": v.path, "line": v.line, "rule": v.rule,
             "message": v.message}
            for v in violations
        ],
        "counts": dict(sorted(counts.items())),
        "allows_used": total_allows,
        "allow_budget": max_allows,
        "exit_code": exit_code,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")


def run_tree(root, engine, check_hdrs, cxx, max_allows, note=None,
             json_out=None):
    if note:
        print(f"yoso-lint: {note}")
    ctx = ProjectContext(root)
    if ctx.config_errors:
        for err in ctx.config_errors:
            print(f"yoso-lint: {err}", file=sys.stderr)
        if json_out:
            write_json_report(json_out, engine.name, [], 0, max_allows, 2)
        return 2
    violations, total_allows = [], 0
    for path in iter_cpp_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        found, used = scan_with_allows(engine, rel, text, path=path, ctx=ctx)
        violations.extend(found)
        total_allows += used
    violations.extend(layer_dag_tree_violations(
        root, ctx, collect_observed_includes(root, ctx)))
    if check_hdrs:
        violations.extend(check_headers(root, cxx))

    for v in violations:
        print(v)
    print(f"yoso-lint: {len(violations)} violation(s), "
          f"{total_allows} allow(s) used (budget {max_allows})")
    exit_code = 1 if violations else 0
    if total_allows > max_allows:
        print(f"yoso-lint: allow budget exceeded ({total_allows} > "
              f"{max_allows}); remove suppressions or fix the code")
        exit_code = 1
    if json_out:
        write_json_report(json_out, engine.name, violations, total_allows,
                          max_allows, exit_code)
    return exit_code


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

AST_ENGINES = ("semantic", "clang")


def parse_expectations(text):
    """Returns {engine_name: set((line, rule))}.  Untagged annotations apply
    to every engine; `[ast]` means the AST-grade engines must catch it and
    the regex engine must provably MISS it."""
    per_engine = {"regex": set(), "semantic": set(), "clang": set()}
    ast_only = set()
    for idx, line in enumerate(text.splitlines(), start=1):
        for m in EXPECT_RE.finditer(line):
            tags, rule = m.group(1), m.group(2)
            if not tags:
                for s in per_engine.values():
                    s.add((idx, rule))
            else:
                names = set()
                for t in tags.split(","):
                    names.update(AST_ENGINES if t == "ast" else (t,))
                for name in names:
                    per_engine.setdefault(name, set()).add((idx, rule))
                if "regex" not in names:
                    ast_only.add((idx, rule))
    return per_engine, ast_only


def self_test_engines(compile_db):
    engines = {"regex": RegexEngine(), "semantic": SemanticEngine()}
    ci = find_libclang()
    if ci is not None:
        engines["clang"] = ClangEngine(ci, compile_db)
    return engines


def run_self_test(script_dir, compile_db=None):
    fixtures = os.path.join(script_dir, "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"yoso-lint --self-test: fixture dir missing: {fixtures}")
        return 1
    engines = self_test_engines(compile_db)
    print("yoso-lint --self-test: engines under test: "
          + ", ".join(sorted(engines)))
    failures = 0

    # Fixtures are scanned against the REAL repository context, so
    # layer-dag expectations exercise the committed tools/yoso_layers.json
    # and include-hygiene expectations exercise the real header index.
    ctx = ProjectContext(os.path.dirname(script_dir))
    for err in ctx.config_errors:
        print(f"SELF-TEST FAIL context: {err}")
        failures += 1

    for name in sorted(os.listdir(fixtures)):
        if not name.endswith(CPP_EXTENSIONS):
            continue
        path = os.path.join(fixtures, name)
        # Fixtures mimic tree layout via their name: src__core__x.cpp maps to
        # src/core/x.cpp so path-scoped rules (static-state) apply.
        rel = name.replace("__", "/")
        with open(path, encoding="utf-8") as f:
            text = f.read()
        per_engine, ast_only = parse_expectations(text)

        for engine_name, engine in sorted(engines.items()):
            expected = per_engine.get(engine_name, set())
            found_list, _ = scan_with_allows(engine, rel, text, path=path,
                                             ctx=ctx)
            found = {(v.line, v.rule) for v in found_list}
            missed = expected - found
            spurious = found - expected
            for line, rule in sorted(missed):
                print(f"SELF-TEST FAIL {name}:{line} [{engine_name}]: "
                      f"seeded [{rule}] not detected")
                failures += 1
            for line, rule in sorted(spurious):
                if engine_name == "regex" and (line, rule) in ast_only:
                    print(f"SELF-TEST FAIL {name}:{line} [regex]: "
                          f"unexpectedly detects [{rule}] — the fixture no "
                          "longer proves the AST engines' superiority")
                else:
                    print(f"SELF-TEST FAIL {name}:{line} [{engine_name}]: "
                          f"spurious [{rule}]")
                failures += 1
            status = "ok" if not (missed or spurious) else "FAIL"
            print(f"self-test {name} [{engine_name}]: {len(expected)} "
                  f"expected, {len(found & expected)} detected — {status}")

    failures += self_test_allow_budget(fixtures)
    print(f"yoso-lint --self-test: {failures} failure(s)")
    return 1 if failures else 0


def self_test_allow_budget(fixtures):
    """The allow() escape hatch is budgeted; a fixture with four
    suppressions must trip the default three-allow budget and pass a
    four-allow one."""
    budget_dir = os.path.join(fixtures, "allow_budget")
    if not os.path.isdir(budget_dir):
        print("SELF-TEST FAIL allow_budget/: fixture dir missing")
        return 1
    engine = SemanticEngine()
    failures = 0
    total_allows, violations = 0, []
    for name in sorted(os.listdir(budget_dir)):
        if not name.endswith(CPP_EXTENSIONS):
            continue
        rel = name.replace("__", "/")
        with open(os.path.join(budget_dir, name), encoding="utf-8") as f:
            text = f.read()
        found, used = scan_with_allows(engine, rel, text)
        violations.extend(found)
        total_allows += used
    if violations:
        print(f"SELF-TEST FAIL allow_budget/: {len(violations)} unsuppressed"
              " violation(s); every seeded violation should carry an allow()")
        failures += 1
    if total_allows != 4:
        print(f"SELF-TEST FAIL allow_budget/: expected exactly 4 allows, "
              f"counted {total_allows}")
        failures += 1
    over = total_allows > 3   # the default --max-allows budget
    under = total_allows > 4  # a raised budget must accept the same tree
    if not over:
        print("SELF-TEST FAIL allow_budget/: four allows did NOT exceed the "
              "default budget of 3 — the 4th allow() must fail the gate")
        failures += 1
    if under:
        print("SELF-TEST FAIL allow_budget/: four allows exceeded a budget "
              "of 4")
        failures += 1
    if not failures:
        print("self-test allow_budget/: 4 allows counted, budget 3 trips, "
              "budget 4 passes — ok")
    return failures


def compile_db_state(root, compile_db):
    """"ok" | "missing" | "stale".  Stale = older than the top-level
    CMakeLists.txt, i.e. the flags it records are not the flags the tree
    builds with.  This is a TOOL error (exit 2), never "violations"."""
    if not compile_db or not os.path.isfile(compile_db):
        return "missing"
    top = os.path.join(root, "CMakeLists.txt")
    if os.path.isfile(top) and os.path.getmtime(compile_db) < \
            os.path.getmtime(top):
        return "stale"
    return "ok"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--engine",
                        choices=("auto", "regex", "semantic", "clang"),
                        default="auto",
                        help="analysis engine (auto = clang if available, "
                             "else semantic; regex is the v1 fallback)")
    parser.add_argument("--compile-db", default=None, metavar="JSON",
                        help="path to compile_commands.json (required by "
                             "--engine clang; exported by CMake "
                             "unconditionally)")
    parser.add_argument("--require-fresh-db", action="store_true",
                        help="exit 2 (tool error) when the compile database "
                             "is missing or older than CMakeLists.txt, "
                             "instead of silently degrading the engine")
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every src/ header standalone")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                        help="compiler for --check-headers")
    parser.add_argument("--max-allows", type=int, default=3,
                        help="budget of yoso-lint: allow() suppressions")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a machine-readable report here (CI "
                             "archives it as an artifact)")
    parser.add_argument("--self-test", action="store_true",
                        help="run every engine against tools/lint_fixtures/")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return run_self_test(script_dir, compile_db=args.compile_db)

    root = os.path.abspath(args.root)
    db_state = compile_db_state(root, args.compile_db)
    if db_state != "ok" and (args.require_fresh_db
                             or args.engine == "clang"):
        if args.compile_db and db_state == "stale":
            print(f"yoso-lint: compile database {args.compile_db} is stale "
                  "(older than CMakeLists.txt) — reconfigure with CMake so "
                  "the lint analyses the flags the tree actually builds "
                  "with", file=sys.stderr)
        else:
            print("yoso-lint: compile database "
                  f"{args.compile_db or '(none given)'} is missing — "
                  "configure with CMake first (compile_commands.json is "
                  "exported unconditionally)", file=sys.stderr)
        return 2
    compile_db = args.compile_db if db_state == "ok" else None

    engine, note = make_engine(args.engine, compile_db)
    if engine is None:
        print(f"yoso-lint: {note}", file=sys.stderr)
        return 2
    return run_tree(root, engine, args.check_headers,
                    args.cxx, args.max_allows,
                    note=note if args.engine == "auto" else None,
                    json_out=args.json)


if __name__ == "__main__":
    sys.exit(main())
