// yoso_serve — long-running co-search daemon over a trained artifact.
//
// Loads ONE checksummed artifact (produced by `yoso_cli --save-artifact`,
// format: docs/ARTIFACTS.md), then serves search jobs over an AF_UNIX
// socket speaking newline-delimited JSON (protocol: docs/SERVING.md).
// Results are bit-identical to running the same search in-process against
// the same artifact.
//
// Flags:
//   --artifact <path>          artifact to serve (required)
//   --socket <path>            AF_UNIX socket path
//                              (default /tmp/yoso_serve.sock)
//   --threads <n>              evaluation thread budget (default 1)
//   --paused                   start with the job queue paused
//   --snapshot-on-exit <path>  write a job-table snapshot artifact on
//                              graceful shutdown
//   --smoke                    self-test: serve one job end-to-end over the
//                              real socket, scrape /metrics, exit 0 on
//                              success (used by CI)
//
// Graceful shutdown: send {"op":"shutdown"} over the socket.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

using yoso::serve::JsonValue;
using yoso::serve::parse_json;

struct ServeCli {
  std::string artifact;
  std::string socket_path = "/tmp/yoso_serve.sock";
  std::size_t threads = 1;
  bool paused = false;
  std::string snapshot_on_exit;
  bool smoke = false;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "yoso_serve: " << message << "\n"
            << "usage: yoso_serve --artifact <path> [--socket <path>] "
               "[--threads <n>] [--paused] [--snapshot-on-exit <path>] "
               "[--smoke]\n";
  std::exit(2);
}

ServeCli parse_args(int argc, char** argv) {
  ServeCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + key);
      return argv[++i];
    };
    if (key == "--artifact") {
      cli.artifact = value();
    } else if (key == "--socket") {
      cli.socket_path = value();
    } else if (key == "--threads") {
      cli.threads = std::stoul(value());
    } else if (key == "--paused") {
      cli.paused = true;
    } else if (key == "--snapshot-on-exit") {
      cli.snapshot_on_exit = value();
    } else if (key == "--smoke") {
      cli.smoke = true;
    } else {
      usage_error("unknown flag '" + key + "'");
    }
  }
  if (cli.artifact.empty()) usage_error("--artifact is required");
  return cli;
}

// --- Minimal blocking client (smoke mode drives the real socket path) -------

class SmokeClient {
 public:
  explicit SmokeClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~SmokeClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  /// One round trip: sends `line` + '\n', reads one response line.
  std::optional<std::string> round_trip(const std::string& line) {
    if (fd_ < 0) return std::nullopt;
    const std::string out = line + "\n";
    if (::send(fd_, out.data(), out.size(), 0) !=
        static_cast<ssize_t>(out.size()))
      return std::nullopt;
    return read_until("\n");
  }

  /// Reads until `stop` appears (or EOF); returns everything read.
  std::optional<std::string> read_until(const std::string& stop) {
    std::string buffer;
    char chunk[4096];
    while (buffer.find(stop) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) return std::nullopt;
      if (n == 0) break;  // EOF: the metrics endpoint closes after writing
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    return buffer;
  }

 private:
  int fd_ = -1;
};

int fail_smoke(const std::string& why) {
  std::cerr << "yoso_serve --smoke: FAIL: " << why << "\n";
  return 1;
}

int run_smoke(yoso::serve::SearchService& service,
              yoso::serve::SearchServer& server) {
  // 1. Submit one small job over the real socket.
  SmokeClient client(server.socket_path());
  if (!client.ok()) return fail_smoke("cannot connect to socket");
  const std::optional<std::string> submitted = client.round_trip(
      R"({"op":"submit","job":{"searcher":"random","iterations":40,)"
      R"("batch":8,"top_n":3,"seed":11}})");
  if (!submitted.has_value()) return fail_smoke("submit round trip failed");
  const std::optional<JsonValue> sub = parse_json(*submitted);
  if (!sub.has_value() || !sub->get("ok") || !sub->get("ok")->bool_or(false))
    return fail_smoke("submit rejected: " + *submitted);
  const std::uint64_t job_id = static_cast<std::uint64_t>(
      sub->get("job_id") != nullptr ? sub->get("job_id")->number_or(0) : 0);

  // 2. Wait for completion (the job is tiny; wait_idle blocks until the
  //    worker drains the queue), then fetch the result over the socket.
  service.wait_idle();
  const std::optional<std::string> result = client.round_trip(
      R"({"op":"result","job_id":)" + std::to_string(job_id) + "}");
  if (!result.has_value()) return fail_smoke("result round trip failed");
  const std::optional<JsonValue> res = parse_json(*result);
  if (!res.has_value() || !res->get("ok") || !res->get("ok")->bool_or(false))
    return fail_smoke("result not ok: " + *result);
  if (res->get("result") == nullptr ||
      res->get("result")->get("best") == nullptr)
    return fail_smoke("result carries no best candidate: " + *result);

  // 3. Scrape the metrics endpoint the way an operator would (HTTP-style
  //    GET on a fresh connection) and require live serve.* counters.
  SmokeClient scraper(server.socket_path());
  if (!scraper.ok()) return fail_smoke("cannot reconnect for /metrics");
  const std::optional<std::string> exposition =
      scraper.round_trip("GET /metrics HTTP/1.0");
  if (!exposition.has_value()) return fail_smoke("metrics scrape failed");
  const std::string& text = *exposition;
  for (const char* needle :
       {"serve.jobs_submitted 1", "serve.jobs_completed 1",
        "serve.requests", "serve.batch_occupancy_count"}) {
    if (text.find(needle) == std::string::npos)
      return fail_smoke(std::string("metrics exposition missing '") +
                        needle + "'");
  }
  std::cout << "yoso_serve --smoke: OK (job " << job_id
            << " served end-to-end; serve.* metrics live)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ServeCli cli = parse_args(argc, argv);
  try {
    yoso::serve::SearchService service(
        cli.artifact, {.threads = cli.threads, .start_paused = cli.paused});
    yoso::serve::SearchServer server(service, cli.socket_path);
    if (cli.smoke) {
      const int rc = run_smoke(service, server);
      server.stop();
      service.stop();
      return rc;
    }
    std::cout << "yoso_serve: serving '" << cli.artifact << "' on "
              << cli.socket_path << " (threads=" << cli.threads
              << (cli.paused ? ", paused" : "") << ")\n";
    server.wait_shutdown();
    service.wait_idle();
    if (!cli.snapshot_on_exit.empty()) {
      service.snapshot_to(cli.snapshot_on_exit);
      std::cout << "yoso_serve: snapshot written to " << cli.snapshot_on_exit
                << "\n";
    }
    server.stop();
    service.stop();
  } catch (const std::exception& e) {
    std::cerr << "yoso_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
