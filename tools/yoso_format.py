#!/usr/bin/env python3
"""yoso-format: formatting gate for the C++ tree.

Two layers:

  clang-format  when the tool is installed (or named via $CLANG_FORMAT),
                `--fix` rewrites sources against .clang-format and `--check`
                runs --dry-run -Werror.  Developer convenience — clang-format
                output drifts between major versions, so it is NOT what CI
                pins.
  builtin       a machine-checkable subset that needs no tools and never
                drifts: no CRLF line endings, no tabs in indentation, no
                trailing whitespace, exactly one newline at end of file.
                `--builtin-only` restricts to this layer; the ctest
                `format.check` and the CI formatting gate both pin it so the
                gate holds identically everywhere.

Exit status: 0 clean, 1 when --check finds issues (each printed as
file:line: message), 2 on usage errors.
"""

import argparse
import os
import shutil
import subprocess
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".h", ".hpp")
# Non-C++ text files get the whitespace subset too (no tab rule — tabs are
# idiomatic in some of these), scanned across the whole repo.  Hidden dirs
# (except .github) and build trees are skipped.
TEXT_EXTENSIONS = (".py", ".cmake", ".sh", ".yml", ".yaml", ".md")
SKIP_DIRS = ("build",)


def iter_cpp_files(root):
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [x for x in dirnames if not x.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def iter_text_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [x for x in dirnames
                       if not x.startswith(SKIP_DIRS) and x != "__pycache__"
                       and (not x.startswith(".") or x == ".github")]
        for name in sorted(filenames):
            if name.endswith(TEXT_EXTENSIONS) or name == "CMakeLists.txt":
                yield os.path.join(dirpath, name)


def builtin_issues(text, tab_rule=True):
    """Returns (fixed_text, [(line, message)])."""
    issues = []
    lines = text.split("\n")
    fixed_lines = []
    for idx, line in enumerate(lines, start=1):
        fixed = line
        if fixed.endswith("\r"):
            issues.append((idx, "CRLF line ending"))
            fixed = fixed.rstrip("\r")
        stripped = fixed.rstrip(" \t")
        if stripped != fixed:
            issues.append((idx, "trailing whitespace"))
            fixed = stripped
        indent = fixed[:len(fixed) - len(fixed.lstrip(" \t"))]
        if tab_rule and "\t" in indent:
            issues.append((idx, "tab in indentation"))
            fixed = indent.replace("\t", "  ") + fixed.lstrip(" \t")
        fixed_lines.append(fixed)
    # Exactly one newline at end of file.
    while fixed_lines and fixed_lines[-1] == "":
        fixed_lines.pop()
    fixed_text = "\n".join(fixed_lines) + "\n"
    if not text.endswith("\n"):
        issues.append((len(lines), "missing newline at end of file"))
    elif text != fixed_text and not issues:
        issues.append((len(lines), "multiple newlines at end of file"))
    elif text.endswith("\n\n"):
        issues.append((len(lines), "multiple newlines at end of file"))
    return fixed_text, issues


def run_builtin(files, root, fix, tab_rule=True):
    bad = 0
    for path in files:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        fixed, issues = builtin_issues(text, tab_rule=tab_rule)
        if fixed == text:
            continue
        if fix:
            with open(path, "w", encoding="utf-8") as f:
                f.write(fixed)
            print(f"yoso-format: fixed {rel}")
        else:
            for line, msg in issues or [(1, "formatting differs")]:
                print(f"{rel}:{line}: {msg}")
            bad += 1
    return bad


def find_clang_format():
    env = os.environ.get("CLANG_FORMAT")
    if env and shutil.which(env):
        return env
    return shutil.which("clang-format")


def run_clang_format(tool, files, fix):
    args = [tool, "--style=file"]
    args += ["-i"] if fix else ["--dry-run", "-Werror"]
    bad = 0
    # Chunk the file list to keep command lines bounded.
    for i in range(0, len(files), 50):
        proc = subprocess.run(args + files[i:i + 50],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            bad += 1
    return bad


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--fix", action="store_true",
                      help="rewrite files in place")
    mode.add_argument("--check", action="store_true",
                      help="report issues, exit 1 if any")
    parser.add_argument("--builtin-only", action="store_true",
                       help="skip clang-format; enforce only the builtin "
                            "subset (what CI and ctest pin)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    files = list(iter_cpp_files(root))
    if not files:
        print("yoso-format: no C++ sources found", file=sys.stderr)
        return 2

    bad = run_builtin(files, root, fix=args.fix)
    text_files = list(iter_text_files(root))
    bad += run_builtin(text_files, root, fix=args.fix, tab_rule=False)

    tool = None if args.builtin_only else find_clang_format()
    if tool:
        bad += run_clang_format(tool, files, fix=args.fix)
    elif not args.builtin_only:
        print("yoso-format: clang-format not found; builtin subset only")

    if args.check:
        layer = "builtin subset" if (args.builtin_only or not tool) \
            else "clang-format + builtin subset"
        if bad:
            print(f"yoso-format: {bad} file(s)/batch(es) need formatting "
                  f"({layer}); run `cmake --build build --target format`")
            return 1
        print(f"yoso-format: {len(files) + len(text_files)} file(s) clean "
              f"({layer})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
