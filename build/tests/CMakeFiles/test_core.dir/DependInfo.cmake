
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alt_search.cpp" "tests/CMakeFiles/test_core.dir/test_alt_search.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_alt_search.cpp.o.d"
  "/root/repo/tests/test_design_space.cpp" "tests/CMakeFiles/test_core.dir/test_design_space.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_design_space.cpp.o.d"
  "/root/repo/tests/test_evaluator.cpp" "tests/CMakeFiles/test_core.dir/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_evaluator.cpp.o.d"
  "/root/repo/tests/test_extended_space.cpp" "tests/CMakeFiles/test_core.dir/test_extended_space.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_extended_space.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_core.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_parallel_search.cpp" "tests/CMakeFiles/test_core.dir/test_parallel_search.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_parallel_search.cpp.o.d"
  "/root/repo/tests/test_pareto.cpp" "tests/CMakeFiles/test_core.dir/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_pareto.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/test_core.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_reward.cpp" "tests/CMakeFiles/test_core.dir/test_reward.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_reward.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/test_core.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/test_core.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_space_statistics.cpp" "tests/CMakeFiles/test_core.dir/test_space_statistics.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_space_statistics.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/test_core.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_two_stage.cpp" "tests/CMakeFiles/test_core.dir/test_two_stage.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_two_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/yoso_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/yoso_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/yoso_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/yoso_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/yoso_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/yoso_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/yoso_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/yoso_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/yoso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
