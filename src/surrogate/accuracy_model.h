#pragma once
// Calibrated analytic accuracy surrogate.
//
// The paper evaluates candidate accuracy with a HyperNet trained on
// CIFAR-10 for 300 epochs on a P100; final candidates are fully trained for
// 70 epochs.  Neither is feasible at one-CPU-core scale for the tens of
// thousands of evaluations the search benches make, so alongside the real
// trainable HyperNet (src/nn) this module provides a deterministic analytic
// model of (architecture -> CIFAR-10-scale test error), calibrated so that
//   * errors land in the paper's 2.8..3.7 % band for the Table-2 nets,
//   * more capacity (MACs/params) lowers error with saturation,
//   * op mix matters (dense convs > depthwise > pooling), as does cell
//     depth and width,
//   * a hash-seeded per-genotype residual models run-to-run variance.
//
// Two outputs mirror the paper's two measurement modes: test_error() is the
// "fully trained" accuracy; hypernet_error() is the one-shot inherited-
// weight proxy — a noisier, correlated view of the same quantity (Fig 5(b)).

#include <cstdint>

#include "arch/genotype.h"
#include "arch/network.h"

namespace yoso {

/// Architecture descriptors the surrogate (and tests) reason about.
struct ArchFeatures {
  // Fractions over the 20 op slots of the two cells.
  double conv_frac = 0.0;
  double dw_frac = 0.0;
  double pool_frac = 0.0;
  double k5_frac = 0.0;
  // Longest input->output path length (edges) per cell.
  double depth_normal = 0.0;
  double depth_reduction = 0.0;
  // Loose-end (output-width) counts per cell.
  double loose_normal = 0.0;
  double loose_reduction = 0.0;
  // log10 of whole-network cost at the given skeleton.
  double log10_macs = 0.0;
  double log10_params = 0.0;

  static ArchFeatures compute(const Genotype& g,
                              const NetworkSkeleton& skeleton);
};

/// Longest path (in edges) from a cell input to any loose-end node.
int cell_depth(const CellGenotype& cell);

struct AccuracyModelParams {
  double base_error = 3.17;        ///< % at the calibration point
  double capacity_weight = 0.85;   ///< per decade of MACs (saturating)
  double undersize_weight = 3.0;   ///< sharp penalty below the capacity knee
  double undersize_knee = 8.0;     ///< log10(MACs) below which CIFAR underfits
  double conv_weight = 1.15;       ///< dense-conv fraction benefit
  double dw_weight = 0.45;         ///< depthwise fraction benefit
  double k5_weight = 0.10;         ///< small 5x5 receptive-field benefit
  double pool_penalty = 1.6;       ///< pooling beyond the useful fraction
  double pool_useful_frac = 0.15;  ///< some pooling helps; more hurts
  double depth_weight = 0.22;      ///< deeper cells help (saturating)
  double depth_sat = 4.0;
  double width_weight = 0.08;      ///< wider cell outputs help slightly
  double error_floor = 2.45;       ///< best achievable in this space
  double error_ceil = 9.0;
  double noise_sigma = 0.05;       ///< full-training run-to-run residual, %
  // One-shot (inherited-weight) scores are far harsher than full training:
  // real supernet evaluations of weak paths collapse toward chance, so the
  // proxy error axis is stretched roughly tenfold (one-shot accuracies span
  // ~55..90 % while fully-trained accuracies span ~94..97.5 %).
  double hypernet_noise_sigma = 2.0;   ///< one-shot eval extra noise, %
  double hypernet_offset = 0.5;    ///< inherited weights underperform, %
  double hypernet_scale = 10.0;    ///< one-shot errors spread much wider
};

class AccuracyModel {
 public:
  explicit AccuracyModel(NetworkSkeleton skeleton = default_skeleton(),
                         AccuracyModelParams params = {},
                         std::uint64_t seed = 2020);

  const NetworkSkeleton& skeleton() const { return skeleton_; }
  const AccuracyModelParams& params() const { return params_; }
  /// Residual-stream seed; with skeleton() and params() this fully
  /// determines the model, which is how core/artifact.h persists it.
  std::uint64_t seed() const { return seed_; }

  /// Fully-trained test error, percent (e.g. 3.05 means 96.95 % accuracy).
  double test_error(const Genotype& g) const;

  /// One-shot (HyperNet inherited-weight) validation error, percent.
  /// Correlated with test_error but noisier and offset, as in Fig 5(b).
  double hypernet_error(const Genotype& g) const;

  /// Same score from pre-computed descriptors.  `f` must be
  /// ArchFeatures::compute(g, skeleton()) — callers that already hold the
  /// descriptors (the batched evaluator shares one ArchFeatures between the
  /// accuracy proxy and the GP feature row) skip recomputing them here;
  /// the returned value is bit-identical to hypernet_error(g).
  double hypernet_error(const Genotype& g, const ArchFeatures& f) const;

  /// Convenience: validation accuracy in [0,1] from hypernet_error.
  double hypernet_accuracy(const Genotype& g) const;
  double hypernet_accuracy(const Genotype& g, const ArchFeatures& f) const;

 private:
  double clean_error(const Genotype& g) const;
  double clean_error_from(const ArchFeatures& f) const;
  double residual(const Genotype& g, std::uint64_t salt, double sigma) const;

  NetworkSkeleton skeleton_;
  AccuracyModelParams params_;
  std::uint64_t seed_;
};

}  // namespace yoso
