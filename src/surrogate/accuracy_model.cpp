#include "surrogate/accuracy_model.h"

#include <algorithm>
#include <cmath>

#include "arch/encoding.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "arch/ops.h"
#include "util/rng.h"

namespace yoso {

int cell_depth(const CellGenotype& cell) {
  // depth[i] = longest edge count from a cell input (node 0/1) to node i.
  int depth[kNodesPerCell] = {0, 0};
  for (int n = 0; n < kInteriorNodes; ++n) {
    const NodeSpec& spec = cell.nodes[static_cast<std::size_t>(n)];
    const int node = n + 2;
    depth[node] = 1 + std::max(depth[spec.input_a], depth[spec.input_b]);
  }
  int best = 0;
  for (int node : loose_end_nodes(cell)) best = std::max(best, depth[node]);
  return best;
}

ArchFeatures ArchFeatures::compute(const Genotype& g,
                                   const NetworkSkeleton& skeleton) {
  ArchFeatures f;
  int conv = 0, dw = 0, pool = 0, k5 = 0, total = 0;
  for (const CellGenotype* cell : {&g.normal, &g.reduction}) {
    for (const NodeSpec& spec : cell->nodes) {
      for (Op op : {spec.op_a, spec.op_b}) {
        ++total;
        if (op_is_conv(op)) ++conv;
        else if (op_is_depthwise(op)) ++dw;
        else ++pool;
        if (op_kernel_size(op) == 5) ++k5;
      }
    }
  }
  f.conv_frac = static_cast<double>(conv) / total;
  f.dw_frac = static_cast<double>(dw) / total;
  f.pool_frac = static_cast<double>(pool) / total;
  f.k5_frac = static_cast<double>(k5) / total;
  f.depth_normal = cell_depth(g.normal);
  f.depth_reduction = cell_depth(g.reduction);
  f.loose_normal = static_cast<double>(loose_end_nodes(g.normal).size());
  f.loose_reduction = static_cast<double>(loose_end_nodes(g.reduction).size());
  const auto stats = network_stats(extract_layers(g, skeleton));
  f.log10_macs = std::log10(static_cast<double>(std::max<std::int64_t>(
      stats.total_macs, 1)));
  f.log10_params = std::log10(static_cast<double>(std::max<std::int64_t>(
      stats.total_params, 1)));
  return f;
}

AccuracyModel::AccuracyModel(NetworkSkeleton skeleton,
                             AccuracyModelParams params, std::uint64_t seed)
    : skeleton_(std::move(skeleton)), params_(params), seed_(seed) {}

double AccuracyModel::clean_error(const Genotype& g) const {
  return clean_error_from(ArchFeatures::compute(g, skeleton_));
}

double AccuracyModel::clean_error_from(const ArchFeatures& f) const {
  const AccuracyModelParams& p = params_;

  // Capacity: relative to the space's typical net (~1e8 MACs at the default
  // skeleton), saturating via tanh so huge nets do not go to zero error.
  const double capacity = std::tanh(f.log10_macs - 8.0);

  // Depth: deeper cells help up to saturation.
  const double depth =
      std::tanh((f.depth_normal + f.depth_reduction) / (2.0 * p.depth_sat));

  // Pooling: a small fraction is useful (spatial invariance), surplus hurts.
  const double pool_excess = std::max(0.0, f.pool_frac - p.pool_useful_frac);

  double err = p.base_error;
  err -= p.capacity_weight * capacity;
  // Below the capacity knee, CIFAR-scale tasks underfit quickly: the error
  // climbs super-linearly as the network shrinks.  This is what stops the
  // co-search from collapsing onto degenerate, nearly-free networks.
  const double undersize = std::max(0.0, p.undersize_knee - f.log10_macs);
  err += p.undersize_weight * std::pow(undersize, 1.5);
  err -= p.conv_weight * (f.conv_frac - 0.5);
  err -= p.dw_weight * (f.dw_frac - 0.3);
  err -= p.k5_weight * (f.k5_frac - 0.3);
  err += p.pool_penalty * pool_excess * pool_excess * 4.0;
  err -= p.depth_weight * depth;
  err -= p.width_weight *
         ((f.loose_normal + f.loose_reduction) / 2.0 - 2.5);
  return std::clamp(err, p.error_floor, p.error_ceil);
}

double AccuracyModel::residual(const Genotype& g, std::uint64_t salt,
                               double sigma) const {
  // Deterministic per-genotype residual: hash the action encoding.
  std::uint64_t h = seed_ ^ salt;
  for (int a : encode_genotype(g)) {
    h ^= static_cast<std::uint64_t>(a) + 0x9E3779B97F4A7C15ull + (h << 6) +
         (h >> 2);
  }
  Rng rng(h);
  return rng.normal(0.0, sigma);
}

double AccuracyModel::test_error(const Genotype& g) const {
  const double err =
      clean_error(g) + residual(g, 0x7E57ull, params_.noise_sigma);
  return std::clamp(err, params_.error_floor * 0.9, params_.error_ceil);
}

double AccuracyModel::hypernet_error(const Genotype& g) const {
  return hypernet_error(g, ArchFeatures::compute(g, skeleton_));
}

double AccuracyModel::hypernet_error(const Genotype& g,
                                     const ArchFeatures& f) const {
  // Shares the clean signal and the full-training residual (the HyperNet
  // ranks models by true quality) plus its own one-shot noise.
  const double base = clean_error_from(f) +
                      residual(g, 0x7E57ull, params_.noise_sigma);
  const double err = params_.hypernet_offset +
                     params_.hypernet_scale * base +
                     residual(g, 0x4E7ull, params_.hypernet_noise_sigma);
  return std::clamp(err, 0.5, 90.0);
}

double AccuracyModel::hypernet_accuracy(const Genotype& g) const {
  return 1.0 - hypernet_error(g) / 100.0;
}

double AccuracyModel::hypernet_accuracy(const Genotype& g,
                                        const ArchFeatures& f) const {
  return 1.0 - hypernet_error(g, f) / 100.0;
}

}  // namespace yoso
