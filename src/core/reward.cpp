#include "core/reward.h"

#include <cmath>
#include <sstream>

#include "base/contract.h"

namespace yoso {

double RewardParams::compute(const EvalResult& r) const {
  YOSO_REQUIRE(r.latency_ms > 0.0 && r.energy_mj > 0.0,
               "RewardParams::compute: non-positive perf (latency_ms=",
               r.latency_ms, ", energy_mj=", r.energy_mj, ")");
  YOSO_REQUIRE(std::isfinite(r.accuracy),
               "RewardParams::compute: non-finite accuracy ", r.accuracy);
  const double lat_term =
      alpha_lat * std::pow(r.latency_ms / t_lat_ms, omega_lat);
  const double eer_term =
      alpha_eer * std::pow(r.energy_mj / t_eer_mj, omega_eer);
  const double reward = r.accuracy + lat_term + eer_term;
  // A non-finite reward silently corrupts REINFORCE baselines and the
  // finalist pool ordering; fail loudly at the source instead.
  YOSO_CHECK(std::isfinite(reward),
             "RewardParams::compute: non-finite reward (lat_term=", lat_term,
             ", eer_term=", eer_term, ", accuracy=", r.accuracy, ") for ",
             to_string());
  return reward;
}

bool RewardParams::feasible(const EvalResult& r) const {
  return r.latency_ms <= t_lat_ms && r.energy_mj <= t_eer_mj;
}

std::string RewardParams::to_string() const {
  std::ostringstream ss;
  ss << "R = A + " << alpha_lat << "*(l/" << t_lat_ms << "ms)^" << omega_lat
     << " + " << alpha_eer << "*(e/" << t_eer_mj << "mJ)^" << omega_eer;
  return ss.str();
}

RewardParams balanced_reward() {
  RewardParams p;
  p.alpha_lat = 0.5;
  p.omega_lat = -0.4;
  p.alpha_eer = 0.5;
  p.omega_eer = -0.4;
  return p;
}

RewardParams energy_opt_reward() {
  RewardParams p;
  p.alpha_eer = 0.6;
  p.omega_eer = -0.4;
  p.alpha_lat = 0.3;
  p.omega_lat = -0.2;
  return p;
}

RewardParams latency_opt_reward() {
  RewardParams p;
  p.alpha_lat = 0.6;
  p.omega_lat = -0.4;
  p.alpha_eer = 0.3;
  p.omega_eer = -0.3;
  return p;
}

}  // namespace yoso
