#pragma once
// Text serialisation for search artefacts.
//
// A co-search produces winners that users need to persist, diff and reload:
// genotypes, accelerator configurations and whole candidates round-trip
// through a compact, human-readable grammar:
//
//   cell     := node(';'node)*                 e.g. "0,1,conv3x3,maxpool3x3;..."
//   node     := input_a','input_b','op_a','op_b
//   genotype := "normal=" cell "|reduction=" cell
//   config   := rows'*'cols'/'gbufKB'/'rbufB'/'dataflow   (paper style)
//   candidate:= genotype "@" config
//
// Parsers throw std::invalid_argument with a position-specific message on
// malformed input and validate the decoded structure.

#include <string>

#include "accel/config.h"
#include "arch/genotype.h"
#include "core/design_space.h"

namespace yoso {

/// Compact single-line cell serialisation.
std::string serialize_cell(const CellGenotype& cell);
CellGenotype parse_cell(const std::string& text);

/// Full genotype: "normal=<cell>|reduction=<cell>".
std::string serialize_genotype(const Genotype& g);
Genotype parse_genotype(const std::string& text);

/// Accelerator config in the paper's notation: "16*32/512KB/512B/OS".
/// (AcceleratorConfig::to_string produces this format.)
AcceleratorConfig parse_accelerator_config(const std::string& text);

/// Whole candidate: "<genotype>@<config>".
std::string serialize_candidate(const CandidateDesign& candidate);
CandidateDesign parse_candidate(const std::string& text);

}  // namespace yoso
