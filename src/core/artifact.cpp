#include "core/artifact.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "arch/network.h"
#include "base/contract.h"
#include "core/evaluator.h"
#include "linalg/matrix.h"
#include "nn/module.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "surrogate/accuracy_model.h"
#include "util/exec_context.h"

namespace yoso {
namespace {

// Fixed layout constants (docs/ARTIFACTS.md is the normative spec).
constexpr std::size_t kHeaderSize = 32;
constexpr std::size_t kTableEntrySize = 32;
constexpr std::size_t kPayloadAlign = 8;

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// CRC-32 (IEEE, reflected, poly 0xEDB88320) lookup table, built once.
const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const auto& table = crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --- ByteWriter --------------------------------------------------------------

void ByteWriter::u16(std::uint16_t v) {
  bytes_.resize(bytes_.size() + 2);
  put_u16(bytes_.data() + bytes_.size() - 2, v);
}

void ByteWriter::u32(std::uint32_t v) {
  bytes_.resize(bytes_.size() + 4);
  put_u32(bytes_.data() + bytes_.size() - 4, v);
}

void ByteWriter::u64(std::uint64_t v) {
  bytes_.resize(bytes_.size() + 8);
  put_u64(bytes_.data() + bytes_.size() - 8, v);
}

void ByteWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::f64_vec(std::span<const double> v) {
  u64(v.size());
  for (double d : v) f64(d);
}

void ByteWriter::f32_vec(std::span<const float> v) {
  u64(v.size());
  for (float f : v) f32(f);
}

void ByteWriter::u64_vec(std::span<const std::size_t> v) {
  u64(v.size());
  for (std::size_t s : v) u64(s);
}

// --- ByteReader --------------------------------------------------------------

void ByteReader::need(std::size_t n) const {
  YOSO_REQUIRE(pos_ + n <= bytes_.size(),
               "artifact: truncated section (need ", n, " bytes at offset ",
               pos_, ", have ", bytes_.size() - pos_, ")");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = get_u16(bytes_.data() + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> ByteReader::f64_vec() {
  const std::uint64_t n = u64();
  need(n * 8);
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::vector<float> ByteReader::f32_vec() {
  const std::uint64_t n = u64();
  need(n * 4);
  std::vector<float> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = f32();
  return v;
}

std::vector<std::size_t> ByteReader::u64_vec() {
  const std::uint64_t n = u64();
  need(n * 8);
  std::vector<std::size_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = u64();
  return v;
}

// --- ArtifactWriter ----------------------------------------------------------

void ArtifactWriter::add_section(ArtifactSection id,
                                 std::vector<std::uint8_t> payload) {
  YOSO_REQUIRE(!has_section(id), "artifact: duplicate section 0x",
               static_cast<std::uint32_t>(id));
  sections_.emplace_back(id, std::move(payload));
}

bool ArtifactWriter::has_section(ArtifactSection id) const {
  for (const auto& [sid, payload] : sections_)
    if (sid == id) return true;
  return false;
}

std::vector<std::uint8_t> ArtifactWriter::to_bytes() const {
  const std::size_t table_size = sections_.size() * kTableEntrySize;
  std::size_t offset = kHeaderSize + table_size;
  offset = (offset + kPayloadAlign - 1) & ~(kPayloadAlign - 1);

  // Section table + total size first (offsets depend on payload sizes).
  std::vector<std::uint8_t> table(table_size);
  std::size_t cursor = offset;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const auto& [id, payload] = sections_[i];
    std::uint8_t* e = table.data() + i * kTableEntrySize;
    put_u32(e + 0, static_cast<std::uint32_t>(id));
    put_u32(e + 4, 0);  // reserved
    put_u64(e + 8, cursor);
    put_u64(e + 16, payload.size());
    put_u64(e + 24, fnv1a64(payload));
    cursor += payload.size();
    cursor = (cursor + kPayloadAlign - 1) & ~(kPayloadAlign - 1);
  }
  const std::size_t file_size = cursor;

  std::vector<std::uint8_t> out(file_size, 0);
  std::uint8_t* h = out.data();
  put_u32(h + 0, kArtifactMagic);
  put_u16(h + 4, kArtifactVersionMajor);
  put_u16(h + 6, kArtifactVersionMinor);
  put_u32(h + 8, static_cast<std::uint32_t>(sections_.size()));
  put_u32(h + 12, 0);  // reserved
  put_u64(h + 16, file_size);
  put_u32(h + 24, crc32(table));
  // header_crc32 covers bytes [0, 28) — everything before itself.
  put_u32(h + 28, crc32(std::span<const std::uint8_t>(out.data(), 28)));

  std::memcpy(out.data() + kHeaderSize, table.data(), table.size());
  cursor = offset;
  for (const auto& [id, payload] : sections_) {
    std::memcpy(out.data() + cursor, payload.data(), payload.size());
    cursor += payload.size();
    cursor = (cursor + kPayloadAlign - 1) & ~(kPayloadAlign - 1);
  }
  return out;
}

void ArtifactWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = to_bytes();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    YOSO_REQUIRE(f.good(), "artifact: cannot open '", tmp, "' for writing");
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    YOSO_REQUIRE(f.good(), "artifact: short write to '", tmp, "'");
  }
  YOSO_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "artifact: cannot rename '", tmp, "' to '", path, "'");
}

// --- ArtifactReader ----------------------------------------------------------

ArtifactReader::ArtifactReader(ArtifactReader&& other) noexcept
    : owned_(std::move(other.owned_)),
      map_addr_(other.map_addr_),
      map_len_(other.map_len_),
      version_major_(other.version_major_),
      version_minor_(other.version_minor_),
      sections_(std::move(other.sections_)) {
  other.map_addr_ = nullptr;
  other.map_len_ = 0;
}

ArtifactReader& ArtifactReader::operator=(ArtifactReader&& other) noexcept {
  if (this != &other) {
    if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
    owned_ = std::move(other.owned_);
    map_addr_ = other.map_addr_;
    map_len_ = other.map_len_;
    version_major_ = other.version_major_;
    version_minor_ = other.version_minor_;
    sections_ = std::move(other.sections_);
    other.map_addr_ = nullptr;
    other.map_len_ = 0;
  }
  return *this;
}

ArtifactReader::~ArtifactReader() {
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
}

ArtifactReader ArtifactReader::from_file(const std::string& path) {
  ArtifactReader reader;
  const int fd = ::open(path.c_str(), O_RDONLY);
  YOSO_REQUIRE(fd >= 0, "artifact: cannot open '", path, "'");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    YOSO_REQUIRE(false, "artifact: cannot stat '", path, "' or file empty");
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the pages alive
  if (addr != MAP_FAILED) {
    reader.map_addr_ = addr;
    reader.map_len_ = len;
    try {
      reader.parse(std::span<const std::uint8_t>(
          static_cast<const std::uint8_t*>(addr), len));
    } catch (...) {
      // ~ArtifactReader on the moved-from local won't run; clean up here.
      ::munmap(addr, len);
      reader.map_addr_ = nullptr;
      throw;
    }
    return reader;
  }
  // mmap unavailable (exotic filesystem): buffered fallback.
  std::ifstream f(path, std::ios::binary);
  YOSO_REQUIRE(f.good(), "artifact: cannot open '", path, "'");
  reader.owned_.resize(len);
  f.read(reinterpret_cast<char*>(reader.owned_.data()),
         static_cast<std::streamsize>(len));
  YOSO_REQUIRE(f.gcount() == st.st_size, "artifact: short read from '", path,
               "'");
  reader.parse(reader.owned_);
  return reader;
}

ArtifactReader ArtifactReader::from_bytes(std::vector<std::uint8_t> bytes) {
  ArtifactReader reader;
  reader.owned_ = std::move(bytes);
  reader.parse(reader.owned_);
  return reader;
}

void ArtifactReader::parse(std::span<const std::uint8_t> bytes) {
  YOSO_REQUIRE(bytes.size() >= kHeaderSize,
               "artifact: file smaller than the 32-byte header (",
               bytes.size(), " bytes)");
  const std::uint8_t* h = bytes.data();
  YOSO_REQUIRE(get_u32(h + 0) == kArtifactMagic,
               "artifact: bad magic (not a YART file)");
  version_major_ = get_u16(h + 4);
  version_minor_ = get_u16(h + 6);
  YOSO_REQUIRE(version_major_ == kArtifactVersionMajor,
               "artifact: incompatible format version ", version_major_, ".",
               version_minor_, " (this build reads ", kArtifactVersionMajor,
               ".x)");
  const std::uint32_t count = get_u32(h + 8);
  const std::uint64_t file_size = get_u64(h + 16);
  const std::uint32_t table_crc = get_u32(h + 24);
  const std::uint32_t header_crc = get_u32(h + 28);
  YOSO_REQUIRE(crc32(bytes.first(28)) == header_crc,
               "artifact: header checksum mismatch (corrupt file)");
  YOSO_REQUIRE(file_size == bytes.size(), "artifact: header claims ",
               file_size, " bytes, file has ", bytes.size());
  const std::size_t table_size = count * kTableEntrySize;
  YOSO_REQUIRE(kHeaderSize + table_size <= bytes.size(),
               "artifact: section table exceeds file size");
  const auto table = bytes.subspan(kHeaderSize, table_size);
  YOSO_REQUIRE(crc32(table) == table_crc,
               "artifact: section-table checksum mismatch (corrupt file)");

  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* e = table.data() + i * kTableEntrySize;
    const std::uint32_t id = get_u32(e + 0);
    const std::uint64_t offset = get_u64(e + 8);
    const std::uint64_t size = get_u64(e + 16);
    const std::uint64_t checksum = get_u64(e + 24);
    YOSO_REQUIRE(offset <= bytes.size() && size <= bytes.size() - offset,
                 "artifact: section 0x", id, " extends past end of file");
    const auto payload = bytes.subspan(offset, size);
    YOSO_REQUIRE(fnv1a64(payload) == checksum, "artifact: section 0x", id,
                 " checksum mismatch (corrupt file)");
    for (const auto& [sid, span] : sections_)
      YOSO_REQUIRE(sid != id, "artifact: duplicate section 0x", id);
    sections_.emplace_back(id, payload);
  }
}

bool ArtifactReader::has_section(ArtifactSection id) const {
  for (const auto& [sid, span] : sections_)
    if (sid == static_cast<std::uint32_t>(id)) return true;
  return false;
}

std::vector<std::uint32_t> ArtifactReader::section_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(sections_.size());
  for (const auto& [sid, span] : sections_) ids.push_back(sid);
  return ids;
}

std::span<const std::uint8_t> ArtifactReader::section(
    ArtifactSection id) const {
  for (const auto& [sid, span] : sections_)
    if (sid == static_cast<std::uint32_t>(id)) return span;
  YOSO_REQUIRE(false, "artifact: missing section 0x",
               static_cast<std::uint32_t>(id));
  return {};
}

// --- Section codecs ----------------------------------------------------------

void encode_skeleton(ByteWriter& w, const NetworkSkeleton& skeleton) {
  w.u32(static_cast<std::uint32_t>(skeleton.cells.size()));
  for (CellKind k : skeleton.cells) w.u8(static_cast<std::uint8_t>(k));
  w.i32(skeleton.stem_channels);
  w.i32(skeleton.input_height);
  w.i32(skeleton.input_width);
  w.i32(skeleton.input_channels);
  w.i32(skeleton.num_classes);
}

NetworkSkeleton decode_skeleton(ByteReader& r) {
  NetworkSkeleton s;
  const std::uint32_t cells = r.u32();
  s.cells.reserve(cells);
  for (std::uint32_t i = 0; i < cells; ++i) {
    const std::uint8_t k = r.u8();
    YOSO_REQUIRE(k <= static_cast<std::uint8_t>(CellKind::kReduction),
                 "artifact: invalid cell kind ", k);
    s.cells.push_back(static_cast<CellKind>(k));
  }
  s.stem_channels = r.i32();
  s.input_height = r.i32();
  s.input_width = r.i32();
  s.input_channels = r.i32();
  s.num_classes = r.i32();
  YOSO_REQUIRE(!s.cells.empty() && s.stem_channels > 0 &&
                   s.input_height > 0 && s.input_width > 0 &&
                   s.input_channels > 0 && s.num_classes > 0,
               "artifact: skeleton fields out of range");
  return s;
}

namespace {

void encode_matrix(ByteWriter& w, const Matrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  w.f64_vec(m.data());
}

Matrix decode_matrix(ByteReader& r) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  const std::vector<double> data = r.f64_vec();
  if (rows == 0 && cols == 0 && data.empty()) return Matrix();
  YOSO_REQUIRE(rows > 0 && cols > 0 && data.size() == rows * cols,
               "artifact: matrix shape ", rows, "x", cols, " does not match ",
               data.size(), " elements");
  Matrix m(rows, cols);
  std::copy(data.begin(), data.end(), m.data().begin());
  return m;
}

}  // namespace

void encode_gp_state(ByteWriter& w, const GpRegressorState& state) {
  w.u32(static_cast<std::uint32_t>(state.backend));
  w.u8(state.tune ? 1 : 0);
  w.u64(state.inducing_target);
  w.f64(state.hp.lengthscale);
  w.f64(state.hp.signal_variance);
  w.f64(state.hp.noise_variance);
  w.f64_vec(state.scaler_mean);
  w.f64_vec(state.scaler_std);
  encode_matrix(w, state.train_x);
  w.f64_vec(state.alpha);
  encode_matrix(w, state.chol_lower);
  encode_matrix(w, state.chol_kmm_lower);
  w.f64_vec(state.b);
  w.u64_vec(state.inducing_idx);
  w.f64(state.y_mean);
  w.f64(state.lml);
  w.u64(state.updates_applied);
}

GpRegressorState decode_gp_state(ByteReader& r) {
  GpRegressorState s;
  const std::uint32_t backend = r.u32();
  YOSO_REQUIRE(backend == static_cast<std::uint32_t>(GpBackend::kExact) ||
                   backend == static_cast<std::uint32_t>(GpBackend::kSparse),
               "artifact: invalid GP backend tag ", backend);
  s.backend = static_cast<GpBackend>(backend);
  s.tune = r.u8() != 0;
  s.inducing_target = r.u64();
  s.hp.lengthscale = r.f64();
  s.hp.signal_variance = r.f64();
  s.hp.noise_variance = r.f64();
  s.scaler_mean = r.f64_vec();
  s.scaler_std = r.f64_vec();
  s.train_x = decode_matrix(r);
  s.alpha = r.f64_vec();
  s.chol_lower = decode_matrix(r);
  s.chol_kmm_lower = decode_matrix(r);
  s.b = r.f64_vec();
  s.inducing_idx = r.u64_vec();
  s.y_mean = r.f64();
  s.lml = r.f64();
  s.updates_applied = r.u64();
  return s;
}

void encode_accuracy_model(ByteWriter& w, const AccuracyModel& model) {
  const AccuracyModelParams& p = model.params();
  w.f64(p.base_error);
  w.f64(p.capacity_weight);
  w.f64(p.undersize_weight);
  w.f64(p.undersize_knee);
  w.f64(p.conv_weight);
  w.f64(p.dw_weight);
  w.f64(p.k5_weight);
  w.f64(p.pool_penalty);
  w.f64(p.pool_useful_frac);
  w.f64(p.depth_weight);
  w.f64(p.depth_sat);
  w.f64(p.width_weight);
  w.f64(p.error_floor);
  w.f64(p.error_ceil);
  w.f64(p.noise_sigma);
  w.f64(p.hypernet_noise_sigma);
  w.f64(p.hypernet_offset);
  w.f64(p.hypernet_scale);
  w.u64(model.seed());
}

AccuracyModel decode_accuracy_model(ByteReader& r,
                                    const NetworkSkeleton& skeleton) {
  AccuracyModelParams p;
  p.base_error = r.f64();
  p.capacity_weight = r.f64();
  p.undersize_weight = r.f64();
  p.undersize_knee = r.f64();
  p.conv_weight = r.f64();
  p.dw_weight = r.f64();
  p.k5_weight = r.f64();
  p.pool_penalty = r.f64();
  p.pool_useful_frac = r.f64();
  p.depth_weight = r.f64();
  p.depth_sat = r.f64();
  p.width_weight = r.f64();
  p.error_floor = r.f64();
  p.error_ceil = r.f64();
  p.noise_sigma = r.f64();
  p.hypernet_noise_sigma = r.f64();
  p.hypernet_offset = r.f64();
  p.hypernet_scale = r.f64();
  const std::uint64_t seed = r.u64();
  return AccuracyModel(skeleton, p, seed);
}

// --- High-level bundles ------------------------------------------------------

void save_fast_evaluator(const std::string& path, const FastEvaluator& fast,
                         const std::string& producer,
                         const std::string& note) {
  const PerfPredictorState predictor = fast.predictor().export_state();

  ArtifactWriter writer;
  {
    ByteWriter w;
    w.str(producer);
    w.str(note);
    writer.add_section(ArtifactSection::kMeta, w.take());
  }
  {
    ByteWriter w;
    encode_skeleton(w, predictor.skeleton);
    writer.add_section(ArtifactSection::kSkeleton, w.take());
  }
  {
    ByteWriter w;
    encode_accuracy_model(w, fast.accuracy_model());
    writer.add_section(ArtifactSection::kAccuracyModel, w.take());
  }
  {
    ByteWriter w;
    encode_gp_state(w, predictor.latency);
    writer.add_section(ArtifactSection::kGpLatency, w.take());
  }
  {
    ByteWriter w;
    encode_gp_state(w, predictor.energy);
    writer.add_section(ArtifactSection::kGpEnergy, w.take());
  }
  writer.write_file(path);
}

FastEvaluatorArtifact load_fast_evaluator_artifact(const std::string& path) {
  return decode_fast_evaluator(ArtifactReader::from_file(path));
}

FastEvaluatorArtifact decode_fast_evaluator(const ArtifactReader& reader) {
  FastEvaluatorArtifact bundle;
  {
    ByteReader r(reader.section(ArtifactSection::kMeta));
    bundle.producer = r.str();
    bundle.note = r.str();
  }
  {
    ByteReader r(reader.section(ArtifactSection::kSkeleton));
    bundle.skeleton = decode_skeleton(r);
    YOSO_REQUIRE(r.done(), "artifact: trailing bytes in skeleton section");
  }
  {
    ByteReader r(reader.section(ArtifactSection::kAccuracyModel));
    const AccuracyModel model = decode_accuracy_model(r, bundle.skeleton);
    bundle.accuracy_params = model.params();
    bundle.accuracy_seed = model.seed();
    YOSO_REQUIRE(r.done(),
                 "artifact: trailing bytes in accuracy-model section");
  }
  bundle.predictor.skeleton = bundle.skeleton;
  {
    ByteReader r(reader.section(ArtifactSection::kGpLatency));
    bundle.predictor.latency = decode_gp_state(r);
    YOSO_REQUIRE(r.done(), "artifact: trailing bytes in latency-GP section");
  }
  {
    ByteReader r(reader.section(ArtifactSection::kGpEnergy));
    bundle.predictor.energy = decode_gp_state(r);
    YOSO_REQUIRE(r.done(), "artifact: trailing bytes in energy-GP section");
  }
  return bundle;
}

FastEvaluator make_fast_evaluator(const FastEvaluatorArtifact& bundle,
                                  ExecContextPtr exec) {
  // from_state re-validates every shape contract, so a hand-edited payload
  // that survived the checksums is still rejected here.
  return FastEvaluator(
      AccuracyModel(bundle.skeleton, bundle.accuracy_params,
                    bundle.accuracy_seed),
      PerformancePredictor::from_state(bundle.predictor), std::move(exec));
}

// --- HyperNet weights --------------------------------------------------------

void add_hypernet_section(ArtifactWriter& writer, PathNetwork& net) {
  std::vector<Param*> params;
  net.collect_params(params);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    YOSO_REQUIRE(p != nullptr, "artifact: null parameter from HyperNet");
    const std::vector<int>& shape = p->value.shape();
    w.u32(static_cast<std::uint32_t>(shape.size()));
    for (int d : shape) w.i32(d);
    w.f32_vec(p->value.data());
  }
  writer.add_section(ArtifactSection::kHyperNet, w.take());
}

void load_hypernet_section(const ArtifactReader& reader, PathNetwork& net) {
  std::vector<Param*> params;
  net.collect_params(params);
  ByteReader r(reader.section(ArtifactSection::kHyperNet));
  const std::uint32_t count = r.u32();
  YOSO_REQUIRE(count == params.size(), "artifact: HyperNet has ",
               params.size(), " materialised parameters, section holds ",
               count, " (drive the same paths before loading)");
  for (std::uint32_t i = 0; i < count; ++i) {
    Param* p = params[i];
    YOSO_REQUIRE(p != nullptr, "artifact: null parameter from HyperNet");
    const std::uint32_t rank = r.u32();
    std::vector<int> shape(rank);
    for (std::uint32_t d = 0; d < rank; ++d) shape[d] = r.i32();
    YOSO_REQUIRE(shape == p->value.shape(),
                 "artifact: HyperNet parameter ", i, " shape mismatch");
    const std::vector<float> data = r.f32_vec();
    YOSO_REQUIRE(data.size() == p->value.numel(),
                 "artifact: HyperNet parameter ", i, " size mismatch");
    std::copy(data.begin(), data.end(), p->value.data().begin());
  }
  YOSO_REQUIRE(r.done(), "artifact: trailing bytes in HyperNet section");
}

}  // namespace yoso
