#include "core/alt_search.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "arch/network.h"
#include "core/design_space.h"
#include "core/search.h"
#include "linalg/matrix.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "util/rng.h"

namespace yoso {

double expected_improvement(double mu, double variance, double best) {
  const double sigma = std::sqrt(std::max(variance, 1e-18));
  const double z = (mu - best) / sigma;
  const double phi =
      std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
  const double cdf = 0.5 * std::erfc(-z / std::numbers::sqrt2);
  return (mu - best) * cdf + sigma * phi;
}

// ------------------------------------------------------------ evolution

void EvolutionarySearch::search(SearchLoop& loop, Rng& rng) {
  const std::vector<int> cards = space_.cardinalities();

  struct Member {
    std::vector<int> actions;
    double reward = 0.0;
  };
  std::deque<Member> population;

  for (std::size_t it = 0; it < options_.iterations; ++it) {
    Member child;
    if (population.size() < evolution_.population) {
      // Warm-up: random individuals until the population is full.
      child.actions.resize(cards.size());
      for (std::size_t a = 0; a < cards.size(); ++a)
        child.actions[a] = rng.uniform_int(0, cards[a] - 1);
    } else {
      // Tournament: best of `tournament` random members is the parent.
      const Member* parent = nullptr;
      for (std::size_t s = 0; s < evolution_.tournament; ++s) {
        const Member& m = population[rng.uniform_index(population.size())];
        if (parent == nullptr || m.reward > parent->reward) parent = &m;
      }
      child.actions = parent->actions;
      // Mutate: each action flips with prob mutation_rate / num_actions,
      // with at least one forced flip.
      bool mutated = false;
      const double p = evolution_.mutation_rate /
                       static_cast<double>(cards.size());
      for (std::size_t a = 0; a < cards.size(); ++a) {
        if (cards[a] > 1 && rng.bernoulli(p)) {
          child.actions[a] = rng.uniform_int(0, cards[a] - 1);
          mutated = true;
        }
      }
      if (!mutated) {
        // Force one mutation on a non-trivial action.
        std::size_t a = rng.uniform_index(cards.size());
        while (cards[a] <= 1) a = rng.uniform_index(cards.size());
        child.actions[a] = rng.uniform_int(0, cards[a] - 1);
      }
    }
    child.reward = loop.submit(space_.decode(child.actions));
    population.push_back(std::move(child));
    if (population.size() > evolution_.population)
      population.pop_front();  // aging: the oldest dies
  }
}

// -------------------------------------------------------------- BayesOpt

void BayesOptSearch::search(SearchLoop& loop, Rng& rng) {
  // Observations (features -> reward), windowed.
  std::deque<std::pair<std::vector<double>, double>> observations;
  GpRegressor gp;
  bool gp_ready = false;
  double best_reward = -1e300;
  const NetworkSkeleton skeleton = default_skeleton();

  auto features_of = [&](const CandidateDesign& c) {
    return codesign_features(c.genotype, c.config, skeleton);
  };

  auto refit = [&]() {
    if (observations.size() < bayes_.initial_random) return;
    Matrix x(observations.size(), observations.front().first.size());
    std::vector<double> y;
    y.reserve(observations.size());
    for (std::size_t r = 0; r < observations.size(); ++r) {
      for (std::size_t c = 0; c < observations[r].first.size(); ++c)
        x(r, c) = observations[r].first[c];
      y.push_back(observations[r].second);
    }
    gp.fit(x, y);
    gp_ready = true;
  };

  for (std::size_t it = 0; it < options_.iterations; ++it) {
    CandidateDesign chosen;
    if (!gp_ready) {
      chosen = space_.random_candidate(rng);
    } else {
      // Maximise EI over a random candidate pool.
      double best_ei = -1.0;
      for (std::size_t k = 0; k < bayes_.acquisition_pool; ++k) {
        const CandidateDesign c = space_.random_candidate(rng);
        const auto [mu, var] = gp.predict_with_variance(features_of(c));
        const double ei = expected_improvement(mu, var, best_reward);
        if (ei > best_ei) {
          best_ei = ei;
          chosen = c;
        }
      }
    }

    const double reward = loop.submit(chosen);
    best_reward = std::max(best_reward, reward);

    observations.emplace_back(features_of(chosen), reward);
    if (observations.size() > bayes_.train_window) observations.pop_front();
    if (observations.size() >= bayes_.initial_random &&
        (it % bayes_.refit_every == 0 || !gp_ready))
      refit();
  }
}

}  // namespace yoso
