#include "core/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/search.h"
#include "core/serialize.h"

namespace yoso {

namespace {

constexpr const char* kTraceHeader =
    "iteration,reward,accuracy,latency_ms,energy_mj,candidate";

std::vector<std::string> split_line(const std::string& line, char sep,
                                    std::size_t expect, std::size_t lineno) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == sep && fields.size() + 1 < expect) {
      // The final field (the candidate) may itself contain commas inside
      // the genotype grammar, so only the first expect-1 separators split.
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  if (fields.size() != expect)
    throw std::invalid_argument("trace csv: line " + std::to_string(lineno) +
                                ": expected " + std::to_string(expect) +
                                " fields");
  return fields;
}

double parse_double(const std::string& s, std::size_t lineno) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("trace csv: line " + std::to_string(lineno) +
                                ": bad number '" + s + "'");
  }
}

}  // namespace

void write_trace_csv(std::ostream& os, const SearchResult& result) {
  os << kTraceHeader << "\n";
  for (const SearchTracePoint& p : result.trace) {
    os << p.iteration << "," << p.reward << "," << p.result.accuracy << ","
       << p.result.latency_ms << "," << p.result.energy_mj << ","
       << serialize_candidate(p.candidate) << "\n";
  }
}

void write_finalists_csv(std::ostream& os, const SearchResult& result) {
  os << "rank,fast_reward,accurate_reward,accuracy,latency_ms,energy_mj,"
        "feasible,candidate\n";
  for (std::size_t i = 0; i < result.finalists.size(); ++i) {
    const RankedCandidate& f = result.finalists[i];
    os << i << "," << f.fast_reward << "," << f.accurate_reward << ","
       << f.accurate_result.accuracy << "," << f.accurate_result.latency_ms
       << "," << f.accurate_result.energy_mj << ","
       << (f.feasible ? 1 : 0) << "," << serialize_candidate(f.candidate)
       << "\n";
  }
}

std::vector<SearchTracePoint> read_trace_csv(std::istream& is) {
  std::vector<SearchTracePoint> trace;
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(is, line))
    throw std::invalid_argument("trace csv: empty stream");
  ++lineno;
  if (line != kTraceHeader)
    throw std::invalid_argument("trace csv: unexpected header '" + line +
                                "'");
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = split_line(line, ',', 6, lineno);
    SearchTracePoint p;
    p.iteration =
        static_cast<std::size_t>(parse_double(fields[0], lineno));
    p.reward = parse_double(fields[1], lineno);
    p.result.accuracy = parse_double(fields[2], lineno);
    p.result.latency_ms = parse_double(fields[3], lineno);
    p.result.energy_mj = parse_double(fields[4], lineno);
    p.candidate = parse_candidate(fields[5]);
    trace.push_back(std::move(p));
  }
  return trace;
}

}  // namespace yoso
