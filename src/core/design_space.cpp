#include "core/design_space.h"

#include <cmath>
#include <stdexcept>

#include "accel/config.h"
#include "arch/encoding.h"
#include "arch/genotype.h"
#include "util/rng.h"

namespace yoso {

std::string candidate_key(const CandidateDesign& candidate) {
  std::string key;
  key.reserve(4 * 2 * kInteriorNodes + 9);
  const auto put8 = [&key](int v) { key.push_back(static_cast<char>(v)); };
  const auto put16 = [&key](int v) {
    key.push_back(static_cast<char>(v & 0xff));
    key.push_back(static_cast<char>((v >> 8) & 0xff));
  };
  for (const CellGenotype* cell :
       {&candidate.genotype.normal, &candidate.genotype.reduction}) {
    for (const NodeSpec& n : cell->nodes) {
      put8(n.input_a);
      put8(n.input_b);
      put8(static_cast<int>(n.op_a));
      put8(static_cast<int>(n.op_b));
    }
  }
  put8(candidate.config.pe_rows);
  put8(candidate.config.pe_cols);
  put16(candidate.config.g_buf_kb);
  put16(candidate.config.r_buf_bytes);
  put8(static_cast<int>(candidate.config.dataflow));
  return key;
}

DesignSpace::DesignSpace(ConfigSpace config_space)
    : config_space_(std::move(config_space)), dnn_steps_(dnn_action_steps()) {}

int DesignSpace::num_actions() const {
  return kDnnActionCount + ConfigSpace::kActionCount;
}

std::vector<int> DesignSpace::cardinalities() const {
  std::vector<int> cards;
  cards.reserve(static_cast<std::size_t>(num_actions()));
  for (const ActionStep& s : dnn_steps_) cards.push_back(s.cardinality);
  for (int a = 0; a < ConfigSpace::kActionCount; ++a)
    cards.push_back(config_space_.cardinality(a));
  return cards;
}

std::vector<std::string> DesignSpace::action_names() const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_actions()));
  for (const ActionStep& s : dnn_steps_) names.push_back(s.name);
  names.push_back("hw.pe_shape");
  names.push_back("hw.g_buf");
  names.push_back("hw.r_buf");
  names.push_back("hw.dataflow");
  return names;
}

CandidateDesign DesignSpace::decode(const std::vector<int>& actions) const {
  if (actions.size() != static_cast<std::size_t>(num_actions()))
    throw std::invalid_argument("DesignSpace::decode: expected " +
                                std::to_string(num_actions()) + " actions");
  CandidateDesign c;
  c.genotype = decode_genotype(
      std::span<const int>(actions).first(kDnnActionCount));
  const std::vector<int> hw(actions.begin() + kDnnActionCount, actions.end());
  c.config = config_space_.decode(hw);
  return c;
}

std::vector<int> DesignSpace::encode(const CandidateDesign& candidate) const {
  std::vector<int> actions = encode_genotype(candidate.genotype);
  for (int a : config_space_.encode(candidate.config)) actions.push_back(a);
  return actions;
}

CandidateDesign DesignSpace::random_candidate(Rng& rng) const {
  CandidateDesign c;
  c.genotype = random_genotype(rng);
  std::vector<int> hw(ConfigSpace::kActionCount);
  for (int a = 0; a < ConfigSpace::kActionCount; ++a)
    hw[static_cast<std::size_t>(a)] =
        rng.uniform_int(0, config_space_.cardinality(a) - 1);
  c.config = config_space_.decode(hw);
  return c;
}

double DesignSpace::log10_size() const {
  return std::log10(genotype_space_size()) +
         std::log10(static_cast<double>(config_space_.size()));
}

}  // namespace yoso
