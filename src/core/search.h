#pragma once
// The YOSO search drivers (paper Fig 2, Steps 2-3).
//
// Step 2: a proposal strategy iterates — propose candidate designs, score
// them with the fast evaluator, feed the multi-objective reward back.
// Step 3: the top-N candidates by fast reward are re-scored with the
// accurate evaluator (full training + cycle-level simulation) and the best
// feasible one is the final solution.
//
// Every strategy (RL, random, and the evolutionary/BayesOpt drivers in
// core/alt_search.h) extends SearchDriver: the base class owns the run()
// pipeline — evaluator parallelism setup, the shared per-iteration
// bookkeeping (finalist pool, best-reward tracking, trace sampling) via
// SearchLoop, and the Step-3 rerank — while subclasses only implement the
// proposal loop.
//
// Batched evaluation: strategies submit K candidates per round through
// SearchLoop::submit(), which routes them to Evaluator::evaluate_batch()
// (parallel + memoized for FastEvaluator) and then applies all bookkeeping
// in proposal order.  Search output is therefore bit-identical across
// thread counts; see DESIGN.md "Threading model".

#include <limits>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "base/thread_annotations.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "predictor/gp.h"
#include "rl/controller.h"
#include "rl/reinforce.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace yoso {

/// One recorded search iteration.
struct SearchTracePoint {
  std::size_t iteration = 0;
  double reward = 0.0;
  EvalResult result;
  CandidateDesign candidate;
};

struct SearchOptions {
  std::size_t iterations = 3000;
  std::size_t top_n = 10;        ///< finalists for accurate reranking
  std::size_t trace_every = 10;  ///< record every k-th iteration (0 = never)
  RewardParams reward;           ///< Eq. 2 coefficients
  ControllerOptions controller;
  ReinforceOptions reinforce;
  std::uint64_t seed = 7;
  std::size_t batch_size = 1;  ///< candidates proposed & evaluated per round
  /// Performance-predictor backend the fast evaluator should be built with
  /// (yoso_cli's --predictor flag lands here so validate() owns the
  /// contract): kSparse caps the GPs at `inducing_points` inducing rows and
  /// unlocks online refinement.
  GpBackend predictor = GpBackend::kExact;
  std::size_t inducing_points = 512;  ///< sparse-backend inducing-set cap
  /// Online-refinement cadence: every `refine_every` submitted iterations
  /// the current round's best candidate is scored by the accurate evaluator
  /// and folded back into the fast evaluator via Evaluator::refine()
  /// (O(m^2) GP updates + memo-cache flush).  0 disables refinement.
  /// Requires the sparse predictor backend — validate() rejects the
  /// combination with exact, whose refine() is a guaranteed no-op.
  std::size_t refine_every = 0;
  /// Turns the observability layer on for this run: run() flips
  /// obs::set_enabled(true) before Step 2, so metrics and trace spans record
  /// (docs/OBSERVABILITY.md).  Off by default — instrumentation then costs
  /// one relaxed atomic load per site.  Never affects search output.
  bool observe = false;

  /// The one place the option contracts live: throws ContractViolation on
  /// an unusable combination (zero iterations, zero batch_size, zero
  /// top_n).  SearchDriver::run() calls this before doing anything, so
  /// every driver — and yoso_cli — rejects bad options identically.
  /// (Parallelism is no longer an option: pass an ExecContext to run().)
  void validate() const;
};

/// A reranked finalist.
struct RankedCandidate {
  CandidateDesign candidate;
  double fast_reward = 0.0;
  double accurate_reward = 0.0;
  EvalResult fast_result;
  EvalResult accurate_result;
  bool feasible = false;
};

struct SearchResult {
  std::vector<SearchTracePoint> trace;       ///< sampled iterations
  std::vector<RankedCandidate> finalists;    ///< top-N after reranking
  std::optional<RankedCandidate> best;       ///< best feasible finalist
  double best_fast_reward = -std::numeric_limits<double>::infinity();
  std::size_t iterations_run = 0;
  /// Accurate-simulator results folded back into the fast evaluator during
  /// Step 2 (0 unless refine_every was set).
  std::size_t refinements = 0;
};

/// Keeps the best-`capacity` *distinct* candidates seen so far, ranked by
/// fast reward.  Shared by all search drivers (RL, random, evolutionary,
/// Bayesian) so their Step-3 inputs are comparable.  Dedupe is a hash-set
/// lookup on the encoded candidate and the entry list stays sorted via
/// binary-search insertion, so offer() costs O(log capacity) amortised
/// instead of the old O(n) scan + full sort.
class FinalistPool {
 public:
  explicit FinalistPool(std::size_t capacity) : capacity_(capacity) {}

  void offer(const CandidateDesign& candidate, double reward,
             const EvalResult& result);

  /// Moves the collected finalists out (sorted by fast reward, desc).
  std::vector<RankedCandidate> take() {
    ThreadRoleGuard coordinator(role_);
    return std::move(entries_);
  }

 private:
  std::size_t capacity_;
  /// Offers must stay in proposal order for determinism, so the pool is
  /// coordinator-only state: entries_/seen_ are guarded by the serial role,
  /// never handed to evaluator workers.
  mutable ThreadRole role_;
  std::vector<RankedCandidate> entries_    // sorted by fast_reward desc
      YOSO_GUARDED_BY(role_);
  std::unordered_set<std::string> seen_    // keys of every offered design
      YOSO_GUARDED_BY(role_);
};

/// The per-iteration bookkeeping every driver shares: batch evaluation via
/// the evaluator's batched API, finalist offers, best-reward tracking and
/// trace sampling — all applied in proposal order, so results do not depend
/// on how the evaluator parallelizes internally.
class SearchLoop {
 public:
  /// `refiner` is the accurate evaluator driving online refinement; null
  /// (or options.refine_every == 0) leaves refinement off.
  SearchLoop(const SearchOptions& options, Evaluator& fast,
             SearchResult& result, Evaluator* refiner = nullptr)
      : options_(options),
        fast_(fast),
        result_(result),
        refiner_(refiner),
        pool_(options.top_n) {}

  /// Evaluates `batch` and applies the bookkeeping for each candidate in
  /// order; returns the per-candidate rewards.
  std::vector<double> submit(std::span<const CandidateDesign> batch);

  /// Single-candidate convenience for inherently sequential strategies.
  double submit(const CandidateDesign& candidate);

  std::size_t iterations_done() const {
    ThreadRoleGuard coordinator(role_);
    return iteration_;
  }
  std::vector<RankedCandidate> take_finalists() { return pool_.take(); }

 private:
  const SearchOptions& options_;
  Evaluator& fast_;
  SearchResult& result_;
  Evaluator* refiner_ = nullptr;
  FinalistPool pool_;
  /// Per-iteration bookkeeping (counters, best-reward, trace emission) is
  /// applied in submission order on the driving thread only; the role guard
  /// lets the compiler reject any future attempt to update it from a worker.
  mutable ThreadRole role_;
  std::size_t iteration_ YOSO_GUARDED_BY(role_) = 0;
};

/// Abstract base every search strategy implements.  run() is the template
/// method: it validates the options, injects the execution context, drives
/// the strategy's proposal loop against a SearchLoop, then reranks the
/// finalists.
class SearchDriver {
 public:
  SearchDriver(const DesignSpace& space, SearchOptions options)
      : space_(space), options_(std::move(options)) {}
  virtual ~SearchDriver() = default;

  /// Runs Step 2 against `fast`, then Step 3 against `accurate`.
  /// When `accurate` is null, finalists keep their fast scores.  A non-null
  /// `exec` is injected into both evaluators so they share its thread pool
  /// (util/exec_context.h); null leaves each evaluator's current context
  /// untouched.  Thread count never affects the result.
  SearchResult run(Evaluator& fast, Evaluator* accurate,
                   ExecContextPtr exec = nullptr);

  const SearchOptions& options() const { return options_; }

 protected:
  /// Strategy body: propose candidates and feed them through `loop` until
  /// options().iterations have been submitted.  `rng` is seeded with
  /// options().seed xor rng_salt().
  virtual void search(SearchLoop& loop, Rng& rng) = 0;

  /// Per-strategy RNG stream salt (keeps historical streams intact).
  virtual std::uint64_t rng_salt() const = 0;

  const DesignSpace& space_;
  SearchOptions options_;
};

/// The paper's Step-2 driver: LSTM controller + REINFORCE.  Proposes
/// options.batch_size episodes per round, evaluates the batch (pipelined
/// across the injected ExecContext), then applies feedback in proposal
/// order.
class YosoSearch : public SearchDriver {
 public:
  YosoSearch(const DesignSpace& space, SearchOptions options)
      : SearchDriver(space, std::move(options)) {}

 protected:
  void search(SearchLoop& loop, Rng& rng) override;
  std::uint64_t rng_salt() const override { return 0x5ca1ab1eull; }
};

/// Uniform random search over the same space with the same bookkeeping.
class RandomSearchDriver : public SearchDriver {
 public:
  RandomSearchDriver(const DesignSpace& space, SearchOptions options)
      : SearchDriver(space, std::move(options)) {}

 protected:
  void search(SearchLoop& loop, Rng& rng) override;
  std::uint64_t rng_salt() const override { return 0xdecafull; }
};

/// Shared Step-3 logic: rerank `finalists` (sorted by fast reward) with the
/// accurate evaluator and mark the best feasible candidate.  Finalists are
/// scored through the evaluator's batched API, so a parallel accurate
/// evaluator fans the rerank out across its pool.
void rerank_finalists(SearchResult& result, const RewardParams& reward,
                      Evaluator* accurate);

}  // namespace yoso
