#pragma once
// The YOSO search driver (paper Fig 2, Steps 2-3) plus a random-search
// driver with the identical interface for the Fig 6(a) comparison.
//
// Step 2: the RL controller iterates — propose actions, decode to a
// (DNN, accelerator) pair, score with the fast evaluator, feed the
// multi-objective reward back through REINFORCE.
// Step 3: the top-N candidates by fast reward are re-scored with the
// accurate evaluator (full training + cycle-level simulation) and the best
// feasible one is the final solution.

#include <optional>
#include <vector>

#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "rl/reinforce.h"
#include "util/rng.h"

namespace yoso {

/// One recorded search iteration.
struct SearchTracePoint {
  std::size_t iteration = 0;
  double reward = 0.0;
  EvalResult result;
  CandidateDesign candidate;
};

struct SearchOptions {
  std::size_t iterations = 3000;
  std::size_t top_n = 10;        ///< finalists for accurate reranking
  std::size_t trace_every = 10;  ///< record every k-th iteration
  RewardParams reward;           ///< Eq. 2 coefficients
  ControllerOptions controller;
  ReinforceOptions reinforce;
  std::uint64_t seed = 7;
};

/// A reranked finalist.
struct RankedCandidate {
  CandidateDesign candidate;
  double fast_reward = 0.0;
  double accurate_reward = 0.0;
  EvalResult fast_result;
  EvalResult accurate_result;
  bool feasible = false;
};

struct SearchResult {
  std::vector<SearchTracePoint> trace;       ///< sampled iterations
  std::vector<RankedCandidate> finalists;    ///< top-N after reranking
  std::optional<RankedCandidate> best;       ///< best feasible finalist
  double best_fast_reward = 0.0;
  std::size_t iterations_run = 0;
};

class YosoSearch {
 public:
  YosoSearch(const DesignSpace& space, SearchOptions options);

  /// Runs Step 2 against `fast`, then Step 3 against `accurate`.
  /// When `accurate` is null, finalists keep their fast scores.
  SearchResult run(Evaluator& fast, Evaluator* accurate);

 private:
  const DesignSpace& space_;
  SearchOptions options_;
};

/// Uniform random search over the same space with the same bookkeeping.
class RandomSearchDriver {
 public:
  RandomSearchDriver(const DesignSpace& space, SearchOptions options);

  SearchResult run(Evaluator& fast, Evaluator* accurate);

 private:
  const DesignSpace& space_;
  SearchOptions options_;
};

/// Shared Step-3 logic: rerank `finalists` (sorted by fast reward) with the
/// accurate evaluator and mark the best feasible candidate.
void rerank_finalists(SearchResult& result, const RewardParams& reward,
                      Evaluator* accurate);

/// Keeps the best-`capacity` *distinct* candidates seen so far, ranked by
/// fast reward.  Shared by all search drivers (RL, random, evolutionary,
/// Bayesian) so their Step-3 inputs are comparable.
class FinalistPool {
 public:
  explicit FinalistPool(std::size_t capacity) : capacity_(capacity) {}

  void offer(const CandidateDesign& candidate, double reward,
             const EvalResult& result);

  /// Moves the collected finalists out (sorted by fast reward, desc).
  std::vector<RankedCandidate> take() { return std::move(entries_); }

 private:
  std::size_t capacity_;
  std::vector<RankedCandidate> entries_;
};

}  // namespace yoso
