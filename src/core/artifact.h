#pragma once
// Binary artifact format: trained Step-1/Step-2 products as checksummed,
// memory-mapped files (docs/ARTIFACTS.md is the normative byte-level spec;
// DESIGN.md §17 has the design rationale).
//
// A YOSO artifact is a little-endian container: a fixed 32-byte header
// (magic "YART", format version, section count, CRC-32s), a section table
// (one 32-byte entry per section: id, offset, size, FNV-1a 64 payload
// checksum), then the 8-byte-aligned payloads.  Sections carry the fitted
// GP pair of the performance predictor (exact or sparse backend), the
// accuracy-model parameters, the network skeleton, optional HyperNet
// weights from src/nn, and — for yoso_serve — a snapshot of the job table.
//
// The contract is load-once / verify-by-checksum / fail-loud:
//
//   * ArtifactReader::from_file memory-maps the file read-only and verifies
//     the magic, version, both header CRCs and every section's FNV-1a
//     checksum before handing out a single byte; corruption or a version
//     mismatch throws ContractViolation, never a partially-decoded model.
//   * Decoding validates every cross-field shape contract (via
//     GpRegressor::from_state etc.), so a structurally valid file with an
//     inconsistent payload is rejected too.
//   * Round-trips are bit-exact: doubles/floats are stored as raw IEEE-754
//     little-endian bytes and derived structures (packed kernel panels,
//     training fingerprints) are recomputed by the same deterministic code
//     fit() runs, so a restored FastEvaluator evaluates bit-identically to
//     the one that was saved — the property yoso_serve's byte-stable
//     serving guarantee rests on.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "arch/network.h"
#include "core/evaluator.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "surrogate/accuracy_model.h"
#include "util/exec_context.h"

namespace yoso {

class PathNetwork;  // nn/network.h (artifact.cpp includes it)

/// File magic: the bytes 'Y' 'A' 'R' 'T' (read as a little-endian u32).
inline constexpr std::uint32_t kArtifactMagic = 0x54524159u;
/// Format version.  A major bump breaks compatibility (readers reject);
/// minor bumps are additive (readers accept any minor <= theirs).
inline constexpr std::uint16_t kArtifactVersionMajor = 1;
inline constexpr std::uint16_t kArtifactVersionMinor = 0;

/// Section identifiers.  Values are part of the on-disk format and never
/// reused; docs/ARTIFACTS.md lists them normatively and the docs gate
/// (tools/yoso_docs_check.py) fails when the two drift apart.
enum class ArtifactSection : std::uint32_t {
  kMeta = 0x01,           ///< producer string + free-form note
  kSkeleton = 0x02,       ///< NetworkSkeleton the models were fitted for
  kAccuracyModel = 0x03,  ///< AccuracyModelParams + residual seed
  kGpLatency = 0x04,      ///< fitted latency GpRegressorState
  kGpEnergy = 0x05,       ///< fitted energy GpRegressorState
  kHyperNet = 0x06,       ///< materialised PathNetwork parameter tensors
  kJobState = 0x07,       ///< yoso_serve job-table snapshot
};

/// FNV-1a 64-bit over `bytes` (the per-section payload checksum).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// CRC-32 (IEEE 802.3, reflected) over `bytes` (header + table checksums).
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append-only little-endian byte buffer the section codecs write into.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);
  /// u64 count prefix + raw IEEE-754 doubles.
  void f64_vec(std::span<const double> v);
  /// u64 count prefix + raw IEEE-754 floats.
  void f32_vec(std::span<const float> v);
  /// u64 count prefix + u64 values.
  void u64_vec(std::span<const std::size_t> v);

  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over a section payload.  Every read
/// past the end throws ContractViolation ("truncated section") instead of
/// returning garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32();
  double f64();
  std::string str();
  std::vector<double> f64_vec();
  std::vector<float> f32_vec();
  std::vector<std::size_t> u64_vec();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Assembles an artifact in memory, then writes it in one pass.  Sections
/// keep insertion order in the file; ids must be unique.
class ArtifactWriter {
 public:
  /// Adds one section (ContractViolation on a duplicate id).
  void add_section(ArtifactSection id, std::vector<std::uint8_t> payload);
  bool has_section(ArtifactSection id) const;
  std::size_t section_count() const { return sections_.size(); }

  /// Serializes header + table + payloads (8-byte-aligned, zero-padded).
  std::vector<std::uint8_t> to_bytes() const;
  /// to_bytes() to `path` atomically (write temp + rename); throws
  /// ContractViolation when the file cannot be written.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::pair<ArtifactSection, std::vector<std::uint8_t>>>
      sections_;
};

/// Verifying reader.  from_file memory-maps the artifact read-only (one
/// load shared by every consumer; falls back to a buffered read where mmap
/// is unavailable) and checks magic, version, CRCs and every section
/// checksum up front.
class ArtifactReader {
 public:
  static ArtifactReader from_file(const std::string& path);
  static ArtifactReader from_bytes(std::vector<std::uint8_t> bytes);

  std::uint16_t version_major() const { return version_major_; }
  std::uint16_t version_minor() const { return version_minor_; }
  std::size_t section_count() const { return sections_.size(); }

  bool has_section(ArtifactSection id) const;
  /// Payload view (valid for the reader's lifetime); ContractViolation when
  /// the section is absent.
  std::span<const std::uint8_t> section(ArtifactSection id) const;
  /// Section ids in file order (lets yoso_serve's snapshot writer copy
  /// every section of its source artifact forward verbatim, including ids
  /// this build does not know).
  std::vector<std::uint32_t> section_ids() const;

  ArtifactReader(ArtifactReader&&) noexcept;
  ArtifactReader& operator=(ArtifactReader&&) noexcept;
  ArtifactReader(const ArtifactReader&) = delete;
  ArtifactReader& operator=(const ArtifactReader&) = delete;
  ~ArtifactReader();

 private:
  ArtifactReader() = default;
  void parse(std::span<const std::uint8_t> bytes);

  std::vector<std::uint8_t> owned_;  // from_bytes / mmap fallback
  void* map_addr_ = nullptr;         // mmap base (null when owned_ backs it)
  std::size_t map_len_ = 0;
  std::uint16_t version_major_ = 0;
  std::uint16_t version_minor_ = 0;
  // (id, payload view) in file order; lookups scan — section counts are
  // single digits.
  std::vector<std::pair<std::uint32_t, std::span<const std::uint8_t>>>
      sections_;
};

// --- Section codecs ---------------------------------------------------------

void encode_skeleton(ByteWriter& w, const NetworkSkeleton& skeleton);
NetworkSkeleton decode_skeleton(ByteReader& r);

void encode_gp_state(ByteWriter& w, const GpRegressorState& state);
GpRegressorState decode_gp_state(ByteReader& r);

void encode_accuracy_model(ByteWriter& w, const AccuracyModel& model);
/// Rebuilds the model for `skeleton` (the skeleton lives in its own
/// section; the payload holds params + seed).
AccuracyModel decode_accuracy_model(ByteReader& r,
                                    const NetworkSkeleton& skeleton);

// --- High-level bundles ------------------------------------------------------

/// The decoded contents of a fast-evaluator artifact: everything needed to
/// rebuild a FastEvaluator without re-running Step 1.
struct FastEvaluatorArtifact {
  std::string producer;  ///< kMeta: who wrote the file ("yoso_cli", ...)
  std::string note;      ///< kMeta: free-form provenance line
  NetworkSkeleton skeleton;
  AccuracyModelParams accuracy_params;
  std::uint64_t accuracy_seed = 0;
  PerfPredictorState predictor;
};

/// Serializes a fitted fast evaluator (kMeta + kSkeleton + kAccuracyModel +
/// kGpLatency + kGpEnergy) to `path`.
void save_fast_evaluator(const std::string& path, const FastEvaluator& fast,
                         const std::string& producer,
                         const std::string& note = "");

/// Loads and fully validates a fast-evaluator artifact (ContractViolation
/// on a missing section, checksum failure, version or shape mismatch).
FastEvaluatorArtifact load_fast_evaluator_artifact(const std::string& path);

/// Same decode from an already-open reader (yoso_serve keeps the reader
/// mapped for snapshot support and decodes through this).
FastEvaluatorArtifact decode_fast_evaluator(const ArtifactReader& reader);

/// Rebuilds the evaluator from a decoded bundle.  Evaluations are
/// bit-identical to the evaluator that was saved.
FastEvaluator make_fast_evaluator(const FastEvaluatorArtifact& bundle,
                                  ExecContextPtr exec = nullptr);

// --- HyperNet weights --------------------------------------------------------

/// Appends a kHyperNet section holding every parameter tensor `net` has
/// materialised (shape + raw f32 data, collect_params order).
void add_hypernet_section(ArtifactWriter& writer, PathNetwork& net);

/// Loads kHyperNet into `net`, which must have materialised the same
/// parameter list (same count, same shapes — ContractViolation otherwise;
/// drive the same paths through forward() first, or train the same
/// schedule).  Restored weights are bit-identical.
void load_hypernet_section(const ArtifactReader& reader, PathNetwork& net);

}  // namespace yoso
