#include "core/two_stage.h"

#include <limits>

#include "accel/config.h"
#include "arch/zoo.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"

namespace yoso {

TwoStageRow two_stage_best_config(const ReferenceModel& model,
                                  const DesignSpace& space,
                                  AccurateEvaluator& evaluator,
                                  const RewardParams& reward) {
  TwoStageRow row;
  row.name = model.name;
  row.paper_test_error = model.paper_test_error;
  row.paper_search_gpu_days = model.paper_search_gpu_days;

  double best_reward = -std::numeric_limits<double>::infinity();
  double best_feasible_reward = -std::numeric_limits<double>::infinity();
  bool any_feasible = false;

  for (const AcceleratorConfig& config : space.config_space().enumerate()) {
    CandidateDesign candidate{model.genotype, config};
    const EvalResult r = evaluator.evaluate(candidate);
    const double score = reward.compute(r);
    const bool ok = reward.feasible(r);
    ++row.configs_evaluated;
    // Prefer feasible configs; among them (or among all, if none is
    // feasible) pick the best composite score.
    const bool better = ok ? (!any_feasible || score > best_feasible_reward)
                           : (!any_feasible && score > best_reward);
    if (better) {
      row.design = candidate;
      row.result = r;
      row.reward = score;
      row.feasible = ok;
      if (ok) {
        any_feasible = true;
        best_feasible_reward = score;
      } else {
        best_reward = score;
      }
    }
  }
  return row;
}

std::vector<TwoStageRow> two_stage_baseline(const DesignSpace& space,
                                            AccurateEvaluator& evaluator,
                                            const RewardParams& reward) {
  std::vector<TwoStageRow> rows;
  for (const ReferenceModel& model : reference_models())
    rows.push_back(two_stage_best_config(model, space, evaluator, reward));
  return rows;
}

}  // namespace yoso
