#pragma once
// Alternative search strategies over the same joint design space.
//
// Paper §III.B motivates the LSTM+RL searcher by claiming that "typical
// search methods such as Bayesian Optimization [and] Bandit algorithms ...
// behave like random search in high dimensional search space".  These
// drivers make that claim testable inside this framework:
//
//  * EvolutionarySearch — regularized evolution (tournament selection +
//    single-action mutation + aging), the method behind AmoebaNet;
//  * BayesOptSearch    — GP surrogate over design features with an
//    expected-improvement acquisition maximised over a random pool.
//
// Both extend SearchDriver, so they run through the same bookkeeping
// (trace, finalist pool, Step-3 rerank) as YosoSearch /
// RandomSearchDriver and results are directly comparable.  Their proposal
// loops are inherently sequential (each child depends on all previous
// rewards), so they submit one candidate at a time; options.batch_size is
// ignored, while an ExecContext passed to run() still parallelizes Step-1
// sampling and the Step-3 rerank.

#include <deque>

#include "core/design_space.h"
#include "core/search.h"
#include "util/rng.h"

namespace yoso {

struct EvolutionOptions {
  std::size_t population = 64;       ///< aging-queue capacity
  std::size_t tournament = 10;       ///< sampled contestants per step
  double mutation_rate = 1.0;        ///< expected mutated actions per child
};

/// Regularized evolution over the 44-action sequence.
class EvolutionarySearch : public SearchDriver {
 public:
  EvolutionarySearch(const DesignSpace& space, SearchOptions options,
                     EvolutionOptions evolution = {})
      : SearchDriver(space, std::move(options)), evolution_(evolution) {}

 protected:
  void search(SearchLoop& loop, Rng& rng) override;
  std::uint64_t rng_salt() const override { return 0xeull; }

 private:
  EvolutionOptions evolution_;
};

struct BayesOptOptions {
  std::size_t initial_random = 40;   ///< warm-up observations
  std::size_t refit_every = 25;      ///< GP refit cadence
  std::size_t train_window = 250;    ///< most recent observations kept
  std::size_t acquisition_pool = 64; ///< random candidates scored per step
};

/// GP-surrogate Bayesian optimisation with expected improvement.
class BayesOptSearch : public SearchDriver {
 public:
  BayesOptSearch(const DesignSpace& space, SearchOptions options,
                 BayesOptOptions bayes = {})
      : SearchDriver(space, std::move(options)), bayes_(bayes) {}

 protected:
  void search(SearchLoop& loop, Rng& rng) override;
  std::uint64_t rng_salt() const override { return 0xb0ull; }

 private:
  BayesOptOptions bayes_;
};

/// Expected improvement for a maximisation problem:
/// EI(mu, var, best) = (mu - best) Phi(z) + sigma phi(z), z = (mu-best)/sigma.
double expected_improvement(double mu, double variance, double best);

}  // namespace yoso
