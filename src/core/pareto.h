#pragma once
// Pareto-front utilities for multi-objective search analysis.
//
// Fig 6(b)/(c) argue that the RL search "gradually approaches the region
// close to the Pareto front".  These helpers make that claim measurable:
// extract the non-dominated set of evaluated candidates, compute the 2-D
// hypervolume indicator of a population against a reference point, and
// measure how far a point sits from a front.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/reward.h"

namespace yoso {

/// A point in minimisation space: (f1, f2), both to be minimised.
using ParetoPoint = std::pair<double, double>;

/// True when a dominates b (<= on both axes, < on at least one).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Full three-objective dominance over evaluations: higher accuracy,
/// lower latency, lower energy.
bool dominates(const EvalResult& a, const EvalResult& b);

/// Indices of the non-dominated subset (order of first appearance; exact
/// duplicates keep the first occurrence only).
std::vector<std::size_t> pareto_front_indices(
    std::span<const ParetoPoint> points);

/// Three-objective front over evaluations.
std::vector<std::size_t> pareto_front_indices(
    std::span<const EvalResult> results);

/// 2-D hypervolume (area dominated by the front, bounded by `reference`,
/// which must be dominated by every front point considered; points beyond
/// the reference are clipped out).  Larger is better.
double hypervolume_2d(std::span<const ParetoPoint> points,
                      const ParetoPoint& reference);

/// Euclidean distance from `p` to the closest point of `front`
/// (0 when p is on the front).  Front must be non-empty.
double distance_to_front(const ParetoPoint& p,
                         std::span<const ParetoPoint> front);

/// Projects evaluations onto the (error %, metric) minimisation plane.
enum class TradeoffMetric { kEnergy, kLatency };
std::vector<ParetoPoint> to_tradeoff_points(
    std::span<const EvalResult> results, TradeoffMetric metric);

}  // namespace yoso
