#include "core/evaluator.h"

#include <algorithm>
#include <string_view>

#include "accel/simulator.h"
#include "arch/network.h"
#include "base/contract.h"
#include "core/design_space.h"
#include "core/reward.h"
#include "obs/trace.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "surrogate/accuracy_model.h"
#include "util/exec_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace yoso {
namespace {

// Memoization stops growing past this many distinct designs (~100 MB worst
// case); further misses are still computed, just not retained.
constexpr std::size_t kMaxCacheEntries = 1u << 20;

// Misses stream through the worker/coordinator pipeline in chunks of this
// fixed size.  Fixed — never derived from the thread count or batch size —
// so the work decomposition (and therefore everything about the results)
// is identical at any parallelism.
constexpr std::size_t kPipelineChunk = 32;

}  // namespace

std::vector<EvalResult> Evaluator::evaluate_batch(
    std::span<const CandidateDesign> batch) {
  std::vector<EvalResult> results;
  results.reserve(batch.size());
  for (const CandidateDesign& c : batch) results.push_back(evaluate(c));
  return results;
}

FastEvaluator::FastEvaluator(const DesignSpace& space,
                             const NetworkSkeleton& skeleton,
                             const SystolicSimulator& simulator,
                             FastEvaluatorOptions options)
    : accuracy_(skeleton),
      predictor_(skeleton, options.predictor_backend,
                 options.inducing_points),
      exec_(options.exec != nullptr ? std::move(options.exec)
                                    : ExecContext::serial()) {
  Rng rng(options.seed);
  const auto samples =
      collect_samples(options.predictor_samples, simulator,
                      space.config_space(), skeleton, rng, &pool());
  predictor_.fit(samples);
}

FastEvaluator::FastEvaluator(const NetworkSkeleton& skeleton,
                             const std::vector<PerfSample>& samples,
                             GpBackend predictor_backend,
                             std::size_t inducing_points)
    : accuracy_(skeleton),
      predictor_(skeleton, predictor_backend, inducing_points),
      exec_(ExecContext::serial()) {
  predictor_.fit(samples);
}

FastEvaluator::FastEvaluator(AccuracyModel accuracy,
                             PerformancePredictor predictor,
                             ExecContextPtr exec)
    : accuracy_(std::move(accuracy)),
      predictor_(std::move(predictor)),
      exec_(exec != nullptr ? std::move(exec) : ExecContext::serial()) {
  YOSO_REQUIRE(predictor_.fitted(),
               "FastEvaluator: restored predictor is not fitted");
}

bool FastEvaluator::refine(const CandidateDesign& candidate,
                           const EvalResult& accurate) {
  if (!predictor_.refine(candidate.genotype, candidate.config,
                         accurate.latency_ms, accurate.energy_mj))
    return false;
  // Every memoized latency/energy prediction predates the refinement; a
  // stale hit would silently diverge from what evaluate() now computes, so
  // the whole cache goes.  Refinements are infrequent (every --refine-every
  // iterations) and misses repopulate it, so the cost is a short warm-up.
  clear_cache();
  obs::counter_add("eval.refinements", 1);
  return true;
}

void FastEvaluator::set_exec_context(ExecContextPtr exec) {
  exec_ = exec != nullptr ? std::move(exec) : ExecContext::serial();
}

EvalResult FastEvaluator::evaluate(const CandidateDesign& candidate) {
  EvalResult r;
  r.accuracy = accuracy_.hypernet_accuracy(candidate.genotype);
  r.latency_ms = std::max(
      1e-3, predictor_.predict_latency_ms(candidate.genotype,
                                          candidate.config));
  r.energy_mj = std::max(
      1e-3,
      predictor_.predict_energy_mj(candidate.genotype, candidate.config));
  return r;
}

std::vector<EvalResult> FastEvaluator::evaluate_batch(
    std::span<const CandidateDesign> batch) {
  // The calling thread *is* the coordinator; the guard makes that visible
  // to -Wthread-safety so the cache_ access below is proven legal — and
  // stays illegal inside worker lambdas, which hold no capabilities.
  ThreadRoleGuard coordinator(coordinator_);
  YOSO_TRACE_SPAN("eval.fast_batch");

  const std::size_t n = batch.size();
  std::vector<EvalResult> results(n);
  if (n == 0) return results;

  // Stage 0 (parallel, read-only): candidate keys + memo probes.  Workers
  // consult `snap`, a const view of the cache bound here while the
  // coordinator role is held: probes strictly precede this batch's inserts
  // and unordered_map nodes are pointer-stable, so concurrent find() is
  // race-free — while the coordinator-only *write* discipline stays
  // machine-checked (naming cache_ in a worker lambda still fails
  // -Wthread-safety; see the tsa.negative fixture).
  std::vector<std::string> keys(n);
  std::vector<const EvalResult*> hit(n, nullptr);
  {
    YOSO_TRACE_SPAN("eval.probe");
    const auto& snap = cache_;
    pool().parallel_for(0, n, [&](std::size_t i) {
      keys[i] = candidate_key(batch[i]);
      const auto it = snap.find(keys[i]);
      if (it != snap.end()) hit[i] = &it->second;
    });
  }

  // Misses: first occurrence of every key not already cached, in batch
  // order.  Only these hit the pipeline; duplicates are computed once.
  std::vector<std::size_t> miss;
  miss.reserve(n);
  std::unordered_map<std::string_view, std::size_t> miss_slot;
  for (std::size_t i = 0; i < n; ++i) {
    if (hit[i] != nullptr) continue;
    if (miss_slot.emplace(keys[i], miss.size()).second) miss.push_back(i);
  }

  // Stages 1+2 (pipelined, double-buffered): pool workers compute the
  // HyperNet accuracy proxy + GP feature row for miss chunk k+1 while the
  // coordinator runs the fused latency/energy GP predict for chunk k (its
  // row fan-out rides the same pool, queued behind the feature job, so
  // idle workers help with whichever stage has indices left).  Per-element
  // results are bit-identical to evaluate(): each candidate's chain is
  // self-contained and the chunking is fixed.
  std::vector<EvalResult> computed(miss.size());
  if (!miss.empty()) {
    YOSO_TRACE_SPAN("eval.pipeline");
    const std::size_t m = miss.size();
    constexpr std::size_t dim = kCodesignFeatureDim;
    const std::size_t rows = std::min(kPipelineChunk, m);
    std::vector<double> feats[2] = {std::vector<double>(rows * dim),
                                    std::vector<double>(rows * dim)};
    std::vector<double> acc[2] = {std::vector<double>(rows),
                                  std::vector<double>(rows)};
    std::vector<double> lat(rows);
    std::vector<double> en(rows);

    const auto stage_features = [&](std::size_t lo, std::size_t cnt,
                                    std::size_t buf) {
      // The accuracy proxy and the feature row share one ArchFeatures per
      // candidate (both models are built on the same skeleton), halving
      // the layer-extraction work the old split-phase path paid.
      return pool().submit(0, cnt, [&, lo, buf](std::size_t j) {
        const CandidateDesign& cand = batch[miss[lo + j]];
        const ArchFeatures af =
            ArchFeatures::compute(cand.genotype, predictor_.skeleton());
        acc[buf][j] = accuracy_.hypernet_accuracy(cand.genotype, af);
        codesign_features_into(af, cand.config, feats[buf].data() + j * dim);
      });
    };

    std::size_t lo = 0;
    std::size_t cnt = std::min(kPipelineChunk, m);
    std::size_t cur = 0;
    std::size_t chunks = 0;
    ThreadPool::JobTicket inflight = stage_features(lo, cnt, cur);
    while (cnt > 0) {
      inflight.wait();  // chunk k's accuracy + features are ready
      const std::size_t next_lo = lo + cnt;
      const std::size_t next_cnt = std::min(kPipelineChunk, m - next_lo);
      if (next_cnt > 0)
        inflight = stage_features(next_lo, next_cnt, 1 - cur);
      predictor_.predict_latency_energy_batch(feats[cur].data(), cnt,
                                              &pool(), lat.data(), en.data());
      for (std::size_t j = 0; j < cnt; ++j) {
        computed[lo + j].accuracy = acc[cur][j];
        computed[lo + j].latency_ms = std::max(1e-3, lat[j]);
        computed[lo + j].energy_mj = std::max(1e-3, en[j]);
      }
      ++chunks;
      lo = next_lo;
      cnt = next_cnt;
      cur = 1 - cur;
    }
    obs::counter_add("eval.pipeline_chunks", chunks);
  }
  obs::counter_add("eval.cache_misses", miss.size());
  obs::counter_add("eval.cache_hits", n - miss.size());

  // The insert log: merged on the coordinator in proposal (miss-list)
  // order, so the cache contents are independent of the thread count.
  for (std::size_t j = 0; j < miss.size(); ++j)
    if (cache_.size() < kMaxCacheEntries)
      cache_.emplace(keys[miss[j]], computed[j]);

  // Hits resolve through the probe snapshot's stable pointers; misses (and
  // their in-batch duplicates) through the computed slots.
  for (std::size_t i = 0; i < n; ++i)
    results[i] =
        hit[i] != nullptr ? *hit[i] : computed[miss_slot.at(keys[i])];
  return results;
}

AccurateEvaluator::AccurateEvaluator(NetworkSkeleton skeleton,
                                     SystolicSimulator simulator,
                                     ExecContextPtr exec)
    : skeleton_(std::move(skeleton)),
      accuracy_(skeleton_),
      simulator_(simulator),
      exec_(exec != nullptr ? std::move(exec) : ExecContext::serial()) {}

void AccurateEvaluator::set_exec_context(ExecContextPtr exec) {
  exec_ = exec != nullptr ? std::move(exec) : ExecContext::serial();
}

EvalResult AccurateEvaluator::evaluate(const CandidateDesign& candidate) {
  EvalResult r;
  r.accuracy = 1.0 - accuracy_.test_error(candidate.genotype) / 100.0;
  const SimulationResult sim =
      simulator_.simulate_network(candidate.genotype, skeleton_,
                                  candidate.config);
  r.latency_ms = sim.latency_ms;
  r.energy_mj = sim.energy_mj;
  return r;
}

std::vector<EvalResult> AccurateEvaluator::evaluate_batch(
    std::span<const CandidateDesign> batch) {
  YOSO_TRACE_SPAN("eval.accurate_batch");
  obs::counter_add("eval.accurate_evals", batch.size());
  std::vector<EvalResult> results(batch.size());
  pool().parallel_for(0, batch.size(), [&](std::size_t i) {
    results[i] = evaluate(batch[i]);
  });
  return results;
}

}  // namespace yoso
