#include "core/evaluator.h"

#include <algorithm>
#include <string_view>

#include "obs/trace.h"

namespace yoso {
namespace {

// Memoization stops growing past this many distinct designs (~100 MB worst
// case); further misses are still computed, just not retained.
constexpr std::size_t kMaxCacheEntries = 1u << 20;

}  // namespace

std::vector<EvalResult> Evaluator::evaluate_batch(
    std::span<const CandidateDesign> batch) {
  std::vector<EvalResult> results;
  results.reserve(batch.size());
  for (const CandidateDesign& c : batch) results.push_back(evaluate(c));
  return results;
}

FastEvaluator::FastEvaluator(const DesignSpace& space,
                             const NetworkSkeleton& skeleton,
                             const SystolicSimulator& simulator,
                             FastEvaluatorOptions options)
    : accuracy_(skeleton),
      predictor_(skeleton),
      threads_(ThreadPool::resolve_threads(options.threads)) {
  Rng rng(options.seed);
  const auto samples =
      collect_samples(options.predictor_samples, simulator,
                      space.config_space(), skeleton, rng, options.threads);
  predictor_.fit(samples);
}

FastEvaluator::FastEvaluator(const NetworkSkeleton& skeleton,
                             const std::vector<PerfSample>& samples)
    : accuracy_(skeleton), predictor_(skeleton) {
  predictor_.fit(samples);
}

void FastEvaluator::set_parallelism(std::size_t threads) {
  threads = ThreadPool::resolve_threads(threads);
  if (threads == threads_) return;
  threads_ = threads;
  pool_.reset();  // resized lazily on the next batch
}

ThreadPool& FastEvaluator::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  return *pool_;
}

EvalResult FastEvaluator::compute(const CandidateDesign& candidate) const {
  EvalResult r;
  r.accuracy = accuracy_.hypernet_accuracy(candidate.genotype);
  r.latency_ms = std::max(
      1e-3, predictor_.predict_latency_ms(candidate.genotype,
                                          candidate.config));
  r.energy_mj = std::max(
      1e-3,
      predictor_.predict_energy_mj(candidate.genotype, candidate.config));
  return r;
}

EvalResult FastEvaluator::evaluate(const CandidateDesign& candidate) {
  return compute(candidate);
}

std::vector<EvalResult> FastEvaluator::evaluate_batch(
    std::span<const CandidateDesign> batch) {
  // The calling thread *is* the coordinator; the guard makes that visible
  // to -Wthread-safety so cache_ access below is proven legal — and stays
  // illegal inside the parallel_for lambda, which holds no capabilities.
  ThreadRoleGuard coordinator(coordinator_);
  YOSO_TRACE_SPAN("eval.fast_batch");

  std::vector<EvalResult> results(batch.size());
  std::vector<std::string> keys(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    keys[i] = candidate_key(batch[i]);

  // Misses: first occurrence of every key not already cached.  Only these
  // hit the GPs; duplicates within the batch are computed once.
  std::vector<std::size_t> miss;
  std::unordered_map<std::string_view, std::size_t> miss_slot;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (cache_.contains(keys[i])) continue;
    if (miss_slot.emplace(keys[i], miss.size()).second) miss.push_back(i);
  }

  // Phase 1 (parallel, read-only): the HyperNet accuracy proxy and the
  // co-design feature row for every miss, each worker writing only its own
  // slots.  Phase 2 (coordinator): the GP latency/energy means for all
  // misses via one batched K* product — the batch call may fan its rows
  // out across the same pool because the phases are sequential, never
  // nested.  Per-element results are bit-identical to compute().
  std::vector<EvalResult> computed(miss.size());
  if (!miss.empty()) {
    std::vector<std::vector<double>> feats(miss.size());
    {
      YOSO_TRACE_SPAN("eval.accuracy_features");
      pool().parallel_for(0, miss.size(), [&](std::size_t j) {
        const CandidateDesign& cand = batch[miss[j]];
        computed[j].accuracy = accuracy_.hypernet_accuracy(cand.genotype);
        feats[j] = codesign_features(cand.genotype, cand.config,
                                     predictor_.skeleton());
      });
    }
    YOSO_TRACE_SPAN("eval.gp_predict");
    Matrix fx(miss.size(), feats.front().size());
    for (std::size_t j = 0; j < miss.size(); ++j)
      for (std::size_t c = 0; c < feats[j].size(); ++c)
        fx(j, c) = feats[j][c];
    const std::vector<double> lat =
        predictor_.predict_latency_ms_batch(fx, &pool());
    const std::vector<double> en =
        predictor_.predict_energy_mj_batch(fx, &pool());
    for (std::size_t j = 0; j < miss.size(); ++j) {
      computed[j].latency_ms = std::max(1e-3, lat[j]);
      computed[j].energy_mj = std::max(1e-3, en[j]);
    }
  }
  obs::counter_add("eval.cache_misses", miss.size());
  obs::counter_add("eval.cache_hits", batch.size() - miss.size());

  // Cache insertion happens on the calling thread, in batch order, so the
  // cache contents are independent of the thread count.
  for (std::size_t j = 0; j < miss.size(); ++j)
    if (cache_.size() < kMaxCacheEntries)
      cache_.emplace(keys[miss[j]], computed[j]);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto it = cache_.find(keys[i]);
    results[i] =
        it != cache_.end() ? it->second : computed[miss_slot.at(keys[i])];
  }
  return results;
}

AccurateEvaluator::AccurateEvaluator(NetworkSkeleton skeleton,
                                     SystolicSimulator simulator)
    : skeleton_(std::move(skeleton)),
      accuracy_(skeleton_),
      simulator_(simulator) {}

void AccurateEvaluator::set_parallelism(std::size_t threads) {
  threads = ThreadPool::resolve_threads(threads);
  if (threads == threads_) return;
  threads_ = threads;
  pool_.reset();
}

ThreadPool& AccurateEvaluator::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  return *pool_;
}

EvalResult AccurateEvaluator::evaluate(const CandidateDesign& candidate) {
  EvalResult r;
  r.accuracy = 1.0 - accuracy_.test_error(candidate.genotype) / 100.0;
  const SimulationResult sim =
      simulator_.simulate_network(candidate.genotype, skeleton_,
                                  candidate.config);
  r.latency_ms = sim.latency_ms;
  r.energy_mj = sim.energy_mj;
  return r;
}

std::vector<EvalResult> AccurateEvaluator::evaluate_batch(
    std::span<const CandidateDesign> batch) {
  YOSO_TRACE_SPAN("eval.accurate_batch");
  obs::counter_add("eval.accurate_evals", batch.size());
  std::vector<EvalResult> results(batch.size());
  pool().parallel_for(0, batch.size(), [&](std::size_t i) {
    results[i] = evaluate(batch[i]);
  });
  return results;
}

}  // namespace yoso
