#include "core/evaluator.h"

namespace yoso {

FastEvaluator::FastEvaluator(const DesignSpace& space,
                             const NetworkSkeleton& skeleton,
                             const SystolicSimulator& simulator,
                             FastEvaluatorOptions options)
    : accuracy_(skeleton), predictor_(skeleton) {
  Rng rng(options.seed);
  const auto samples = collect_samples(options.predictor_samples, simulator,
                                       space.config_space(), skeleton, rng);
  predictor_.fit(samples);
}

FastEvaluator::FastEvaluator(const NetworkSkeleton& skeleton,
                             const std::vector<PerfSample>& samples)
    : accuracy_(skeleton), predictor_(skeleton) {
  predictor_.fit(samples);
}

EvalResult FastEvaluator::evaluate(const CandidateDesign& candidate) {
  EvalResult r;
  r.accuracy = accuracy_.hypernet_accuracy(candidate.genotype);
  r.latency_ms = std::max(
      1e-3, predictor_.predict_latency_ms(candidate.genotype,
                                          candidate.config));
  r.energy_mj = std::max(
      1e-3,
      predictor_.predict_energy_mj(candidate.genotype, candidate.config));
  return r;
}

AccurateEvaluator::AccurateEvaluator(NetworkSkeleton skeleton,
                                     SystolicSimulator simulator)
    : skeleton_(std::move(skeleton)),
      accuracy_(skeleton_),
      simulator_(simulator) {}

EvalResult AccurateEvaluator::evaluate(const CandidateDesign& candidate) {
  EvalResult r;
  r.accuracy = 1.0 - accuracy_.test_error(candidate.genotype) / 100.0;
  const SimulationResult sim =
      simulator_.simulate_network(candidate.genotype, skeleton_,
                                  candidate.config);
  r.latency_ms = sim.latency_ms;
  r.energy_mj = sim.energy_mj;
  return r;
}

}  // namespace yoso
