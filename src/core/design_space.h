#pragma once
// The joint "2-dimensional" co-design space (paper §III.A): a candidate is
// lambda = (d_1..d_S, c_1..c_L) with S = 40 DNN hyper-parameters and L = 4
// accelerator parameters, 44 actions total.  This module concatenates the
// DNN action space (src/arch) and the hardware action space (src/accel)
// into one sequence for the RL controller.

#include <string>
#include <vector>

#include "accel/config.h"
#include "arch/encoding.h"
#include "arch/genotype.h"
#include "util/rng.h"

namespace yoso {

/// A fully specified co-design candidate.
struct CandidateDesign {
  Genotype genotype;
  AcceleratorConfig config;

  bool operator==(const CandidateDesign&) const = default;
};

/// Compact byte string that uniquely identifies a candidate (a fixed-width
/// packing of its encoded actions).  Used as the hash key for evaluation
/// memoization and finalist dedupe; two candidates compare equal iff their
/// keys are equal.
std::string candidate_key(const CandidateDesign& candidate);

class DesignSpace {
 public:
  explicit DesignSpace(ConfigSpace config_space = default_config_space());

  const ConfigSpace& config_space() const { return config_space_; }

  /// Number of actions (44 for the paper's space).
  int num_actions() const;

  /// Per-step action cardinalities, DNN first then hardware.
  std::vector<int> cardinalities() const;

  /// Human-readable names of each action step.
  std::vector<std::string> action_names() const;

  /// Actions -> candidate; throws on malformed input.
  CandidateDesign decode(const std::vector<int>& actions) const;

  /// Candidate -> actions.
  std::vector<int> encode(const CandidateDesign& candidate) const;

  /// Uniform random candidate.
  CandidateDesign random_candidate(Rng& rng) const;

  /// log10 of the joint space size (the paper quotes ~10^15 including
  /// hardware choices).
  double log10_size() const;

 private:
  ConfigSpace config_space_;
  std::vector<ActionStep> dnn_steps_;
};

}  // namespace yoso
