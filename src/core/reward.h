#pragma once
// Multi-objective reward (paper Eq. 2):
//   R(lambda) = A(lambda) + a_lat * (l/t_lat)^w_lat + a_eer * (e/t_eer)^w_eer
// with A the validation accuracy, l latency, e energy; the omegas are
// negative, so designs faster/leaner than the threshold earn a bonus that
// grows as they improve and a penalty that grows as they regress.
//
// Coefficient presets follow Fig 6.  Note on paper fidelity: the captions of
// Fig 6(b)/(c) list (alpha1, omega1, alpha2, omega2) without restating which
// term is latency and which is energy, and reading them positionally against
// Eq. 2 would make the "energy-optimal" run weight latency harder.  We
// resolve the ambiguity by intent: the energy-optimal preset puts the
// stronger coefficient pair (0.6, -0.4) on the energy term, the
// latency-optimal preset puts it on the latency term.  See DESIGN.md.

#include <string>

namespace yoso {

/// Scalar performance triple every evaluator returns.
struct EvalResult {
  double accuracy = 0.0;    ///< validation accuracy in [0, 1]
  double latency_ms = 0.0;
  double energy_mj = 0.0;
};

struct RewardParams {
  double alpha_lat = 0.5;
  double omega_lat = -0.4;
  double alpha_eer = 0.5;
  double omega_eer = -0.4;
  double t_lat_ms = 1.2;  ///< latency threshold (paper §IV.A: 1.2 ms)
  double t_eer_mj = 9.0;  ///< energy threshold (paper §IV.A: 9 mJ)

  /// Eq. 2.
  double compute(const EvalResult& r) const;

  /// The paper screens out designs that miss the thresholds before the
  /// final comparison.
  bool feasible(const EvalResult& r) const;

  std::string to_string() const;
};

/// Fig 6(a): balanced composite score (alpha 0.5/0.5, omega -0.4/-0.4).
RewardParams balanced_reward();

/// Fig 6(b): energy-leaning trade-off — (0.6, -0.4) on energy,
/// (0.3, -0.2) on latency.
RewardParams energy_opt_reward();

/// Fig 6(c): latency-leaning trade-off — (0.6, -0.4) on latency,
/// (0.3, -0.3) on energy.
RewardParams latency_opt_reward();

}  // namespace yoso
