#pragma once
// Extension: searching the network skeleton too.
//
// Table 1 of the paper lists <N_Cells, R_cells> — how many normal and
// reduction cells form the network — among the co-design variables, but the
// experiments fix the skeleton to 4+2 cells and a fixed stem width.  This
// module widens the action sequence with two skeleton actions (normal cells
// per stage, stem channels), giving a 46-action joint space in which the
// controller can also trade network depth/width against hardware cost.
//
// Everything reuses the fixed-skeleton machinery; only the evaluator pair
// differs because accuracy and performance now depend on the candidate's
// own skeleton.

#include <limits>
#include <optional>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "predictor/perf_predictor.h"
#include "rl/reinforce.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"

namespace yoso {

/// A candidate in the extended space: design + its own skeleton.
struct ExtendedCandidate {
  Genotype genotype;
  AcceleratorConfig config;
  NetworkSkeleton skeleton;

  bool operator==(const ExtendedCandidate& other) const {
    return genotype == other.genotype && config == other.config &&
           skeleton.cells == other.skeleton.cells &&
           skeleton.stem_channels == other.skeleton.stem_channels;
  }
};

class ExtendedDesignSpace {
 public:
  explicit ExtendedDesignSpace(
      ConfigSpace config_space = default_config_space(),
      std::vector<int> normals_per_stage = {1, 2, 3},
      std::vector<int> stem_channel_options = {16, 24, 32});

  /// 40 DNN + 4 hardware + 2 skeleton actions.
  int num_actions() const;
  std::vector<int> cardinalities() const;

  ExtendedCandidate decode(const std::vector<int>& actions) const;
  std::vector<int> encode(const ExtendedCandidate& candidate) const;
  ExtendedCandidate random_candidate(Rng& rng) const;

  /// Builds the paper-style stacking (N^d R N^d R) for a depth choice.
  NetworkSkeleton skeleton_for(int depth_index, int stem_index) const;

  const ConfigSpace& config_space() const { return base_.config_space(); }

 private:
  DesignSpace base_;
  std::vector<int> normals_per_stage_;
  std::vector<int> stem_channel_options_;
};

/// Fast evaluator over the extended space: the accuracy surrogate and one
/// GP pair are shared, with samples drawn across all skeleton choices so
/// the predictor generalises over them (skeleton statistics enter through
/// the MAC/parameter features).
class ExtendedFastEvaluator {
 public:
  ExtendedFastEvaluator(const ExtendedDesignSpace& space,
                        const SystolicSimulator& simulator,
                        std::size_t predictor_samples, std::uint64_t seed);

  EvalResult evaluate(const ExtendedCandidate& candidate) const;

 private:
  AccuracyModelParams accuracy_params_;
  std::uint64_t accuracy_seed_ = 2020;
  PerformancePredictor predictor_;
};

/// Accurate evaluator (per-candidate skeleton simulation + surrogate
/// full-training error).
class ExtendedAccurateEvaluator {
 public:
  explicit ExtendedAccurateEvaluator(
      SystolicSimulator simulator = SystolicSimulator(
          {}, SimFidelity::kCycleLevel))
      : simulator_(simulator) {}

  EvalResult evaluate(const ExtendedCandidate& candidate) const;

 private:
  SystolicSimulator simulator_;
};

/// One reranked finalist of the extended search.
struct ExtendedRanked {
  ExtendedCandidate candidate;
  double fast_reward = 0.0;
  double accurate_reward = 0.0;
  EvalResult fast_result;
  EvalResult accurate_result;
  bool feasible = false;
};

struct ExtendedSearchResult {
  std::vector<SearchTracePoint> trace;  ///< candidate field holds design only
  std::vector<ExtendedRanked> finalists;
  std::optional<ExtendedRanked> best;
  double best_fast_reward = -std::numeric_limits<double>::infinity();
};

/// RL search over the 46-action space (same controller/REINFORCE settings
/// as YosoSearch).
class ExtendedSearch {
 public:
  ExtendedSearch(const ExtendedDesignSpace& space, SearchOptions options)
      : space_(space), options_(std::move(options)) {}

  ExtendedSearchResult run(const ExtendedFastEvaluator& fast,
                           const ExtendedAccurateEvaluator* accurate);

 private:
  const ExtendedDesignSpace& space_;
  SearchOptions options_;
};

}  // namespace yoso
