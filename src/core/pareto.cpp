#include "core/pareto.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/reward.h"

namespace yoso {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.first > b.first || a.second > b.second) return false;
  return a.first < b.first || a.second < b.second;
}

bool dominates(const EvalResult& a, const EvalResult& b) {
  if (a.accuracy < b.accuracy || a.latency_ms > b.latency_ms ||
      a.energy_mj > b.energy_mj)
    return false;
  return a.accuracy > b.accuracy || a.latency_ms < b.latency_ms ||
         a.energy_mj < b.energy_mj;
}

namespace {

template <typename T, typename Dom>
std::vector<std::size_t> front_indices(std::span<const T> items, Dom dom) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < items.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < items.size() && !dominated; ++j) {
      if (i == j) continue;
      if (dom(items[j], items[i])) dominated = true;
      // Exact duplicates: keep the first occurrence only.
      if (j < i && !dom(items[j], items[i]) && !dom(items[i], items[j])) {
        if constexpr (std::is_same_v<T, ParetoPoint>) {
          if (items[j] == items[i]) dominated = true;
        }
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace

std::vector<std::size_t> pareto_front_indices(
    std::span<const ParetoPoint> points) {
  return front_indices(points, [](const ParetoPoint& a, const ParetoPoint& b) {
    return dominates(a, b);
  });
}

std::vector<std::size_t> pareto_front_indices(
    std::span<const EvalResult> results) {
  return front_indices(results, [](const EvalResult& a, const EvalResult& b) {
    return dominates(a, b);
  });
}

double hypervolume_2d(std::span<const ParetoPoint> points,
                      const ParetoPoint& reference) {
  // Clip to points that dominate the reference, sort by f1 ascending, then
  // sweep: each point contributes (next_f1 - f1) * (ref2 - f2) after
  // removing dominated points.
  std::vector<ParetoPoint> front;
  for (const auto& p : points)
    if (p.first < reference.first && p.second < reference.second)
      front.push_back(p);
  if (front.empty()) return 0.0;
  std::sort(front.begin(), front.end());
  // Lower envelope: strictly decreasing f2 as f1 grows.
  std::vector<ParetoPoint> env;
  for (const auto& p : front) {
    if (!env.empty() && p.first == env.back().first) {
      env.back().second = std::min(env.back().second, p.second);
      continue;
    }
    if (env.empty() || p.second < env.back().second) env.push_back(p);
  }
  double volume = 0.0;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const double width =
        (i + 1 < env.size() ? env[i + 1].first : reference.first) -
        env[i].first;
    volume += width * (reference.second - env[i].second);
  }
  return volume;
}

double distance_to_front(const ParetoPoint& p,
                         std::span<const ParetoPoint> front) {
  if (front.empty())
    throw std::invalid_argument("distance_to_front: empty front");
  double best = std::numeric_limits<double>::infinity();
  for (const auto& f : front) {
    const double dx = p.first - f.first;
    const double dy = p.second - f.second;
    best = std::min(best, std::sqrt(dx * dx + dy * dy));
  }
  return best;
}

std::vector<ParetoPoint> to_tradeoff_points(
    std::span<const EvalResult> results, TradeoffMetric metric) {
  std::vector<ParetoPoint> points;
  points.reserve(results.size());
  for (const EvalResult& r : results)
    points.emplace_back((1.0 - r.accuracy) * 100.0,
                        metric == TradeoffMetric::kEnergy ? r.energy_mj
                                                          : r.latency_ms);
  return points;
}

}  // namespace yoso
