#include "core/search.h"

#include <algorithm>

#include "base/contract.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "obs/trace.h"
#include "predictor/gp.h"
#include "rl/controller.h"
#include "rl/reinforce.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace yoso {

void FinalistPool::offer(const CandidateDesign& candidate, double reward,
                         const EvalResult& result) {
  ThreadRoleGuard coordinator(role_);
  if (capacity_ == 0) return;
  if (!seen_.insert(candidate_key(candidate)).second)
    return;  // dedupe revisited designs
  if (entries_.size() >= capacity_ &&
      reward <= entries_.back().fast_reward)
    return;
  RankedCandidate e;
  e.candidate = candidate;
  e.fast_reward = reward;
  e.fast_result = result;
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), reward,
      [](double r, const RankedCandidate& b) { return r > b.fast_reward; });
  entries_.insert(pos, std::move(e));
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<double> SearchLoop::submit(
    std::span<const CandidateDesign> batch) {
  const std::vector<EvalResult> evals = fast_.evaluate_batch(batch);
  ThreadRoleGuard coordinator(role_);
  std::vector<double> rewards(batch.size());
  if (options_.trace_every != 0 &&
      result_.trace.size() + batch.size() > result_.trace.capacity()) {
    // Geometric growth by hand: reserve() alone would force exact-fit
    // reallocation on every batch.
    result_.trace.reserve(
        std::max(result_.trace.size() + batch.size(),
                 2 * result_.trace.capacity()));
  }
  for (std::size_t j = 0; j < batch.size(); ++j) {
    const double reward = options_.reward.compute(evals[j]);
    rewards[j] = reward;
    pool_.offer(batch[j], reward, evals[j]);
    result_.best_fast_reward = std::max(result_.best_fast_reward, reward);
    if (options_.trace_every != 0 && iteration_ % options_.trace_every == 0)
      result_.trace.push_back({iteration_, reward, evals[j], batch[j]});
    ++iteration_;
  }
  // Online refinement (coordinator-only, after the bookkeeping loop so it
  // never changes this batch's rewards): when the iteration counter crosses
  // a refine_every boundary, the round's best candidate — ties break to the
  // earliest proposal, so the pick depends only on proposal order — is
  // scored by the accurate evaluator and folded back into the fast one.
  // Subsequent batches then predict through the refined models; everything
  // in the chain is deterministic, so search output stays bit-identical at
  // any thread count.
  if (options_.refine_every != 0 && refiner_ != nullptr) {
    const std::size_t before = iteration_ - batch.size();
    if (iteration_ / options_.refine_every >
        before / options_.refine_every) {
      std::size_t best_j = 0;
      for (std::size_t j = 1; j < batch.size(); ++j)
        if (rewards[j] > rewards[best_j]) best_j = j;
      const EvalResult truth = refiner_->evaluate(batch[best_j]);
      if (fast_.refine(batch[best_j], truth)) {
        ++result_.refinements;
        obs::counter_add("search.refinements");
      }
    }
  }
  obs::counter_add("search.iterations", batch.size());
  obs::counter_add("search.batches");
  return rewards;
}

double SearchLoop::submit(const CandidateDesign& candidate) {
  return submit(std::span<const CandidateDesign>(&candidate, 1)).front();
}

void SearchOptions::validate() const {
  YOSO_REQUIRE(iterations >= 1, "SearchOptions: iterations must be >= 1");
  YOSO_REQUIRE(batch_size >= 1, "SearchOptions: batch_size must be >= 1");
  YOSO_REQUIRE(top_n >= 1,
               "SearchOptions: top_n must be >= 1 (the finalist pool feeds "
               "Step 3)");
  YOSO_REQUIRE(inducing_points >= 1,
               "SearchOptions: inducing_points must be >= 1");
  YOSO_REQUIRE(refine_every == 0 || predictor == GpBackend::kSparse,
               "SearchOptions: refine_every requires the sparse predictor "
               "backend (the exact GP has no incremental update path)");
}

SearchResult SearchDriver::run(Evaluator& fast, Evaluator* accurate,
                               ExecContextPtr exec) {
  options_.validate();
  if (options_.observe) obs::set_enabled(true);
  if (exec != nullptr) {
    fast.set_exec_context(exec);
    if (accurate != nullptr) accurate->set_exec_context(exec);
  }
  SearchResult result;
  SearchLoop loop(options_, fast, result,
                  options_.refine_every != 0 ? accurate : nullptr);
  Rng rng(options_.seed ^ rng_salt());
  {
    YOSO_TRACE_SPAN("search.step2_propose");
    search(loop, rng);
  }
  result.iterations_run = loop.iterations_done();
  result.finalists = loop.take_finalists();
  {
    YOSO_TRACE_SPAN("search.step3_rerank");
    rerank_finalists(result, options_.reward, accurate);
  }
  obs::counter_add("search.finalists", result.finalists.size());
  return result;
}

void rerank_finalists(SearchResult& result, const RewardParams& reward,
                      Evaluator* accurate) {
  if (accurate != nullptr && !result.finalists.empty()) {
    std::vector<CandidateDesign> candidates;
    candidates.reserve(result.finalists.size());
    for (const RankedCandidate& f : result.finalists)
      candidates.push_back(f.candidate);
    const std::vector<EvalResult> evals = accurate->evaluate_batch(candidates);
    for (std::size_t i = 0; i < result.finalists.size(); ++i)
      result.finalists[i].accurate_result = evals[i];
  } else {
    for (RankedCandidate& f : result.finalists)
      f.accurate_result = f.fast_result;
  }
  for (RankedCandidate& f : result.finalists) {
    f.accurate_reward = reward.compute(f.accurate_result);
    f.feasible = reward.feasible(f.accurate_result);
  }
  std::stable_sort(result.finalists.begin(), result.finalists.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.accurate_reward > b.accurate_reward;
                   });
  // Best feasible finalist wins; if none is feasible, take the best overall
  // so callers still get a solution to report.
  for (const RankedCandidate& f : result.finalists) {
    if (f.feasible) {
      result.best = f;
      return;
    }
  }
  if (!result.finalists.empty()) result.best = result.finalists.front();
}

void YosoSearch::search(SearchLoop& loop, Rng& rng) {
  ControllerOptions copt = options_.controller;
  copt.seed = options_.seed;
  LstmController controller(space_.cardinalities(), copt);
  ReinforceTrainer trainer(controller, options_.reinforce);
  const std::size_t round = std::max<std::size_t>(1, options_.batch_size);

  std::vector<Episode> episodes;
  std::vector<CandidateDesign> batch;
  std::size_t it = 0;
  while (it < options_.iterations) {
    const std::size_t k = std::min(round, options_.iterations - it);
    episodes.clear();
    batch.clear();
    for (std::size_t j = 0; j < k; ++j) {
      episodes.push_back(trainer.propose(rng));
      batch.push_back(space_.decode(episodes.back().actions));
    }
    const std::vector<double> rewards = loop.submit(batch);
    for (std::size_t j = 0; j < k; ++j)
      trainer.feedback(episodes[j], rewards[j]);
    it += k;
  }
}

void RandomSearchDriver::search(SearchLoop& loop, Rng& rng) {
  RandomSearcher searcher(space_.cardinalities());
  const std::size_t round = std::max<std::size_t>(1, options_.batch_size);

  std::vector<CandidateDesign> batch;
  std::size_t it = 0;
  while (it < options_.iterations) {
    const std::size_t k = std::min(round, options_.iterations - it);
    batch.clear();
    for (std::size_t j = 0; j < k; ++j)
      batch.push_back(space_.decode(searcher.propose(rng)));
    loop.submit(batch);
    it += k;
  }
}

}  // namespace yoso
