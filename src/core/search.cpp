#include "core/search.h"

#include <algorithm>

namespace yoso {

void FinalistPool::offer(const CandidateDesign& candidate, double reward,
                         const EvalResult& result) {
  for (const auto& e : entries_)
    if (e.candidate == candidate) return;  // dedupe revisited designs
  if (entries_.size() < capacity_ || reward > entries_.back().fast_reward) {
    RankedCandidate e;
    e.candidate = candidate;
    e.fast_reward = reward;
    e.fast_result = result;
    entries_.push_back(std::move(e));
    std::sort(entries_.begin(), entries_.end(),
              [](const RankedCandidate& a, const RankedCandidate& b) {
                return a.fast_reward > b.fast_reward;
              });
    if (entries_.size() > capacity_) entries_.pop_back();
  }
}

void rerank_finalists(SearchResult& result, const RewardParams& reward,
                      Evaluator* accurate) {
  for (RankedCandidate& f : result.finalists) {
    if (accurate != nullptr) {
      f.accurate_result = accurate->evaluate(f.candidate);
    } else {
      f.accurate_result = f.fast_result;
    }
    f.accurate_reward = reward.compute(f.accurate_result);
    f.feasible = reward.feasible(f.accurate_result);
  }
  std::sort(result.finalists.begin(), result.finalists.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return a.accurate_reward > b.accurate_reward;
            });
  // Best feasible finalist wins; if none is feasible, take the best overall
  // so callers still get a solution to report.
  for (const RankedCandidate& f : result.finalists) {
    if (f.feasible) {
      result.best = f;
      return;
    }
  }
  if (!result.finalists.empty()) result.best = result.finalists.front();
}

YosoSearch::YosoSearch(const DesignSpace& space, SearchOptions options)
    : space_(space), options_(std::move(options)) {}

SearchResult YosoSearch::run(Evaluator& fast, Evaluator* accurate) {
  SearchResult result;
  ControllerOptions copt = options_.controller;
  copt.seed = options_.seed;
  LstmController controller(space_.cardinalities(), copt);
  ReinforceTrainer trainer(controller, options_.reinforce);
  Rng rng(options_.seed ^ 0x5ca1ab1eull);
  FinalistPool top(options_.top_n);

  for (std::size_t it = 0; it < options_.iterations; ++it) {
    Episode ep = trainer.propose(rng);
    const CandidateDesign candidate = space_.decode(ep.actions);
    const EvalResult eval = fast.evaluate(candidate);
    const double reward = options_.reward.compute(eval);
    trainer.feedback(ep, reward);
    top.offer(candidate, reward, eval);
    result.best_fast_reward = std::max(result.best_fast_reward, reward);
    if (options_.trace_every != 0 && it % options_.trace_every == 0)
      result.trace.push_back({it, reward, eval, candidate});
  }
  result.iterations_run = options_.iterations;
  result.finalists = top.take();
  rerank_finalists(result, options_.reward, accurate);
  return result;
}

RandomSearchDriver::RandomSearchDriver(const DesignSpace& space,
                                       SearchOptions options)
    : space_(space), options_(std::move(options)) {}

SearchResult RandomSearchDriver::run(Evaluator& fast, Evaluator* accurate) {
  SearchResult result;
  RandomSearcher searcher(space_.cardinalities());
  Rng rng(options_.seed ^ 0xdecafull);
  FinalistPool top(options_.top_n);

  for (std::size_t it = 0; it < options_.iterations; ++it) {
    const std::vector<int> actions = searcher.propose(rng);
    const CandidateDesign candidate = space_.decode(actions);
    const EvalResult eval = fast.evaluate(candidate);
    const double reward = options_.reward.compute(eval);
    top.offer(candidate, reward, eval);
    result.best_fast_reward = std::max(result.best_fast_reward, reward);
    if (options_.trace_every != 0 && it % options_.trace_every == 0)
      result.trace.push_back({it, reward, eval, candidate});
  }
  result.iterations_run = options_.iterations;
  result.finalists = top.take();
  rerank_finalists(result, options_.reward, accurate);
  return result;
}

}  // namespace yoso
