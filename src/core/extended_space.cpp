#include "core/extended_space.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "base/contract.h"
#include "core/design_space.h"
#include "core/reward.h"
#include "predictor/perf_predictor.h"
#include "rl/controller.h"
#include "rl/reinforce.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"

namespace yoso {

ExtendedDesignSpace::ExtendedDesignSpace(ConfigSpace config_space,
                                         std::vector<int> normals_per_stage,
                                         std::vector<int> stem_channel_options)
    : base_(std::move(config_space)),
      normals_per_stage_(std::move(normals_per_stage)),
      stem_channel_options_(std::move(stem_channel_options)) {
  if (normals_per_stage_.empty() || stem_channel_options_.empty())
    throw std::invalid_argument("ExtendedDesignSpace: empty skeleton options");
}

int ExtendedDesignSpace::num_actions() const {
  return base_.num_actions() + 2;
}

std::vector<int> ExtendedDesignSpace::cardinalities() const {
  std::vector<int> cards = base_.cardinalities();
  cards.push_back(static_cast<int>(normals_per_stage_.size()));
  cards.push_back(static_cast<int>(stem_channel_options_.size()));
  return cards;
}

NetworkSkeleton ExtendedDesignSpace::skeleton_for(int depth_index,
                                                  int stem_index) const {
  YOSO_REQUIRE(depth_index >= 0 &&
                   depth_index < static_cast<int>(normals_per_stage_.size()),
               "skeleton_for: depth_index ", depth_index, " out of range");
  YOSO_REQUIRE(stem_index >= 0 &&
                   stem_index <
                       static_cast<int>(stem_channel_options_.size()),
               "skeleton_for: stem_index ", stem_index, " out of range");
  NetworkSkeleton s = default_skeleton();
  s.cells.clear();
  const int d = normals_per_stage_[static_cast<std::size_t>(depth_index)];
  s.cells.reserve(2 * static_cast<std::size_t>(d + 1));
  for (int stage = 0; stage < 2; ++stage) {
    for (int i = 0; i < d; ++i) s.cells.push_back(CellKind::kNormal);
    s.cells.push_back(CellKind::kReduction);
  }
  s.stem_channels =
      stem_channel_options_[static_cast<std::size_t>(stem_index)];
  return s;
}

ExtendedCandidate ExtendedDesignSpace::decode(
    const std::vector<int>& actions) const {
  if (actions.size() != static_cast<std::size_t>(num_actions()))
    throw std::invalid_argument("ExtendedDesignSpace::decode: expected " +
                                std::to_string(num_actions()) + " actions");
  const std::vector<int> base_actions(actions.begin(), actions.end() - 2);
  const CandidateDesign design = base_.decode(base_actions);
  ExtendedCandidate c;
  c.genotype = design.genotype;
  c.config = design.config;
  c.skeleton = skeleton_for(actions[actions.size() - 2],
                            actions[actions.size() - 1]);
  return c;
}

std::vector<int> ExtendedDesignSpace::encode(
    const ExtendedCandidate& candidate) const {
  std::vector<int> actions =
      base_.encode(CandidateDesign{candidate.genotype, candidate.config});
  // Recover the two skeleton indices.
  int depth = -1;
  const int stage_normals =
      static_cast<int>(candidate.skeleton.cells.size()) / 2 - 1;
  for (std::size_t i = 0; i < normals_per_stage_.size(); ++i)
    if (normals_per_stage_[i] == stage_normals) depth = static_cast<int>(i);
  int stem = -1;
  for (std::size_t i = 0; i < stem_channel_options_.size(); ++i)
    if (stem_channel_options_[i] == candidate.skeleton.stem_channels)
      stem = static_cast<int>(i);
  if (depth < 0 || stem < 0)
    throw std::invalid_argument(
        "ExtendedDesignSpace::encode: skeleton not in space");
  actions.push_back(depth);
  actions.push_back(stem);
  return actions;
}

ExtendedCandidate ExtendedDesignSpace::random_candidate(Rng& rng) const {
  std::vector<int> actions;
  for (int card : cardinalities()) actions.push_back(rng.uniform_int(0, card - 1));
  return decode(actions);
}

// ----------------------------------------------------------- evaluators

ExtendedFastEvaluator::ExtendedFastEvaluator(const ExtendedDesignSpace& space,
                                             const SystolicSimulator& simulator,
                                             std::size_t predictor_samples,
                                             std::uint64_t seed)
    : predictor_(default_skeleton()) {
  YOSO_REQUIRE(predictor_samples > 0,
               "ExtendedFastEvaluator: predictor_samples must be positive");
  // Sample uniformly across skeleton choices so the GP sees the whole MAC
  // range the extended space spans.
  Rng rng(seed);
  std::vector<PerfSample> samples;
  samples.reserve(predictor_samples);
  for (std::size_t i = 0; i < predictor_samples; ++i) {
    const ExtendedCandidate c = space.random_candidate(rng);
    PerfSample s;
    s.genotype = c.genotype;
    s.config = c.config;
    const SimulationResult r =
        simulator.simulate_network(c.genotype, c.skeleton, c.config);
    s.energy_mj = r.energy_mj;
    s.latency_ms = r.latency_ms;
    s.features = codesign_features(c.genotype, c.config, c.skeleton);
    samples.push_back(std::move(s));
  }
  predictor_.fit(samples);
}

EvalResult ExtendedFastEvaluator::evaluate(
    const ExtendedCandidate& candidate) const {
  // The accuracy surrogate is skeleton-aware: construct per call (cheap —
  // it only stores parameters; the cost is in feature extraction).
  AccuracyModel accuracy(candidate.skeleton, accuracy_params_,
                         accuracy_seed_);
  EvalResult r;
  r.accuracy = accuracy.hypernet_accuracy(candidate.genotype);
  const auto features =
      codesign_features(candidate.genotype, candidate.config,
                        candidate.skeleton);
  r.energy_mj =
      std::max(1e-3, std::exp(predictor_.energy_model().predict(features)));
  r.latency_ms =
      std::max(1e-3, std::exp(predictor_.latency_model().predict(features)));
  return r;
}

EvalResult ExtendedAccurateEvaluator::evaluate(
    const ExtendedCandidate& candidate) const {
  AccuracyModel accuracy(candidate.skeleton);
  EvalResult r;
  r.accuracy = 1.0 - accuracy.test_error(candidate.genotype) / 100.0;
  const SimulationResult sim = simulator_.simulate_network(
      candidate.genotype, candidate.skeleton, candidate.config);
  r.latency_ms = sim.latency_ms;
  r.energy_mj = sim.energy_mj;
  return r;
}

// -------------------------------------------------------------- search

ExtendedSearchResult ExtendedSearch::run(
    const ExtendedFastEvaluator& fast,
    const ExtendedAccurateEvaluator* accurate) {
  ExtendedSearchResult result;
  ControllerOptions copt = options_.controller;
  copt.seed = options_.seed;
  LstmController controller(space_.cardinalities(), copt);
  ReinforceTrainer trainer(controller, options_.reinforce);
  Rng rng(options_.seed ^ 0xE57ull);

  std::vector<ExtendedRanked> pool;
  auto offer = [&](const ExtendedCandidate& candidate, double reward,
                   const EvalResult& eval) {
    for (const auto& e : pool)
      if (e.candidate == candidate) return;
    if (pool.size() < options_.top_n ||
        reward > pool.back().fast_reward) {
      ExtendedRanked e;
      e.candidate = candidate;
      e.fast_reward = reward;
      e.fast_result = eval;
      pool.push_back(std::move(e));
      std::sort(pool.begin(), pool.end(),
                [](const ExtendedRanked& a, const ExtendedRanked& b) {
                  return a.fast_reward > b.fast_reward;
                });
      if (pool.size() > options_.top_n) pool.pop_back();
    }
  };

  if (options_.trace_every != 0)
    result.trace.reserve(
        (options_.iterations + options_.trace_every - 1) /
        options_.trace_every);
  for (std::size_t it = 0; it < options_.iterations; ++it) {
    Episode ep = trainer.propose(rng);
    const ExtendedCandidate candidate = space_.decode(ep.actions);
    const EvalResult eval = fast.evaluate(candidate);
    const double reward = options_.reward.compute(eval);
    trainer.feedback(ep, reward);
    offer(candidate, reward, eval);
    result.best_fast_reward = std::max(result.best_fast_reward, reward);
    if (options_.trace_every != 0 && it % options_.trace_every == 0)
      result.trace.push_back(
          {it, reward, eval,
           CandidateDesign{candidate.genotype, candidate.config}});
  }

  for (ExtendedRanked& f : pool) {
    f.accurate_result =
        accurate != nullptr ? accurate->evaluate(f.candidate) : f.fast_result;
    f.accurate_reward = options_.reward.compute(f.accurate_result);
    f.feasible = options_.reward.feasible(f.accurate_result);
  }
  std::sort(pool.begin(), pool.end(),
            [](const ExtendedRanked& a, const ExtendedRanked& b) {
              return a.accurate_reward > b.accurate_reward;
            });
  result.finalists = std::move(pool);
  for (const ExtendedRanked& f : result.finalists) {
    if (f.feasible) {
      result.best = f;
      break;
    }
  }
  if (!result.best && !result.finalists.empty())
    result.best = result.finalists.front();
  return result;
}

}  // namespace yoso
