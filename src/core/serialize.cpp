#include "core/serialize.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "accel/config.h"
#include "arch/genotype.h"
#include "core/design_space.h"

namespace yoso {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

int parse_int(const std::string& text, const std::string& what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size())
      throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("parse error: bad integer '" + text +
                                "' in " + what);
  }
}

std::string expect_prefix(const std::string& text, const std::string& prefix,
                          const std::string& what) {
  if (text.rfind(prefix, 0) != 0)
    throw std::invalid_argument("parse error: expected '" + prefix +
                                "' in " + what + ", got '" + text + "'");
  return text.substr(prefix.size());
}

}  // namespace

std::string serialize_cell(const CellGenotype& cell) {
  std::ostringstream ss;
  for (std::size_t n = 0; n < cell.nodes.size(); ++n) {
    const NodeSpec& s = cell.nodes[n];
    if (n > 0) ss << ";";
    ss << s.input_a << "," << s.input_b << "," << op_name(s.op_a) << ","
       << op_name(s.op_b);
  }
  return ss.str();
}

CellGenotype parse_cell(const std::string& text) {
  CellGenotype cell;
  const auto nodes = split(text, ';');
  for (const std::string& node_text : nodes) {
    const auto fields = split(node_text, ',');
    if (fields.size() != 4)
      throw std::invalid_argument(
          "parse error: cell node needs 4 comma-separated fields, got '" +
          node_text + "'");
    NodeSpec spec;
    spec.input_a = parse_int(fields[0], "cell node input_a");
    spec.input_b = parse_int(fields[1], "cell node input_b");
    spec.op_a = op_from_name(fields[2]);
    spec.op_b = op_from_name(fields[3]);
    cell.nodes.push_back(spec);
  }
  std::string error;
  if (!validate_cell(cell, &error))
    throw std::invalid_argument("parse error: invalid cell: " + error);
  return cell;
}

std::string serialize_genotype(const Genotype& g) {
  return "normal=" + serialize_cell(g.normal) +
         "|reduction=" + serialize_cell(g.reduction);
}

Genotype parse_genotype(const std::string& text) {
  const auto parts = split(text, '|');
  if (parts.size() != 2)
    throw std::invalid_argument(
        "parse error: genotype needs 'normal=...|reduction=...'");
  Genotype g;
  g.normal = parse_cell(expect_prefix(parts[0], "normal=", "genotype"));
  g.reduction =
      parse_cell(expect_prefix(parts[1], "reduction=", "genotype"));
  std::string error;
  if (!validate_genotype(g, &error))
    throw std::invalid_argument("parse error: invalid genotype: " + error);
  return g;
}

AcceleratorConfig parse_accelerator_config(const std::string& text) {
  // rows*cols/gbufKB/rbufB/dataflow
  const auto parts = split(text, '/');
  if (parts.size() != 4)
    throw std::invalid_argument(
        "parse error: config needs 'R*C/<g>KB/<r>B/<dataflow>', got '" +
        text + "'");
  const auto pe = split(parts[0], '*');
  if (pe.size() != 2)
    throw std::invalid_argument("parse error: PE shape needs 'R*C', got '" +
                                parts[0] + "'");
  AcceleratorConfig c;
  c.pe_rows = parse_int(pe[0], "PE rows");
  c.pe_cols = parse_int(pe[1], "PE cols");

  auto strip_suffix = [](const std::string& s, const std::string& suffix,
                         const std::string& what) {
    if (s.size() <= suffix.size() ||
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) != 0) {
      // Accept case-insensitive kb/b written by hand.
      std::string lower = s, lsuf = suffix;
      for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
      for (char& ch : lsuf) ch = static_cast<char>(std::tolower(ch));
      if (lower.size() > lsuf.size() &&
          lower.compare(lower.size() - lsuf.size(), lsuf.size(), lsuf) == 0)
        return s.substr(0, s.size() - suffix.size());
      throw std::invalid_argument("parse error: expected '" + suffix +
                                  "' suffix in " + what + ", got '" + s +
                                  "'");
    }
    return s.substr(0, s.size() - suffix.size());
  };
  c.g_buf_kb = parse_int(strip_suffix(parts[1], "KB", "global buffer"),
                         "global buffer size");
  c.r_buf_bytes = parse_int(strip_suffix(parts[2], "B", "register buffer"),
                            "register buffer size");
  c.dataflow = dataflow_from_name(parts[3]);
  if (c.pe_rows <= 0 || c.pe_cols <= 0 || c.g_buf_kb <= 0 ||
      c.r_buf_bytes <= 0)
    throw std::invalid_argument("parse error: non-positive dimension in '" +
                                text + "'");
  return c;
}


std::string serialize_candidate(const CandidateDesign& candidate) {
  return serialize_genotype(candidate.genotype) + "@" +
         candidate.config.to_string();
}

CandidateDesign parse_candidate(const std::string& text) {
  const auto at = text.find('@');
  if (at == std::string::npos)
    throw std::invalid_argument(
        "parse error: candidate needs '<genotype>@<config>'");
  CandidateDesign c;
  c.genotype = parse_genotype(text.substr(0, at));
  c.config = parse_accelerator_config(text.substr(at + 1));
  return c;
}

}  // namespace yoso
