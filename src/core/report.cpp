#include "core/report.h"

#include <sstream>
#include <stdexcept>

#include "accel/area.h"
#include "accel/roofline.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/reward.h"
#include "core/search.h"
#include "core/serialize.h"
#include "util/table.h"

namespace yoso {

namespace {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kDwConv: return "dwconv";
    case LayerKind::kPool: return "pool";
    case LayerKind::kFullyConnected: return "fc";
  }
  return "?";
}

}  // namespace

std::string render_design_report(const SearchResult& result,
                                 const NetworkSkeleton& skeleton,
                                 const RewardParams& reward,
                                 const ReportOptions& options) {
  if (!result.best.has_value())
    throw std::invalid_argument("render_design_report: no best candidate");
  const RankedCandidate& best = *result.best;
  const CandidateDesign& design = best.candidate;

  std::ostringstream os;
  os << "# YOSO co-design report\n\n";

  // --- summary ---
  os << "## Solution\n\n"
     << "| metric | value | threshold |\n|---|---|---|\n"
     << "| test error | "
     << TextTable::fmt((1.0 - best.accurate_result.accuracy) * 100.0, 2)
     << " % | - |\n"
     << "| energy / inference | "
     << TextTable::fmt(best.accurate_result.energy_mj, 2) << " mJ | "
     << TextTable::fmt(reward.t_eer_mj, 1) << " mJ |\n"
     << "| latency / inference | "
     << TextTable::fmt(best.accurate_result.latency_ms, 2) << " ms | "
     << TextTable::fmt(reward.t_lat_ms, 1) << " ms |\n"
     << "| feasible | " << (best.feasible ? "yes" : "**no**") << " | - |\n"
     << "| composite reward | " << TextTable::fmt(best.accurate_reward, 3)
     << " | - |\n\n"
     << "reward: `" << reward.to_string() << "`\n\n";

  // --- accelerator ---
  const AreaBreakdown area = estimate_area(design.config);
  os << "## Accelerator\n\n"
     << "configuration: `" << design.config.to_string() << "` ("
     << design.config.num_pes() << " PEs)\n\n"
     << "| area component | mm^2 |\n|---|---|\n"
     << "| PE array | " << TextTable::fmt(area.pe_mm2, 2) << " |\n"
     << "| register buffers | " << TextTable::fmt(area.rbuf_mm2, 2) << " |\n"
     << "| global buffer | " << TextTable::fmt(area.gbuf_mm2, 2) << " |\n"
     << "| dataflow muxing | " << TextTable::fmt(area.mux_mm2, 2) << " |\n"
     << "| routing / clock | " << TextTable::fmt(area.routing_mm2, 2)
     << " |\n"
     << "| **total** | **" << TextTable::fmt(area.total_mm2, 2) << "** |\n\n";

  // --- energy breakdown from the cycle-level simulator ---
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  const auto layers = extract_layers(design.genotype, skeleton);
  const SimulationResult sim = simulator.simulate(layers, design.config);
  os << "## Energy breakdown\n\n"
     << "| level | mJ |\n|---|---|\n"
     << "| DRAM | " << TextTable::fmt(sim.dram_mj, 2) << " |\n"
     << "| global buffer | " << TextTable::fmt(sim.gbuf_mj, 2) << " |\n"
     << "| register files | " << TextTable::fmt(sim.rbuf_mj, 2) << " |\n"
     << "| MACs | " << TextTable::fmt(sim.mac_mj, 2) << " |\n"
     << "| static | " << TextTable::fmt(sim.static_mj, 2) << " |\n\n"
     << "mean PE utilisation: " << TextTable::fmt(sim.mean_utilization, 2)
     << "\n\n";

  // --- roofline ---
  const RooflineSummary roof = roofline_analysis(layers, design.config);
  os << "## Roofline\n\n"
     << "array peak " << TextTable::fmt(roof.peak_gmacs, 0)
     << " GMAC/s, machine balance "
     << TextTable::fmt(roof.balance_intensity, 1) << " MACs/byte; "
     << roof.memory_bound_layers << " of " << roof.layers.size()
     << " weight layers are memory-bound; MAC-weighted roofline efficiency "
     << TextTable::fmt(roof.mean_efficiency * 100.0, 0) << " %.\n\n";

  // --- network ---
  const NetworkStats stats = network_stats(layers);
  os << "## Network\n\n"
     << stats.num_layers << " layers, "
     << stats.total_macs / 1000000 << " MMACs, "
     << stats.total_params / 1000 << " k parameters ("
     << skeleton.cells.size() << " cells, stem " << skeleton.stem_channels
     << ")\n\n";
  if (options.include_genotype)
    os << "```\n" << serialize_genotype(design.genotype) << "\n```\n\n";

  if (options.include_layer_table) {
    os << "### Layers\n\n| # | name | kind | in | out | k | s | MMACs |\n"
       << "|---|---|---|---|---|---|---|---|\n";
    const int limit =
        std::min<int>(options.max_layers, static_cast<int>(layers.size()));
    for (int i = 0; i < limit; ++i) {
      const Layer& l = layers[static_cast<std::size_t>(i)];
      os << "| " << i << " | " << l.name << " | " << layer_kind_name(l.kind)
         << " | " << l.in_h << "x" << l.in_w << "x" << l.in_c << " | "
         << l.out_h() << "x" << l.out_w() << "x" << l.out_c << " | "
         << l.kernel << " | " << l.stride << " | "
         << TextTable::fmt(static_cast<double>(l.macs()) / 1e6, 2) << " |\n";
    }
    if (limit < static_cast<int>(layers.size()))
      os << "| ... | (" << layers.size() - static_cast<std::size_t>(limit)
         << " more) | | | | | | |\n";
    os << "\n";
  }

  // --- search provenance ---
  os << "## Search\n\n"
     << result.iterations_run << " iterations; best fast reward "
     << TextTable::fmt(result.best_fast_reward, 3) << "; "
     << result.finalists.size()
     << " finalists reranked with the accurate evaluator.\n";
  return os.str();
}

}  // namespace yoso
