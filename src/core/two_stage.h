#pragma once
// The two-stage baseline of Table 2: take a fixed high-accuracy network
// (stage 1 — here a reference model from the zoo, standing in for the
// published NAS results), then exhaustively enumerate every accelerator
// configuration and keep the best one for that network (stage 2).  The
// "best" configuration is chosen by the same composite reward so the
// comparison against single-stage YOSO is apples-to-apples.

#include <string>
#include <vector>

#include "arch/zoo.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"

namespace yoso {

/// One row of the Table-2 comparison.
struct TwoStageRow {
  std::string name;
  CandidateDesign design;       ///< network + its best configuration
  EvalResult result;            ///< accurate evaluation of that pair
  double reward = 0.0;
  double paper_test_error = 0.0;
  double paper_search_gpu_days = 0.0;
  bool feasible = false;
  std::size_t configs_evaluated = 0;
};

/// Finds the best accelerator configuration for a fixed genotype by
/// exhaustive enumeration under the accurate evaluator.
TwoStageRow two_stage_best_config(const ReferenceModel& model,
                                  const DesignSpace& space,
                                  AccurateEvaluator& evaluator,
                                  const RewardParams& reward);

/// Runs the two-stage baseline for every reference model.
std::vector<TwoStageRow> two_stage_baseline(const DesignSpace& space,
                                            AccurateEvaluator& evaluator,
                                            const RewardParams& reward);

}  // namespace yoso
