#pragma once
// Design-report generation: renders everything an engineer needs to review
// a winning co-design into one markdown document — the candidate (network +
// configuration), accurate metrics against the thresholds, the simulator's
// energy breakdown, the area estimate, the concrete layer table and a
// summary of the search that produced it.

#include <string>

#include "arch/network.h"
#include "core/reward.h"
#include "core/search.h"

namespace yoso {

struct ReportOptions {
  bool include_layer_table = true;  ///< per-layer shapes/MACs (long)
  bool include_genotype = true;     ///< serialized genotype string
  int max_layers = 100;             ///< truncate very deep layer tables
};

/// Renders a markdown report for the best candidate of a search result.
/// `skeleton` must be the skeleton the search evaluated against.
/// Throws std::invalid_argument when the result has no best candidate.
std::string render_design_report(const SearchResult& result,
                                 const NetworkSkeleton& skeleton,
                                 const RewardParams& reward,
                                 const ReportOptions& options = {});

}  // namespace yoso
