#pragma once
// Candidate evaluators (paper Fig 2).
//
// FastEvaluator — used inside the search loop:
//   * accuracy from the one-shot HyperNet proxy (surrogate hypernet mode;
//     see src/surrogate for why a calibrated analytic model stands in for a
//     GPU-trained HyperNet at bench scale), and
//   * latency/energy from the Gaussian-process performance predictor.
//
// AccurateEvaluator — used for Step-3 top-N reranking and for the two-stage
// baseline: "fully trained" accuracy (surrogate test-error mode) and the
// cycle-level systolic-array simulation.
//
// Both share one interface so the search driver is evaluator-agnostic, and
// the HyperNet-backed evaluator in examples/ plugs in the same way.
//
// Batched evaluation: evaluate_batch() scores a span of candidates at once.
// Both bundled evaluators are pure functions of the candidate after
// construction (the GPs, the accuracy surrogate and the simulator are all
// read-only and deterministic), so their overrides fan the batch out across
// a thread pool; FastEvaluator additionally memoizes results keyed by the
// encoded candidate, which pays off when the controller revisits designs.
// Results are bit-identical to per-candidate serial evaluation at any
// thread count.
//
// The memo cache is *coordinator-only* state: it is read and filled on the
// calling thread, in batch order, never from the pool workers — that is
// what keeps its contents (and hence eviction behaviour) independent of the
// thread count.  The discipline is machine-proven, not prose: cache_ is
// YOSO_GUARDED_BY the coordinator_ thread role, so under clang
// -Wthread-safety a worker lambda that touches it fails to compile (the
// clang-gated ctest `tsa.negative` demonstrates the diagnostic).

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "accel/simulator.h"
#include "core/design_space.h"
#include "core/reward.h"
#include "predictor/perf_predictor.h"
#include "surrogate/accuracy_model.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace yoso {

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  virtual EvalResult evaluate(const CandidateDesign& candidate) = 0;

  /// Scores `batch` in order.  The base implementation is a serial loop over
  /// evaluate(); overrides may parallelize but must return results identical
  /// to that loop.
  virtual std::vector<EvalResult> evaluate_batch(
      std::span<const CandidateDesign> batch);

  /// Number of worker threads batch evaluation may use (1 = serial,
  /// 0 = all hardware threads).  A no-op for evaluators without a parallel
  /// batch path.
  virtual void set_parallelism(std::size_t /*threads*/) {}
};

/// Step-1 construction knobs for the fast evaluator.
struct FastEvaluatorOptions {
  std::size_t predictor_samples = 600;  ///< simulator samples for GP training
  std::uint64_t seed = 99;
  std::size_t threads = 1;  ///< Step-1 sample collection + batch eval workers
};

class FastEvaluator : public Evaluator {
 public:
  /// Builds the evaluator: collects `predictor_samples` simulator samples
  /// and fits the energy + latency GPs (paper Step 1).  Sample simulation
  /// fans out across `options.threads` workers; the candidate draws stay on
  /// one RNG stream so the collected set is thread-count independent.
  FastEvaluator(const DesignSpace& space, const NetworkSkeleton& skeleton,
                const SystolicSimulator& simulator,
                FastEvaluatorOptions options = {});

  /// Construction from pre-collected samples (lets benches reuse them).
  FastEvaluator(const NetworkSkeleton& skeleton,
                const std::vector<PerfSample>& samples);

  /// Single-candidate evaluation: always recomputes (the serial baseline).
  EvalResult evaluate(const CandidateDesign& candidate) override;

  /// Parallel batched evaluation with memoization: distinct uncached
  /// candidates are scored across the pool, revisited ones are served from
  /// the cache.  Identical results to evaluate() per element.
  std::vector<EvalResult> evaluate_batch(
      std::span<const CandidateDesign> batch) override;

  void set_parallelism(std::size_t threads) override;
  std::size_t parallelism() const { return threads_; }

  std::size_t cache_size() const {
    ThreadRoleGuard coordinator(coordinator_);
    return cache_.size();
  }
  void clear_cache() {
    ThreadRoleGuard coordinator(coordinator_);
    cache_.clear();
  }

  const PerformancePredictor& predictor() const { return predictor_; }
  const AccuracyModel& accuracy_model() const { return accuracy_; }

#ifdef YOSO_TSA_NEGATIVE_FIXTURE
  /// Hook for the compile-time negative fixture
  /// (tests/fixtures/tsa_negative_cache_access.cpp): its definition makes a
  /// worker lambda touch cache_ and must be rejected by -Wthread-safety.
  void tsa_fixture_worker_touches_cache();
#endif

 private:
  EvalResult compute(const CandidateDesign& candidate) const;
  ThreadPool& pool();

  AccuracyModel accuracy_;
  PerformancePredictor predictor_;
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  /// Serial context of whichever thread drives the search; cache_ may only
  /// be touched under a ThreadRoleGuard on it (never from pool workers).
  mutable ThreadRole coordinator_;
  std::unordered_map<std::string, EvalResult> cache_
      YOSO_GUARDED_BY(coordinator_);
};

class AccurateEvaluator : public Evaluator {
 public:
  AccurateEvaluator(NetworkSkeleton skeleton,
                    SystolicSimulator simulator = SystolicSimulator(
                        {}, SimFidelity::kCycleLevel));

  EvalResult evaluate(const CandidateDesign& candidate) override;

  /// Parallel batch scoring (no memoization: Step-3 finalists are already
  /// distinct and cycle-level simulation dominates, so the fan-out is the
  /// whole win).
  std::vector<EvalResult> evaluate_batch(
      std::span<const CandidateDesign> batch) override;

  void set_parallelism(std::size_t threads) override;

  const SystolicSimulator& simulator() const { return simulator_; }

 private:
  ThreadPool& pool();

  NetworkSkeleton skeleton_;
  AccuracyModel accuracy_;
  SystolicSimulator simulator_;
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace yoso
