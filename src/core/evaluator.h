#pragma once
// Candidate evaluators (paper Fig 2).
//
// FastEvaluator — used inside the search loop:
//   * accuracy from the one-shot HyperNet proxy (surrogate hypernet mode;
//     see src/surrogate for why a calibrated analytic model stands in for a
//     GPU-trained HyperNet at bench scale), and
//   * latency/energy from the Gaussian-process performance predictor.
//
// AccurateEvaluator — used for Step-3 top-N reranking and for the two-stage
// baseline: "fully trained" accuracy (surrogate test-error mode) and the
// cycle-level systolic-array simulation.
//
// Both share one interface so the search driver is evaluator-agnostic, and
// the HyperNet-backed evaluator in examples/ plugs in the same way.
//
// Parallelism comes from one injected ExecContext (util/exec_context.h):
// evaluators never own a pool, so a Fast+Accurate pair sharing a context
// shares its workers instead of oversubscribing the machine.  A null /
// omitted context means serial.
//
// Batched evaluation: evaluate_batch() scores a span of candidates at once.
// Both bundled evaluators are pure functions of the candidate after
// construction (the GPs, the accuracy surrogate and the simulator are all
// read-only and deterministic).  FastEvaluator runs a two-stage pipeline:
// pool workers compute the accuracy proxy + GP feature row for miss chunk
// k+1 while the coordinator runs the fused batched GP predict for chunk k
// (double-buffered, no barrier between the stages), and memoizes results
// keyed by the encoded candidate — which pays off when the controller
// revisits designs.  Results are bit-identical to per-candidate serial
// evaluation at any thread count: the chunking is fixed, every per-row
// computation chain is self-contained, and all stateful bookkeeping stays
// on the coordinator.
//
// The memo cache is *coordinator-only writable* state: workers probe a
// read-only snapshot of it (probes strictly precede this batch's inserts),
// and the coordinator merges the insert log in proposal order — that is
// what keeps its contents (and hence eviction behaviour) independent of the
// thread count.  The discipline is machine-proven, not prose: cache_ is
// YOSO_GUARDED_BY the coordinator_ thread role, so under clang
// -Wthread-safety a worker lambda that touches it fails to compile (the
// clang-gated ctest `tsa.negative` demonstrates the diagnostic).

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "accel/simulator.h"
#include "arch/network.h"
#include "base/thread_annotations.h"
#include "core/design_space.h"
#include "core/reward.h"
#include "predictor/gp.h"
#include "predictor/perf_predictor.h"
#include "surrogate/accuracy_model.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace yoso {

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  virtual EvalResult evaluate(const CandidateDesign& candidate) = 0;

  /// Scores `batch` in order.  The base implementation is a serial loop over
  /// evaluate(); overrides may parallelize but must return results identical
  /// to that loop.
  virtual std::vector<EvalResult> evaluate_batch(
      std::span<const CandidateDesign> batch);

  /// Injects the execution context batch evaluation runs on (null = serial).
  /// A no-op for evaluators without a parallel batch path.
  virtual void set_exec_context(ExecContextPtr /*exec*/) {}

  /// Online-refinement hook: folds one *accurate* result for `candidate`
  /// back into the evaluator's internal models, so later evaluations are
  /// anchored by ground truth collected mid-search.  Returns true when the
  /// result was absorbed; the base implementation (and any evaluator with
  /// no refinable model) is a no-op returning false.  Must be called from
  /// the thread driving the search, never from pool workers.
  virtual bool refine(const CandidateDesign& /*candidate*/,
                      const EvalResult& /*accurate*/) {
    return false;
  }

  /// Deprecated shim (one release): forwards to set_exec_context with a
  /// fresh context of `threads` total threads (0 = all hardware threads).
  /// Prefer constructing one ExecContext and sharing it between evaluators.
  void set_parallelism(std::size_t threads) {
    set_exec_context(ExecContext::create(threads));
  }
};

/// Step-1 construction knobs for the fast evaluator.
struct FastEvaluatorOptions {
  std::size_t predictor_samples = 600;  ///< simulator samples for GP training
  std::uint64_t seed = 99;
  /// GP factorisation for the performance predictor: kSparse caps each
  /// model at `inducing_points` inducing rows and unlocks refine().
  GpBackend predictor_backend = GpBackend::kExact;
  std::size_t inducing_points = 512;
  /// Step-1 sampling + batch-eval workers; null means serial.
  ExecContextPtr exec = nullptr;
};

class FastEvaluator : public Evaluator {
 public:
  /// Builds the evaluator: collects `predictor_samples` simulator samples
  /// and fits the energy + latency GPs (paper Step 1).  Sample simulation
  /// fans out across `options.exec`; the candidate draws stay on one RNG
  /// stream so the collected set is thread-count independent.
  FastEvaluator(const DesignSpace& space, const NetworkSkeleton& skeleton,
                const SystolicSimulator& simulator,
                FastEvaluatorOptions options = {});

  /// Construction from pre-collected samples (lets benches reuse them).
  FastEvaluator(const NetworkSkeleton& skeleton,
                const std::vector<PerfSample>& samples,
                GpBackend predictor_backend = GpBackend::kExact,
                std::size_t inducing_points = 512);

  /// Construction from already-fitted models (the artifact load path,
  /// core/artifact.h): no Step-1 sample collection or GP fit happens, the
  /// predictor arrives ready.  An evaluator restored from the artifact a
  /// fresh build saved evaluates bit-identically to that build
  /// (ContractViolation when `predictor` is unfitted).
  FastEvaluator(AccuracyModel accuracy, PerformancePredictor predictor,
                ExecContextPtr exec = nullptr);

  /// Single-candidate evaluation: always recomputes (the serial baseline).
  EvalResult evaluate(const CandidateDesign& candidate) override;

  /// Pipelined batched evaluation with memoization: distinct uncached
  /// candidates stream through the two-stage worker/coordinator pipeline,
  /// revisited ones are served from the cache.  Identical results to
  /// evaluate() per element.
  std::vector<EvalResult> evaluate_batch(
      std::span<const CandidateDesign> batch) override;

  /// Folds one accurate-simulator result into the latency/energy GP pair
  /// (O(m^2) per model; sparse predictor backend only — a no-op returning
  /// false on the exact backend).  Memoized results predate the refinement,
  /// so the cache is cleared on success: later batches re-predict through
  /// the refined models.  Coordinator-only, like evaluate_batch.
  bool refine(const CandidateDesign& candidate,
              const EvalResult& accurate) override;

  void set_exec_context(ExecContextPtr exec) override;
  std::size_t parallelism() const { return exec_->threads(); }

  std::size_t cache_size() const {
    ThreadRoleGuard coordinator(coordinator_);
    return cache_.size();
  }
  void clear_cache() {
    ThreadRoleGuard coordinator(coordinator_);
    cache_.clear();
  }

  const PerformancePredictor& predictor() const { return predictor_; }
  const AccuracyModel& accuracy_model() const { return accuracy_; }

#ifdef YOSO_TSA_NEGATIVE_FIXTURE
  /// Hook for the compile-time negative fixture
  /// (tests/fixtures/tsa_negative_cache_access.cpp): its definition makes a
  /// worker lambda touch cache_ and must be rejected by -Wthread-safety.
  void tsa_fixture_worker_touches_cache();
#endif

 private:
  ThreadPool& pool() { return exec_->pool(); }

  AccuracyModel accuracy_;
  PerformancePredictor predictor_;
  ExecContextPtr exec_;
  /// Serial context of whichever thread drives the search; cache_ may only
  /// be written under a ThreadRoleGuard on it (never from pool workers —
  /// they see at most a const snapshot).
  mutable ThreadRole coordinator_;
  std::unordered_map<std::string, EvalResult> cache_
      YOSO_GUARDED_BY(coordinator_);
};

class AccurateEvaluator : public Evaluator {
 public:
  AccurateEvaluator(NetworkSkeleton skeleton,
                    SystolicSimulator simulator = SystolicSimulator(
                        {}, SimFidelity::kCycleLevel),
                    ExecContextPtr exec = nullptr);

  EvalResult evaluate(const CandidateDesign& candidate) override;

  /// Parallel batch scoring (no memoization: Step-3 finalists are already
  /// distinct and cycle-level simulation dominates, so the fan-out is the
  /// whole win).
  std::vector<EvalResult> evaluate_batch(
      std::span<const CandidateDesign> batch) override;

  void set_exec_context(ExecContextPtr exec) override;

  const SystolicSimulator& simulator() const { return simulator_; }

 private:
  ThreadPool& pool() { return exec_->pool(); }

  NetworkSkeleton skeleton_;
  AccuracyModel accuracy_;
  SystolicSimulator simulator_;
  ExecContextPtr exec_;
};

}  // namespace yoso
