#pragma once
// Candidate evaluators (paper Fig 2).
//
// FastEvaluator — used inside the search loop:
//   * accuracy from the one-shot HyperNet proxy (surrogate hypernet mode;
//     see src/surrogate for why a calibrated analytic model stands in for a
//     GPU-trained HyperNet at bench scale), and
//   * latency/energy from the Gaussian-process performance predictor.
//
// AccurateEvaluator — used for Step-3 top-N reranking and for the two-stage
// baseline: "fully trained" accuracy (surrogate test-error mode) and the
// cycle-level systolic-array simulation.
//
// Both share one interface so the search driver is evaluator-agnostic, and
// the HyperNet-backed evaluator in examples/ plugs in the same way.

#include <memory>

#include "accel/simulator.h"
#include "core/design_space.h"
#include "core/reward.h"
#include "predictor/perf_predictor.h"
#include "surrogate/accuracy_model.h"

namespace yoso {

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  virtual EvalResult evaluate(const CandidateDesign& candidate) = 0;
};

/// Step-1 construction knobs for the fast evaluator.
struct FastEvaluatorOptions {
  std::size_t predictor_samples = 600;  ///< simulator samples for GP training
  std::uint64_t seed = 99;
};

class FastEvaluator : public Evaluator {
 public:
  /// Builds the evaluator: collects `predictor_samples` simulator samples
  /// and fits the energy + latency GPs (paper Step 1).
  FastEvaluator(const DesignSpace& space, const NetworkSkeleton& skeleton,
                const SystolicSimulator& simulator,
                FastEvaluatorOptions options = {});

  /// Construction from pre-collected samples (lets benches reuse them).
  FastEvaluator(const NetworkSkeleton& skeleton,
                const std::vector<PerfSample>& samples);

  EvalResult evaluate(const CandidateDesign& candidate) override;

  const PerformancePredictor& predictor() const { return predictor_; }
  const AccuracyModel& accuracy_model() const { return accuracy_; }

 private:
  AccuracyModel accuracy_;
  PerformancePredictor predictor_;
};

class AccurateEvaluator : public Evaluator {
 public:
  AccurateEvaluator(NetworkSkeleton skeleton,
                    SystolicSimulator simulator = SystolicSimulator(
                        {}, SimFidelity::kCycleLevel));

  EvalResult evaluate(const CandidateDesign& candidate) override;

  const SystolicSimulator& simulator() const { return simulator_; }

 private:
  NetworkSkeleton skeleton_;
  AccuracyModel accuracy_;
  SystolicSimulator simulator_;
};

}  // namespace yoso
