#pragma once
// CSV export/import for search artefacts: iteration traces for plotting
// (the Fig-6 series), and finalist tables.  The CSV dialect is plain
// comma-separated with a header row; candidate designs use the serialize.h
// grammar so a trace row can be decoded back into a runnable design.

#include <iosfwd>
#include <string>

#include "core/search.h"

namespace yoso {

/// Writes the iteration trace:
/// iteration,reward,accuracy,latency_ms,energy_mj,candidate
void write_trace_csv(std::ostream& os, const SearchResult& result);

/// Writes the reranked finalists:
/// rank,fast_reward,accurate_reward,accuracy,latency_ms,energy_mj,feasible,candidate
void write_finalists_csv(std::ostream& os, const SearchResult& result);

/// Reads a trace written by write_trace_csv.  Throws std::invalid_argument
/// on malformed rows (with the offending line number).
std::vector<SearchTracePoint> read_trace_csv(std::istream& is);

}  // namespace yoso
