#include "serve/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "base/contract.h"

namespace yoso {
namespace serve {
namespace {

// Nesting cap: protocol messages are shallow; a pathological input must not
// recurse the stack away.
constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    std::optional<JsonValue> v = value(0);
    if (v.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing bytes after document");
        v.reset();
      }
    }
    if (!v.has_value() && error != nullptr) *error = error_;
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_.empty())
      error_ = "json: " + what + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<std::string> string_body() {
    // Opening quote already consumed.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by this protocol; lone surrogates encode as-is).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::object();
      skip_ws();
      if (consume('}')) return obj;
      while (true) {
        if (!consume('"')) {
          fail("expected object key");
          return std::nullopt;
        }
        std::optional<std::string> key = string_body();
        if (!key.has_value()) return std::nullopt;
        if (!consume(':')) {
          fail("expected ':'");
          return std::nullopt;
        }
        std::optional<JsonValue> member = value(depth + 1);
        if (!member.has_value()) return std::nullopt;
        obj.set(*key, std::move(*member));
        if (consume(',')) continue;
        if (consume('}')) return obj;
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::array();
      skip_ws();
      if (consume(']')) return arr;
      while (true) {
        std::optional<JsonValue> item = value(depth + 1);
        if (!item.has_value()) return std::nullopt;
        arr.push(std::move(*item));
        if (consume(',')) continue;
        if (consume(']')) return arr;
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
    if (c == '"') {
      ++pos_;
      std::optional<std::string> s = string_body();
      if (!s.has_value()) return std::nullopt;
      return JsonValue::string(std::move(*s));
    }
    if (literal("true")) return JsonValue::boolean(true);
    if (literal("false")) return JsonValue::boolean(false);
    if (literal("null")) return JsonValue();
    // Number.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) {
      fail("unexpected character");
      return std::nullopt;
    }
    const std::string num = text_.substr(start, pos_ - start);
    // JSON forbids leading zeros ("01") and a bare minus; strtod accepts
    // both, so gate on the grammar first.
    const std::size_t digits = num[0] == '-' ? 1 : 0;
    if (num.size() == digits ||
        (num[digits] == '0' && num.size() > digits + 1 &&
         std::isdigit(static_cast<unsigned char>(num[digits + 1])) != 0)) {
      fail("bad number");
      return std::nullopt;
    }
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("bad number");
      return std::nullopt;
    }
    return JsonValue::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double v, std::string& out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.bool_or(false) ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      dump_number(v.number_or(0.0), out);
      break;
    case JsonValue::Kind::kString:
      dump_string(v.string_or(""), out);
      break;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        dump_value(member, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::bool_or(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::number_or(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

std::string JsonValue::string_or(const std::string& fallback) const {
  return kind_ == Kind::kString ? string_ : fallback;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = members_.find(key);
  return it != members_.end() ? &it->second : nullptr;
}

void JsonValue::set(const std::string& key, JsonValue value) {
  YOSO_REQUIRE(kind_ == Kind::kObject, "JsonValue::set on a non-object");
  members_.insert_or_assign(key, std::move(value));
}

void JsonValue::push(JsonValue value) {
  YOSO_REQUIRE(kind_ == Kind::kArray, "JsonValue::push on a non-array");
  items_.push_back(std::move(value));
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  Parser p(text);
  return p.run(error);
}

JsonValue ok_response() {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue::boolean(true));
  return v;
}

JsonValue error_response(const std::string& message) {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue::boolean(false));
  v.set("error", JsonValue::string(message));
  return v;
}

}  // namespace serve
}  // namespace yoso
