#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "base/contract.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/job_queue.h"
#include "serve/service.h"

namespace yoso {
namespace serve {
namespace {

constexpr int kPollIntervalMs = 200;

// Full write with EINTR handling; returns false when the peer went away.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

JsonValue job_json(const JobRecord& record) {
  JsonValue v = JsonValue::object();
  v.set("job_id", JsonValue::integer(static_cast<std::int64_t>(record.id)));
  v.set("state", JsonValue::string(job_state_name(record.state)));
  v.set("priority", JsonValue::integer(record.spec.priority));
  v.set("searcher", JsonValue::string(record.spec.searcher));
  if (!record.error.empty())
    v.set("error", JsonValue::string(record.error));
  return v;
}

JsonValue outcome_json(const JobRecord& record) {
  JsonValue v = JsonValue::object();
  v.set("iterations_run", JsonValue::integer(static_cast<std::int64_t>(
                              record.outcome.iterations_run)));
  v.set("finalists", JsonValue::integer(
                         static_cast<std::int64_t>(record.outcome.finalists)));
  if (record.outcome.has_best) {
    JsonValue best = JsonValue::object();
    best.set("candidate", JsonValue::string(record.outcome.best_candidate));
    best.set("reward", JsonValue::number(record.outcome.best_reward));
    best.set("accuracy", JsonValue::number(record.outcome.accuracy));
    best.set("latency_ms", JsonValue::number(record.outcome.latency_ms));
    best.set("energy_mj", JsonValue::number(record.outcome.energy_mj));
    v.set("best", std::move(best));
  }
  return v;
}

JobSpec spec_from_json(const JsonValue& job) {
  JobSpec spec;
  if (const JsonValue* v = job.get("searcher"))
    spec.searcher = v->string_or(spec.searcher);
  if (const JsonValue* v = job.get("iterations"))
    spec.iterations = static_cast<std::size_t>(
        v->number_or(static_cast<double>(spec.iterations)));
  if (const JsonValue* v = job.get("batch"))
    spec.batch_size = static_cast<std::size_t>(
        v->number_or(static_cast<double>(spec.batch_size)));
  if (const JsonValue* v = job.get("top_n"))
    spec.top_n = static_cast<std::size_t>(
        v->number_or(static_cast<double>(spec.top_n)));
  if (const JsonValue* v = job.get("seed"))
    spec.seed = static_cast<std::uint64_t>(
        v->number_or(static_cast<double>(spec.seed)));
  if (const JsonValue* v = job.get("reward"))
    spec.reward = v->string_or(spec.reward);
  if (const JsonValue* v = job.get("t_lat"))
    spec.t_lat_ms = v->number_or(spec.t_lat_ms);
  if (const JsonValue* v = job.get("t_eer"))
    spec.t_eer_mj = v->number_or(spec.t_eer_mj);
  if (const JsonValue* v = job.get("priority"))
    spec.priority = static_cast<int>(
        v->number_or(static_cast<double>(spec.priority)));
  return spec;
}

// Pulls the job id out of a request; returns false (and fills the error
// response) when it is missing.
bool job_id_of(const JsonValue& request, std::uint64_t* id,
               JsonValue* error) {
  YOSO_REQUIRE(id != nullptr && error != nullptr,
               "job_id_of: null output parameter");
  const JsonValue* v = request.get("job_id");
  if (v == nullptr || !v->is_number()) {
    *error = error_response("missing numeric 'job_id'");
    return false;
  }
  *id = static_cast<std::uint64_t>(v->number_or(0.0));
  return true;
}

}  // namespace

SearchServer::SearchServer(SearchService& service, std::string socket_path)
    : service_(service), socket_path_(std::move(socket_path)) {
  register_default_ops();

  YOSO_REQUIRE(socket_path_.size() < sizeof(sockaddr_un{}.sun_path),
               "socket path '", socket_path_, "' too long for AF_UNIX");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  YOSO_REQUIRE(listen_fd_ >= 0, "cannot create AF_UNIX socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ::unlink(socket_path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    YOSO_REQUIRE(false, "cannot bind/listen on '", socket_path_, "'");
  }
  accept_thread_ = std::thread(&SearchServer::accept_loop, this);
}

SearchServer::~SearchServer() { stop(); }

void SearchServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  {
    MutexLock lock(shutdown_mutex_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_connections(true);  // stopping_ makes every connection loop exit
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
}

void SearchServer::wait_shutdown() {
  MutexLock lock(shutdown_mutex_);
  while (!shutdown_requested_) shutdown_mutex_.wait(shutdown_cv_);
}

void SearchServer::register_op(const std::string& name, Handler handler) {
  YOSO_REQUIRE(ops_.find(name) == ops_.end(), "duplicate op '", name, "'");
  ops_.emplace(name, std::move(handler));
}

void SearchServer::register_default_ops() {
  register_op("submit", [this](const JsonValue& request) {
    const JsonValue* job = request.get("job");
    const JobSpec spec =
        job != nullptr ? spec_from_json(*job) : spec_from_json(request);
    std::string why;
    if (!valid_job_spec(spec, &why)) return error_response(why);
    const std::uint64_t id = service_.submit(spec);
    JsonValue response = ok_response();
    response.set("job_id", JsonValue::integer(static_cast<std::int64_t>(id)));
    return response;
  });
  register_op("status", [this](const JsonValue& request) {
    std::uint64_t id = 0;
    JsonValue err;
    if (!job_id_of(request, &id, &err)) return err;
    const std::optional<JobRecord> record = service_.jobs().get(id);
    if (!record.has_value()) return error_response("unknown job id");
    JsonValue response = ok_response();
    response.set("job", job_json(*record));
    return response;
  });
  register_op("result", [this](const JsonValue& request) {
    std::uint64_t id = 0;
    JsonValue err;
    if (!job_id_of(request, &id, &err)) return err;
    const std::optional<JobRecord> record = service_.jobs().get(id);
    if (!record.has_value()) return error_response("unknown job id");
    if (record->state == JobState::kFailed)
      return error_response("job failed: " + record->error);
    if (record->state != JobState::kDone)
      return error_response(std::string("job is ") +
                            job_state_name(record->state));
    JsonValue response = ok_response();
    response.set("result", outcome_json(*record));
    return response;
  });
  register_op("cancel", [this](const JsonValue& request) {
    std::uint64_t id = 0;
    JsonValue err;
    if (!job_id_of(request, &id, &err)) return err;
    if (!service_.jobs().cancel(id))
      return error_response("job is not cancellable (unknown or already "
                            "left the queue)");
    return ok_response();
  });
  register_op("list", [this](const JsonValue&) {
    JsonValue jobs = JsonValue::array();
    for (const JobRecord& record : service_.jobs().list())
      jobs.push(job_json(record));
    JsonValue response = ok_response();
    response.set("jobs", std::move(jobs));
    return response;
  });
  register_op("metrics", [this](const JsonValue&) {
    JsonValue response = ok_response();
    response.set("text", JsonValue::string(service_.metrics_text()));
    return response;
  });
  register_op("snapshot", [this](const JsonValue& request) {
    const JsonValue* path = request.get("path");
    if (path == nullptr || !path->is_string())
      return error_response("missing string 'path'");
    service_.snapshot_to(path->string_or(""));
    JsonValue response = ok_response();
    response.set("path", JsonValue::string(path->string_or("")));
    return response;
  });
  register_op("pause", [this](const JsonValue&) {
    service_.pause();
    return ok_response();
  });
  register_op("resume", [this](const JsonValue&) {
    service_.resume();
    return ok_response();
  });
  register_op("shutdown", [this](const JsonValue&) {
    MutexLock lock(shutdown_mutex_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    return ok_response();
  });
}

std::string SearchServer::dispatch_line(const std::string& line) {
  YOSO_TRACE_SPAN("serve.request");
  obs::counter_add("serve.requests");
  std::string parse_error;
  const std::optional<JsonValue> request = parse_json(line, &parse_error);
  if (!request.has_value()) return error_response(parse_error).dump();
  const JsonValue* op = request->get("op");
  if (op == nullptr || !op->is_string())
    return error_response("missing string 'op'").dump();
  const auto it = ops_.find(op->string_or(""));
  if (it == ops_.end())
    return error_response("unknown op '" + op->string_or("") + "'").dump();
  try {
    return it->second(*request).dump();
  } catch (const std::exception& e) {
    return error_response(e.what()).dump();
  }
}

void SearchServer::accept_loop() {
  while (!stopping_.load()) {
    reap_connections(false);
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    spawn_connection(fd);
  }
}

void SearchServer::spawn_connection(int fd) {
  YOSO_REQUIRE(fd >= 0, "spawn_connection: invalid socket fd");
  MutexLock lock(conn_mutex_);
  const std::uint64_t id = next_conn_id_++;
  connections_.emplace(id, std::thread([this, fd, id] {
                         serve_connection(fd);
                         ::close(fd);
                         MutexLock done(conn_mutex_);
                         finished_.push_back(id);
                       }));
}

void SearchServer::reap_connections(bool all) {
  // Threads are extracted under the lock but joined outside it: a finishing
  // connection thread takes conn_mutex_ to report itself done, so joining
  // with the lock held would deadlock.
  std::vector<std::thread> joinable;
  {
    MutexLock lock(conn_mutex_);
    if (all) {
      for (auto& [id, thread] : connections_)
        joinable.push_back(std::move(thread));
      connections_.clear();
      finished_.clear();
    } else {
      for (const std::uint64_t id : finished_) {
        const auto it = connections_.find(id);
        if (it != connections_.end()) {
          joinable.push_back(std::move(it->second));
          connections_.erase(it);
        }
      }
      finished_.clear();
    }
  }
  for (std::thread& thread : joinable) thread.join();
}

void SearchServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load()) {
    // Serve every complete line already buffered.
    std::size_t nl = buffer.find('\n');
    while (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.rfind("GET /metrics", 0) == 0) {
        // curl-compatible plain-text exposition; one response, then close.
        const std::string body = service_.metrics_text();
        write_all(fd,
                  "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n"
                  "Content-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body);
        return;
      }
      if (!line.empty() && !write_all(fd, dispatch_line(line) + "\n"))
        return;
      nl = buffer.find('\n');
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;  // peer closed (or error)
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace serve
}  // namespace yoso
