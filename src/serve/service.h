#pragma once
// SearchService: the long-running co-search engine behind yoso_serve.
//
// One service loads ONE artifact set (core/artifact.h) at startup and holds
// it immutable for its whole life: the decoded FastEvaluator bundle, the
// design space, and the original mapped artifact (kept so snapshots can
// copy every source section forward verbatim).  Jobs arrive through the
// JobQueue from any thread; a single worker thread drains them in priority
// order and runs each as a Step-2/Step-3 search.
//
// Cross-job evaluation batching: every job evaluates through the SAME
// FastEvaluator on the SAME ExecContext, so its memoization cache persists
// across jobs — a candidate any earlier job scored is served from memory,
// and each job's pipelined batches keep the shared pool fed.  Sharing is
// free of result skew because memoized entries are bit-identical to
// recomputation (core/evaluator.h): a job's results match a fresh
// in-process run of the same search exactly, byte for byte — the serving
// guarantee tests/test_serve.cpp pins.
//
// Execution is serialized on the worker (the evaluator is coordinator-only
// state); concurrency buys admission, polling and cancellation while a
// search runs, not parallel searches.  serve.batch_occupancy records, per
// job, the fraction of its evaluations the shared cache absorbed.

#include <cstdint>
#include <string>
#include <thread>

#include "core/artifact.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "serve/job_queue.h"
#include "util/exec_context.h"

namespace yoso {
namespace serve {

struct ServiceOptions {
  std::size_t threads = 1;   ///< ExecContext budget shared by all jobs
  bool start_paused = false; ///< queue jobs but do not run until resume()
};

class SearchService {
 public:
  /// Loads + verifies the artifact (ContractViolation on corruption or
  /// version/shape mismatch) and restores any kJobState section —
  /// completed jobs keep their results, interrupted ones re-queue.
  /// The worker thread starts immediately (paused when asked).
  explicit SearchService(const std::string& artifact_path,
                         ServiceOptions options = {});
  ~SearchService();  // stop() + join

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Validates `spec` cheaply (unknown searcher/reward are rejected here,
  /// before a worker is burned); returns the job id.
  std::uint64_t submit(const JobSpec& spec);

  JobQueue& jobs() { return queue_; }
  const JobQueue& jobs() const { return queue_; }

  void pause() { queue_.pause(); }
  void resume() { queue_.resume(); }

  /// Blocks until the queue is empty and no job is running.
  void wait_idle() const { queue_.wait_idle(); }

  /// Stops the worker after the in-flight job (idempotent; ~SearchService
  /// calls it too).
  void stop();

  /// Writes a full artifact to `path`: every section of the source
  /// artifact copied verbatim plus a fresh kJobState snapshot of the job
  /// table.  A service started on that file resumes where this one stood.
  void snapshot_to(const std::string& path) const;

  /// Metrics exposition: "<name> <value>" lines, name-sorted, histograms
  /// as <name>_count/<name>_sum (the /metrics payload; SERVING.md lists
  /// the serve.* names).
  std::string metrics_text() const;

  const FastEvaluatorArtifact& bundle() const { return bundle_; }
  const std::string& artifact_path() const { return artifact_path_; }

 private:
  void worker_loop();
  void run_job(const JobRecord& job);

  std::string artifact_path_;
  ArtifactReader reader_;  ///< kept mapped for verbatim snapshot copies
  FastEvaluatorArtifact bundle_;
  DesignSpace space_;
  ExecContextPtr exec_;
  FastEvaluator evaluator_;  ///< shared across jobs (worker-only access)
  JobQueue queue_;
  std::thread worker_;
};

/// Cheap admission check for a job spec: false (with `*error` filled when
/// non-null) on an unknown searcher/reward name or a zero count.
bool valid_job_spec(const JobSpec& spec, std::string* error);

/// kJobState codec (exposed for tests).
void encode_job_state(ByteWriter& w, std::uint64_t next_id,
                      const std::vector<JobRecord>& records);
std::vector<JobRecord> decode_job_state(ByteReader& r,
                                        std::uint64_t* next_id);

}  // namespace serve
}  // namespace yoso
