#pragma once
// SearchServer: the socket front-end of yoso_serve.
//
// Listens on an AF_UNIX stream socket and speaks the newline-delimited JSON
// protocol of serve/protocol.h: one request object per line, one response
// object per line, connections stay open for any number of requests.  Every
// operation is a named handler installed through register_op() — the docs
// gate (tools/yoso_docs_check.py) extracts the registered names from this
// module's source and fails when docs/SERVING.md documents a different op
// set, so the protocol reference cannot drift.
//
// Compatibility endpoint: a line starting with "GET /metrics" gets a
// minimal HTTP/1.0 plain-text response carrying the same exposition as the
// "metrics" op, so the daemon can be scraped with curl.
//
// The accept thread admits connections and hands each to its own
// connection thread, so a client holding one connection open (the normal
// submit-then-poll pattern) never starves a second client — request
// handling itself is cheap; the heavy lifting happens on the service's
// worker thread.  Finished connection threads are reaped by the accept
// loop.  stop() is graceful: in-flight lines finish, the sockets close,
// every thread joins.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_annotations.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace yoso {
namespace serve {

class SearchServer {
 public:
  /// Binds `socket_path` (an existing socket file is replaced) and starts
  /// the accept thread; ContractViolation when the bind fails.
  SearchServer(SearchService& service, std::string socket_path);
  ~SearchServer();  // stop()

  SearchServer(const SearchServer&) = delete;
  SearchServer& operator=(const SearchServer&) = delete;

  const std::string& socket_path() const { return socket_path_; }

  /// Graceful shutdown: closes the listener, finishes the in-flight
  /// request, joins the accept thread, unlinks the socket.  Idempotent.
  void stop();

  /// Blocks until a client issues the "shutdown" op (or stop() is called).
  void wait_shutdown();

  /// Dispatches one raw request line exactly like a socket client would
  /// (exposed so tests and --smoke exercise the real handler table without
  /// standing up a second process); returns the response line sans '\n'.
  std::string dispatch_line(const std::string& line);

 private:
  using Handler = std::function<JsonValue(const JsonValue&)>;

  void register_op(const std::string& name, Handler handler);
  void register_default_ops();
  void accept_loop();
  void serve_connection(int fd);
  void spawn_connection(int fd);
  /// Joins connection threads that have already finished (accept loop) or
  /// all of them (`all`, used by stop() once stopping_ is set).
  void reap_connections(bool all);

  SearchService& service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::map<std::string, Handler> ops_;
  Mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ YOSO_GUARDED_BY(shutdown_mutex_) = false;
  std::thread accept_thread_;
  Mutex conn_mutex_;
  std::map<std::uint64_t, std::thread> connections_
      YOSO_GUARDED_BY(conn_mutex_);
  std::vector<std::uint64_t> finished_ YOSO_GUARDED_BY(conn_mutex_);
  std::uint64_t next_conn_id_ YOSO_GUARDED_BY(conn_mutex_) = 1;
};

}  // namespace serve
}  // namespace yoso
