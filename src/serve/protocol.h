#pragma once
// Wire protocol for yoso_serve: newline-delimited JSON request/response
// (docs/SERVING.md is the operator-facing reference).
//
// The parser is deliberately minimal — the full JSON grammar over a
// std::map-backed object type, no extensions — and *total*: malformed
// client input returns a parse error string instead of throwing, so a bad
// request can never take the daemon down.  Objects iterate in key order and
// dump() emits keys sorted, so every response is byte-stable for a given
// value (the same property obs::write_metrics_json keeps).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace yoso {
namespace serve {

/// One JSON value (null / bool / number / string / array / object).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue integer(std::int64_t v) {
    return number(static_cast<double>(v));
  }
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  /// Lenient accessors: the fallback comes back when the value has another
  /// kind, so handlers read optional request fields without branching.
  bool bool_or(bool fallback) const;
  double number_or(double fallback) const;
  std::string string_or(const std::string& fallback) const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;

  /// Object member assignment (ContractViolation when not an object).
  void set(const std::string& key, JsonValue value);
  /// Array append (ContractViolation when not an array).
  void push(JsonValue value);

  const std::vector<JsonValue>& items() const { return items_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }

  /// Compact serialization, keys sorted, byte-stable.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parses one JSON document.  Returns nullopt and fills `*error` (when
/// non-null) with a one-line diagnostic on malformed input; never throws on
/// bad bytes.
std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error = nullptr);

/// Standard response envelopes: {"ok":true,...} / {"ok":false,"error":...}.
JsonValue ok_response();
JsonValue error_response(const std::string& message);

}  // namespace serve
}  // namespace yoso
