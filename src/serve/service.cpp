#include "serve/service.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "base/contract.h"
#include "core/artifact.h"
#include "core/reward.h"
#include "core/search.h"
#include "core/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/job_queue.h"
#include "util/exec_context.h"

namespace yoso {
namespace serve {
namespace {

RewardParams reward_preset(const std::string& name) {
  if (name == "balanced") return balanced_reward();
  if (name == "energy") return energy_opt_reward();
  if (name == "latency") return latency_opt_reward();
  YOSO_REQUIRE(false, "unknown reward preset '", name, "'");
  return {};
}

SearchOptions options_from_spec(const JobSpec& spec) {
  SearchOptions opts;
  opts.iterations = spec.iterations;
  opts.batch_size = spec.batch_size;
  opts.top_n = spec.top_n;
  opts.seed = spec.seed;
  opts.trace_every = 0;  // jobs report finalists, not per-iteration traces
  opts.reward = reward_preset(spec.reward);
  if (spec.t_lat_ms > 0.0) opts.reward.t_lat_ms = spec.t_lat_ms;
  if (spec.t_eer_mj > 0.0) opts.reward.t_eer_mj = spec.t_eer_mj;
  // The daemon owns the observability switch (flipped on at startup);
  // observe stays false so run() leaves the global state alone.
  return opts;
}

}  // namespace

bool valid_job_spec(const JobSpec& spec, std::string* error) {
  const auto reject = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (spec.searcher != "rl" && spec.searcher != "random")
    return reject("unknown searcher '" + spec.searcher +
                  "' (expected rl|random)");
  if (spec.reward != "balanced" && spec.reward != "energy" &&
      spec.reward != "latency")
    return reject("unknown reward '" + spec.reward +
                  "' (expected balanced|energy|latency)");
  if (spec.iterations == 0) return reject("iterations must be positive");
  if (spec.batch_size == 0) return reject("batch must be positive");
  if (spec.top_n == 0) return reject("top_n must be positive");
  return true;
}

SearchService::SearchService(const std::string& artifact_path,
                             ServiceOptions options)
    : artifact_path_(artifact_path),
      reader_(ArtifactReader::from_file(artifact_path)),
      bundle_(decode_fast_evaluator(reader_)),
      space_(),
      exec_(ExecContext::create(options.threads)),
      evaluator_(make_fast_evaluator(bundle_, exec_)) {
  // The serving metrics (and per-job spans) are the daemon's telemetry
  // surface; a service with observability off would scrape empty.
  obs::set_enabled(true);
  if (reader_.has_section(ArtifactSection::kJobState)) {
    ByteReader r(reader_.section(ArtifactSection::kJobState));
    std::uint64_t next_id = 0;
    for (JobRecord& record : decode_job_state(r, &next_id))
      queue_.restore(std::move(record));
  }
  if (options.start_paused) queue_.pause();
  worker_ = std::thread(&SearchService::worker_loop, this);
}

SearchService::~SearchService() { stop(); }

void SearchService::stop() {
  queue_.stop();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t SearchService::submit(const JobSpec& spec) {
  std::string error;
  YOSO_REQUIRE(valid_job_spec(spec, &error), "SearchService::submit: ",
               error);
  return queue_.submit(spec);
}

void SearchService::worker_loop() {
  while (true) {
    std::optional<JobRecord> job = queue_.acquire_next();
    if (!job.has_value()) return;  // stopped
    try {
      run_job(*job);
    } catch (const std::exception& e) {
      queue_.fail(job->id, e.what());
    }
  }
}

void SearchService::run_job(const JobRecord& job) {
  YOSO_TRACE_SPAN("serve.job");
  const SearchOptions opts = options_from_spec(job.spec);
  const std::size_t cache_before = evaluator_.cache_size();

  SearchResult result;
  if (job.spec.searcher == "rl") {
    result = YosoSearch(space_, opts).run(evaluator_, nullptr, exec_);
  } else {
    result = RandomSearchDriver(space_, opts).run(evaluator_, nullptr, exec_);
  }

  // Occupancy of the shared cross-job cache for THIS job: the share of its
  // proposed evaluations that did not grow the cache (in-job duplicates +
  // hits on earlier jobs' work).
  const std::size_t proposed = opts.iterations;
  const std::size_t growth = evaluator_.cache_size() - cache_before;
  if (proposed > 0) {
    const double occupancy =
        1.0 - std::min<double>(1.0, static_cast<double>(growth) /
                                        static_cast<double>(proposed));
    obs::histogram_observe("serve.batch_occupancy", occupancy);
  }

  JobOutcome outcome;
  outcome.iterations_run = result.iterations_run;
  outcome.finalists = result.finalists.size();
  if (result.best.has_value()) {
    outcome.has_best = true;
    outcome.best_candidate = serialize_candidate(result.best->candidate);
    outcome.best_reward = result.best->accurate_reward;
    outcome.accuracy = result.best->accurate_result.accuracy;
    outcome.latency_ms = result.best->accurate_result.latency_ms;
    outcome.energy_mj = result.best->accurate_result.energy_mj;
  }
  queue_.complete(job.id, std::move(outcome));
}

void SearchService::snapshot_to(const std::string& path) const {
  YOSO_TRACE_SPAN("serve.snapshot");
  ArtifactWriter writer;
  for (std::uint32_t id : reader_.section_ids()) {
    if (id == static_cast<std::uint32_t>(ArtifactSection::kJobState))
      continue;  // replaced by the fresh job table below
    const auto payload = reader_.section(static_cast<ArtifactSection>(id));
    writer.add_section(
        static_cast<ArtifactSection>(id),
        std::vector<std::uint8_t>(payload.begin(), payload.end()));
  }
  const std::vector<JobRecord> records = queue_.list();
  std::uint64_t next_id = 1;
  for (const JobRecord& r : records) next_id = std::max(next_id, r.id + 1);
  ByteWriter w;
  encode_job_state(w, next_id, records);
  writer.add_section(ArtifactSection::kJobState, w.take());
  writer.write_file(path);
}

std::string SearchService::metrics_text() const {
  const obs::MetricsSnapshot snap = obs::metrics_registry().snapshot();
  std::ostringstream os;
  for (const auto& c : snap.counters) os << c.name << " " << c.value << "\n";
  for (const auto& g : snap.gauges) os << g.name << " " << g.value << "\n";
  for (const auto& h : snap.histograms) {
    os << h.name << "_count " << h.count << "\n";
    os << h.name << "_sum " << h.sum << "\n";
  }
  return os.str();
}

void encode_job_state(ByteWriter& w, std::uint64_t next_id,
                      const std::vector<JobRecord>& records) {
  w.u64(next_id);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const JobRecord& r : records) {
    w.u64(r.id);
    w.u8(static_cast<std::uint8_t>(r.state));
    w.str(r.error);
    w.str(r.spec.searcher);
    w.u64(r.spec.iterations);
    w.u64(r.spec.batch_size);
    w.u64(r.spec.top_n);
    w.u64(r.spec.seed);
    w.str(r.spec.reward);
    w.f64(r.spec.t_lat_ms);
    w.f64(r.spec.t_eer_mj);
    w.i32(r.spec.priority);
    w.u8(r.outcome.has_best ? 1 : 0);
    w.str(r.outcome.best_candidate);
    w.f64(r.outcome.best_reward);
    w.f64(r.outcome.accuracy);
    w.f64(r.outcome.latency_ms);
    w.f64(r.outcome.energy_mj);
    w.u64(r.outcome.iterations_run);
    w.u64(r.outcome.finalists);
  }
}

std::vector<JobRecord> decode_job_state(ByteReader& r,
                                        std::uint64_t* next_id) {
  YOSO_REQUIRE(next_id != nullptr, "decode_job_state: null next_id");
  *next_id = r.u64();
  const std::uint32_t count = r.u32();
  std::vector<JobRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    JobRecord rec;
    rec.id = r.u64();
    const std::uint8_t state = r.u8();
    YOSO_REQUIRE(state <= static_cast<std::uint8_t>(JobState::kCancelled),
                 "artifact: invalid job state ", state);
    rec.state = static_cast<JobState>(state);
    rec.error = r.str();
    rec.spec.searcher = r.str();
    rec.spec.iterations = r.u64();
    rec.spec.batch_size = r.u64();
    rec.spec.top_n = r.u64();
    rec.spec.seed = r.u64();
    rec.spec.reward = r.str();
    rec.spec.t_lat_ms = r.f64();
    rec.spec.t_eer_mj = r.f64();
    rec.spec.priority = r.i32();
    rec.outcome.has_best = r.u8() != 0;
    rec.outcome.best_candidate = r.str();
    rec.outcome.best_reward = r.f64();
    rec.outcome.accuracy = r.f64();
    rec.outcome.latency_ms = r.f64();
    rec.outcome.energy_mj = r.f64();
    rec.outcome.iterations_run = r.u64();
    rec.outcome.finalists = r.u64();
    records.push_back(std::move(rec));
  }
  YOSO_REQUIRE(r.done(), "artifact: trailing bytes in job-state section");
  return records;
}

}  // namespace serve
}  // namespace yoso
