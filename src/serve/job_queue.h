#pragma once
// The yoso_serve job table: submissions, the priority queue the worker
// drains, and the terminal results clients poll for (docs/SERVING.md).
//
// Scheduling contract: the worker always takes the highest-priority queued
// job; ties break FIFO (lower id first).  Priorities are taken at submit
// time and never age.  Cancellation is queue-only — a running job finishes
// (every job is a deterministic, finite search), which keeps the result
// table free of torn states.
//
// All state lives behind one Mutex; submitters, the worker and the socket
// threads go through the same methods.  serve.queue_depth / serve.jobs_active
// gauges track the table from inside the lock, so the metrics endpoint can
// never show a depth the table never had.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/thread_annotations.h"

namespace yoso {
namespace serve {

/// What a client asks for (the "job" object of a submit request).
struct JobSpec {
  std::string searcher = "rl";      ///< "rl" | "random"
  std::size_t iterations = 200;     ///< Step-2 proposals
  std::size_t batch_size = 8;       ///< candidates per proposal round
  std::size_t top_n = 5;            ///< finalists kept
  std::uint64_t seed = 7;           ///< search RNG seed
  std::string reward = "balanced";  ///< "balanced" | "energy" | "latency"
  double t_lat_ms = 0.0;            ///< latency threshold; <=0 keeps preset
  double t_eer_mj = 0.0;            ///< energy threshold; <=0 keeps preset
  int priority = 0;                 ///< higher runs first
};

/// What a finished job produced.
struct JobOutcome {
  bool has_best = false;
  std::string best_candidate;  ///< serialize_candidate() text
  double best_reward = 0.0;
  double accuracy = 0.0;
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  std::size_t iterations_run = 0;
  std::size_t finalists = 0;
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Wire/state-section spelling of a JobState ("queued", "running", ...).
const char* job_state_name(JobState state);

struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::string error;  ///< non-empty iff state == kFailed
  JobOutcome outcome;
};

class JobQueue {
 public:
  /// Enqueues `spec`; returns the assigned job id (ids are dense,
  /// monotonically increasing, and survive snapshot/resume).
  std::uint64_t submit(JobSpec spec);

  /// Blocks until a job is runnable (or the queue is stopped / paused
  /// empty-handed) and claims it: the returned record is in kRunning state.
  /// nullopt means the queue was stopped.
  std::optional<JobRecord> acquire_next();

  /// Terminal transitions for the job the worker holds.
  void complete(std::uint64_t id, JobOutcome outcome);
  void fail(std::uint64_t id, const std::string& error);

  /// Cancels a *queued* job; returns false when the id is unknown or the
  /// job already left the queue.
  bool cancel(std::uint64_t id);

  std::optional<JobRecord> get(std::uint64_t id) const;
  std::vector<JobRecord> list() const;

  /// Pause stops the worker from claiming further jobs (the in-flight one
  /// finishes); resume lets it continue.  Used by the pause/resume ops and
  /// by tests that need a deterministic multi-job queue state.
  void pause();
  void resume();
  bool paused() const;

  /// Wakes every waiter with "stopped"; acquire_next() then drains to
  /// nullopt forever.  Idempotent.
  void stop();

  /// Blocks until no job is queued or running (or the queue is stopped).
  void wait_idle() const;

  /// Snapshot/resume support: re-inserts a record verbatim (kRunning
  /// arrivals are re-queued — a deterministic job re-runs to the same
  /// result) and keeps the id counter ahead of every restored id.
  void restore(JobRecord record);

 private:
  void refresh_gauges() const YOSO_REQUIRES(mutex_);

  mutable Mutex mutex_;
  mutable std::condition_variable cv_;
  std::map<std::uint64_t, JobRecord> jobs_ YOSO_GUARDED_BY(mutex_);
  std::uint64_t next_id_ YOSO_GUARDED_BY(mutex_) = 1;
  bool paused_ YOSO_GUARDED_BY(mutex_) = false;
  bool stopped_ YOSO_GUARDED_BY(mutex_) = false;
};

}  // namespace serve
}  // namespace yoso
