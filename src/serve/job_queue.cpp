#include "serve/job_queue.h"

#include <algorithm>
#include <utility>

#include "base/contract.h"
#include "obs/metrics.h"

namespace yoso {
namespace serve {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

void JobQueue::refresh_gauges() const {
  std::size_t queued = 0;
  std::size_t running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kQueued) ++queued;
    if (job.state == JobState::kRunning) ++running;
  }
  obs::gauge_set("serve.queue_depth", static_cast<double>(queued));
  obs::gauge_set("serve.jobs_active", static_cast<double>(running));
}

std::uint64_t JobQueue::submit(JobSpec spec) {
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  JobRecord record;
  record.id = id;
  record.spec = std::move(spec);
  record.state = JobState::kQueued;
  jobs_.emplace(id, std::move(record));
  obs::counter_add("serve.jobs_submitted");
  refresh_gauges();
  cv_.notify_all();
  return id;
}

std::optional<JobRecord> JobQueue::acquire_next() {
  MutexLock lock(mutex_);
  while (true) {
    if (stopped_) return std::nullopt;
    if (!paused_) {
      // Highest priority first, FIFO within a priority level: the map
      // iterates in id (submission) order, so the first strictly-better
      // candidate wins and ties keep the earliest id.
      JobRecord* best = nullptr;
      for (auto& [id, job] : jobs_) {
        if (job.state != JobState::kQueued) continue;
        if (best == nullptr || job.spec.priority > best->spec.priority)
          best = &job;
      }
      if (best != nullptr) {
        best->state = JobState::kRunning;
        refresh_gauges();
        return *best;
      }
    }
    mutex_.wait(cv_);
  }
}

void JobQueue::complete(std::uint64_t id, JobOutcome outcome) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  YOSO_REQUIRE(it != jobs_.end() && it->second.state == JobState::kRunning,
               "JobQueue::complete: job ", id, " is not running");
  it->second.state = JobState::kDone;
  it->second.outcome = std::move(outcome);
  obs::counter_add("serve.jobs_completed");
  refresh_gauges();
  cv_.notify_all();
}

void JobQueue::fail(std::uint64_t id, const std::string& error) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  YOSO_REQUIRE(it != jobs_.end() && it->second.state == JobState::kRunning,
               "JobQueue::fail: job ", id, " is not running");
  it->second.state = JobState::kFailed;
  it->second.error = error;
  obs::counter_add("serve.jobs_failed");
  refresh_gauges();
  cv_.notify_all();
}

bool JobQueue::cancel(std::uint64_t id) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kQueued)
    return false;
  it->second.state = JobState::kCancelled;
  obs::counter_add("serve.jobs_cancelled");
  refresh_gauges();
  cv_.notify_all();
  return true;
}

std::optional<JobRecord> JobQueue::get(std::uint64_t id) const {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::vector<JobRecord> JobQueue::list() const {
  MutexLock lock(mutex_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

void JobQueue::pause() {
  MutexLock lock(mutex_);
  paused_ = true;
}

void JobQueue::resume() {
  MutexLock lock(mutex_);
  paused_ = false;
  cv_.notify_all();
}

bool JobQueue::paused() const {
  MutexLock lock(mutex_);
  return paused_;
}

void JobQueue::stop() {
  MutexLock lock(mutex_);
  stopped_ = true;
  cv_.notify_all();
}

void JobQueue::wait_idle() const {
  MutexLock lock(mutex_);
  while (!stopped_) {
    bool busy = false;
    for (const auto& [id, job] : jobs_)
      if (job.state == JobState::kQueued || job.state == JobState::kRunning)
        busy = true;
    if (!busy) return;
    mutex_.wait(cv_);
  }
}

void JobQueue::restore(JobRecord record) {
  MutexLock lock(mutex_);
  YOSO_REQUIRE(jobs_.find(record.id) == jobs_.end(),
               "JobQueue::restore: duplicate job id ", record.id);
  // A snapshot taken mid-run holds the job in kRunning with no outcome;
  // searches are deterministic, so re-queueing replays it to the same
  // result (SERVING.md documents the replay-from-seed semantics).
  if (record.state == JobState::kRunning) record.state = JobState::kQueued;
  next_id_ = std::max(next_id_, record.id + 1);
  jobs_.emplace(record.id, std::move(record));
  refresh_gauges();
  cv_.notify_all();
}

}  // namespace serve
}  // namespace yoso
