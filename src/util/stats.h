#pragma once
// Descriptive statistics and correlation measures used by the experiment
// harnesses: MSE for the Fig-4 predictor comparison, Pearson/Spearman/Kendall
// for the Fig-5(b) HyperNet-vs-true-accuracy correlation, and running
// summaries for search-trace reporting.

#include <cstddef>
#include <span>
#include <vector>

namespace yoso {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< population variance
double stddev(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Mean squared error between prediction and truth.  Sizes must match.
double mse(std::span<const double> pred, std::span<const double> truth);

/// Root mean squared error.
double rmse(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute relative error |pred-truth|/|truth| (truth==0 terms skipped).
double mean_relative_error(std::span<const double> pred,
                           std::span<const double> truth);

/// Pearson linear correlation coefficient.  Returns 0 for degenerate input.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Kendall tau-a rank correlation.
double kendall_tau(std::span<const double> xs, std::span<const double> ys);

/// Ranks with ties broken by averaging (1-based ranks as doubles).
std::vector<double> rank_with_ties(std::span<const double> xs);

/// Incremental mean/variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average, used for the REINFORCE reward baseline.
class MovingAverage {
 public:
  /// decay in (0,1]; first sample initialises the average.
  explicit MovingAverage(double decay) : decay_(decay) {}
  void add(double x);
  double value() const { return value_; }
  bool empty() const { return !initialised_; }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialised_ = false;
};

}  // namespace yoso
