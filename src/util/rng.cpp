#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace yoso {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n == 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

int Rng::uniform_int(int lo, int hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty())
    throw std::invalid_argument("Rng::weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) return uniform_index(weights.size());
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

bool Rng::bernoulli(double p) {
  return uniform() < p;
}

}  // namespace yoso
