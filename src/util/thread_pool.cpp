#include "util/thread_pool.h"

#include <cstdint>
#include <limits>

#include "base/contract.h"
#include "base/thread_annotations.h"
#include "obs/timebase.h"

namespace yoso {

namespace {

// Identity of the calling thread relative to a pool, set once per worker at
// thread start.  current_slot() compares against the pool so that a thread
// belonging to pool A reads slot 0 (coordinator) when asking pool B.
struct TlsSlot {
  const ThreadPool* pool = nullptr;
  std::size_t slot = 0;
};
thread_local TlsSlot tls_slot;

// Pool whose job body the calling thread is currently inside, if any.  This
// is what makes re-entrant pool use a fail-fast contract instead of a
// deadlock, and unlike the old single-flag scheme it keeps working when
// several jobs are in flight at once.
thread_local const ThreadPool* tls_in_body = nullptr;

struct BodyScope {
  const ThreadPool* prev;
  explicit BodyScope(const ThreadPool* pool) : prev(tls_in_body) {
    tls_in_body = pool;
  }
  ~BodyScope() { tls_in_body = prev; }
};

constexpr std::size_t kMinBlockBytes = 4096;
constexpr int kSpinIters = 256;

}  // namespace

// ------------------------------------------------------------ ScratchArena

void* ScratchArena::allocate(std::size_t bytes, std::size_t align) {
  for (;;) {
    if (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::size_t off =
          ((base + b.used + align - 1) & ~(std::uintptr_t{align} - 1)) - base;
      if (off + bytes <= b.size) {
        b.used = off + bytes;
        return b.data.get() + off;
      }
      if (active_ + 1 < blocks_.size()) {
        // Re-enter a block surviving from before the last rewind.
        blocks_[++active_].used = 0;
        continue;
      }
    }
    std::size_t size = blocks_.empty() ? kMinBlockBytes : blocks_.back().size * 2;
    if (size < bytes + align) size = bytes + align;
    Block fresh;
    fresh.data = std::make_unique<std::byte[]>(size);
    fresh.size = size;
    blocks_.push_back(std::move(fresh));
    active_ = blocks_.size() - 1;
  }
}

void ScratchArena::rewind(std::size_t block, std::size_t used) {
  if (blocks_.empty()) return;  // the frame predates the first allocation
  active_ = block;
  blocks_[active_].used = used;
}

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

// -------------------------------------------------------------- ThreadPool

struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t count = 0;
  // parallel_for points at the caller's function (alive across the blocking
  // call); submit() moves the function into `owned` so the caller's lambda
  // may die before wait().
  const std::function<void(std::size_t)>* fn = nullptr;
  std::function<void(std::size_t)> owned;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};

  // First-failure capture: workers race to record, lowest index wins so the
  // rethrown exception matches what a serial loop would have thrown.
  struct ErrorSlot {
    std::size_t index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  Synchronized<ErrorSlot> error;

  Mutex mutex;  // pairs with `finished`
  std::condition_variable finished;
};

ThreadPool::ThreadPool(std::size_t workers)
    : arenas_(workers + 1),
      spin_(workers > 0 && std::thread::hardware_concurrency() > 1),
      obs_jobs_(&obs::metrics_registry().counter("pool.jobs")),
      obs_busy_ns_(&obs::metrics_registry().counter("pool.worker_busy_ns")),
      obs_idle_ns_(&obs::metrics_registry().counter("pool.worker_idle_ns")),
      obs_depth_(&obs::metrics_registry().gauge("pool.inflight_indices")) {
  // An absurd worker count is always an upstream bug: the pool is sized from
  // hardware_concurrency or a small config knob, never from data.
  YOSO_REQUIRE(workers <= 1024,
               "ThreadPool: unreasonable worker count ", workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t ThreadPool::current_slot() const {
  return tls_slot.pool == this ? tls_slot.slot : 0;
}

void ThreadPool::require_not_in_body(const char* what) const {
  YOSO_REQUIRE(tls_in_body != this, "ThreadPool::", what,
               ": re-entrant call from inside a job body on the same pool "
               "(nest work in the body instead)");
}

void ThreadPool::run_chunk(ThreadPool* pool, Job& job) {
  BodyScope scope(pool);
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(job.begin + i);
      } catch (...) {
        job.error.with_lock([&](Job::ErrorSlot& slot) {
          if (job.begin + i < slot.index) {
            slot.index = job.begin + i;
            slot.error = std::current_exception();
          }
        });
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      MutexLock lock(job.mutex);
      job.finished.notify_all();
    }
  }
}

std::shared_ptr<ThreadPool::Job> ThreadPool::post_job(
    std::size_t begin, std::size_t count,
    const std::function<void(std::size_t)>* fn,
    std::function<void(std::size_t)> owned) {
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->count = count;
  if (fn != nullptr) {
    job->fn = fn;
  } else {
    job->owned = std::move(owned);
    job->fn = &job->owned;
  }
#ifndef YOSO_OBS_DISABLED
  if (obs::enabled()) {
    obs_jobs_->add();
    obs_depth_->set(static_cast<double>(count));
  }
#endif
  {
    MutexLock lock(mutex_);
    queue_.push_back(job);
    generation_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_all();
  return job;
}

void ThreadPool::finish_job(const std::shared_ptr<Job>& job) {
  MutexLock lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == job) {
      queue_.erase(it);
      break;
    }
  }
#ifndef YOSO_OBS_DISABLED
  obs_depth_->set(0.0);
#endif
}

void ThreadPool::wait_job(Job& job) {
  MutexLock lock(job.mutex);
  while (job.done.load(std::memory_order_acquire) != job.count)
    job.mutex.wait(job.finished);
}

void ThreadPool::worker_loop(std::size_t slot) {
  tls_slot = {this, slot};
  std::uint64_t idle_gen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
#ifndef YOSO_OBS_DISABLED
    // Sentinel 0 = "observability was off when the window opened"; a window
    // that straddles a toggle is simply not recorded.
    const std::uint64_t wait_begin = obs::enabled() ? obs::now_ns() : 0;
#endif
    // Short spin before committing to a futex sleep: in a pipelined batch
    // the coordinator posts the next job microseconds after the previous
    // one drains.  Pointless (and harmful) when there is only one core.
    if (spin_) {
      for (int s = 0; s < kSpinIters; ++s) {
        if (generation_.load(std::memory_order_acquire) != idle_gen) break;
        std::this_thread::yield();
      }
    }
    {
      MutexLock lock(mutex_);
      for (;;) {
        if (stop_) return;
        for (const std::shared_ptr<Job>& queued : queue_) {
          if (queued->next.load(std::memory_order_relaxed) < queued->count) {
            job = queued;  // oldest job with unclaimed indices first
            break;
          }
        }
        if (job) break;
        idle_gen = generation_.load(std::memory_order_relaxed);
        mutex_.wait(wake_);
      }
    }
#ifndef YOSO_OBS_DISABLED
    if (wait_begin != 0) obs_idle_ns_->add(obs::now_ns() - wait_begin);
    const std::uint64_t run_begin = obs::enabled() ? obs::now_ns() : 0;
#endif
    run_chunk(this, *job);
#ifndef YOSO_OBS_DISABLED
    if (run_begin != 0) obs_busy_ns_->add(obs::now_ns() - run_begin);
#endif
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  YOSO_REQUIRE(static_cast<bool>(fn), "ThreadPool::parallel_for: empty fn");
  YOSO_REQUIRE(begin <= end, "ThreadPool::parallel_for: reversed range [",
               begin, ", ", end, ")");
  require_not_in_body("parallel_for");
  if (end == begin) return;
  const std::size_t count = end - begin;

  if (workers_.empty() || count == 1) {
    // Inline: serial execution, exceptions propagate directly (the first
    // throwing index is necessarily the lowest one).
    BodyScope scope(this);
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::shared_ptr<Job> job = post_job(begin, count, &fn, {});
  run_chunk(this, *job);  // the caller is a worker too
  wait_job(*job);
  finish_job(job);
  const Job::ErrorSlot failure = job->error.load();
  if (failure.error) std::rethrow_exception(failure.error);
}

ThreadPool::JobTicket ThreadPool::submit(std::size_t begin, std::size_t end,
                                         std::function<void(std::size_t)> fn) {
  YOSO_REQUIRE(static_cast<bool>(fn), "ThreadPool::submit: empty fn");
  YOSO_REQUIRE(begin <= end, "ThreadPool::submit: reversed range [", begin,
               ", ", end, ")");
  require_not_in_body("submit");
  if (end == begin) return {};
  return {this, post_job(begin, end - begin, nullptr, std::move(fn))};
}

ThreadPool::JobTicket::~JobTicket() {
  if (!job_) return;
  try {
    wait();
  } catch (...) {
    // An unwaited ticket going out of scope during unwinding must not
    // terminate; callers who care about body errors call wait().
  }
}

ThreadPool::JobTicket::JobTicket(JobTicket&& other) noexcept
    : pool_(other.pool_), job_(std::move(other.job_)) {
  other.pool_ = nullptr;
  other.job_ = nullptr;
}

ThreadPool::JobTicket& ThreadPool::JobTicket::operator=(
    JobTicket&& other) noexcept {
  if (this != &other) {
    if (job_) {
      try {
        wait();
      } catch (...) {
      }
    }
    pool_ = other.pool_;
    job_ = std::move(other.job_);
    other.pool_ = nullptr;
    other.job_ = nullptr;
  }
  return *this;
}

void ThreadPool::JobTicket::wait() {
  if (!job_) return;
  const std::shared_ptr<Job> job = std::move(job_);
  job_ = nullptr;
  run_chunk(pool_, *job);  // drain stragglers on the caller
  pool_->wait_job(*job);
  pool_->finish_job(job);
  const Job::ErrorSlot failure = job->error.load();
  if (failure.error) std::rethrow_exception(failure.error);
}

}  // namespace yoso
