#include "util/thread_pool.h"

#include <atomic>
#include <limits>

#include "obs/timebase.h"
#include "util/contract.h"

namespace yoso {

struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};

  // First-failure capture: workers race to record, lowest index wins so the
  // rethrown exception matches what a serial loop would have thrown.
  struct ErrorSlot {
    std::size_t index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  Synchronized<ErrorSlot> error;

  Mutex mutex;  // pairs with `finished`
  std::condition_variable finished;
};

ThreadPool::ThreadPool(std::size_t workers)
    : obs_jobs_(&obs::metrics_registry().counter("pool.jobs")),
      obs_busy_ns_(&obs::metrics_registry().counter("pool.worker_busy_ns")),
      obs_idle_ns_(&obs::metrics_registry().counter("pool.worker_idle_ns")),
      obs_depth_(&obs::metrics_registry().gauge("pool.inflight_indices")) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::run_chunk(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(job.begin + i);
      } catch (...) {
        job.error.with_lock([&](Job::ErrorSlot& slot) {
          if (job.begin + i < slot.index) {
            slot.index = job.begin + i;
            slot.error = std::current_exception();
          }
        });
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      MutexLock lock(job.mutex);
      job.finished.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
#ifndef YOSO_OBS_DISABLED
    // Sentinel 0 = "observability was off when the window opened"; a window
    // that straddles a toggle is simply not recorded.
    const std::uint64_t wait_begin = obs::enabled() ? obs::now_ns() : 0;
#endif
    {
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen) mutex_.wait(wake_);
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
#ifndef YOSO_OBS_DISABLED
    if (wait_begin != 0) obs_idle_ns_->add(obs::now_ns() - wait_begin);
    const std::uint64_t run_begin = obs::enabled() ? obs::now_ns() : 0;
#endif
    if (job) run_chunk(*job);
#ifndef YOSO_OBS_DISABLED
    if (run_begin != 0) obs_busy_ns_->add(obs::now_ns() - run_begin);
#endif
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  YOSO_REQUIRE(static_cast<bool>(fn), "ThreadPool::parallel_for: empty fn");
  YOSO_REQUIRE(begin <= end, "ThreadPool::parallel_for: reversed range [",
               begin, ", ", end, ")");
  if (end == begin) return;
  const std::size_t count = end - begin;

  if (workers_.empty() || count == 1) {
    // Inline: serial execution, exceptions propagate directly (the first
    // throwing index is necessarily the lowest one).
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Nested parallel_for on the same pool would overwrite job_ while workers
  // still drain the outer job — a deadlock in the outer wait.  The fork-join
  // design has exactly one coordinator, so posting is mutually exclusive.
  YOSO_REQUIRE(!busy_.exchange(true, std::memory_order_acquire),
               "ThreadPool::parallel_for: re-entrant call (the pool is "
               "already running a job; nest work in the body instead)");

#ifndef YOSO_OBS_DISABLED
  if (obs::enabled()) {
    obs_jobs_->add();
    obs_depth_->set(static_cast<double>(count));
  }
#endif

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->count = count;
  job->fn = &fn;
  {
    MutexLock lock(mutex_);
    job_ = job;
    ++generation_;
  }
  wake_.notify_all();

  run_chunk(*job);  // the caller is a worker too

  {
    MutexLock lock(job->mutex);
    while (job->done.load(std::memory_order_acquire) != job->count)
      job->mutex.wait(job->finished);
  }
  {
    MutexLock lock(mutex_);
    job_ = nullptr;
  }
  busy_.store(false, std::memory_order_release);
#ifndef YOSO_OBS_DISABLED
  obs_depth_->set(0.0);
#endif
  const Job::ErrorSlot failure = job->error.load();
  if (failure.error) std::rethrow_exception(failure.error);
}

}  // namespace yoso
