#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace yoso {

namespace {

void check_same_size(std::span<const double> a, std::span<const double> b,
                     const char* what) {
  if (a.size() != b.size()) throw std::invalid_argument(what);
  if (a.empty()) throw std::invalid_argument(what);
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double mse(std::span<const double> pred, std::span<const double> truth) {
  check_same_size(pred, truth, "mse: size mismatch or empty");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    acc += d * d;
  }
  return acc / static_cast<double>(pred.size());
}

double rmse(std::span<const double> pred, std::span<const double> truth) {
  return std::sqrt(mse(pred, truth));
}

double mean_relative_error(std::span<const double> pred,
                           std::span<const double> truth) {
  check_same_size(pred, truth, "mean_relative_error: size mismatch or empty");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (truth[i] == 0.0) continue;
    acc += std::abs(pred[i] - truth[i]) / std::abs(truth[i]);
    ++n;
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  check_same_size(xs, ys, "pearson: size mismatch or empty");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> rank_with_ties(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // average rank for the tie group [i, j], ranks are 1-based
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  check_same_size(xs, ys, "spearman: size mismatch or empty");
  const auto rx = rank_with_ties(xs);
  const auto ry = rank_with_ties(ys);
  return pearson(rx, ry);
}

double kendall_tau(std::span<const double> xs, std::span<const double> ys) {
  check_same_size(xs, ys, "kendall_tau: size mismatch or empty");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      const double s = dx * dy;
      if (s > 0) ++concordant;
      else if (s < 0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const {
  return std::sqrt(variance());
}

void MovingAverage::add(double x) {
  if (!initialised_) {
    value_ = x;
    initialised_ = true;
  } else {
    value_ = decay_ * value_ + (1.0 - decay_) * x;
  }
}

}  // namespace yoso
