#pragma once
// Small fixed-width ASCII table / CSV emitter used by the benchmark binaries
// to print the paper's tables and figure data series in a uniform format.

#include <ostream>
#include <string>
#include <vector>

namespace yoso {

/// Column-aligned text table.  Collect rows of strings, then print.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Renders as CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Convenience numeric formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace yoso
