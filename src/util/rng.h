#pragma once
// Deterministic, seedable random number generation for every stochastic
// component in YOSO (search, sampling, simulation noise).
//
// All experiments in the paper are stochastic (RL sampling, uniform path
// sampling of the HyperNet, GP sample collection).  To make the reproduction
// runs repeatable we route every random draw through one explicit Rng object
// instead of global state; components that need independent streams split
// a child off a parent with Rng::fork().

#include <cstdint>
#include <vector>

namespace yoso {

/// xoshiro256** PRNG (Blackman & Vigna).  Fast, high-quality, 64-bit state
/// suitable for Monte-Carlo style workloads; not cryptographic.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via SplitMix64 so that
  /// nearby seeds still give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Samples an index from an (unnormalised, non-negative) weight vector.
  /// Falls back to uniform choice when all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index range [0, n); returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Deterministically derives an independent child stream.  The child's
  /// sequence does not overlap the parent's continued use.
  Rng fork();

  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace yoso
