#pragma once
// Wall-clock timing for the predictor-vs-simulator speedup experiment
// (paper §III.E claims ~2000x) and for search-time reporting.

#include <chrono>

namespace yoso {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace yoso
