#pragma once
// Experiment scaling knobs.
//
// The paper's searches run 10^4..5x10^6 iterations on a P100; the benches in
// this repo default to CPU-friendly iteration counts and scale up linearly
// with the YOSO_SCALE environment variable (e.g. YOSO_SCALE=10 multiplies all
// iteration counts by 10).

#include <cstddef>

namespace yoso {

/// Returns the value of YOSO_SCALE (default 1.0, clamped to [0.01, 1e6]).
double experiment_scale();

/// n scaled by experiment_scale(), never below min_value.
std::size_t scaled(std::size_t n, std::size_t min_value = 1);

}  // namespace yoso
