#pragma once
// ExecContext — the framework's single parallelism knob.
//
// One process-level answer to "how many threads may evaluation use, and on
// which pool do they run?".  Construction resolves the user-facing thread
// count (0 = all hardware threads) and owns the one ThreadPool every
// consumer shares; injecting the same context into the fast and accurate
// evaluators (and SearchDriver::run) means a Fast+Accurate pair cooperates
// on one pool instead of each spinning up its own and oversubscribing the
// machine, as the pre-ExecContext per-evaluator pools did.
//
//   ExecContextPtr exec = ExecContext::create(8);   // 8 threads total
//   FastEvaluator fast(space, skeleton, sim, {.exec = exec});
//   AccurateEvaluator accurate(skeleton, sim, exec);
//   SearchResult r = YosoSearch(space, opt).run(fast, &accurate, exec);
//
// The context is shared by shared_ptr so its pool outlives every consumer;
// a null ExecContextPtr everywhere means "serial" and costs no threads.
// Thread count never affects search results (DESIGN.md §9) — the context
// only decides how fast the identical answer arrives.

#include <cstddef>
#include <memory>

#include "util/thread_pool.h"

namespace yoso {

class ExecContext;
using ExecContextPtr = std::shared_ptr<ExecContext>;

class ExecContext {
  /// Passkey so only create() can construct (make_shared needs a public
  /// constructor, but callers must go through the factory).
  struct Key {
    explicit Key() = default;
  };

 public:
  /// `threads` is the total compute-thread budget (callers participate in
  /// pool work, so N threads = the caller + N-1 pool workers); 0 means all
  /// hardware threads.
  static ExecContextPtr create(std::size_t threads) {
    return std::make_shared<ExecContext>(
        Key{}, ThreadPool::resolve_threads(threads));
  }

  /// A context with no workers: everything runs inline on the caller.
  static ExecContextPtr serial() { return create(1); }

  ExecContext(Key, std::size_t threads)
      : threads_(threads), pool_(threads - 1) {}
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  std::size_t threads() const { return threads_; }
  ThreadPool& pool() { return pool_; }

 private:
  std::size_t threads_;
  ThreadPool pool_;
};

}  // namespace yoso
