#include "util/env.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace yoso {

double experiment_scale() {
  const char* raw = std::getenv("YOSO_SCALE");
  if (raw == nullptr) return 1.0;
  try {
    const double v = std::stod(raw);
    return std::clamp(v, 0.01, 1e6);
  } catch (...) {
    return 1.0;
  }
}

std::size_t scaled(std::size_t n, std::size_t min_value) {
  const double v = static_cast<double>(n) * experiment_scale();
  const auto s = static_cast<std::size_t>(v);
  return std::max(s, min_value);
}

}  // namespace yoso
