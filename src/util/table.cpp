#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace yoso {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-');
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 != row.size()) os << ',';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TextTable::fmt_int(long long v) {
  return std::to_string(v);
}

}  // namespace yoso
