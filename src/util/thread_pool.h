#pragma once
// Fixed-size worker pool with a blocking parallel_for.
//
// The batched evaluation engine (core/evaluator.h) fans read-only GP and
// surrogate predictions out across cores; everything that must stay ordered
// (REINFORCE feedback, finalist offers, trace sampling) happens on the
// calling thread, so a pool with plain fork-join semantics is all we need:
//
//   ThreadPool pool(3);                       // 3 workers + the caller
//   pool.parallel_for(0, n, [&](std::size_t i) { out[i] = f(in[i]); });
//
// parallel_for blocks until every index completed.  The calling thread
// participates in the work, so ThreadPool(0) is valid and simply runs the
// loop inline — callers never need a serial special case.  Exceptions thrown
// by the body are captured and the one with the lowest index is rethrown on
// the caller once the pool has drained.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace yoso {

class ThreadPool {
 public:
  /// Spawns `workers` threads.  Zero is valid: parallel_for then runs on the
  /// caller only.  A pool sized for a total of T compute threads is
  /// ThreadPool(T - 1), since the caller always participates.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end) across the workers and the
  /// calling thread; blocks until all indices are done.  If any invocation
  /// throws, the remaining indices are drained without running the body and
  /// the exception with the lowest index is rethrown on the caller.
  /// Preconditions (ContractViolation otherwise): fn is callable,
  /// begin <= end, and no other parallel_for is in flight on this pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Maps a user-facing `threads` knob to a worker count for this machine:
  /// 0 means "all hardware threads"; otherwise the request is honoured.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  struct Job;

  void worker_loop();
  static void run_chunk(Job& job);

  std::vector<std::thread> workers_;
  // Cached instrument handles (process-lifetime, see MetricsRegistry): the
  // worker loop must not pay a name lookup per job.  All updates are gated
  // on obs::enabled(), so an idle registry costs one relaxed load.
  obs::Counter* obs_jobs_;
  obs::Counter* obs_busy_ns_;
  obs::Counter* obs_idle_ns_;
  obs::Gauge* obs_depth_;
  Mutex mutex_;
  std::condition_variable wake_;  // paired with mutex_
  // Posted job (workers copy the pointer), its generation counter, and the
  // shutdown flag — the coordinator/worker handshake state.
  std::shared_ptr<Job> job_ YOSO_GUARDED_BY(mutex_);
  std::uint64_t generation_ YOSO_GUARDED_BY(mutex_) = 0;
  bool stop_ YOSO_GUARDED_BY(mutex_) = false;
  std::atomic<bool> busy_{false};  // detects re-entrant parallel_for
};

}  // namespace yoso
