#pragma once
// Fixed-size worker pool with a blocking parallel_for, asynchronous jobs
// for pipelined execution, and per-worker scratch arenas.
//
// The batched evaluation engine (core/evaluator.h) fans read-only GP and
// surrogate predictions out across cores; everything that must stay ordered
// (REINFORCE feedback, finalist offers, trace sampling) happens on the
// calling thread.  Two submission shapes cover both needs:
//
//   ThreadPool pool(3);                       // 3 workers + the caller
//   pool.parallel_for(0, n, [&](std::size_t i) { out[i] = f(in[i]); });
//
//   // Pipelining: post stage k+1, compute stage k on the caller, join.
//   ThreadPool::JobTicket t = pool.submit(0, n, fill_next_buffer);
//   coordinator_work_on_current_buffer();     // overlaps the posted job
//   t.wait();                                 // caller helps drain stragglers
//
// parallel_for blocks until every index completed; the calling thread
// participates in the work, so ThreadPool(0) is valid and simply runs the
// loop inline — callers never need a serial special case.  submit() does
// NOT run anything on the caller until wait(), which is what lets the
// coordinator overlap its own serial stage with the posted one.  Several
// jobs may be in flight at once (workers drain them oldest-first), so a
// parallel_for issued while a submitted job is still running is legal and
// simply queues behind it — the one thing that stays forbidden is calling
// back into the pool from inside a job body (ContractViolation; it used to
// deadlock).  Exceptions thrown by a body are captured and the one with the
// lowest index is rethrown on the caller once the job has drained.
//
// Per-worker scratch: every pool thread (and the caller, slot 0) owns a
// ScratchArena — a monotonic bump allocator whose memory is retained across
// jobs, so steady-state hot loops stop paying malloc per element.  Bodies
// reach their arena via pool.scratch(); arenas are indexed by
// current_slot(), so two threads never share one.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "base/thread_annotations.h"

namespace yoso {

/// Monotonic per-thread scratch allocator.  alloc<T>() bumps a pointer into
/// block-chained storage that is retained across reset() calls, so a hot
/// loop that allocates the same buffers every iteration settles into zero
/// heap traffic.  Pointers stay valid until the frame they were allocated
/// in is released (growth appends blocks, it never moves old ones).
/// Not thread-safe: each arena belongs to exactly one pool slot.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  /// RAII marker: restores the arena's bump position on destruction, so
  /// nested users (e.g. the evaluator calling into the GP) compose without
  /// clobbering each other's allocations.
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(arena), block_(arena.active_), used_(arena.active_used()) {}
    ~Frame() { arena_.rewind(block_, used_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    ScratchArena& arena_;
    std::size_t block_;
    std::size_t used_;
  };

  /// `count` default-uninitialized Ts; valid until the enclosing Frame (or
  /// the arena) is destroyed.  T must be trivial — nothing is constructed
  /// or destroyed.
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "ScratchArena holds raw bytes: trivial types only");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Bytes currently reserved across all blocks (observability/tests).
  std::size_t capacity_bytes() const;

 private:
  friend class Frame;
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align);
  std::size_t active_used() const {
    return blocks_.empty() ? 0 : blocks_[active_].used;
  }
  void rewind(std::size_t block, std::size_t used);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
};

class ThreadPool {
 public:
  struct Job;

  /// Handle to a submitted asynchronous job.  wait() drains remaining
  /// indices on the caller, blocks for stragglers, and rethrows the
  /// lowest-index exception if any body threw.  The destructor waits too
  /// (swallowing errors), so a ticket can never outlive its buffers.
  class JobTicket {
   public:
    JobTicket() = default;
    ~JobTicket();
    JobTicket(JobTicket&& other) noexcept;
    JobTicket& operator=(JobTicket&& other) noexcept;
    JobTicket(const JobTicket&) = delete;
    JobTicket& operator=(const JobTicket&) = delete;

    bool valid() const { return job_ != nullptr; }
    void wait();

   private:
    friend class ThreadPool;
    JobTicket(ThreadPool* pool, std::shared_ptr<Job> job)
        : pool_(pool), job_(std::move(job)) {}
    ThreadPool* pool_ = nullptr;
    std::shared_ptr<Job> job_;
  };

  /// Spawns `workers` threads.  Zero is valid: parallel_for then runs on the
  /// caller only and submit() runs everything inside wait().  A pool sized
  /// for a total of T compute threads is ThreadPool(T - 1), since the
  /// caller always participates.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end) across the workers and the
  /// calling thread; blocks until all indices are done.  If any invocation
  /// throws, the remaining indices are drained without running the body and
  /// the exception with the lowest index is rethrown on the caller.
  /// Preconditions (ContractViolation otherwise): fn is callable,
  /// begin <= end, and the caller is not inside a body run by this pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Posts fn(i) for i in [begin, end) without blocking and without caller
  /// participation: workers start on it immediately while the caller keeps
  /// doing its own (serial) stage — the pipelining primitive.  The function
  /// is copied into the job, so the lambda may go out of scope; everything
  /// it captures by reference must stay alive until wait() returns.
  /// Preconditions as for parallel_for.
  JobTicket submit(std::size_t begin, std::size_t end,
                   std::function<void(std::size_t)> fn);

  /// Slot of the calling thread within this pool: workers occupy 1..N and
  /// any other thread (by construction the coordinator) maps to 0.  Stable
  /// for the lifetime of the thread, so it can index per-thread state.
  std::size_t current_slot() const;

  /// The calling thread's scratch arena (see ScratchArena).
  ScratchArena& scratch() { return arenas_[current_slot()]; }

  /// Maps a user-facing `threads` knob to a worker count for this machine:
  /// 0 means "all hardware threads"; otherwise the request is honoured.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  void worker_loop(std::size_t slot);
  static void run_chunk(ThreadPool* pool, Job& job);
  std::shared_ptr<Job> post_job(std::size_t begin, std::size_t count,
                                const std::function<void(std::size_t)>* fn,
                                std::function<void(std::size_t)> owned);
  void finish_job(const std::shared_ptr<Job>& job);
  void wait_job(Job& job);
  void require_not_in_body(const char* what) const;

  std::vector<std::thread> workers_;
  std::vector<ScratchArena> arenas_;  // slot-indexed: caller + workers
  bool spin_;  // short pre-sleep spin, pointless on single-core hosts
  // Cached instrument handles (process-lifetime, see MetricsRegistry): the
  // worker loop must not pay a name lookup per job.  All updates are gated
  // on obs::enabled(), so an idle registry costs one relaxed load.
  obs::Counter* obs_jobs_;
  obs::Counter* obs_busy_ns_;
  obs::Counter* obs_idle_ns_;
  obs::Gauge* obs_depth_;
  Mutex mutex_;
  std::condition_variable wake_;  // paired with mutex_
  // Queue of in-flight jobs (oldest first) and the shutdown flag — the
  // coordinator/worker handshake state.  Jobs are removed by whoever waits
  // on them; workers merely skip entries with no indices left to claim.
  std::deque<std::shared_ptr<Job>> queue_ YOSO_GUARDED_BY(mutex_);
  bool stop_ YOSO_GUARDED_BY(mutex_) = false;
  // Bumped on every post; lets workers spin-check for new work without the
  // lock before committing to a condition-variable sleep.
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace yoso
