#pragma once
// The one monotonic clock every timing consumer shares: trace spans, the
// metrics registry's duration histograms, and wall-clock reporting
// (Stopwatch).  Before the observability layer each bench carried its own
// ad-hoc chrono plumbing; routing everything through now_ns() means a span
// total and a Stopwatch reading of the same region agree exactly.

#include <chrono>
#include <cstdint>

namespace yoso {
namespace obs {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace obs

/// Wall-clock timing for speedup reporting and bench footers, built on the
/// same timebase the trace spans record against.
class Stopwatch {
 public:
  Stopwatch() : start_(obs::now_ns()) {}

  void reset() { start_ = obs::now_ns(); }

  double elapsed_seconds() const {
    return static_cast<double>(obs::now_ns() - start_) * 1e-9;
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  std::uint64_t start_;
};

}  // namespace yoso
