#pragma once
// Scoped trace spans for the search pipeline (DESIGN.md §13,
// docs/OBSERVABILITY.md).
//
//   void FastEvaluator::evaluate_batch(...) {
//     YOSO_TRACE_SPAN("eval.fast_batch");
//     ...
//   }
//
// Each thread records complete (begin, duration) events into its own
// bounded ring buffer — no cross-thread contention on the hot path — and
// keeps per-name running aggregates (count / total / self time) that are
// exact even after the ring wraps.  Recording only happens while
// obs::enabled() is on; a span constructed while disabled is a single
// relaxed atomic load.  With -DYOSO_OBS=OFF the macro compiles away
// entirely.
//
// Exports:
//   * write_chrome_trace() — Chrome trace_event JSON ("X" complete events),
//     loadable in chrome://tracing and https://ui.perfetto.dev.
//   * summarize_spans() — merged per-name aggregates, sorted by name
//     (deterministic report ordering, same rule as the metrics snapshot).
//   * render_phase_table() — the plain-text per-phase cost table; rows are
//     the spans named "phase.*" (the top-level phase convention), shown
//     with their share of wall time.
//
// Span naming ("subsystem.operation") and the "phase." prefix convention
// are documented in docs/OBSERVABILITY.md.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace yoso {
namespace obs {

/// Merged per-name totals across every thread that recorded spans.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< wall time between begin and end
  std::uint64_t self_ns = 0;   ///< total minus time inside child spans
};

/// Opens a span on the calling thread.  No-op while obs::enabled() is off.
void begin_span(const char* name);

/// Closes the innermost open span, which must carry the same name —
/// ContractViolation otherwise (unbalanced or crossed scopes).  A span
/// opened while tracing was enabled is closed even if tracing was disabled
/// meanwhile, so scopes stay balanced.
void end_span(const char* name);

/// RAII span — the recommended shape (use YOSO_TRACE_SPAN below).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // nullptr when tracing was off at construction
};

/// Per-name aggregates merged across threads, sorted by name.
std::vector<SpanAggregate> summarize_spans();

/// Writes every buffered event as Chrome trace_event-format JSON.  Events
/// are ordered by (tid, begin time); timestamps are microseconds relative
/// to the collector epoch.
void write_chrome_trace(std::ostream& os);

/// Renders the per-phase cost table from "phase."-prefixed spans: one row
/// per phase with total ms and share of `wall_seconds`, plus the summed
/// coverage line the EXPERIMENTS.md walkthrough checks (phases of a fully
/// instrumented run sum to within ~10% of wall time).
std::string render_phase_table(const std::vector<SpanAggregate>& aggregates,
                               double wall_seconds);

/// Events discarded because a thread's ring filled (aggregates stay exact).
std::size_t trace_events_dropped();

/// Ring capacity (events per thread) for buffers registered after the call.
/// Default 65536.  ContractViolation when `events_per_thread` is 0.
void set_trace_capacity(std::size_t events_per_thread);

/// Clears all buffered events and aggregates.  Every thread must have
/// closed its spans (ContractViolation if any scope is still open).
void reset_tracing();

}  // namespace obs
}  // namespace yoso

#define YOSO_OBS_CONCAT2(a, b) a##b
#define YOSO_OBS_CONCAT(a, b) YOSO_OBS_CONCAT2(a, b)

#ifdef YOSO_OBS_DISABLED
// Compile-time kill switch (-DYOSO_OBS=OFF): the span object is never
// constructed, so instrumented hot paths carry zero code.
#define YOSO_TRACE_SPAN(name)
#else
#define YOSO_TRACE_SPAN(name) \
  ::yoso::obs::TraceSpan YOSO_OBS_CONCAT(yoso_trace_span_, __LINE__)(name)
#endif
