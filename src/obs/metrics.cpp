#include "obs/metrics.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/contract.h"

namespace yoso {
namespace obs {
namespace {

// Decade bounds with a 1/2/5 subdivision: 1 us .. 10 s, in milliseconds.
constexpr double kDurationMsBounds[] = {
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,   2.0,
    5.0,  10.0, 20.0, 50.0, 1e2,  2e2,  5e2,  1e3,  2e3,  5e3,  1e4};

std::atomic<bool>& enabled_flag() {
  // The process-wide observability switch.  Observability is the sanctioned
  // home of cross-cutting process state; determinism is preserved because
  // nothing on the search path ever reads a metric back.
  static std::atomic<bool> flag{false};
  return flag;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::string json_quote(const std::string& s) {
  std::string q = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') q += '\\';
    q += c;
  }
  return q + "\"";
}

std::string json_number(double v) {
  std::ostringstream ss;
  ss.precision(12);
  ss << v;
  return ss.str();
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::span<const double> duration_ms_bounds() {
  return std::span<const double>(kDurationMsBounds);
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds.size() +
                                                              1)) {
  YOSO_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "Histogram: bucket bounds must be strictly ascending");
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  // lower_bound gives the first bound >= v, i.e. v <= bounds_[i] lands in
  // bucket i; past-the-end is the overflow bucket.
  const std::size_t i =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.bounds.assign(h->bounds().begin(), h->bounds().end());
    hv.buckets.resize(h->num_buckets());
    for (std::size_t i = 0; i < hv.buckets.size(); ++i)
      hv.buckets[i] = h->bucket(i);
    hv.count = h->count();
    hv.sum = h->sum();
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_)
    c->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_)
    g->value_.store(0.0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) {
    for (std::size_t i = 0; i < h->num_buckets(); ++i)
      h->buckets_[i].store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& metrics_registry() {
  // Process-wide by design (DESIGN.md §13): the one place instrumented
  // subsystems meet.  Never torn down, so handles are process-lifetime.
  static MetricsRegistry registry;
  return registry;
}

void counter_add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  metrics_registry().counter(name).add(delta);
}

void gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  metrics_registry().gauge(name).set(value);
}

void histogram_observe(std::string_view name, double value) {
  if (!enabled()) return;
  metrics_registry().histogram(name).observe(value);
}

std::string render_metrics_table(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "counters:\n";
  for (const auto& c : snap.counters)
    os << "  " << std::left << std::setw(32) << c.name << " " << c.value
       << "\n";
  os << "gauges:\n";
  for (const auto& g : snap.gauges)
    os << "  " << std::left << std::setw(32) << g.name << " " << g.value
       << "\n";
  os << "histograms:\n";
  for (const auto& h : snap.histograms) {
    os << "  " << std::left << std::setw(32) << h.name << " count=" << h.count
       << " sum=" << h.sum << "\n";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      os << "    ";
      if (i < h.bounds.size())
        os << "le " << h.bounds[i];
      else
        os << "overflow";
      os << ": " << h.buckets[i] << "\n";
    }
  }
  return os.str();
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i)
    os << (i == 0 ? "\n" : ",\n") << "    "
       << json_quote(snap.counters[i].name) << ": " << snap.counters[i].value;
  os << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i)
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(snap.gauges[i].name)
       << ": " << json_number(snap.gauges[i].value);
  os << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(h.name)
       << ": {\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
       << ", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b)
      os << (b == 0 ? "" : ", ") << json_number(h.bounds[b]);
    os << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b)
      os << (b == 0 ? "" : ", ") << h.buckets[b];
    os << "]}";
  }
  os << "\n  }\n}\n";
}

}  // namespace obs
}  // namespace yoso
