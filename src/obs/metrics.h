#pragma once
// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms for the search pipeline (DESIGN.md §13, docs/OBSERVABILITY.md).
//
// Shape of the thing:
//
//   * Registration (name → instrument) happens under a mutex and returns a
//     stable handle; instruments are never deallocated (reset() zeroes
//     values but keeps nodes), so cached handles — e.g. the ThreadPool's
//     busy/idle counters — stay valid for the process lifetime.
//   * The fast path is lock-free: Counter::add is one relaxed atomic
//     fetch_add, Gauge::set one relaxed store, Histogram::observe one
//     branchless bucket scan plus two relaxed updates.  Integer adds
//     commute, so counter and histogram totals are exact — independent of
//     thread count and interleaving.
//   * Everything is gated on the global enabled flag: while observability
//     is off (the default) every instrument call returns after one relaxed
//     atomic load, so an instrumented tree costs nothing measurable
//     (bench_throughput's obs-guard section keeps that honest).
//   * snapshot() returns every instrument sorted by name — the registry
//     map is std::map, so iteration order is the sort order and emitted
//     reports are byte-stable run to run (the yoso-lint unordered-iter
//     rule stays satisfied by construction).
//
// Name scheme ("subsystem.metric", see docs/OBSERVABILITY.md):
//   search.iterations, eval.cache_hits, gp.predict_batch_rows,
//   pool.worker_busy_ns, ...

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/contract.h"
#include "base/thread_annotations.h"

namespace yoso {
namespace obs {

/// Global observability switch.  Off by default; flipping it on activates
/// every instrument and trace span in the process.  One relaxed atomic —
/// safe to call from any thread.
bool enabled();
void set_enabled(bool on);

/// Monotonic event counter.
class Counter {
 public:
  /// No-op while observability is disabled.
  void add(std::uint64_t delta = 1) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, worker count, ...).
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram.  Bucket i counts observations <= bounds[i];
/// one overflow bucket catches the rest.  Bounds are fixed at registration
/// and never change, so concurrent observes only touch atomics.
class Histogram {
 public:
  /// Prefer MetricsRegistry::histogram(); the public constructor exists so
  /// the registry can make_unique nodes and tests can exercise bucketing
  /// standalone.  `bounds` must be strictly ascending.
  explicit Histogram(std::span<const double> bounds);

  void observe(double v);

  std::span<const double> bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    YOSO_CHECK(i < num_buckets(),
               "Histogram::bucket: ", i, " >= ", num_buckets());
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t num_buckets() const { return bounds_.size() + 1; }

 private:
  friend class MetricsRegistry;

  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for durations in milliseconds: decades with a
/// 1/2/5 subdivision from 1 us to 10 s.
std::span<const double> duration_ms_bounds();

/// One deterministic (name-sorted) copy of every registered instrument.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name
};

/// The process-wide registry.  Use the free functions below (or
/// metrics_registry() for handle caching); constructing your own registry is
/// only useful in tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument.  The returned reference stays
  /// valid for the registry's lifetime (reset() zeroes, never deletes).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only when the histogram does not exist yet; it
  /// must be strictly ascending (ContractViolation otherwise).
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = duration_ms_bounds());

  /// Deterministic copy of every instrument, each list sorted by name.
  MetricsSnapshot snapshot() const;

  /// Zeroes every value; registered names and handles stay valid.
  void reset();

 private:
  mutable Mutex mutex_;
  // std::map keeps iteration — and therefore snapshot order — sorted and
  // byte-stable; unique_ptr nodes keep handles address-stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      YOSO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      YOSO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      YOSO_GUARDED_BY(mutex_);
};

/// The process-wide instance all instrumentation writes to.
MetricsRegistry& metrics_registry();

/// Name-keyed conveniences over metrics_registry(): one mutex-guarded map
/// lookup per call, so fine for per-batch/per-phase call sites.  Hot loops
/// should cache the handle instead (see ThreadPool).  All are no-ops while
/// observability is disabled.
void counter_add(std::string_view name, std::uint64_t delta = 1);
void gauge_set(std::string_view name, double value);
void histogram_observe(std::string_view name, double value);

/// Renders the snapshot as an aligned text table (sorted, stable).
std::string render_metrics_table(const MetricsSnapshot& snap);

/// Writes the snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// Keys appear in sorted order so the document is byte-stable for a given
/// set of values.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap);

}  // namespace obs
}  // namespace yoso
