#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/timebase.h"
#include "base/contract.h"
#include "base/thread_annotations.h"

namespace yoso {
namespace obs {
namespace {

constexpr std::size_t kDefaultRingCapacity = 65536;

/// One completed span occurrence.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// An open scope on a thread's span stack.
struct OpenSpan {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t child_ns = 0;  // accumulated duration of closed children
};

struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Per-thread recording state.  begin/end run on the owning thread; the
/// exporter reads from another thread after the workload quiesced, so all
/// shared fields sit under the buffer's own (uncontended) mutex.
class ThreadBuffer {
 public:
  ThreadBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), capacity_(capacity) {
    ring_.reserve(std::min<std::size_t>(capacity, 1024));
  }

  std::uint32_t tid() const { return tid_; }

  void begin(const char* name) {
    MutexLock lock(mutex_);
    stack_.push_back({name, now_ns(), 0});
  }

  void end(const char* name) {
    const std::uint64_t now = now_ns();
    MutexLock lock(mutex_);
    YOSO_REQUIRE(!stack_.empty(), "end_span(\"", name,
                 "\"): no span is open on this thread");
    const OpenSpan top = stack_.back();
    YOSO_REQUIRE(std::strcmp(top.name, name) == 0, "end_span(\"", name,
                 "\"): innermost open span is \"", top.name,
                 "\" — spans must close in strict LIFO order");
    stack_.pop_back();
    const std::uint64_t dur = now - top.begin_ns;
    if (!stack_.empty()) stack_.back().child_ns += dur;
    SpanStats& agg = stats_[top.name];
    agg.count += 1;
    agg.total_ns += dur;
    agg.self_ns += dur - std::min(dur, top.child_ns);
    push_event({top.name, top.begin_ns, dur});
  }

  std::size_t open_depth() const {
    MutexLock lock(mutex_);
    return stack_.size();
  }

  /// Events in recording order (oldest surviving first).
  std::vector<TraceEvent> events() const {
    MutexLock lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out.assign(ring_.begin(), ring_.end());
    } else {
      out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
                 ring_.end());
      out.insert(out.end(), ring_.begin(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(next_));
    }
    return out;
  }

  /// Merges this thread's per-name aggregates into `into` (keyed by name
  /// text, so identical names from different threads combine).
  void merge_stats(std::map<std::string, SpanStats>& into) const {
    MutexLock lock(mutex_);
    for (const auto& [name, s] : stats_) {
      SpanStats& dst = into[name];
      dst.count += s.count;
      dst.total_ns += s.total_ns;
      dst.self_ns += s.self_ns;
    }
  }

  std::size_t dropped() const {
    MutexLock lock(mutex_);
    return dropped_;
  }

  /// Clears events and aggregates; the span stack must be empty.
  void reset() {
    MutexLock lock(mutex_);
    YOSO_REQUIRE(stack_.empty(),
                 "reset_tracing: a span is still open on thread ", tid_);
    ring_.clear();
    next_ = 0;
    dropped_ = 0;
    stats_.clear();
  }

 private:
  void push_event(const TraceEvent& e) YOSO_REQUIRES(mutex_) {
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
      return;
    }
    // Ring full: overwrite the oldest event (Chrome-tracing convention —
    // keep the most recent window); aggregates above already counted it.
    ring_[next_] = e;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }

  const std::uint32_t tid_;
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<OpenSpan> stack_ YOSO_GUARDED_BY(mutex_);
  std::vector<TraceEvent> ring_ YOSO_GUARDED_BY(mutex_);
  std::size_t next_ YOSO_GUARDED_BY(mutex_) = 0;  // oldest slot once full
  std::size_t dropped_ YOSO_GUARDED_BY(mutex_) = 0;
  // Keyed by name pointer (string literals): cheap on the hot path.  The
  // merge step re-keys by name *text*, so the pointer order here never
  // reaches any report.
  std::map<const char*, SpanStats> stats_ YOSO_GUARDED_BY(mutex_);
};

/// Owns every thread's buffer.  Buffers outlive their threads (pool resizes
/// retire workers) so late exports still see their events.
class TraceCollector {
 public:
  TraceCollector() : epoch_ns_(now_ns()) {}

  static TraceCollector& instance() {
    // Process-wide by design, like the metrics registry (DESIGN.md §13).
    static TraceCollector collector;
    return collector;
  }

  ThreadBuffer& buffer_for_this_thread() {
    // One ring per thread: registration is the only locked step, every
    // begin/end after that touches only this thread's buffer.
    thread_local ThreadBuffer* buffer =
        nullptr;
    if (buffer == nullptr) {
      MutexLock lock(mutex_);
      buffers_.push_back(std::make_unique<ThreadBuffer>(
          static_cast<std::uint32_t>(buffers_.size()), capacity_));
      buffer = buffers_.back().get();
    }
    return *buffer;
  }

  std::uint64_t epoch_ns() const { return epoch_ns_; }

  void set_capacity(std::size_t events) {
    YOSO_REQUIRE(events > 0, "set_trace_capacity: capacity must be > 0");
    MutexLock lock(mutex_);
    capacity_ = events;
  }

  /// Runs fn on every registered buffer, in registration (tid) order.
  /// Lock order is collector mutex → buffer mutex everywhere, so fn may
  /// take the buffer's own lock.
  template <typename Fn>
  void for_each_buffer(Fn&& fn) {
    MutexLock lock(mutex_);
    for (const auto& b : buffers_) fn(*b);
  }

 private:
  const std::uint64_t epoch_ns_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      YOSO_GUARDED_BY(mutex_);
  std::size_t capacity_ YOSO_GUARDED_BY(mutex_) = kDefaultRingCapacity;
};

std::string json_quote(const char* s) {
  std::string q = "\"";
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') q += '\\';
    q += *s;
  }
  return q + "\"";
}

}  // namespace

void begin_span(const char* name) {
  if (!enabled()) return;
  TraceCollector::instance().buffer_for_this_thread().begin(name);
}

void end_span(const char* name) {
  ThreadBuffer& b = TraceCollector::instance().buffer_for_this_thread();
  // A begin/end pair issued entirely while tracing is off balances to a
  // no-op; an end with tracing on and nothing open is a contract violation.
  if (!enabled() && b.open_depth() == 0) return;
  b.end(name);
}

TraceSpan::TraceSpan(const char* name) : name_(nullptr) {
  if (!enabled()) return;
  name_ = name;
  TraceCollector::instance().buffer_for_this_thread().begin(name);
}

TraceSpan::~TraceSpan() {
  // Closed even if tracing was disabled mid-span, so scopes stay balanced.
  if (name_ != nullptr)
    TraceCollector::instance().buffer_for_this_thread().end(name_);
}

std::vector<SpanAggregate> summarize_spans() {
  std::map<std::string, SpanStats> merged;
  TraceCollector::instance().for_each_buffer(
      [&merged](const ThreadBuffer& b) { b.merge_stats(merged); });
  std::vector<SpanAggregate> out;
  out.reserve(merged.size());
  for (const auto& [name, s] : merged)  // std::map: name-sorted
    out.push_back({name, s.count, s.total_ns, s.self_ns});
  return out;
}

void write_chrome_trace(std::ostream& os) {
  TraceCollector& collector = TraceCollector::instance();
  const std::uint64_t epoch = collector.epoch_ns();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  collector.for_each_buffer([&](const ThreadBuffer& b) {
    for (const TraceEvent& e : b.events()) {
      os << (first ? "\n" : ",\n") << "  {\"name\": " << json_quote(e.name)
         << ", \"cat\": \"yoso\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
         << b.tid()
         << ", \"ts\": " << static_cast<double>(e.begin_ns - epoch) / 1e3
         << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3 << "}";
      first = false;
    }
  });
  os << "\n]}\n";
}

std::string render_phase_table(const std::vector<SpanAggregate>& aggregates,
                               double wall_seconds) {
  std::ostringstream os;
  os << "per-phase cost (spans named phase.*):\n";
  os << "  phase                        total ms     % wall\n";
  double covered_ms = 0.0;
  const double wall_ms = wall_seconds * 1e3;
  for (const SpanAggregate& a : aggregates) {
    if (a.name.rfind("phase.", 0) != 0) continue;
    const double ms = static_cast<double>(a.total_ns) / 1e6;
    covered_ms += ms;
    char line[128];
    std::snprintf(line, sizeof(line), "  %-28s %9.2f   %7.1f%%\n",
                  a.name.c_str() + std::strlen("phase."), ms,
                  wall_ms > 0.0 ? 100.0 * ms / wall_ms : 0.0);
    os << line;
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "  %-28s %9.2f   %7.1f%%  (wall %.2f ms)\n", "[sum]",
                covered_ms, wall_ms > 0.0 ? 100.0 * covered_ms / wall_ms : 0.0,
                wall_ms);
  os << tail;
  return os.str();
}

std::size_t trace_events_dropped() {
  std::size_t dropped = 0;
  TraceCollector::instance().for_each_buffer(
      [&dropped](const ThreadBuffer& b) { dropped += b.dropped(); });
  return dropped;
}

void set_trace_capacity(std::size_t events_per_thread) {
  TraceCollector::instance().set_capacity(events_per_thread);
}

void reset_tracing() {
  TraceCollector::instance().for_each_buffer(
      [](ThreadBuffer& b) { b.reset(); });
}

}  // namespace obs
}  // namespace yoso
