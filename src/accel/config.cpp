#include "accel/config.h"

#include <sstream>
#include <stdexcept>

namespace yoso {

std::string dataflow_name(Dataflow df) {
  switch (df) {
    case Dataflow::kWeightStationary: return "WS";
    case Dataflow::kOutputStationary: return "OS";
    case Dataflow::kRowStationary: return "RS";
    case Dataflow::kNoLocalReuse: return "NLR";
  }
  throw std::invalid_argument("dataflow_name: invalid dataflow");
}

Dataflow dataflow_from_name(const std::string& name) {
  for (int i = 0; i < kNumDataflows; ++i) {
    const auto df = static_cast<Dataflow>(i);
    if (dataflow_name(df) == name) return df;
  }
  throw std::invalid_argument("dataflow_from_name: unknown dataflow '" +
                              name + "'");
}

std::string AcceleratorConfig::to_string() const {
  std::ostringstream ss;
  ss << pe_rows << "*" << pe_cols << "/" << g_buf_kb << "KB/" << r_buf_bytes
     << "B/" << dataflow_name(dataflow);
  return ss.str();
}

int ConfigSpace::cardinality(int action) const {
  switch (action) {
    case 0: return static_cast<int>(pe_shapes.size());
    case 1: return static_cast<int>(g_buf_kb_options.size());
    case 2: return static_cast<int>(r_buf_byte_options.size());
    case 3: return kNumDataflows;
    default:
      throw std::invalid_argument("ConfigSpace::cardinality: bad action index");
  }
}

std::size_t ConfigSpace::size() const {
  std::size_t total = 1;
  for (int a = 0; a < kActionCount; ++a)
    total *= static_cast<std::size_t>(cardinality(a));
  return total;
}

AcceleratorConfig ConfigSpace::decode(const std::vector<int>& actions) const {
  if (actions.size() != static_cast<std::size_t>(kActionCount))
    throw std::invalid_argument("ConfigSpace::decode: expected 4 actions");
  for (int a = 0; a < kActionCount; ++a)
    if (actions[static_cast<std::size_t>(a)] < 0 ||
        actions[static_cast<std::size_t>(a)] >= cardinality(a))
      throw std::invalid_argument("ConfigSpace::decode: action " +
                                  std::to_string(a) + " out of range");
  AcceleratorConfig c;
  const auto& shape = pe_shapes[static_cast<std::size_t>(actions[0])];
  c.pe_rows = shape.first;
  c.pe_cols = shape.second;
  c.g_buf_kb = g_buf_kb_options[static_cast<std::size_t>(actions[1])];
  c.r_buf_bytes = r_buf_byte_options[static_cast<std::size_t>(actions[2])];
  c.dataflow = static_cast<Dataflow>(actions[3]);
  return c;
}

std::vector<int> ConfigSpace::encode(const AcceleratorConfig& config) const {
  std::vector<int> actions(kActionCount, -1);
  for (std::size_t i = 0; i < pe_shapes.size(); ++i)
    if (pe_shapes[i].first == config.pe_rows &&
        pe_shapes[i].second == config.pe_cols)
      actions[0] = static_cast<int>(i);
  for (std::size_t i = 0; i < g_buf_kb_options.size(); ++i)
    if (g_buf_kb_options[i] == config.g_buf_kb) actions[1] = static_cast<int>(i);
  for (std::size_t i = 0; i < r_buf_byte_options.size(); ++i)
    if (r_buf_byte_options[i] == config.r_buf_bytes)
      actions[2] = static_cast<int>(i);
  actions[3] = static_cast<int>(config.dataflow);
  for (int a = 0; a < kActionCount; ++a)
    if (actions[static_cast<std::size_t>(a)] < 0)
      throw std::invalid_argument(
          "ConfigSpace::encode: config not in space: " + config.to_string());
  return actions;
}

std::vector<AcceleratorConfig> ConfigSpace::enumerate() const {
  std::vector<AcceleratorConfig> configs;
  configs.reserve(size());
  for (std::size_t p = 0; p < pe_shapes.size(); ++p)
    for (std::size_t g = 0; g < g_buf_kb_options.size(); ++g)
      for (std::size_t r = 0; r < r_buf_byte_options.size(); ++r)
        for (int d = 0; d < kNumDataflows; ++d)
          configs.push_back(decode({static_cast<int>(p), static_cast<int>(g),
                                    static_cast<int>(r), d}));
  return configs;
}

ConfigSpace default_config_space() {
  ConfigSpace space;
  // Covers 8x8 .. 16x32 including every shape reported in Table 2
  // (16*32, 14*16, 16*20).
  space.pe_shapes = {{8, 8},   {8, 16},  {10, 16}, {12, 16}, {14, 16},
                     {16, 16}, {16, 20}, {16, 24}, {16, 32}};
  // 108..1024 KB, including the 108/196/256/512 KB points of Table 2.
  space.g_buf_kb_options = {108, 196, 256, 512, 1024};
  // 64..1024 B.
  space.r_buf_byte_options = {64, 128, 256, 512, 1024};
  return space;
}

}  // namespace yoso
