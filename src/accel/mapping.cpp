#include "accel/mapping.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "accel/config.h"
#include "accel/tech.h"
#include "arch/network.h"

namespace yoso {

double eff_fit(int n, int m) {
  if (n <= 0 || m <= 0) return 0.0;
  const int passes = (n + m - 1) / m;
  return static_cast<double>(n) / (static_cast<double>(passes) * m);
}

namespace {

double clampd(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

/// Candidate tile sizes: powers of two up to n, plus n itself.
std::vector<int> tile_candidates(int n) {
  std::vector<int> out;
  for (int t = 1; t < n; t *= 2) out.push_back(t);
  out.push_back(n);
  return out;
}

/// PE-array utilisation of a conv/dwconv/fc layer under a dataflow.
double layer_utilization(const Layer& layer, const AcceleratorConfig& cfg) {
  const int rows = cfg.pe_rows;
  const int cols = cfg.pe_cols;
  const int k = layer.kernel;
  const int hp = layer.out_h();
  const int wp = layer.out_w();
  switch (cfg.dataflow) {
    case Dataflow::kWeightStationary:
    case Dataflow::kNoLocalReuse: {
      // Rows carry the reduction dimension, cols the output channels.
      if (layer.kind == LayerKind::kDwConv) {
        // No cross-channel reduction: only the kxk window folds onto rows.
        return eff_fit(k * k, rows) * eff_fit(layer.in_c, cols);
      }
      return eff_fit(layer.in_c * k * k, rows) * eff_fit(layer.out_c, cols);
    }
    case Dataflow::kOutputStationary:
      // Rows carry output pixels, cols output channels.
      return eff_fit(hp * wp, rows) * eff_fit(layer.out_c, cols);
    case Dataflow::kRowStationary: {
      // Filter rows x output rows folded onto array rows, output columns
      // onto array cols (Eyeriss-style).
      const int fold = std::max(1, rows / k);
      const int used_rows = std::min({k * fold, rows, k * std::max(hp, 1)});
      const double u_r = static_cast<double>(used_rows) / rows;
      return u_r * eff_fit(wp, cols);
    }
  }
  throw std::logic_error("layer_utilization: invalid dataflow");
}

struct DramPlan {
  TileChoice tile;
  double bytes = std::numeric_limits<double>::infinity();
  double weight_bytes = 0.0;  ///< weight share of `bytes`
  bool overflow = false;
};

/// DRAM traffic for a tiling: total and the weight share (the component a
/// batched inference amortises).
struct DramTraffic {
  double total = 0.0;
  double weights = 0.0;
};

/// DRAM traffic for a tiling under the dataflow's loop order.
DramTraffic dram_traffic(Dataflow df, bool depthwise, double i_bytes,
                         double w_bytes, double o_bytes, int n_co, int n_ci,
                         int n_h) {
  if (depthwise) {
    // Channels are independent; no partial-sum re-reads, each operand
    // touches DRAM once as long as the tile fits.
    return {i_bytes + w_bytes + o_bytes, w_bytes};
  }
  const DramTraffic ws = {w_bytes + i_bytes * n_co +
                              o_bytes * (2.0 * n_ci - 1.0),
                          w_bytes};
  const DramTraffic os = {o_bytes + i_bytes * n_co + w_bytes * n_h,
                          w_bytes * n_h};
  switch (df) {
    case Dataflow::kWeightStationary:
      return ws;
    case Dataflow::kOutputStationary:
      return os;
    case Dataflow::kRowStationary: {
      // Register-level row reuse roughly halves the re-read factors.
      const auto half = [](int n) { return (n + 1) / 2; };
      const DramTraffic ws_rs = {w_bytes + i_bytes * half(n_co) +
                                     o_bytes * (2.0 * half(n_ci) - 1.0),
                                 w_bytes};
      const DramTraffic os_rs = {o_bytes + i_bytes * half(n_co) +
                                     w_bytes * half(n_h),
                                 w_bytes * half(n_h)};
      return ws_rs.total <= os_rs.total ? ws_rs : os_rs;
    }
    case Dataflow::kNoLocalReuse:
      // The global buffer still provides tiling reuse; take the better order.
      return ws.total <= os.total ? ws : os;
  }
  throw std::logic_error("dram_traffic: invalid dataflow");
}

/// Searches tile sizes under the (double-buffered) gbuf capacity.
DramPlan plan_tiling(const Layer& layer, const AcceleratorConfig& cfg,
                     const TechnologyParams& tech, double i_bytes,
                     double w_bytes, double o_bytes) {
  const bool depthwise = layer.kind == LayerKind::kDwConv;
  const double b = tech.bytes_per_element;
  const double gbuf_bytes = cfg.g_buf_kb * 1024.0;
  const int k = layer.kernel;
  const int hp = std::max(layer.out_h(), 1);
  const int wp = std::max(layer.out_w(), 1);

  const auto co_tiles = tile_candidates(layer.out_c);
  const auto ci_tiles =
      depthwise ? std::vector<int>{0} : tile_candidates(layer.in_c);
  const auto h_tiles = tile_candidates(hp);

  DramPlan best;
  DramPlan minimal;  // smallest tile, used as overflow fallback
  minimal.bytes = std::numeric_limits<double>::infinity();

  for (int t_co : co_tiles) {
    for (int t_ci_raw : ci_tiles) {
      const int t_ci = depthwise ? t_co : t_ci_raw;
      for (int t_h : h_tiles) {
        const int in_rows = std::min((t_h - 1) * layer.stride + k, layer.in_h);
        const double ti = static_cast<double>(in_rows) * layer.in_w * t_ci * b;
        const double tw = static_cast<double>(k) * k * t_ci *
                          (depthwise ? 1.0 : t_co) * b;
        const double to = static_cast<double>(t_h) * wp * t_co * b;
        const double need = 2.0 * (ti + tw + to);  // double buffering
        const int n_co = (layer.out_c + t_co - 1) / t_co;
        const int n_ci = depthwise ? n_co : (layer.in_c + t_ci - 1) / t_ci;
        const int n_h = (hp + t_h - 1) / t_h;
        const DramTraffic traffic =
            dram_traffic(cfg.dataflow, depthwise, i_bytes, w_bytes, o_bytes,
                         n_co, n_ci, n_h);
        if (t_co == co_tiles.front() && t_h == h_tiles.front() &&
            (depthwise || t_ci_raw == ci_tiles.front())) {
          minimal.tile = {t_co, t_ci, t_h};
          minimal.bytes = traffic.total;
          minimal.weight_bytes = traffic.weights;
        }
        if (need > gbuf_bytes) continue;
        if (traffic.total < best.bytes) {
          best.tile = {t_co, t_ci, t_h};
          best.bytes = traffic.total;
          best.weight_bytes = traffic.weights;
        }
      }
    }
  }

  if (!std::isfinite(best.bytes)) {
    // Not even the minimal tile fits: stream with a traffic penalty.
    minimal.bytes *= 2.0;
    minimal.weight_bytes *= 2.0;
    minimal.overflow = true;
    return minimal;
  }
  return best;
}

LayerMapping map_pool(const Layer& layer, const AcceleratorConfig& cfg,
                      const TechnologyParams& tech) {
  LayerMapping m;
  const double b = tech.bytes_per_element;
  const double i_bytes =
      static_cast<double>(layer.in_h) * layer.in_w * layer.in_c * b;
  const double o_bytes = static_cast<double>(layer.output_elements()) * b;
  m.macs = 0.0;
  m.utilization = eff_fit(layer.in_c, cfg.pe_cols);
  m.dram_bytes = i_bytes + o_bytes;
  // Pass through the global buffer on the way in and out.
  m.gbuf_bytes = 2.0 * (i_bytes + o_bytes);
  m.rbuf_bytes = 0.0;
  const double pool_ops = static_cast<double>(layer.kernel) * layer.kernel *
                          static_cast<double>(layer.output_elements());
  m.compute_cycles = pool_ops / std::max(1, cfg.pe_cols);
  const double dram_cycles = m.dram_bytes / tech.dram_bytes_per_cycle;
  const double gbuf_cycles = m.gbuf_bytes / tech.gbuf_bytes_per_cycle;
  const double fill = cfg.pe_rows + cfg.pe_cols + 50.0;
  m.total_cycles =
      std::max({m.compute_cycles, dram_cycles, gbuf_cycles}) + fill;
  m.stall_cycles = std::max(0.0, m.total_cycles - fill - m.compute_cycles);
  m.tile = {layer.out_c, layer.in_c, std::max(layer.out_h(), 1)};
  return m;
}

}  // namespace

LayerMapping map_layer(const Layer& layer, const AcceleratorConfig& cfg,
                       const TechnologyParams& tech) {
  if (layer.kind == LayerKind::kPool) return map_pool(layer, cfg, tech);

  LayerMapping m;
  const double b = tech.bytes_per_element;
  const bool depthwise = layer.kind == LayerKind::kDwConv;
  const int k = layer.kernel;
  const int hp = std::max(layer.out_h(), 1);
  const int wp = std::max(layer.out_w(), 1);

  const double i_bytes =
      static_cast<double>(layer.in_h) * layer.in_w * layer.in_c * b;
  const double w_bytes = static_cast<double>(layer.params()) * b;
  const double o_bytes = static_cast<double>(layer.output_elements()) * b;
  m.macs = static_cast<double>(layer.macs());

  m.utilization = std::max(layer_utilization(layer, cfg), 1e-3);
  m.compute_cycles = m.macs / (cfg.num_pes() * m.utilization);

  const DramPlan plan = plan_tiling(layer, cfg, tech, i_bytes, w_bytes,
                                    o_bytes);
  m.tile = plan.tile;
  m.dram_bytes = plan.bytes;
  m.dram_weight_bytes = plan.weight_bytes;
  m.buffer_overflow = plan.overflow;

  // --- Global-buffer <-> array traffic after spatial + register reuse. ---
  const double rbuf_elems =
      std::max(1.0, cfg.r_buf_bytes / tech.bytes_per_element);
  // Input-window temporal reuse achievable with the register buffer: full
  // kxk window reuse needs room for the window plus resident weights and
  // partial sums (modelled as an 8x per-row overhead), so small register
  // buffers (64 B) get almost no temporal reuse and large ones (1 KB)
  // saturate at k.
  const double window =
      clampd(rbuf_elems / (8.0 * k), 1.0, static_cast<double>(k));
  const double rows_used =
      depthwise ? std::min<double>(k * k, cfg.pe_rows)
                : std::min<double>(static_cast<double>(layer.in_c) * k * k,
                                   cfg.pe_rows);
  const double cols_used = std::min<double>(layer.out_c, cfg.pe_cols);
  const double pixel_rows_used =
      std::min<double>(static_cast<double>(hp) * wp, cfg.pe_rows);

  double gbuf_i = 0.0, gbuf_w = 0.0, gbuf_o = 0.0;
  switch (cfg.dataflow) {
    case Dataflow::kWeightStationary:
      gbuf_w = w_bytes;  // loaded into the array once per residency
      gbuf_i = m.macs * b / std::max(1.0, cols_used * window);
      gbuf_o = m.macs * b / std::max(1.0, rows_used) + o_bytes;
      break;
    case Dataflow::kOutputStationary:
      gbuf_w = m.macs * b / std::max(1.0, pixel_rows_used);
      gbuf_i = m.macs * b / std::max(1.0, cols_used * window);
      gbuf_o = 2.0 * o_bytes;  // drain + write-back
      break;
    case Dataflow::kRowStationary: {
      const double w_reuse = std::max(1.0, static_cast<double>(wp));
      const double i_reuse = std::max(1.0, k * window);
      const double o_reuse = std::max(1.0, static_cast<double>(k));
      gbuf_w = m.macs * b / w_reuse;
      gbuf_i = m.macs * b / i_reuse;
      gbuf_o = m.macs * b / o_reuse + o_bytes;
      break;
    }
    case Dataflow::kNoLocalReuse:
      // Only spatial reuse (broadcast across cols, accumulate down rows).
      gbuf_w = m.macs * b;
      gbuf_i = m.macs * b / std::max(1.0, cols_used);
      gbuf_o = m.macs * b / std::max(1.0, rows_used) + o_bytes;
      break;
  }
  // Every DRAM byte also transits the global buffer.
  m.gbuf_bytes = gbuf_i + gbuf_w + gbuf_o + m.dram_bytes;

  // Register-file traffic: two operand reads + one accumulation per MAC for
  // the pinned-operand dataflows; RS shuttles partial sums between register
  // files as well; NLR has no register buffers in the datapath.
  switch (cfg.dataflow) {
    case Dataflow::kWeightStationary:
    case Dataflow::kOutputStationary:
      m.rbuf_bytes = 3.0 * m.macs * b;
      break;
    case Dataflow::kRowStationary:
      m.rbuf_bytes = 3.5 * m.macs * b;
      break;
    case Dataflow::kNoLocalReuse:
      m.rbuf_bytes = 0.0;
      break;
  }

  const double dram_cycles = m.dram_bytes / tech.dram_bytes_per_cycle;
  const double gbuf_cycles = m.gbuf_bytes / tech.gbuf_bytes_per_cycle;
  const double fill = cfg.pe_rows + cfg.pe_cols + 50.0;
  m.total_cycles =
      std::max({m.compute_cycles, dram_cycles, gbuf_cycles}) + fill;
  m.stall_cycles = std::max(0.0, m.total_cycles - fill - m.compute_cycles);
  return m;
}

}  // namespace yoso
