#include "accel/area.h"

#include "accel/config.h"

namespace yoso {

AreaBreakdown estimate_area(const AcceleratorConfig& config,
                            const AreaParams& params) {
  AreaBreakdown a;
  const double pes = config.num_pes();
  a.pe_mm2 = pes * params.pe_um2 * 1e-6;
  a.rbuf_mm2 = pes * config.r_buf_bytes * params.rbuf_um2_per_byte * 1e-6;
  a.gbuf_mm2 = config.g_buf_kb * params.gbuf_um2_per_kb * 1e-6;
  a.mux_mm2 = pes * params.dataflow_mux_um2_per_pe * 1e-6;
  const double logic = a.pe_mm2 + a.rbuf_mm2 + a.gbuf_mm2 + a.mux_mm2;
  a.routing_mm2 = logic * params.routing_overhead;
  a.total_mm2 = logic + a.routing_mm2;
  return a;
}

double total_area_mm2(const AcceleratorConfig& config,
                      const AreaParams& params) {
  return estimate_area(config, params).total_mm2;
}

}  // namespace yoso
