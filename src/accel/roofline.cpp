#include "accel/roofline.h"

#include <algorithm>

#include "accel/config.h"
#include "accel/mapping.h"
#include "accel/tech.h"
#include "arch/network.h"

namespace yoso {

RooflineSummary roofline_analysis(const std::vector<Layer>& layers,
                                  const AcceleratorConfig& config,
                                  const TechnologyParams& tech) {
  RooflineSummary summary;
  summary.peak_gmacs = config.num_pes() * tech.clock_ghz;
  const double dram_gbps =
      tech.dram_bytes_per_cycle * tech.clock_ghz;  // GB/s
  summary.balance_intensity = summary.peak_gmacs / dram_gbps;

  double eff_weighted = 0.0;
  double macs_total = 0.0;
  for (const Layer& layer : layers) {
    if (layer.macs() == 0) continue;  // pools: no compute roofline
    const LayerMapping m = map_layer(layer, config, tech);
    RooflinePoint p;
    p.layer_name = layer.name;
    p.intensity = m.dram_bytes > 0.0 ? m.macs / m.dram_bytes : 1e9;
    p.attainable_gmacs =
        std::min(summary.peak_gmacs, dram_gbps * p.intensity);
    const double seconds = m.total_cycles / (tech.clock_ghz * 1e9);
    p.achieved_gmacs = seconds > 0.0 ? m.macs / seconds * 1e-9 : 0.0;
    p.memory_bound = p.intensity < summary.balance_intensity;
    if (p.memory_bound) ++summary.memory_bound_layers;
    eff_weighted += (p.achieved_gmacs /
                     std::max(p.attainable_gmacs, 1e-9)) * m.macs;
    macs_total += m.macs;
    summary.layers.push_back(std::move(p));
  }
  summary.mean_efficiency =
      macs_total > 0.0 ? eff_weighted / macs_total : 0.0;
  return summary;
}

}  // namespace yoso
