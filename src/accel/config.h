#pragma once
// Accelerator configuration space (paper Table 1).
//
// The hardware template is a systolic array with a two-level on-chip memory
// hierarchy (global buffer + per-PE register buffer) and a configurable
// dataflow.  The four searched hardware parameters (the paper's L = 4
// actions) are:
//   * PE array size       — 8x8 .. 16x32
//   * global buffer size  — 108 .. 1024 KB
//   * register buffer     — 64 .. 1024 B per PE
//   * dataflow            — WS, OS, RS, NLR

#include <cstdint>
#include <string>
#include <vector>

namespace yoso {

/// Dataflows supported by the systolic-array template (Table 1).
enum class Dataflow : int {
  kWeightStationary = 0,   ///< WS: weights pinned in PEs
  kOutputStationary = 1,   ///< OS: partial sums pinned in PEs
  kRowStationary = 2,      ///< RS: Eyeriss-style row pairs pinned
  kNoLocalReuse = 3,       ///< NLR: no PE-local reuse, gbuf only
};

inline constexpr int kNumDataflows = 4;

std::string dataflow_name(Dataflow df);
Dataflow dataflow_from_name(const std::string& name);

/// One point in the accelerator configuration space.
struct AcceleratorConfig {
  int pe_rows = 16;
  int pe_cols = 16;
  int g_buf_kb = 512;     ///< global buffer, kilobytes
  int r_buf_bytes = 256;  ///< per-PE register buffer, bytes
  Dataflow dataflow = Dataflow::kWeightStationary;

  int num_pes() const { return pe_rows * pe_cols; }

  bool operator==(const AcceleratorConfig&) const = default;

  /// Paper-style string: "16*32/512KB/512B/OS".
  std::string to_string() const;
};

/// The discrete option lists for each hardware action.
struct ConfigSpace {
  /// (rows, cols) pairs covering the paper's 8x8..16x32 range.
  std::vector<std::pair<int, int>> pe_shapes;
  std::vector<int> g_buf_kb_options;
  std::vector<int> r_buf_byte_options;
  // dataflows are always the 4 enum values

  /// Number of hardware actions (the paper's L).
  static constexpr int kActionCount = 4;

  /// Cardinality of hardware action `i` (0: PE shape, 1: gbuf, 2: rbuf,
  /// 3: dataflow).
  int cardinality(int action) const;

  /// Total configuration count (product of cardinalities).
  std::size_t size() const;

  /// Action indices -> config.  Throws on out-of-range actions.
  AcceleratorConfig decode(const std::vector<int>& actions) const;

  /// Config -> action indices.  Throws if the config is not in the space.
  std::vector<int> encode(const AcceleratorConfig& config) const;

  /// Enumerates every configuration (for the two-stage exhaustive search).
  std::vector<AcceleratorConfig> enumerate() const;
};

/// The paper's configuration space (Table 1 ranges, including every PE
/// shape / buffer size that appears in Table 2).
ConfigSpace default_config_space();

}  // namespace yoso
