#pragma once
// Roofline analysis of a network on a configuration.
//
// The classic architect's sanity check: for each layer, operational
// intensity (MACs per DRAM byte) against the machine balance point
// (peak MACs/s divided by DRAM bytes/s) tells whether the layer is
// compute- or memory-bound and how close the mapping gets to its bound.
// The benches and report use this to explain *why* a configuration wins.

#include <vector>

#include "accel/config.h"
#include "accel/tech.h"
#include "arch/network.h"

namespace yoso {

struct RooflinePoint {
  std::string layer_name;
  double intensity = 0.0;        ///< MACs per DRAM byte
  double attainable_gmacs = 0.0; ///< roofline bound, GMAC/s
  double achieved_gmacs = 0.0;   ///< from the mapping's cycle estimate
  bool memory_bound = false;     ///< intensity below the balance point
};

struct RooflineSummary {
  double peak_gmacs = 0.0;          ///< array peak, GMAC/s
  double balance_intensity = 0.0;   ///< MACs/byte where compute == memory
  std::vector<RooflinePoint> layers;
  std::size_t memory_bound_layers = 0;
  double mean_efficiency = 0.0;     ///< achieved / attainable, MAC-weighted
};

/// Builds the roofline for every weight-bearing layer of a network on a
/// configuration (pool layers move data but have no MACs and are skipped).
RooflineSummary roofline_analysis(const std::vector<Layer>& layers,
                                  const AcceleratorConfig& config,
                                  const TechnologyParams& tech = {});

}  // namespace yoso
