#pragma once
// SystemVerilog skeleton generator for a searched accelerator
// configuration.
//
// The co-search ends with an AcceleratorConfig; the step after the paper is
// implementation.  This exporter emits a parameterised, synthesizable-style
// SystemVerilog skeleton of the chosen systolic array — top level with the
// PE array generate loops, a PE with MAC + register buffer, the global
// buffer wrapper and the dataflow-specific operand routing stubs — so a
// hardware team starts from a structurally correct template rather than a
// blank file.  (Datapath contents are templates, not a verified design.)

#include <string>

#include "accel/config.h"

namespace yoso {

struct RtlOptions {
  int data_width = 16;              ///< operand width (the model's datapath)
  int accumulator_width = 32;       ///< psum width
  std::string module_prefix = "yoso";
};

/// Emits the complete SystemVerilog source (all modules in one unit).
std::string export_systolic_rtl(const AcceleratorConfig& config,
                                const RtlOptions& options = {});

/// Name of the generated top-level module for a prefix.
std::string rtl_top_module_name(const RtlOptions& options = {});

}  // namespace yoso
