#pragma once
// First-order silicon area model for the systolic-array template.
//
// The paper searches PE-array and buffer sizes without an explicit area
// constraint; real accelerator sign-off adds one.  This model estimates the
// area of a configuration from per-component densities typical of a 28 nm
// node (16-bit MAC PEs, 6T SRAM macros, register files) plus a routing /
// NoC overhead factor, giving the co-search an optional area budget and the
// benches an extra column.

#include "accel/config.h"

namespace yoso {

struct AreaParams {
  // 28 nm-class densities.
  double pe_um2 = 950.0;            ///< 16-bit MAC + pipeline + control
  double rbuf_um2_per_byte = 4.0;   ///< register-file cells (per PE)
  double gbuf_um2_per_kb = 2300.0;  ///< SRAM macro
  double dataflow_mux_um2_per_pe = 60.0;  ///< reconfigurable-dataflow muxing
  double routing_overhead = 0.18;   ///< NoC + clock + power grid fraction
};

struct AreaBreakdown {
  double pe_mm2 = 0.0;
  double rbuf_mm2 = 0.0;
  double gbuf_mm2 = 0.0;
  double mux_mm2 = 0.0;
  double routing_mm2 = 0.0;
  double total_mm2 = 0.0;
};

/// Estimates die area of one configuration.
AreaBreakdown estimate_area(const AcceleratorConfig& config,
                            const AreaParams& params = {});

/// Convenience: total mm^2 only.
double total_area_mm2(const AcceleratorConfig& config,
                      const AreaParams& params = {});

}  // namespace yoso
