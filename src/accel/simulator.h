#pragma once
// Network-level systolic-array simulator (the role nn_dataflow plays in the
// paper): maps every layer of a concrete network onto a configuration and
// accumulates latency and energy.
//
// Two fidelities are provided:
//  * kAnalytical  — closed-form per-layer model (used inside fast sweeps);
//  * kCycleLevel  — walks every tile iteration of every layer with a
//    double-buffered prefetch pipeline and a bank-conflict model.  This is
//    the slow "accurate simulation" the paper replaces with the GP predictor
//    during search and falls back to for the top-N finalists.

#include <vector>

#include "accel/config.h"
#include "accel/mapping.h"
#include "accel/tech.h"
#include "arch/genotype.h"
#include "arch/network.h"

namespace yoso {

enum class SimFidelity { kAnalytical, kCycleLevel };

/// Per-layer simulation outcome.
struct LayerSimResult {
  LayerMapping mapping;
  double cycles = 0.0;     ///< cycle-level refined cycles (== mapping total
                           ///< cycles under kAnalytical)
  double energy_pj = 0.0;  ///< dynamic energy of this layer
};

/// Whole-network simulation outcome.  With batch > 1, energy_mj and
/// latency_ms are per-image (weights amortise across the batch).
struct SimulationResult {
  int batch = 1;
  double throughput_fps = 0.0;  ///< images per second at this batch
  double latency_ms = 0.0;
  double energy_mj = 0.0;  ///< dynamic + static
  // Energy breakdown (mJ).
  double dram_mj = 0.0;
  double gbuf_mj = 0.0;
  double rbuf_mj = 0.0;
  double mac_mj = 0.0;
  double static_mj = 0.0;
  double total_cycles = 0.0;
  double mean_utilization = 0.0;  ///< MAC-weighted PE utilisation
  std::vector<LayerSimResult> layers;
};

class SystolicSimulator {
 public:
  explicit SystolicSimulator(TechnologyParams tech = {},
                             SimFidelity fidelity = SimFidelity::kCycleLevel)
      : tech_(tech), fidelity_(fidelity) {}

  const TechnologyParams& tech() const { return tech_; }
  SimFidelity fidelity() const { return fidelity_; }

  /// Simulates a concrete layer list on a configuration.  `batch` > 1
  /// models throughput-mode inference: weight DRAM traffic is paid once per
  /// batch while activations scale per image; results are per-image.
  SimulationResult simulate(const std::vector<Layer>& layers,
                            const AcceleratorConfig& config,
                            int batch = 1) const;

  /// Convenience: extract layers from a genotype and simulate.
  SimulationResult simulate_network(const Genotype& genotype,
                                    const NetworkSkeleton& skeleton,
                                    const AcceleratorConfig& config,
                                    int batch = 1) const;

 private:
  /// Tile-by-tile pipeline walk used by kCycleLevel.
  double cycle_level_cycles(const Layer& layer, const LayerMapping& mapping,
                            const AcceleratorConfig& config) const;

  TechnologyParams tech_;
  SimFidelity fidelity_;
};

}  // namespace yoso
