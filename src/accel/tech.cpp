#include "accel/tech.h"

#include <cmath>

namespace yoso {

double TechnologyParams::gbuf_energy_per_byte(double g_buf_kb) const {
  return e_gbuf_pj_per_byte * std::sqrt(g_buf_kb / gbuf_reference_kb);
}

}  // namespace yoso
