#pragma once
// Per-layer mapping of a concrete layer onto the systolic-array template
// under one of the four dataflows, nn_dataflow-style: a small tiling search
// chooses output-channel / input-channel / output-row tile sizes under the
// global-buffer capacity constraint, and an analytical model derives
//
//   * PE-array utilisation (how well the layer dims fill the array),
//   * compute cycles, memory-stall cycles, total cycles,
//   * bytes moved at each hierarchy level (DRAM, global buffer, register
//     buffers) after spatial (array broadcast / accumulation) and temporal
//     (register-buffer) reuse.
//
// The dataflow determines which operand is pinned (WS: weights, OS: partial
// sums, RS: filter/feature rows, NLR: nothing) and therefore which DRAM
// re-read pattern and which register-reuse factors apply.

#include <vector>

#include "accel/config.h"
#include "accel/tech.h"
#include "arch/network.h"

namespace yoso {

/// Tile sizes chosen by the mapping search.
struct TileChoice {
  int t_co = 1;  ///< output-channel tile
  int t_ci = 1;  ///< input-channel tile
  int t_h = 1;   ///< output-row tile
};

/// Mapping result for one layer on one configuration.
struct LayerMapping {
  TileChoice tile;
  double utilization = 0.0;    ///< fraction of PEs doing useful work
  double macs = 0.0;
  double compute_cycles = 0.0;
  double stall_cycles = 0.0;   ///< memory-bound extra cycles
  double total_cycles = 0.0;   ///< max(compute, bandwidth) + fill
  double dram_bytes = 0.0;
  double dram_weight_bytes = 0.0;  ///< weight share of dram_bytes (batch-
                                   ///< amortisable in throughput mode)
  double gbuf_bytes = 0.0;     ///< traffic between global buffer and array
  double rbuf_bytes = 0.0;     ///< traffic through PE register files
  bool buffer_overflow = false;  ///< even the minimal tile missed capacity
};

/// Fraction of `m` lanes busy when `n` units are folded onto them:
/// n / (ceil(n/m) * m).  Returns 1.0 for n == 0 handled as empty.
double eff_fit(int n, int m);

/// Maps one layer; never fails (degenerate layers get zero-cost mappings).
LayerMapping map_layer(const Layer& layer, const AcceleratorConfig& config,
                       const TechnologyParams& tech);

}  // namespace yoso
