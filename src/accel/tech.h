#pragma once
// Technology parameters of the systolic-array template: clock, datapath
// width, memory bandwidths and per-access energies.  The defaults are
// calibrated so that networks from the YOSO search space at CIFAR scale land
// in the paper's reported ranges (total energy ~7..18 mJ, latency
// ~0.7..2.5 ms per inference) — see EXPERIMENTS.md for the calibration note.

namespace yoso {

struct TechnologyParams {
  double clock_ghz = 0.7;          ///< PE array clock
  double bytes_per_element = 2.0;  ///< 16-bit fixed-point datapath

  // Bandwidths, bytes per cycle.
  double dram_bytes_per_cycle = 16.0;
  double gbuf_bytes_per_cycle = 96.0;

  // Dynamic energy per byte moved at each hierarchy level (pJ/byte) and per
  // MAC operation (pJ).  Ratios follow the usual DRAM >> SRAM >> RF >> MAC
  // ordering (cf. Eyeriss energy tables).
  double e_dram_pj_per_byte = 460.0;
  double e_gbuf_pj_per_byte = 18.0;  ///< at the 512 KB reference size
  double e_rbuf_pj_per_byte = 2.4;
  double e_mac_pj = 3.0;

  // Static (leakage) power, mW.  Grows with array size and buffer capacity,
  // creating pressure against over-provisioned hardware.
  double p_static_per_pe_mw = 0.012;
  double p_static_per_gbuf_kb_mw = 0.006;

  // Global-buffer access energy scales roughly with sqrt(capacity); this is
  // the reference capacity for e_gbuf_pj_per_byte.
  double gbuf_reference_kb = 512.0;

  /// Effective gbuf energy per byte for a given capacity.
  double gbuf_energy_per_byte(double g_buf_kb) const;
};

}  // namespace yoso
