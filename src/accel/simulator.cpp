#include "accel/simulator.h"

#include <algorithm>
#include <cmath>

#include "accel/config.h"
#include "accel/mapping.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "base/contract.h"
#include "obs/trace.h"

namespace yoso {

namespace {

/// Deterministic per-step jitter in [0, 1): models bank conflicts and
/// refill misalignment that the analytical model averages away.
double step_jitter(std::uint64_t layer_index, std::uint64_t step) {
  std::uint64_t x = (layer_index + 1) * 0x9E3779B97F4A7C15ull + step;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

double SystolicSimulator::cycle_level_cycles(const Layer& layer,
                                             const LayerMapping& mapping,
                                             const AcceleratorConfig& config)
    const {
  const int hp = std::max(layer.out_h(), 1);
  const int n_co =
      (layer.out_c + mapping.tile.t_co - 1) / std::max(mapping.tile.t_co, 1);
  const int n_ci = layer.kind == LayerKind::kDwConv
                       ? n_co
                       : (layer.in_c + mapping.tile.t_ci - 1) /
                             std::max(mapping.tile.t_ci, 1);
  const int n_h = (hp + mapping.tile.t_h - 1) / std::max(mapping.tile.t_h, 1);
  // Walk at cycle-block granularity: one step is a kernel-row pass over one
  // output row for one array column group and one reduction-dimension fold.
  const int col_groups =
      (layer.out_c + config.pe_cols - 1) / config.pe_cols;
  const int reduction_dim = layer.kind == LayerKind::kDwConv
                                ? layer.kernel * layer.kernel
                                : layer.in_c * layer.kernel * layer.kernel;
  const int reduction_groups =
      (reduction_dim + config.pe_rows - 1) / config.pe_rows;
  const long long fine = static_cast<long long>(hp) *
                         std::max(layer.kernel, 1) * std::max(col_groups, 1) *
                         std::max(reduction_groups, 1);
  const long long steps = std::max(
      {1LL, static_cast<long long>(n_co) * n_ci * n_h, fine});

  const double compute_per_step =
      mapping.compute_cycles / static_cast<double>(steps);
  const double dram_per_step =
      mapping.dram_bytes / tech_.dram_bytes_per_cycle /
      static_cast<double>(steps);
  const double gbuf_per_step =
      mapping.gbuf_bytes / tech_.gbuf_bytes_per_cycle /
      static_cast<double>(steps);

  // Double-buffered pipeline: while tile i computes, tile i+1 prefetches.
  // Per-step time is the max of compute and the (jittered) memory legs;
  // the first fetch and the final drain are exposed.
  const auto layer_key =
      static_cast<std::uint64_t>(layer.in_c) * 1315423911ull +
      static_cast<std::uint64_t>(layer.out_c) * 2654435761ull +
      static_cast<std::uint64_t>(layer.kernel);
  double total = dram_per_step;  // first prefetch exposed
  for (long long s = 0; s < steps; ++s) {
    const double conflict =
        1.0 + 0.04 * step_jitter(layer_key, static_cast<std::uint64_t>(s));
    const double mem = std::max(dram_per_step, gbuf_per_step) * conflict;
    total += std::max(compute_per_step, mem);
  }
  total += gbuf_per_step;  // final drain
  total += config.pe_rows + config.pe_cols + 50.0;  // array fill + launch
  return total;
}

SimulationResult SystolicSimulator::simulate(
    const std::vector<Layer>& layers, const AcceleratorConfig& config,
    int batch) const {
  YOSO_REQUIRE(batch >= 1, "SystolicSimulator::simulate: batch=", batch);
  YOSO_REQUIRE(config.pe_rows > 0 && config.pe_cols > 0,
               "SystolicSimulator::simulate: degenerate array ",
               config.pe_rows, "x", config.pe_cols);
  SimulationResult result;
  result.batch = batch;
  result.layers.reserve(layers.size());
  const double e_gbuf = tech_.gbuf_energy_per_byte(config.g_buf_kb);
  const double b = static_cast<double>(batch);

  double weighted_util = 0.0;
  double total_macs = 0.0;

  for (const Layer& layer : layers) {
    LayerSimResult lr;
    lr.mapping = map_layer(layer, config, tech_);
    // Mapping bounds: a tile that escapes the layer extents or collapses to
    // zero would make the traffic model read garbage reuse factors.
    const TileChoice& t = lr.mapping.tile;
    YOSO_CHECK(t.t_co >= 1 && t.t_ci >= 1 && t.t_h >= 1 &&
                   t.t_co <= std::max(layer.out_c, 1) &&
                   t.t_ci <= std::max(layer.in_c, 1) &&
                   t.t_h <= std::max(layer.out_h(), 1),
               "SystolicSimulator::simulate: tile (", t.t_co, ",", t.t_ci,
               ",", t.t_h, ") out of bounds for layer out_c=", layer.out_c,
               " in_c=", layer.in_c, " out_h=", layer.out_h());
    const double image_cycles =
        fidelity_ == SimFidelity::kCycleLevel
            ? cycle_level_cycles(layer, lr.mapping, config)
            : lr.mapping.total_cycles;
    // Per-image quantities: the weight share of DRAM traffic is paid once
    // per batch; activations and compute scale per image.  Weight refills
    // overlap compute for the later images, so per-image cycles shrink by
    // the stall share attributable to weights (approximated via the weight
    // fraction of traffic).
    const double act_dram =
        lr.mapping.dram_bytes - lr.mapping.dram_weight_bytes;
    const double dram_per_image =
        act_dram + lr.mapping.dram_weight_bytes / b;
    lr.cycles = image_cycles;
    if (batch > 1) {
      const double weight_cycles =
          lr.mapping.dram_weight_bytes / tech_.dram_bytes_per_cycle;
      // Remove the amortised part of weight-fetch time when the layer was
      // memory-bound on weights.
      const double saved = weight_cycles * (1.0 - 1.0 / b);
      lr.cycles = std::max(lr.mapping.compute_cycles,
                           image_cycles - saved);
    }
    lr.energy_pj = dram_per_image * tech_.e_dram_pj_per_byte +
                   lr.mapping.gbuf_bytes * e_gbuf +
                   lr.mapping.rbuf_bytes * tech_.e_rbuf_pj_per_byte +
                   lr.mapping.macs * tech_.e_mac_pj;

    result.total_cycles += lr.cycles;
    result.dram_mj += dram_per_image * tech_.e_dram_pj_per_byte * 1e-9;
    result.gbuf_mj += lr.mapping.gbuf_bytes * e_gbuf * 1e-9;
    result.rbuf_mj += lr.mapping.rbuf_bytes * tech_.e_rbuf_pj_per_byte * 1e-9;
    result.mac_mj += lr.mapping.macs * tech_.e_mac_pj * 1e-9;
    weighted_util += lr.mapping.utilization * lr.mapping.macs;
    total_macs += lr.mapping.macs;
    result.layers.push_back(std::move(lr));
  }

  result.latency_ms = result.total_cycles / (tech_.clock_ghz * 1e6);
  const double static_mw = tech_.p_static_per_pe_mw * config.num_pes() +
                           tech_.p_static_per_gbuf_kb_mw * config.g_buf_kb;
  result.static_mj = static_mw * result.latency_ms * 1e-3;  // mW*ms = uJ
  result.energy_mj = result.dram_mj + result.gbuf_mj + result.rbuf_mj +
                     result.mac_mj + result.static_mj;
  result.mean_utilization =
      total_macs > 0.0 ? weighted_util / total_macs : 0.0;
  result.throughput_fps =
      result.latency_ms > 0.0 ? 1000.0 / result.latency_ms : 0.0;
  return result;
}

SimulationResult SystolicSimulator::simulate_network(
    const Genotype& genotype, const NetworkSkeleton& skeleton,
    const AcceleratorConfig& config, int batch) const {
  // Runs on workers during sample collection / accurate rerank; the span
  // lands in the calling thread's own ring, so this is contention-free.
  YOSO_TRACE_SPAN("sim.network");
  obs::counter_add("sim.networks");
  return simulate(extract_layers(genotype, skeleton), config, batch);
}

}  // namespace yoso
