#include "nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arch/genotype.h"
#include "nn/dataset.h"
#include "nn/module.h"
#include "nn/network.h"

namespace yoso {

QuantizationStats quantize_parameters(std::vector<Param*>& params, int bits) {
  if (bits < 2 || bits > 16)
    throw std::invalid_argument("quantize_parameters: bits must be in 2..16");
  QuantizationStats stats;
  stats.bits = bits;
  const double qmax = static_cast<double>((1 << (bits - 1)) - 1);
  double abs_err_sum = 0.0;

  for (Param* p : params) {
    float max_abs = 0.0f;
    for (float v : p->value.data()) max_abs = std::max(max_abs, std::abs(v));
    ++stats.tensors;
    if (max_abs == 0.0f) {
      stats.values += p->value.numel();
      continue;  // all-zero tensor quantises to itself
    }
    const double scale = max_abs / qmax;
    for (float& v : p->value.data()) {
      const double q = std::clamp(std::round(v / scale), -qmax - 1.0, qmax);
      const double deq = q * scale;
      const double err = std::abs(deq - v);
      stats.max_abs_error = std::max(stats.max_abs_error, err);
      abs_err_sum += err;
      v = static_cast<float>(deq);
      ++stats.values;
    }
  }
  stats.mean_abs_error =
      stats.values > 0 ? abs_err_sum / static_cast<double>(stats.values) : 0.0;
  return stats;
}

WeightSnapshot::WeightSnapshot(PathNetwork& network) : network_(network) {
  std::vector<Param*> params;
  network_.collect_params(params);
  saved_.reserve(params.size());
  for (const Param* p : params) {
    const auto span = p->value.data();
    saved_.emplace_back(span.begin(), span.end());
  }
}

void WeightSnapshot::restore() {
  if (restored_) return;
  std::vector<Param*> params;
  network_.collect_params(params);
  // Parameters are created lazily; new tensors may have appeared since the
  // snapshot, but the snapshot's prefix always matches collect order for an
  // unchanged network.  Restore what we saved.
  const std::size_t n = std::min(params.size(), saved_.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto span = params[i]->value.data();
    if (span.size() != saved_[i].size())
      throw std::logic_error("WeightSnapshot: parameter shape changed");
    std::copy(saved_[i].begin(), saved_[i].end(), span.begin());
  }
  restored_ = true;
}

WeightSnapshot::~WeightSnapshot() {
  try {
    restore();
  } catch (...) {
    // Destructor must not throw; a shape change would already have been a
    // logic error during explicit use.
  }
}

double evaluate_quantized(PathNetwork& network, const Genotype& path,
                          const Dataset& ds, int bits, int batch_size) {
  WeightSnapshot snapshot(network);
  std::vector<Param*> params;
  network.collect_params(params);
  quantize_parameters(params, bits);
  const double acc = network.evaluate(path, ds, batch_size);
  snapshot.restore();
  return acc;
}

}  // namespace yoso
