#include "nn/im2col.h"

#include <stdexcept>

#include "base/contract.h"
#include "linalg/kernels.h"
#include "nn/tensor.h"

namespace yoso {

namespace {

int out_size(int in, int stride) { return (in + stride - 1) / stride; }

}  // namespace

ColMatrix im2col(const Tensor& x, int kernel, int stride) {
  if (x.rank() != 4) throw std::invalid_argument("im2col: need NCHW input");
  YOSO_REQUIRE(kernel >= 1 && stride >= 1,
               "im2col: kernel=", kernel, " stride=", stride,
               " must be positive");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int pad = kernel / 2;
  const int oh = out_size(h, stride), ow = out_size(w, stride);

  ColMatrix m;
  m.rows = n * oh * ow;
  m.cols = c * kernel * kernel;
  m.data.assign(static_cast<std::size_t>(m.rows) * m.cols, 0.0f);

  for (int b = 0; b < n; ++b) {
    for (int yy = 0; yy < oh; ++yy) {
      for (int xx = 0; xx < ow; ++xx) {
        float* row =
            m.data.data() +
            (static_cast<std::size_t>(b) * oh * ow + yy * ow + xx) * m.cols;
        for (int ci = 0; ci < c; ++ci) {
          for (int kh = 0; kh < kernel; ++kh) {
            const int ih = yy * stride + kh - pad;
            if (ih < 0 || ih >= h) continue;
            for (int kw = 0; kw < kernel; ++kw) {
              const int iw = xx * stride + kw - pad;
              if (iw < 0 || iw >= w) continue;
              row[(ci * kernel + kh) * kernel + kw] = x.at(b, ci, ih, iw);
            }
          }
        }
      }
    }
  }
  return m;
}

Tensor col2im(const ColMatrix& cols, const std::vector<int>& input_shape,
              int kernel, int stride) {
  if (input_shape.size() != 4)
    throw std::invalid_argument("col2im: need NCHW shape");
  YOSO_REQUIRE(kernel >= 1 && stride >= 1,
               "col2im: kernel=", kernel, " stride=", stride,
               " must be positive");
  Tensor gx(input_shape);
  const int n = input_shape[0], c = input_shape[1], h = input_shape[2],
            w = input_shape[3];
  const int pad = kernel / 2;
  const int oh = out_size(h, stride), ow = out_size(w, stride);
  if (cols.rows != n * oh * ow || cols.cols != c * kernel * kernel)
    throw std::invalid_argument("col2im: shape mismatch");

  for (int b = 0; b < n; ++b) {
    for (int yy = 0; yy < oh; ++yy) {
      for (int xx = 0; xx < ow; ++xx) {
        const float* row =
            cols.data.data() +
            (static_cast<std::size_t>(b) * oh * ow + yy * ow + xx) *
                cols.cols;
        for (int ci = 0; ci < c; ++ci) {
          for (int kh = 0; kh < kernel; ++kh) {
            const int ih = yy * stride + kh - pad;
            if (ih < 0 || ih >= h) continue;
            for (int kw = 0; kw < kernel; ++kw) {
              const int iw = xx * stride + kw - pad;
              if (iw < 0 || iw >= w) continue;
              gx.at(b, ci, ih, iw) += row[(ci * kernel + kh) * kernel + kw];
            }
          }
        }
      }
    }
  }
  return gx;
}

// The three conv products are thin wrappers over the shared blocked/SIMD
// kernel layer (linalg/kernels.h), which owns the register tiling, engine
// dispatch and determinism rules.

void matmul_abt(const float* a, const float* b, float* c, int m, int n,
                int k) {
  kernels::sgemm_abt(a, b, c, static_cast<std::size_t>(m),
                     static_cast<std::size_t>(n), static_cast<std::size_t>(k));
}

void matmul_ab(const float* a, const float* b, float* c, int m, int k,
               int n) {
  kernels::sgemm_ab(a, b, c, static_cast<std::size_t>(m),
                    static_cast<std::size_t>(k), static_cast<std::size_t>(n));
}

void matmul_atb_acc(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  kernels::sgemm_atb_acc(a, b, c, static_cast<std::size_t>(m),
                         static_cast<std::size_t>(k),
                         static_cast<std::size_t>(n));
}

}  // namespace yoso
