#include "nn/network.h"

#include <stdexcept>

#include "arch/genotype.h"
#include "arch/network.h"
#include "nn/cell.h"
#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {

namespace {

std::uint64_t mix2(std::uint64_t seed, std::uint64_t a) {
  std::uint64_t x = seed ^ ((a + 1) * 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 31;
  return x;
}

}  // namespace

PathNetwork::PathNetwork(const NetworkSkeleton& skeleton, std::uint64_t seed)
    : skeleton_(skeleton), seed_(seed) {
  if (skeleton_.cells.empty())
    throw std::invalid_argument("PathNetwork: empty skeleton");
  Rng stem_rng(mix2(seed_, 0));
  stem_ = std::make_unique<Conv2d>(skeleton_.input_channels,
                                   skeleton_.stem_channels, 3, 1, stem_rng);
  int filters = skeleton_.stem_channels;
  for (std::size_t i = 0; i < skeleton_.cells.size(); ++i) {
    const bool reduce = skeleton_.cells[i] == CellKind::kReduction;
    if (reduce) filters *= 2;
    cells_.push_back(
        std::make_unique<CellModule>(filters, reduce, mix2(seed_, i + 1)));
  }
}

Linear* PathNetwork::classifier(int in_features) {
  auto it = classifier_bank_.find(in_features);
  if (it != classifier_bank_.end()) return it->second.get();
  Rng rng(mix2(seed_ ^ 0xC0FFEEull, static_cast<std::uint64_t>(in_features)));
  auto lin =
      std::make_unique<Linear>(in_features, skeleton_.num_classes, rng);
  Linear* raw = lin.get();
  classifier_bank_.emplace(in_features, std::move(lin));
  return raw;
}

Tensor PathNetwork::forward(const Genotype& path, const Tensor& images) {
  ForwardRecord rec;
  rec.path = path;
  rec.outputs.reserve(cells_.size() + 1);
  rec.outputs.push_back(stem_->forward(images));

  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Tensor& s0 = rec.outputs[i >= 1 ? i - 1 : 0];
    const Tensor& s1 = rec.outputs[i];
    const CellGenotype& cell_path =
        cells_[i]->is_reduction() ? path.reduction : path.normal;
    rec.outputs.push_back(cells_[i]->forward(cell_path, s0, s1));
  }

  const Tensor pooled = gap_.forward(rec.outputs.back());
  rec.classifier = classifier(pooled.dim(1));
  Tensor logits = rec.classifier->forward(pooled);
  records_.push_back(std::move(rec));
  return logits;
}

void PathNetwork::backward(const Tensor& grad_logits) {
  if (records_.empty())
    throw std::logic_error("PathNetwork::backward: no pending forward");
  ForwardRecord rec = std::move(records_.back());
  records_.pop_back();

  Tensor grad_pooled = rec.classifier->backward(grad_logits);
  Tensor grad_last = gap_.backward(grad_pooled);

  std::vector<Tensor> out_grads(rec.outputs.size());
  for (std::size_t i = 0; i < rec.outputs.size(); ++i)
    out_grads[i] = Tensor::zeros_like(rec.outputs[i]);
  out_grads.back() = std::move(grad_last);

  for (std::size_t ii = cells_.size(); ii > 0; --ii) {
    const std::size_t i = ii - 1;
    auto [gs0, gs1] = cells_[i]->backward(out_grads[i + 1]);
    const std::size_t s0_idx = i >= 1 ? i - 1 : 0;
    Tensor& t0 = out_grads[s0_idx];
    for (std::size_t k = 0; k < t0.numel(); ++k) t0[k] += gs0[k];
    Tensor& t1 = out_grads[i];
    for (std::size_t k = 0; k < t1.numel(); ++k) t1[k] += gs1[k];
  }
  stem_->backward(out_grads[0]);  // gradient w.r.t. images discarded
}

void PathNetwork::collect_params(std::vector<Param*>& out) {
  stem_->collect_params(out);
  for (auto& c : cells_) c->collect_params(out);
  for (auto& [k, lin] : classifier_bank_) lin->collect_params(out);
}

double PathNetwork::evaluate(const Genotype& path, const Dataset& ds,
                             int batch_size, int max_batches) {
  if (ds.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
  std::size_t correct = 0, seen = 0;
  std::size_t pos = 0;
  int batches = 0;
  std::vector<std::size_t> idx;
  std::vector<int> labels;  // resized and overwritten by gather_batch
  while (pos < ds.size() &&
         (max_batches < 0 || batches < max_batches)) {
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(batch_size),
                              ds.size() - pos);
    idx.resize(take);
    for (std::size_t i = 0; i < take; ++i) idx[i] = pos + i;
    const Tensor batch = gather_batch(ds, idx, &labels);
    const Tensor logits = forward(path, batch);
    correct += static_cast<std::size_t>(count_correct(logits, labels));
    seen += take;
    pos += take;
    ++batches;
  }
  clear_cache();
  return seen == 0 ? 0.0 : static_cast<double>(correct) / seen;
}

void PathNetwork::clear_cache() {
  stem_->clear_cache();
  for (auto& c : cells_) c->clear_cache();
  gap_.clear_cache();
  for (auto& [k, lin] : classifier_bank_) lin->clear_cache();
  records_.clear();
}

std::size_t PathNetwork::param_count() {
  std::vector<Param*> params;
  collect_params(params);
  std::size_t total = 0;
  for (const Param* p : params) total += p->value.numel();
  return total;
}

}  // namespace yoso
