#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "nn/module.h"
#include "nn/tensor.h"

namespace yoso {

void SgdOptimizer::step(const std::vector<Param*>& params, double lr) {
  for (Param* p : params) {
    if (!p->dirty) continue;
    if (p->momentum.numel() != p->value.numel())
      p->momentum = Tensor::zeros_like(p->value);
    auto w = p->value.data();
    auto g = p->grad.data();
    auto m = p->momentum.data();
    const auto mu = static_cast<float>(momentum_);
    const auto wd = static_cast<float>(weight_decay_);
    const auto eta = static_cast<float>(lr);
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = mu * m[i] + g[i] + wd * w[i];
      w[i] -= eta * m[i];
      g[i] = 0.0f;
    }
    p->dirty = false;
  }
}

double cosine_lr(std::size_t step, std::size_t total_steps, double lr_max,
                 double lr_min) {
  if (total_steps <= 1) return lr_min;
  const double t =
      std::min(1.0, static_cast<double>(step) / (total_steps - 1));
  return lr_min +
         0.5 * (lr_max - lr_min) * (1.0 + std::cos(std::numbers::pi * t));
}

}  // namespace yoso
