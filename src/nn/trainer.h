#pragma once
// Training loops: standalone model training (fixed path) and HyperNet
// training with per-step path sampling (uniform by default, pluggable for
// the biased-sampling ablation).

#include <functional>
#include <vector>

#include "nn/dataset.h"
#include "nn/network.h"
#include "util/rng.h"

namespace yoso {

struct TrainOptions {
  int epochs = 4;
  int batch_size = 32;
  double lr_max = 0.05;
  double lr_min = 0.0001;
  double momentum = 0.9;
  double weight_decay = 4e-5;
  bool augment = true;
};

/// Per-epoch log row.
struct EpochLog {
  int epoch = 0;
  double train_loss = 0.0;
  double val_accuracy = 0.0;
};

/// Draws the path used for one HyperNet training step.
using PathSampler = std::function<Genotype(Rng&)>;

/// Uniform path sampling (Eq. 6) — the paper's HyperNet training strategy.
Genotype uniform_path_sampler(Rng& rng);

/// A deliberately biased sampler for the ablation: skews both input and op
/// choices toward low indices, so some edges train far more than others.
Genotype biased_path_sampler(Rng& rng);

/// Trains the fixed `path` sub-model ("fully training" a candidate).
/// Validation accuracy is measured on `val` after each epoch.
std::vector<EpochLog> train_standalone(PathNetwork& net, const Genotype& path,
                                       const Dataset& train,
                                       const Dataset& val,
                                       const TrainOptions& options, Rng& rng);

/// Trains the HyperNet: a fresh path is sampled for every batch and only
/// that path's parameters are updated.  The per-epoch validation accuracy
/// is that of a randomly sampled sub-model (as in Fig 5(a)).
std::vector<EpochLog> train_hypernet(PathNetwork& net, const Dataset& train,
                                     const Dataset& val,
                                     const TrainOptions& options, Rng& rng,
                                     PathSampler sampler = uniform_path_sampler);

}  // namespace yoso
