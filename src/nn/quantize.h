#pragma once
// Post-training quantisation of trained path networks.
//
// The accelerator template models a 16-bit fixed-point datapath (see
// accel/tech.h); deployment on it implies quantising the trained weights.
// This module provides simulated symmetric per-tensor quantisation
// (quantise -> dequantise in place), an RAII guard that restores the
// original float weights, and an evaluation helper for accuracy-vs-bits
// sweeps — the check a deployment engineer runs before committing to a
// datapath width.

#include <vector>

#include "arch/genotype.h"
#include "nn/dataset.h"
#include "nn/module.h"
#include "nn/network.h"

namespace yoso {

struct QuantizationStats {
  int bits = 0;
  std::size_t tensors = 0;          ///< parameter tensors quantised
  std::size_t values = 0;           ///< total weights quantised
  double max_abs_error = 0.0;       ///< worst |w - q(w)| over all weights
  double mean_abs_error = 0.0;
};

/// Symmetric per-tensor quantisation applied in place (simulated:
/// values become the dequantised grid points).  bits must be in [2, 16].
/// Returns per-run statistics.
QuantizationStats quantize_parameters(std::vector<Param*>& params, int bits);

/// RAII: snapshots all current parameter values of a network and restores
/// them on destruction (or explicit restore()).
class WeightSnapshot {
 public:
  explicit WeightSnapshot(PathNetwork& network);
  ~WeightSnapshot();

  WeightSnapshot(const WeightSnapshot&) = delete;
  WeightSnapshot& operator=(const WeightSnapshot&) = delete;

  void restore();

 private:
  PathNetwork& network_;
  std::vector<std::vector<float>> saved_;
  bool restored_ = false;
};

/// Accuracy of `path` on `ds` after quantising the network to `bits`
/// (weights restored afterwards).
double evaluate_quantized(PathNetwork& network, const Genotype& path,
                          const Dataset& ds, int bits, int batch_size);

}  // namespace yoso
