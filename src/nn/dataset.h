#pragma once
// SynthCIFAR: a procedurally generated stand-in for CIFAR-10.
//
// The environment has no dataset files and no GPU, so the paper's CIFAR-10
// experiments run on a synthetic 10-class image distribution that exercises
// the identical code path (augment -> forward -> loss -> backward -> SGD).
// Each class is a smooth random texture (sum of low-frequency sinusoids per
// channel) plus a class-specific blob; samples perturb the prototype with
// random shift, contrast jitter and pixel noise, so convolutional features
// genuinely help and architectures separate by accuracy.

#include <cstdint>
#include <span>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {

/// A labelled image set; images are (N, 3, H, W) in [-1, 1].
struct Dataset {
  Tensor images;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
};

/// Deterministic synthetic image-classification task.
class SynthCifar {
 public:
  SynthCifar(int height_width = 12, int num_classes = 10,
             std::uint64_t seed = 7);

  int height_width() const { return hw_; }
  int num_classes() const { return num_classes_; }

  /// Generates a balanced dataset with `samples_per_class` examples per
  /// class.  Different `seed`s give disjoint draws (train vs test).
  Dataset generate(int samples_per_class, std::uint64_t seed) const;

 private:
  int hw_;
  int num_classes_;
  Tensor prototypes_;  // (classes, 3, H, W)
};

/// Gathers rows `idx` of a dataset into a batch tensor + label vector.
Tensor gather_batch(const Dataset& ds, std::span<const std::size_t> idx,
                    std::vector<int>* labels);

/// Standard random-crop augmentation: zero-pad by `pad` then crop back at a
/// random offset; plus random horizontal flip.
void augment_batch(Tensor& images, Rng& rng, int pad = 2);

}  // namespace yoso
