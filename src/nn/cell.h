#pragma once
// The searchable cell as a runnable module.
//
// A CellModule owns a *bank* of edge operations keyed by
// (node, input, op): every candidate operation of every edge of the cell
// DAG has its own weights, created lazily with a deterministic per-edge
// seed.  A forward pass takes a concrete CellGenotype ("path") and runs
// only the selected edges — this single implementation serves both
//   * the HyperNet (shared bank, different sampled path each step), and
//   * standalone networks (same path every call; only those edge modules
//     ever get created).
//
// Node semantics follow Eq. 5: I_i = op_a(I_j) + op_b(I_k); the cell output
// concatenates the loose-end nodes.  In a reduction cell, edges reading the
// cell inputs (nodes 0/1) have stride 2.

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "arch/genotype.h"
#include "arch/ops.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace yoso {

/// Lazily created, deterministically seeded bank of edge operations.
class OpBank {
 public:
  /// `channels`: node width; `reduction`: stride-2 edges from inputs.
  OpBank(int channels, bool reduction, std::uint64_t seed)
      : channels_(channels), reduction_(reduction), seed_(seed) {}

  /// Returns (creating if needed) the module for edge (node <- input, op).
  Module* edge(int node, int input, Op op);

  void collect_params(std::vector<Param*>& out);
  void clear_cache();
  std::size_t size() const { return modules_.size(); }

 private:
  using Key = std::tuple<int, int, int>;
  int channels_;
  bool reduction_;
  std::uint64_t seed_;
  std::map<Key, std::unique_ptr<Module>> modules_;
};

/// One cell instance inside a network (fixed position => fixed widths).
class CellModule {
 public:
  /// `prev_prev_c` / `prev_c`: channel counts of the two incoming feature
  /// maps are path-dependent in a HyperNet, so preprocessing 1x1 convs are
  /// banked by input channel count and created on demand.
  CellModule(int channels, bool reduction, std::uint64_t seed)
      : channels_(channels), reduction_(reduction), seed_(seed),
        bank_(channels, reduction, seed ^ 0xA5A5A5A5ull) {}

  int channels() const { return channels_; }
  bool is_reduction() const { return reduction_; }

  /// Runs the path on inputs s0 (from cell i-2) and s1 (from cell i-1).
  /// s0 may have a larger spatial size than s1 (when cell i-1 reduced);
  /// the preprocessing conv aligns it.
  Tensor forward(const CellGenotype& path, const Tensor& s0, const Tensor& s1);

  /// Backward for the most recent un-consumed forward (LIFO); returns
  /// gradients w.r.t. (s0, s1).
  std::pair<Tensor, Tensor> backward(const Tensor& grad_out);

  /// Output channel count for a path: loose_ends * channels.
  int out_channels(const CellGenotype& path) const;

  void collect_params(std::vector<Param*>& out);
  void clear_cache();

 private:
  Module* preprocess(int slot, int in_c, int stride);

  struct ForwardRecord {
    CellGenotype path;
    std::vector<Tensor> nodes;          // node activations 0..B-1
    std::vector<int> loose;             // loose-end node indices
    Module* pre0 = nullptr;
    Module* pre1 = nullptr;
  };

  int channels_;
  bool reduction_;
  std::uint64_t seed_;
  OpBank bank_;
  // (slot, in_c, stride) -> preprocessing conv
  std::map<std::tuple<int, int, int>, std::unique_ptr<Module>> pre_bank_;
  std::vector<ForwardRecord> records_;
};

}  // namespace yoso
