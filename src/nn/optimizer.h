#pragma once
// SGD with momentum, L2 weight decay, and the paper's cosine learning-rate
// schedule (§IV.B: momentum 0.9, lr 0.05 -> 0.0001, weight decay 4e-5).
// Only parameters marked dirty (touched by the sampled path's backward) are
// updated — the HyperNet "only update[s] the parameters of the selected
// paths".

#include <cstddef>
#include <vector>

#include "nn/module.h"

namespace yoso {

class SgdOptimizer {
 public:
  SgdOptimizer(double momentum = 0.9, double weight_decay = 4e-5)
      : momentum_(momentum), weight_decay_(weight_decay) {}

  /// Applies one update at learning rate `lr` to every dirty param; zeroes
  /// their grads and clears dirty flags.  Clean params are untouched.
  void step(const std::vector<Param*>& params, double lr);

 private:
  double momentum_;
  double weight_decay_;
};

/// Cosine decay from lr_max to lr_min over total_steps.
double cosine_lr(std::size_t step, std::size_t total_steps, double lr_max,
                 double lr_min);

}  // namespace yoso
