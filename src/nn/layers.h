#pragma once
// Concrete NN layers with explicit forward/backward: dense and depthwise
// convolutions (same padding), max/avg pooling, ReLU, linear classifier and
// global average pooling.  Shapes follow the accelerator model: for stride s
// and kernel k, padding is k/2 and out = ceil(in / s).

#include <memory>

#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {

/// Dense 2-D convolution, NCHW, same padding, no bias (bias is folded into
/// the classifier; cells use ReLU-Conv compositions).
class Conv2d : public Module {
 public:
  Conv2d(int in_c, int out_c, int kernel, int stride, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void clear_cache() override;

  Param& weight() { return weight_; }

 private:
  int in_c_, out_c_, kernel_, stride_, pad_;
  Param weight_;  // (out_c, in_c, k, k)
  std::vector<Tensor> cache_;
};

/// Depthwise 2-D convolution: one kxk filter per channel.
class DwConv2d : public Module {
 public:
  DwConv2d(int channels, int kernel, int stride, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void clear_cache() override;

  Param& weight() { return weight_; }

 private:
  int channels_, kernel_, stride_, pad_;
  Param weight_;  // (channels, 1, k, k)
  std::vector<Tensor> cache_;
};

/// Max or average pooling, same padding.
class Pool2d : public Module {
 public:
  Pool2d(int kernel, int stride, bool max_pool);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void clear_cache() override;

 private:
  struct Cache {
    std::vector<int> argmax;  // flat input index per output element (max)
    std::vector<int> in_shape;
    std::vector<int> counts;  // contributing window size (avg)
  };
  int kernel_, stride_, pad_;
  bool max_pool_;
  std::vector<Cache> cache_;
};

/// Elementwise ReLU.
class Relu : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void clear_cache() override;

 private:
  std::vector<std::vector<char>> cache_;  // positive mask
};

/// Global average pooling: (N,C,H,W) -> (N,C).
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void clear_cache() override;

 private:
  std::vector<std::vector<int>> cache_;  // input shapes
};

/// Fully connected layer with bias: (N,C) -> (N,M).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void clear_cache() override;

 private:
  int in_features_, out_features_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  std::vector<Tensor> cache_;
};

/// Softmax cross-entropy over (N, K) logits.  Returns mean loss and writes
/// d(loss)/d(logits) into `grad` (same shape as logits).
double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int>& labels, Tensor* grad);

/// Number of correct argmax predictions.
int count_correct(const Tensor& logits, const std::vector<int>& labels);

}  // namespace yoso
