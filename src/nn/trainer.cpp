#include "nn/trainer.h"

#include <stdexcept>

#include "arch/genotype.h"
#include "arch/ops.h"
#include "nn/dataset.h"
#include "nn/module.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace yoso {

Genotype uniform_path_sampler(Rng& rng) {
  return random_genotype(rng);
}

Genotype biased_path_sampler(Rng& rng) {
  auto biased_cell = [&rng]() {
    CellGenotype cell;
    for (int n = 0; n < kInteriorNodes; ++n) {
      const int node_index = n + 2;
      NodeSpec spec;
      // Geometric-ish preference for index 0 inputs and the first ops.
      auto biased_pick = [&rng](int cardinality) {
        int v = 0;
        while (v + 1 < cardinality && rng.bernoulli(0.6)) ++v;
        return v;
      };
      spec.input_a = biased_pick(node_index);
      spec.input_b = biased_pick(node_index);
      spec.op_a = static_cast<Op>(biased_pick(kNumOps));
      spec.op_b = static_cast<Op>(biased_pick(kNumOps));
      cell.nodes.push_back(spec);
    }
    return cell;
  };
  Genotype g;
  g.normal = biased_cell();
  g.reduction = biased_cell();
  return g;
}

namespace {

/// One optimisation step on a gathered batch; returns the batch loss.
double train_batch(PathNetwork& net, const Genotype& path,
                   const Dataset& train, std::span<const std::size_t> idx,
                   bool augment, SgdOptimizer& opt, double lr, Rng& rng) {
  std::vector<int> labels;
  Tensor batch = gather_batch(train, idx, &labels);
  if (augment) augment_batch(batch, rng);
  const Tensor logits = net.forward(path, batch);
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, labels, &grad);
  net.backward(grad);
  std::vector<Param*> params;
  net.collect_params(params);
  opt.step(params, lr);
  return loss;
}

std::vector<EpochLog> run_training(PathNetwork& net, const Dataset& train,
                                   const Dataset& val,
                                   const TrainOptions& options, Rng& rng,
                                   const PathSampler& sampler,
                                   const Genotype* fixed_path) {
  if (train.size() == 0 || val.size() == 0)
    throw std::invalid_argument("training: empty dataset");
  if (options.epochs <= 0 || options.batch_size <= 0)
    throw std::invalid_argument("training: bad options");
  YOSO_TRACE_SPAN("nn.train");

  SgdOptimizer opt(options.momentum, options.weight_decay);
  const std::size_t batches_per_epoch =
      (train.size() + options.batch_size - 1) / options.batch_size;
  const std::size_t total_steps =
      batches_per_epoch * static_cast<std::size_t>(options.epochs);

  std::vector<EpochLog> logs;
  logs.reserve(static_cast<std::size_t>(options.epochs));
  std::size_t step = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    YOSO_TRACE_SPAN("nn.epoch");
    const auto perm = rng.permutation(train.size());
    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    for (std::size_t b = 0; b < batches_per_epoch; ++b) {
      const std::size_t begin = b * options.batch_size;
      const std::size_t end =
          std::min(train.size(), begin + options.batch_size);
      const std::span<const std::size_t> idx(perm.data() + begin,
                                             end - begin);
      const Genotype path = fixed_path != nullptr ? *fixed_path : sampler(rng);
      const double lr =
          cosine_lr(step, total_steps, options.lr_max, options.lr_min);
      loss_sum += train_batch(net, path, train, idx, options.augment, opt, lr,
                              rng);
      ++loss_count;
      ++step;
    }
    obs::counter_add("nn.steps", batches_per_epoch);
    EpochLog log;
    log.epoch = epoch;
    log.train_loss = loss_sum / static_cast<double>(loss_count);
    const Genotype eval_path =
        fixed_path != nullptr ? *fixed_path : sampler(rng);
    log.val_accuracy = net.evaluate(eval_path, val, options.batch_size);
    logs.push_back(log);
  }
  return logs;
}

}  // namespace

std::vector<EpochLog> train_standalone(PathNetwork& net, const Genotype& path,
                                       const Dataset& train,
                                       const Dataset& val,
                                       const TrainOptions& options, Rng& rng) {
  return run_training(net, train, val, options, rng, nullptr, &path);
}

std::vector<EpochLog> train_hypernet(PathNetwork& net, const Dataset& train,
                                     const Dataset& val,
                                     const TrainOptions& options, Rng& rng,
                                     PathSampler sampler) {
  return run_training(net, train, val, options, rng, sampler, nullptr);
}

}  // namespace yoso
