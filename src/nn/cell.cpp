#include "nn/cell.h"

#include <stdexcept>

#include "arch/genotype.h"
#include "arch/ops.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  std::uint64_t x = seed;
  x ^= (a + 1) * 0x9E3779B97F4A7C15ull;
  x ^= (b + 1) * 0xC2B2AE3D27D4EB4Full;
  x ^= (c + 1) * 0x165667B19E3779F9ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return x;
}

Tensor add(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape())
    throw std::logic_error("cell add: branch shape mismatch " +
                           a.shape_string() + " vs " + b.shape_string());
  Tensor out = a;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] += b[i];
  return out;
}

}  // namespace

Module* OpBank::edge(int node, int input, Op op) {
  const Key key{node, input, static_cast<int>(op)};
  auto it = modules_.find(key);
  if (it != modules_.end()) return it->second.get();

  const int stride = (reduction_ && input < 2) ? 2 : 1;
  Rng rng(mix(seed_, static_cast<std::uint64_t>(node),
              static_cast<std::uint64_t>(input),
              static_cast<std::uint64_t>(op)));
  std::unique_ptr<Module> m;
  if (op_is_conv(op)) {
    auto seq = std::make_unique<Sequential>();
    seq->add(std::make_unique<Relu>());
    seq->add(std::make_unique<Conv2d>(channels_, channels_,
                                      op_kernel_size(op), stride, rng));
    m = std::move(seq);
  } else if (op_is_depthwise(op)) {
    auto seq = std::make_unique<Sequential>();
    seq->add(std::make_unique<Relu>());
    seq->add(std::make_unique<DwConv2d>(channels_, op_kernel_size(op), stride,
                                        rng));
    m = std::move(seq);
  } else {
    m = std::make_unique<Pool2d>(op_kernel_size(op), stride,
                                 op == Op::kMaxPool3x3);
  }
  Module* raw = m.get();
  modules_.emplace(key, std::move(m));
  return raw;
}

void OpBank::collect_params(std::vector<Param*>& out) {
  for (auto& [key, m] : modules_) m->collect_params(out);
}

void OpBank::clear_cache() {
  for (auto& [key, m] : modules_) m->clear_cache();
}

Module* CellModule::preprocess(int slot, int in_c, int stride) {
  const auto key = std::make_tuple(slot, in_c, stride);
  auto it = pre_bank_.find(key);
  if (it != pre_bank_.end()) return it->second.get();
  Rng rng(mix(seed_ ^ 0x5DEECE66Dull, static_cast<std::uint64_t>(slot),
              static_cast<std::uint64_t>(in_c),
              static_cast<std::uint64_t>(stride)));
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Relu>());
  seq->add(std::make_unique<Conv2d>(in_c, channels_, 1, stride, rng));
  Module* raw = seq.get();
  pre_bank_.emplace(key, std::move(seq));
  return raw;
}

int CellModule::out_channels(const CellGenotype& path) const {
  return static_cast<int>(loose_end_nodes(path).size()) * channels_;
}

Tensor CellModule::forward(const CellGenotype& path, const Tensor& s0,
                           const Tensor& s1) {
  std::string error;
  if (!validate_cell(path, &error))
    throw std::invalid_argument("CellModule::forward: " + error);

  ForwardRecord rec;
  rec.path = path;
  rec.nodes.resize(kNodesPerCell);

  const int stride0 = s0.dim(2) > s1.dim(2) ? 2 : 1;
  rec.pre0 = preprocess(0, s0.dim(1), stride0);
  rec.pre1 = preprocess(1, s1.dim(1), 1);
  rec.nodes[0] = rec.pre0->forward(s0);
  rec.nodes[1] = rec.pre1->forward(s1);

  for (int n = 0; n < kInteriorNodes; ++n) {
    const NodeSpec& spec = path.nodes[static_cast<std::size_t>(n)];
    const int node = n + 2;
    Module* ma = bank_.edge(node, spec.input_a, spec.op_a);
    Module* mb = bank_.edge(node, spec.input_b, spec.op_b);
    const Tensor a =
        ma->forward(rec.nodes[static_cast<std::size_t>(spec.input_a)]);
    const Tensor b =
        mb->forward(rec.nodes[static_cast<std::size_t>(spec.input_b)]);
    rec.nodes[static_cast<std::size_t>(node)] = add(a, b);
  }

  rec.loose = loose_end_nodes(path);

  // Concatenate loose-end nodes along channels.
  const Tensor& first = rec.nodes[static_cast<std::size_t>(rec.loose[0])];
  const int n = first.dim(0), h = first.dim(2), w = first.dim(3);
  Tensor out({n, static_cast<int>(rec.loose.size()) * channels_, h, w});
  int c_off = 0;
  for (int node : rec.loose) {
    const Tensor& t = rec.nodes[static_cast<std::size_t>(node)];
    for (int b = 0; b < n; ++b)
      for (int c = 0; c < channels_; ++c)
        for (int y = 0; y < h; ++y)
          for (int x = 0; x < w; ++x)
            out.at(b, c_off + c, y, x) = t.at(b, c, y, x);
    c_off += channels_;
  }

  records_.push_back(std::move(rec));
  return out;
}

std::pair<Tensor, Tensor> CellModule::backward(const Tensor& grad_out) {
  if (records_.empty())
    throw std::logic_error("CellModule::backward: no pending forward");
  ForwardRecord rec = std::move(records_.back());
  records_.pop_back();

  // Zero-initialised per-node gradients.
  std::vector<Tensor> node_grads(kNodesPerCell);
  for (int i = 0; i < kNodesPerCell; ++i)
    node_grads[static_cast<std::size_t>(i)] =
        Tensor::zeros_like(rec.nodes[static_cast<std::size_t>(i)]);

  // Split the concat gradient back onto the loose-end nodes.
  {
    const int n = grad_out.dim(0), h = grad_out.dim(2), w = grad_out.dim(3);
    int c_off = 0;
    for (int node : rec.loose) {
      Tensor& g = node_grads[static_cast<std::size_t>(node)];
      for (int b = 0; b < n; ++b)
        for (int c = 0; c < channels_; ++c)
          for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
              g.at(b, c, y, x) += grad_out.at(b, c_off + c, y, x);
      c_off += channels_;
    }
  }

  // Walk interior nodes in reverse; within a node, branch b backward first
  // (LIFO relative to forward order a-then-b).
  for (int n = kInteriorNodes - 1; n >= 0; --n) {
    const NodeSpec& spec = rec.path.nodes[static_cast<std::size_t>(n)];
    const int node = n + 2;
    const Tensor& g = node_grads[static_cast<std::size_t>(node)];
    Module* mb = bank_.edge(node, spec.input_b, spec.op_b);
    Module* ma = bank_.edge(node, spec.input_a, spec.op_a);
    const Tensor gb = mb->backward(g);
    const Tensor ga = ma->backward(g);
    Tensor& tb = node_grads[static_cast<std::size_t>(spec.input_b)];
    for (std::size_t i = 0; i < tb.numel(); ++i) tb[i] += gb[i];
    Tensor& ta = node_grads[static_cast<std::size_t>(spec.input_a)];
    for (std::size_t i = 0; i < ta.numel(); ++i) ta[i] += ga[i];
  }

  // Preprocessing convs: pre1 was called after pre0, so backward pre1 first.
  Tensor gs1 = rec.pre1->backward(node_grads[1]);
  Tensor gs0 = rec.pre0->backward(node_grads[0]);
  return {std::move(gs0), std::move(gs1)};
}

void CellModule::collect_params(std::vector<Param*>& out) {
  for (auto& [key, m] : pre_bank_) m->collect_params(out);
  bank_.collect_params(out);
}

void CellModule::clear_cache() {
  for (auto& [key, m] : pre_bank_) m->clear_cache();
  bank_.clear_cache();
  records_.clear();
}

}  // namespace yoso
