#include "nn/dataset.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {

SynthCifar::SynthCifar(int height_width, int num_classes, std::uint64_t seed)
    : hw_(height_width), num_classes_(num_classes) {
  if (hw_ < 4) throw std::invalid_argument("SynthCifar: image too small");
  if (num_classes_ < 2)
    throw std::invalid_argument("SynthCifar: need >= 2 classes");
  Rng rng(seed);
  prototypes_ = Tensor({num_classes_, 3, hw_, hw_});
  for (int cls = 0; cls < num_classes_; ++cls) {
    // Blob centre distinguishes classes even with similar textures.
    const double bx = rng.uniform(0.2, 0.8) * hw_;
    const double by = rng.uniform(0.2, 0.8) * hw_;
    const double br = rng.uniform(0.15, 0.3) * hw_;
    for (int ch = 0; ch < 3; ++ch) {
      // Sum of three low-frequency sinusoids.
      struct Wave {
        double fx, fy, phase, amp;
      };
      Wave waves[3];
      for (auto& wv : waves) {
        wv.fx = rng.uniform(0.5, 2.5);
        wv.fy = rng.uniform(0.5, 2.5);
        wv.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
        wv.amp = rng.uniform(0.2, 0.5);
      }
      const double blob_amp = rng.uniform(0.5, 1.0) * (rng.bernoulli(0.5) ? 1 : -1);
      for (int y = 0; y < hw_; ++y) {
        for (int x = 0; x < hw_; ++x) {
          double v = 0.0;
          for (const auto& wv : waves)
            v += wv.amp * std::sin(2.0 * std::numbers::pi *
                                       (wv.fx * x + wv.fy * y) / hw_ +
                                   wv.phase);
          const double d2 = (x - bx) * (x - bx) + (y - by) * (y - by);
          v += blob_amp * std::exp(-d2 / (2.0 * br * br));
          prototypes_.at(cls, ch, y, x) =
              static_cast<float>(std::clamp(v, -1.0, 1.0));
        }
      }
    }
  }
}

Dataset SynthCifar::generate(int samples_per_class, std::uint64_t seed) const {
  if (samples_per_class <= 0)
    throw std::invalid_argument("SynthCifar::generate: non-positive count");
  Rng rng(seed ^ 0xD1B54A32D192ED03ull);
  const int n = samples_per_class * num_classes_;
  Dataset ds;
  ds.images = Tensor({n, 3, hw_, hw_});
  ds.labels.resize(static_cast<std::size_t>(n));

  // Interleave classes, then shuffle sample order.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i % num_classes_;
  const auto perm = rng.permutation(static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    const int cls = order[perm[static_cast<std::size_t>(i)]];
    ds.labels[static_cast<std::size_t>(i)] = cls;
    const int dx = rng.uniform_int(-2, 2);
    const int dy = rng.uniform_int(-2, 2);
    const double contrast = rng.uniform(0.75, 1.25);
    const double brightness = rng.uniform(-0.15, 0.15);
    for (int ch = 0; ch < 3; ++ch) {
      for (int y = 0; y < hw_; ++y) {
        for (int x = 0; x < hw_; ++x) {
          // Circular shift keeps statistics stationary.
          const int sy = ((y + dy) % hw_ + hw_) % hw_;
          const int sx = ((x + dx) % hw_ + hw_) % hw_;
          double v = prototypes_.at(cls, ch, sy, sx) * contrast + brightness;
          v += rng.normal(0.0, 0.25);
          ds.images.at(i, ch, y, x) =
              static_cast<float>(std::clamp(v, -1.0, 1.0));
        }
      }
    }
  }
  return ds;
}

Tensor gather_batch(const Dataset& ds, std::span<const std::size_t> idx,
                    std::vector<int>* labels) {
  if (idx.empty()) throw std::invalid_argument("gather_batch: empty indices");
  const int c = ds.images.dim(1), h = ds.images.dim(2), w = ds.images.dim(3);
  Tensor batch({static_cast<int>(idx.size()), c, h, w});
  if (labels != nullptr) labels->resize(idx.size());
  for (std::size_t b = 0; b < idx.size(); ++b) {
    const auto src = idx[b];
    if (src >= ds.size()) throw std::out_of_range("gather_batch: bad index");
    for (int ch = 0; ch < c; ++ch)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
          batch.at(static_cast<int>(b), ch, y, x) =
              ds.images.at(static_cast<int>(src), ch, y, x);
    if (labels != nullptr) (*labels)[b] = ds.labels[src];
  }
  return batch;
}

void augment_batch(Tensor& images, Rng& rng, int pad) {
  const int n = images.dim(0), c = images.dim(1), h = images.dim(2),
            w = images.dim(3);
  for (int b = 0; b < n; ++b) {
    const int dy = rng.uniform_int(-pad, pad);
    const int dx = rng.uniform_int(-pad, pad);
    const bool flip = rng.bernoulli(0.5);
    if (dy == 0 && dx == 0 && !flip) continue;
    Tensor shifted({1, c, h, w});
    for (int ch = 0; ch < c; ++ch) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          const int sy = y + dy;
          const int sx0 = flip ? (w - 1 - x) : x;
          const int sx = sx0 + dx;
          const float v = (sy >= 0 && sy < h && sx >= 0 && sx < w)
                              ? images.at(b, ch, sy, sx)
                              : 0.0f;
          shifted.at(0, ch, y, x) = v;
        }
      }
    }
    for (int ch = 0; ch < c; ++ch)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
          images.at(b, ch, y, x) = shifted.at(0, ch, y, x);
  }
}

}  // namespace yoso
