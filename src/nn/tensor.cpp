#include "nn/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "base/contract.h"
#include "util/rng.h"

namespace yoso {

Tensor::Tensor(std::vector<int> shape, float fill) : shape_(std::move(shape)) {
  std::size_t n = 1;
  for (int d : shape_) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
    n *= static_cast<std::size_t>(d);
  }
  data_.assign(n, fill);
}

Tensor Tensor::zeros_like(const Tensor& other) {
  return Tensor(other.shape_, 0.0f);
}

std::size_t Tensor::index(int n, int c, int h, int w) const {
  return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
             shape_[3] +
         w;
}

float& Tensor::at(int n, int c, int h, int w) {
  YOSO_DCHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
                  h < shape_[2] && w >= 0 && w < shape_[3],
              "Tensor::at: index out of range");
  return data_[index(n, c, h, w)];
}

float Tensor::at(int n, int c, int h, int w) const {
  YOSO_DCHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
                  h < shape_[2] && w >= 0 && w < shape_[3],
              "Tensor::at: index out of range");
  return data_[index(n, c, h, w)];
}

float& Tensor::at2(int n, int c) {
  return data_[static_cast<std::size_t>(n) * shape_[1] + c];
}

float Tensor::at2(int n, int c) const {
  return data_[static_cast<std::size_t>(n) * shape_[1] + c];
}

void Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
}

void Tensor::he_init(Rng& rng, int fan_in) {
  const double std = std::sqrt(2.0 / std::max(fan_in, 1));
  for (float& v : data_) v = static_cast<float>(rng.normal(0.0, std));
}

double Tensor::sum_squares() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

std::string Tensor::shape_string() const {
  std::ostringstream ss;
  ss << "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) ss << ",";
    ss << shape_[i];
  }
  ss << ")";
  return ss.str();
}

}  // namespace yoso
