#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/im2col.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {

void Module::collect_params(std::vector<Param*>&) {}

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& m : children_) cur = m->forward(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& m : children_) m->collect_params(out);
}

void Sequential::clear_cache() {
  for (auto& m : children_) m->clear_cache();
}

namespace {

int out_size(int in, int stride) { return (in + stride - 1) / stride; }

}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int in_c, int out_c, int kernel, int stride, Rng& rng)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(kernel / 2) {
  weight_.value = Tensor({out_c, in_c, kernel, kernel});
  weight_.value.he_init(rng, in_c * kernel * kernel);
  weight_.ensure_grad();
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_c_)
    throw std::invalid_argument("Conv2d::forward: bad input shape " +
                                x.shape_string());
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h, stride_), ow = out_size(w, stride_);

  // Lowered path: out(pixel, co) = cols(pixel, :) . W(co, :).
  const ColMatrix cols = im2col(x, kernel_, stride_);
  std::vector<float> out_mat(static_cast<std::size_t>(cols.rows) * out_c_);
  matmul_abt(cols.data.data(), weight_.value.data().data(), out_mat.data(),
             cols.rows, out_c_, cols.cols);

  Tensor y({n, out_c_, oh, ow});
  for (int b = 0; b < n; ++b)
    for (int yy = 0; yy < oh; ++yy)
      for (int xx = 0; xx < ow; ++xx) {
        const float* row = out_mat.data() +
                           (static_cast<std::size_t>(b) * oh * ow + yy * ow +
                            xx) * out_c_;
        for (int co = 0; co < out_c_; ++co) y.at(b, co, yy, xx) = row[co];
      }
  cache_.push_back(x);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cache_.empty()) throw std::logic_error("Conv2d::backward: empty cache");
  Tensor x = std::move(cache_.back());
  cache_.pop_back();
  const int n = x.dim(0);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  weight_.ensure_grad();
  weight_.dirty = true;

  // Re-lower the cached input and flatten the upstream gradient to
  // (pixels x out_c) so both products are plain GEMMs.
  const ColMatrix cols = im2col(x, kernel_, stride_);
  std::vector<float> dout(static_cast<std::size_t>(cols.rows) * out_c_);
  for (int b = 0; b < n; ++b)
    for (int yy = 0; yy < oh; ++yy)
      for (int xx = 0; xx < ow; ++xx) {
        float* row = dout.data() +
                     (static_cast<std::size_t>(b) * oh * ow + yy * ow + xx) *
                         out_c_;
        for (int co = 0; co < out_c_; ++co) row[co] = grad_out.at(b, co, yy, xx);
      }

  // dW(co, :) += sum_pixels dout(pixel, co) * cols(pixel, :).
  matmul_atb_acc(dout.data(), cols.data.data(), weight_.grad.data().data(),
                 cols.rows, out_c_, cols.cols);

  // dcols = dout * W, then scatter back to the input gradient.
  ColMatrix dcols;
  dcols.rows = cols.rows;
  dcols.cols = cols.cols;
  dcols.data.resize(cols.data.size());
  matmul_ab(dout.data(), weight_.value.data().data(), dcols.data.data(),
            cols.rows, out_c_, cols.cols);
  return col2im(dcols, x.shape(), kernel_, stride_);
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
}

void Conv2d::clear_cache() { cache_.clear(); }

// -------------------------------------------------------------- DwConv2d

DwConv2d::DwConv2d(int channels, int kernel, int stride, Rng& rng)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(kernel / 2) {
  weight_.value = Tensor({channels, 1, kernel, kernel});
  weight_.value.he_init(rng, kernel * kernel);
  weight_.ensure_grad();
}

Tensor DwConv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != channels_)
    throw std::invalid_argument("DwConv2d::forward: bad input shape " +
                                x.shape_string());
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h, stride_), ow = out_size(w, stride_);
  Tensor y({n, channels_, oh, ow});
  for (int b = 0; b < n; ++b) {
    for (int c = 0; c < channels_; ++c) {
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx) {
          float acc = 0.0f;
          for (int kh = 0; kh < kernel_; ++kh) {
            const int ih = yy * stride_ + kh - pad_;
            if (ih < 0 || ih >= h) continue;
            for (int kw = 0; kw < kernel_; ++kw) {
              const int iw = xx * stride_ + kw - pad_;
              if (iw < 0 || iw >= w) continue;
              acc += x.at(b, c, ih, iw) * weight_.value.at(c, 0, kh, kw);
            }
          }
          y.at(b, c, yy, xx) = acc;
        }
      }
    }
  }
  cache_.push_back(x);
  return y;
}

Tensor DwConv2d::backward(const Tensor& grad_out) {
  if (cache_.empty()) throw std::logic_error("DwConv2d::backward: empty cache");
  Tensor x = std::move(cache_.back());
  cache_.pop_back();
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  Tensor gx = Tensor::zeros_like(x);
  weight_.ensure_grad();
  weight_.dirty = true;
  for (int b = 0; b < n; ++b) {
    for (int c = 0; c < channels_; ++c) {
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx) {
          const float g = grad_out.at(b, c, yy, xx);
          if (g == 0.0f) continue;
          for (int kh = 0; kh < kernel_; ++kh) {
            const int ih = yy * stride_ + kh - pad_;
            if (ih < 0 || ih >= h) continue;
            for (int kw = 0; kw < kernel_; ++kw) {
              const int iw = xx * stride_ + kw - pad_;
              if (iw < 0 || iw >= w) continue;
              weight_.grad.at(c, 0, kh, kw) += g * x.at(b, c, ih, iw);
              gx.at(b, c, ih, iw) += g * weight_.value.at(c, 0, kh, kw);
            }
          }
        }
      }
    }
  }
  return gx;
}

void DwConv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
}

void DwConv2d::clear_cache() { cache_.clear(); }

// ---------------------------------------------------------------- Pool2d

Pool2d::Pool2d(int kernel, int stride, bool max_pool)
    : kernel_(kernel), stride_(stride), pad_(kernel / 2), max_pool_(max_pool) {}

Tensor Pool2d::forward(const Tensor& x) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h, stride_), ow = out_size(w, stride_);
  Tensor y({n, c, oh, ow});
  Cache cache;
  cache.in_shape = x.shape();
  if (max_pool_) cache.argmax.resize(y.numel());
  else cache.counts.resize(y.numel());
  std::size_t oi = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx, ++oi) {
          float best = -1e30f;
          float sum = 0.0f;
          int best_idx = -1;
          int count = 0;
          for (int kh = 0; kh < kernel_; ++kh) {
            const int ih = yy * stride_ + kh - pad_;
            if (ih < 0 || ih >= h) continue;
            for (int kw = 0; kw < kernel_; ++kw) {
              const int iw = xx * stride_ + kw - pad_;
              if (iw < 0 || iw >= w) continue;
              const float v = x.at(b, ch, ih, iw);
              sum += v;
              ++count;
              if (v > best) {
                best = v;
                best_idx =
                    ((b * c + ch) * h + ih) * w + iw;
              }
            }
          }
          if (max_pool_) {
            y.at(b, ch, yy, xx) = count > 0 ? best : 0.0f;
            cache.argmax[oi] = best_idx;
          } else {
            y.at(b, ch, yy, xx) = count > 0 ? sum / count : 0.0f;
            cache.counts[oi] = count;
          }
        }
      }
    }
  }
  cache_.push_back(std::move(cache));
  return y;
}

Tensor Pool2d::backward(const Tensor& grad_out) {
  if (cache_.empty()) throw std::logic_error("Pool2d::backward: empty cache");
  Cache cache = std::move(cache_.back());
  cache_.pop_back();
  Tensor gx(cache.in_shape);
  const int n = grad_out.dim(0), c = grad_out.dim(1);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  const int h = cache.in_shape[2], w = cache.in_shape[3];
  std::size_t oi = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx, ++oi) {
          const float g = grad_out.at(b, ch, yy, xx);
          if (g == 0.0f) continue;
          if (max_pool_) {
            const int idx = cache.argmax[oi];
            if (idx >= 0) gx[static_cast<std::size_t>(idx)] += g;
          } else {
            const int count = cache.counts[oi];
            if (count <= 0) continue;
            const float share = g / count;
            for (int kh = 0; kh < kernel_; ++kh) {
              const int ih = yy * stride_ + kh - pad_;
              if (ih < 0 || ih >= h) continue;
              for (int kw = 0; kw < kernel_; ++kw) {
                const int iw = xx * stride_ + kw - pad_;
                if (iw < 0 || iw >= w) continue;
                gx.at(b, ch, ih, iw) += share;
              }
            }
          }
        }
      }
    }
  }
  return gx;
}

void Pool2d::clear_cache() { cache_.clear(); }

// ------------------------------------------------------------------ Relu

Tensor Relu::forward(const Tensor& x) {
  Tensor y = x;
  std::vector<char> mask(x.numel());
  for (std::size_t i = 0; i < y.numel(); ++i) {
    mask[i] = y[i] > 0.0f;
    if (!mask[i]) y[i] = 0.0f;
  }
  cache_.push_back(std::move(mask));
  return y;
}

Tensor Relu::backward(const Tensor& grad_out) {
  if (cache_.empty()) throw std::logic_error("Relu::backward: empty cache");
  std::vector<char> mask = std::move(cache_.back());
  cache_.pop_back();
  Tensor gx = grad_out;
  for (std::size_t i = 0; i < gx.numel(); ++i)
    if (!mask[i]) gx[i] = 0.0f;
  return gx;
}

void Relu::clear_cache() { cache_.clear(); }

// --------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor y({n, c});
  const float scale = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      float acc = 0.0f;
      for (int yy = 0; yy < h; ++yy)
        for (int xx = 0; xx < w; ++xx) acc += x.at(b, ch, yy, xx);
      y.at2(b, ch) = acc * scale;
    }
  }
  cache_.push_back(x.shape());
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cache_.empty())
    throw std::logic_error("GlobalAvgPool::backward: empty cache");
  std::vector<int> shape = std::move(cache_.back());
  cache_.pop_back();
  Tensor gx(shape);
  const int n = shape[0], c = shape[1], h = shape[2], w = shape[3];
  const float scale = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const float g = grad_out.at2(b, ch) * scale;
      for (int yy = 0; yy < h; ++yy)
        for (int xx = 0; xx < w; ++xx) gx.at(b, ch, yy, xx) = g;
    }
  return gx;
}

void GlobalAvgPool::clear_cache() { cache_.clear(); }

// ---------------------------------------------------------------- Linear

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_.value = Tensor({out_features, in_features});
  weight_.value.he_init(rng, in_features);
  weight_.ensure_grad();
  bias_.value = Tensor({out_features});
  bias_.ensure_grad();
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_features_)
    throw std::invalid_argument("Linear::forward: bad input shape " +
                                x.shape_string());
  const int n = x.dim(0);
  Tensor y({n, out_features_});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < out_features_; ++o) {
      float acc = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_features_; ++i)
        acc += x.at2(b, i) *
               weight_.value[static_cast<std::size_t>(o) * in_features_ + i];
      y.at2(b, o) = acc;
    }
  cache_.push_back(x);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (cache_.empty()) throw std::logic_error("Linear::backward: empty cache");
  Tensor x = std::move(cache_.back());
  cache_.pop_back();
  const int n = x.dim(0);
  Tensor gx = Tensor::zeros_like(x);
  weight_.ensure_grad();
  bias_.ensure_grad();
  weight_.dirty = true;
  bias_.dirty = true;
  for (int b = 0; b < n; ++b) {
    for (int o = 0; o < out_features_; ++o) {
      const float g = grad_out.at2(b, o);
      if (g == 0.0f) continue;
      bias_.grad[static_cast<std::size_t>(o)] += g;
      for (int i = 0; i < in_features_; ++i) {
        weight_.grad[static_cast<std::size_t>(o) * in_features_ + i] +=
            g * x.at2(b, i);
        gx.at2(b, i) +=
            g * weight_.value[static_cast<std::size_t>(o) * in_features_ + i];
      }
    }
  }
  return gx;
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

void Linear::clear_cache() { cache_.clear(); }

// ------------------------------------------------- softmax cross-entropy

double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int>& labels, Tensor* grad) {
  const int n = logits.dim(0), k = logits.dim(1);
  if (static_cast<std::size_t>(n) != labels.size())
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  if (grad != nullptr) *grad = Tensor({n, k});
  double loss = 0.0;
  for (int b = 0; b < n; ++b) {
    float maxv = logits.at2(b, 0);
    for (int c = 1; c < k; ++c) maxv = std::max(maxv, logits.at2(b, c));
    double denom = 0.0;
    for (int c = 0; c < k; ++c)
      denom += std::exp(static_cast<double>(logits.at2(b, c)) - maxv);
    const int label = labels[static_cast<std::size_t>(b)];
    if (label < 0 || label >= k)
      throw std::invalid_argument("softmax_cross_entropy: bad label");
    const double logp =
        static_cast<double>(logits.at2(b, label)) - maxv - std::log(denom);
    loss -= logp;
    if (grad != nullptr) {
      for (int c = 0; c < k; ++c) {
        const double p =
            std::exp(static_cast<double>(logits.at2(b, c)) - maxv) / denom;
        grad->at2(b, c) =
            static_cast<float>((p - (c == label ? 1.0 : 0.0)) / n);
      }
    }
  }
  return loss / n;
}

int count_correct(const Tensor& logits, const std::vector<int>& labels) {
  const int n = logits.dim(0), k = logits.dim(1);
  int correct = 0;
  for (int b = 0; b < n; ++b) {
    int best = 0;
    for (int c = 1; c < k; ++c)
      if (logits.at2(b, c) > logits.at2(b, best)) best = c;
    if (best == labels[static_cast<std::size_t>(b)]) ++correct;
  }
  return correct;
}

}  // namespace yoso
