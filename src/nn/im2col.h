#pragma once
// im2col/col2im lowering for dense convolutions.
//
// The naive 7-deep conv loops dominate HyperNet training time; lowering to
// a (N*OH*OW) x (Cin*K*K) patch matrix turns forward/backward into cache-
// friendly matrix products, ~3-6x faster at the sizes the benches use.
// Conv2d uses these internally; the functions are exposed for testing.

#include <vector>

#include "nn/tensor.h"

namespace yoso {

/// Lowered patch matrix: row r = (n, oh, ow) in row-major order, column
/// c = (ci, kh, kw).  Out-of-image taps (same padding) contribute zeros.
struct ColMatrix {
  std::vector<float> data;  // rows x cols, row-major
  int rows = 0;
  int cols = 0;
};

/// Lowers input x (N, C, H, W) for a k x k convolution with `stride` and
/// same padding (pad = k / 2).
ColMatrix im2col(const Tensor& x, int kernel, int stride);

/// Adjoint of im2col: scatters a patch-matrix gradient back into an input
/// gradient tensor of shape `input_shape`.
Tensor col2im(const ColMatrix& cols, const std::vector<int>& input_shape,
              int kernel, int stride);

/// C = A * B^T where A is (m x k) row-major and B is (n x k) row-major.
/// Used for out = cols * W^T and dcols = dout * W.
void matmul_abt(const float* a, const float* b, float* c, int m, int n,
                int k);

/// C += A^T * B where A is (m x k), B is (m x n): accumulates (k x n).
void matmul_atb_acc(const float* a, const float* b, float* c, int m, int k,
                    int n);

/// C = A * B where A is (m x k) and B is (k x n), both row-major.
void matmul_ab(const float* a, const float* b, float* c, int m, int k,
               int n);

}  // namespace yoso
