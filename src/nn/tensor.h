#pragma once
// Minimal NCHW float tensor used by the from-scratch NN library.  The
// library exists so the HyperNet mechanics of the paper (uniform path
// sampling, shared-weight training, single-pass candidate evaluation by
// weight inheritance) run for real at CPU scale.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace yoso {

/// Dense float tensor, row-major, at most 4 dimensions (N, C, H, W).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& other);

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t i) const { return shape_.at(i); }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// NCHW element access (rank must be 4).
  float& at(int n, int c, int h, int w);
  float at(int n, int c, int h, int w) const;

  /// 2-D access for (N, C) tensors.
  float& at2(int n, int c);
  float at2(int n, int c) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  /// He-normal initialisation with the given fan-in.
  void he_init(Rng& rng, int fan_in);

  /// Sum of squares (for weight-decay accounting and tests).
  double sum_squares() const;

  std::string shape_string() const;

 private:
  std::size_t index(int n, int c, int h, int w) const;

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace yoso
