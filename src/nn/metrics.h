#pragma once
// Classification metrics beyond top-1 accuracy: confusion matrix, per-class
// recall, and top-k accuracy.  Used by the examples to inspect *what* a
// searched network gets wrong, not just how often.

#include <vector>

#include "arch/genotype.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/tensor.h"

namespace yoso {

/// Row-major confusion matrix: entry (true_class, predicted_class).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Adds one batch of argmax predictions.
  void add_batch(const Tensor& logits, const std::vector<int>& labels);

  int num_classes() const { return num_classes_; }
  long long at(int true_class, int predicted) const;
  long long total() const { return total_; }

  /// Overall top-1 accuracy.
  double accuracy() const;

  /// Recall of one class (diagonal / row sum); 0 when the class is absent.
  double recall(int true_class) const;

  /// Precision of one class (diagonal / column sum); 0 when never predicted.
  double precision(int predicted) const;

  /// The most confused (true, predicted) off-diagonal pair.
  std::pair<int, int> worst_confusion() const;

 private:
  int num_classes_;
  long long total_ = 0;
  std::vector<long long> counts_;  // num_classes^2
};

/// Fraction of samples whose true label is among the k highest logits.
double top_k_accuracy(const Tensor& logits, const std::vector<int>& labels,
                      int k);

/// Runs a path over a dataset and fills a confusion matrix.
ConfusionMatrix evaluate_confusion(PathNetwork& network, const Genotype& path,
                                   const Dataset& ds, int batch_size);

}  // namespace yoso
