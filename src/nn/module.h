#pragma once
// Autograd-lite module interface.  Each module implements an explicit
// forward and backward; forward pushes whatever it needs onto an internal
// cache stack and backward pops it, so one module instance can appear more
// than once in a computation graph (the HyperNet shares edge modules across
// sampled paths, and a sampled cell may use the same edge twice).

#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace yoso {

/// A trainable parameter: value, accumulated gradient, optimiser slot.
struct Param {
  Tensor value;
  Tensor grad;
  Tensor momentum;     ///< SGD momentum buffer (lazily sized)
  bool dirty = false;  ///< true when grad holds contributions this step

  void ensure_grad() {
    if (grad.numel() != value.numel()) grad = Tensor::zeros_like(value);
  }
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes outputs; must push backward state onto the cache stack.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Propagates gradients; must pop the cache stack (LIFO relative to
  /// forward calls) and accumulate into parameter grads.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends this module's parameters (default: none).
  virtual void collect_params(std::vector<Param*>& out);

  /// Clears any cached forward state (e.g. before evaluation-only passes
  /// where backward will not be called).
  virtual void clear_cache() = 0;
};

/// Runs a list of modules in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Module> m) { children_.push_back(std::move(m)); }
  std::size_t size() const { return children_.size(); }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void clear_cache() override;

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace yoso
