#include "nn/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "arch/genotype.h"
#include "base/contract.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/tensor.h"

namespace yoso {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  if (num_classes < 2)
    throw std::invalid_argument("ConfusionMatrix: need >= 2 classes");
}

void ConfusionMatrix::add_batch(const Tensor& logits,
                                const std::vector<int>& labels) {
  const int n = logits.dim(0), k = logits.dim(1);
  if (k != num_classes_)
    throw std::invalid_argument("ConfusionMatrix: class count mismatch");
  if (static_cast<std::size_t>(n) != labels.size())
    throw std::invalid_argument("ConfusionMatrix: label count mismatch");
  for (int b = 0; b < n; ++b) {
    int best = 0;
    for (int c = 1; c < k; ++c)
      if (logits.at2(b, c) > logits.at2(b, best)) best = c;
    const int truth = labels[static_cast<std::size_t>(b)];
    if (truth < 0 || truth >= num_classes_)
      throw std::invalid_argument("ConfusionMatrix: bad label");
    ++counts_[static_cast<std::size_t>(truth) * num_classes_ + best];
    ++total_;
  }
}

long long ConfusionMatrix::at(int true_class, int predicted) const {
  YOSO_CHECK(true_class >= 0 && true_class < num_classes_ && predicted >= 0 &&
                 predicted < num_classes_,
             "ConfusionMatrix::at: (", true_class, ", ", predicted,
             ") outside ", num_classes_, "x", num_classes_, " matrix");
  return counts_[static_cast<std::size_t>(true_class) * num_classes_ +
                 predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  long long correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int true_class) const {
  long long row = 0;
  for (int c = 0; c < num_classes_; ++c) row += at(true_class, c);
  return row == 0 ? 0.0
                  : static_cast<double>(at(true_class, true_class)) /
                        static_cast<double>(row);
}

double ConfusionMatrix::precision(int predicted) const {
  long long col = 0;
  for (int c = 0; c < num_classes_; ++c) col += at(c, predicted);
  return col == 0 ? 0.0
                  : static_cast<double>(at(predicted, predicted)) /
                        static_cast<double>(col);
}

std::pair<int, int> ConfusionMatrix::worst_confusion() const {
  std::pair<int, int> worst{0, 1};
  long long best_count = -1;
  for (int t = 0; t < num_classes_; ++t)
    for (int p = 0; p < num_classes_; ++p) {
      if (t == p) continue;
      if (at(t, p) > best_count) {
        best_count = at(t, p);
        worst = {t, p};
      }
    }
  return worst;
}

double top_k_accuracy(const Tensor& logits, const std::vector<int>& labels,
                      int k) {
  const int n = logits.dim(0), classes = logits.dim(1);
  if (k < 1 || k > classes)
    throw std::invalid_argument("top_k_accuracy: bad k");
  if (static_cast<std::size_t>(n) != labels.size())
    throw std::invalid_argument("top_k_accuracy: label count mismatch");
  int hits = 0;
  for (int b = 0; b < n; ++b) {
    const float truth_logit = logits.at2(b, labels[static_cast<std::size_t>(b)]);
    int strictly_above = 0;
    for (int c = 0; c < classes; ++c)
      if (logits.at2(b, c) > truth_logit) ++strictly_above;
    if (strictly_above < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

ConfusionMatrix evaluate_confusion(PathNetwork& network, const Genotype& path,
                                   const Dataset& ds, int batch_size) {
  ConfusionMatrix cm(network.skeleton().num_classes);
  std::size_t pos = 0;
  while (pos < ds.size()) {
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(batch_size),
                              ds.size() - pos);
    std::vector<std::size_t> idx(take);
    for (std::size_t i = 0; i < take; ++i) idx[i] = pos + i;
    std::vector<int> labels;
    const Tensor batch = gather_batch(ds, idx, &labels);
    const Tensor logits = network.forward(path, batch);
    cm.add_batch(logits, labels);
    pos += take;
  }
  network.clear_cache();
  return cm;
}

}  // namespace yoso
