#pragma once
// Path-conditioned network: stem conv -> stacked CellModules -> global
// average pooling -> linear classifier.
//
// One class serves two roles (paper §III.D):
//  * HyperNet — weights live in per-cell op banks; each call runs the
//    sub-model selected by the Genotype path with inherited weights;
//  * standalone model — construct with the same skeleton and always pass
//    the same path; only that path's modules are ever created or trained.
//
// Because the cell output width depends on the path (loose ends x filters),
// the preprocessing convs and the classifier are banked by input width.

#include <map>
#include <memory>
#include <vector>

#include "arch/genotype.h"
#include "arch/network.h"
#include "nn/cell.h"
#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace yoso {

class PathNetwork {
 public:
  PathNetwork(const NetworkSkeleton& skeleton, std::uint64_t seed);

  const NetworkSkeleton& skeleton() const { return skeleton_; }

  /// Forward pass of the sub-model selected by `path`; returns logits (N,K).
  Tensor forward(const Genotype& path, const Tensor& images);

  /// Backward for the most recent forward.  `grad_logits` is
  /// d(loss)/d(logits).
  void backward(const Tensor& grad_logits);

  /// All parameters created so far (HyperNet weight bank).
  void collect_params(std::vector<Param*>& out);

  /// Top-1 accuracy of a path on a dataset (forward-only; caches cleared).
  /// `max_batches` < 0 means the whole set.
  double evaluate(const Genotype& path, const Dataset& ds, int batch_size,
                  int max_batches = -1);

  /// Drops all cached forward state (after eval-only passes).
  void clear_cache();

  /// Number of parameters currently materialised.
  std::size_t param_count();

 private:
  Linear* classifier(int in_features);

  struct ForwardRecord {
    Genotype path;
    std::vector<Tensor> outputs;  // outputs[0]=stem, outputs[i+1]=cell i
    Linear* classifier = nullptr;
  };

  NetworkSkeleton skeleton_;
  std::uint64_t seed_;
  std::unique_ptr<Conv2d> stem_;
  std::vector<std::unique_ptr<CellModule>> cells_;
  GlobalAvgPool gap_;
  std::map<int, std::unique_ptr<Linear>> classifier_bank_;
  std::vector<ForwardRecord> records_;
};

}  // namespace yoso
