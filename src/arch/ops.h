#pragma once
// The candidate operation set of the YOSO DNN search space (paper §III.D):
// conv3x3, conv5x5, DWconv3x3, DWconv5x5, max pooling, average pooling.
// ReLU is the only activation used.

#include <array>
#include <string>

namespace yoso {

enum class Op : int {
  kConv3x3 = 0,
  kConv5x5 = 1,
  kDwConv3x3 = 2,
  kDwConv5x5 = 3,
  kMaxPool3x3 = 4,
  kAvgPool3x3 = 5,
};

inline constexpr int kNumOps = 6;

inline constexpr std::array<Op, kNumOps> all_ops() {
  return {Op::kConv3x3,   Op::kConv5x5,    Op::kDwConv3x3,
          Op::kDwConv5x5, Op::kMaxPool3x3, Op::kAvgPool3x3};
}

/// Kernel size of the operation (3 or 5).
int op_kernel_size(Op op);

/// True for conv3x3 / conv5x5 (dense convolutions).
bool op_is_conv(Op op);

/// True for the two depthwise convolutions.
bool op_is_depthwise(Op op);

/// True for max/avg pooling.
bool op_is_pool(Op op);

/// Whether the op has trainable weights.
bool op_has_weights(Op op);

std::string op_name(Op op);

/// Parses an op name (as produced by op_name); throws on unknown name.
Op op_from_name(const std::string& name);

}  // namespace yoso
