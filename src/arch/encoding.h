#pragma once
// Flat action-sequence encoding of a genotype (paper §III.C).
//
// The RL controller treats each candidate as a sequence
//   lambda = (d_1 .. d_S, c_1 .. c_L),  S = 40 DNN actions, L = 4 HW actions.
// This module defines the 40 DNN actions: for every interior node of the
// normal cell then the reduction cell, in order, the four decisions
// (input_a, input_b, op_a, op_b).  Input actions have node-dependent
// cardinality (node i chooses among its i predecessors); op actions have
// cardinality 6.  The 4 hardware actions are defined by the accelerator
// config space (src/accel) and concatenated by the core DesignSpace.

#include <span>
#include <string>
#include <vector>

#include "arch/genotype.h"

namespace yoso {

/// Metadata of one position in the action sequence.
struct ActionStep {
  enum class Kind { kInput, kOp };
  Kind kind = Kind::kInput;
  int cardinality = 0;  ///< number of valid choices at this step
  std::string name;     ///< e.g. "normal.node3.input_a"
};

/// Number of DNN actions (the paper's S).
inline constexpr int kDnnActionCount = 2 * kInteriorNodes * 4;  // 40

/// The 40 DNN action steps in controller order.
std::vector<ActionStep> dnn_action_steps();

/// Genotype -> 40 action indices.
std::vector<int> encode_genotype(const Genotype& g);

/// 40 action indices -> genotype.  Throws std::invalid_argument when the
/// sequence length or any action is out of range.
Genotype decode_genotype(std::span<const int> actions);

}  // namespace yoso
