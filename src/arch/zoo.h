#pragma once
// Representative reference networks for the two-stage baseline (Table 2).
//
// The paper reimplements the two-stage method by taking published
// high-accuracy cell-search networks (NasNet-A, DARTS v1/v2, AmoebaNet-A,
// EnasNet, PnasNet) "designed in the same neural architecture search space",
// then exhaustively enumerating accelerator configurations per network.
// We cannot ship the authors' exact translations, so each entry here is a
// hand-written genotype in our op set that structurally mirrors the
// published cell (op mix, branching) — e.g. the DARTS cells are separable-
// conv-3x3 heavy, NasNet/AmoebaNet lean on 5x5 branches and average pools.
// Each entry also records the paper-reported search cost and CIFAR-10 test
// error so the Table-2 bench can print paper-vs-measured side by side.

#include <string>
#include <vector>

#include "arch/genotype.h"

namespace yoso {

struct ReferenceModel {
  std::string name;
  Genotype genotype;
  double paper_test_error = 0.0;     ///< % on CIFAR-10, from Table 2
  double paper_search_gpu_days = 0;  ///< from Table 2
};

/// The six two-stage reference models of Table 2, in paper order.
std::vector<ReferenceModel> reference_models();

/// Looks up a reference model by name; throws if unknown.
const ReferenceModel& reference_model(const std::string& name);

}  // namespace yoso
