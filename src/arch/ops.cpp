#include "arch/ops.h"

#include <stdexcept>

namespace yoso {

int op_kernel_size(Op op) {
  switch (op) {
    case Op::kConv3x3:
    case Op::kDwConv3x3:
    case Op::kMaxPool3x3:
    case Op::kAvgPool3x3:
      return 3;
    case Op::kConv5x5:
    case Op::kDwConv5x5:
      return 5;
  }
  throw std::invalid_argument("op_kernel_size: invalid op");
}

bool op_is_conv(Op op) {
  return op == Op::kConv3x3 || op == Op::kConv5x5;
}

bool op_is_depthwise(Op op) {
  return op == Op::kDwConv3x3 || op == Op::kDwConv5x5;
}

bool op_is_pool(Op op) {
  return op == Op::kMaxPool3x3 || op == Op::kAvgPool3x3;
}

bool op_has_weights(Op op) {
  return op_is_conv(op) || op_is_depthwise(op);
}

std::string op_name(Op op) {
  switch (op) {
    case Op::kConv3x3: return "conv3x3";
    case Op::kConv5x5: return "conv5x5";
    case Op::kDwConv3x3: return "dwconv3x3";
    case Op::kDwConv5x5: return "dwconv5x5";
    case Op::kMaxPool3x3: return "maxpool3x3";
    case Op::kAvgPool3x3: return "avgpool3x3";
  }
  throw std::invalid_argument("op_name: invalid op");
}

Op op_from_name(const std::string& name) {
  for (Op op : all_ops())
    if (op_name(op) == name) return op;
  throw std::invalid_argument("op_from_name: unknown op '" + name + "'");
}

}  // namespace yoso
