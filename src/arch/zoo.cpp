#include "arch/zoo.h"

#include <stdexcept>

#include "arch/genotype.h"
#include "arch/ops.h"

namespace yoso {

namespace {

// Shorthand for readable genotype literals below.
constexpr Op kC3 = Op::kConv3x3;
constexpr Op kC5 = Op::kConv5x5;
constexpr Op kD3 = Op::kDwConv3x3;
constexpr Op kD5 = Op::kDwConv5x5;
constexpr Op kMx = Op::kMaxPool3x3;
constexpr Op kAv = Op::kAvgPool3x3;

CellGenotype cell(std::vector<NodeSpec> nodes) {
  CellGenotype c;
  c.nodes = std::move(nodes);
  std::string error;
  if (!validate_cell(c, &error))
    throw std::logic_error("zoo: invalid hand-written cell: " + error);
  return c;
}

// The published models these genotypes stand in for are all large
// (~2.5-3.4 M parameters on CIFAR-10); the op mixes below mirror each
// paper's cell style while keeping every reference net in a comparable
// 150-300 MMAC band, so the two-stage baseline differs from YOSO in
// *fit to the accelerator*, not in raw model size.
std::vector<ReferenceModel> build_models() {
  std::vector<ReferenceModel> models;

  // NasNet-A: 5x5-heavy separable branches plus average pools, wide fan-in
  // from the two cell inputs.
  {
    ReferenceModel m;
    m.name = "NasNet-A";
    m.paper_test_error = 3.41;
    m.paper_search_gpu_days = 1800;
    m.genotype.normal = cell({
        {0, 1, kC5, kD3},
        {1, 0, kAv, kD5},
        {1, 0, kC5, kAv},
        {1, 1, kD5, kD3},
        {0, 2, kD5, kAv},
    });
    m.genotype.reduction = cell({
        {0, 1, kC5, kD5},
        {1, 0, kMx, kD5},
        {1, 0, kAv, kC5},
        {2, 1, kMx, kD3},
        {2, 3, kAv, kMx},
    });
    models.push_back(std::move(m));
  }

  // DARTS (first order): separable-3x3 heavy with skip-like avg pools —
  // the leanest of the six references.
  {
    ReferenceModel m;
    m.name = "Darts_v1";
    m.paper_test_error = 3.0;
    m.paper_search_gpu_days = 0.38;
    m.genotype.normal = cell({
        {0, 1, kD3, kC3},
        {0, 1, kD3, kC3},
        {1, 2, kD3, kC3},
        {0, 3, kC3, kD3},
        {2, 4, kD3, kC3},
    });
    m.genotype.reduction = cell({
        {0, 1, kMx, kC3},
        {1, 2, kMx, kD3},
        {2, 1, kMx, kD3},
        {2, 3, kC3, kMx},
        {3, 4, kD3, kC3},
    });
    models.push_back(std::move(m));
  }

  // DARTS (second order): the strongest two-stage entry (2.82 %); dense
  // convolutional mix.
  {
    ReferenceModel m;
    m.name = "Darts_v2";
    m.paper_test_error = 2.82;
    m.paper_search_gpu_days = 1;
    m.genotype.normal = cell({
        {0, 1, kC3, kD3},
        {0, 1, kD3, kC3},
        {1, 2, kC3, kD3},
        {0, 2, kC3, kC3},
        {2, 4, kD3, kMx},
    });
    m.genotype.reduction = cell({
        {0, 1, kMx, kC3},
        {1, 2, kMx, kC3},
        {2, 1, kMx, kD3},
        {2, 3, kC3, kC3},
        {3, 4, kC3, kC3},
    });
    models.push_back(std::move(m));
  }

  // AmoebaNet-A: evolved cell, 5x5 branches + average pools.
  {
    ReferenceModel m;
    m.name = "AmoebaNet-A";
    m.paper_test_error = 3.12;
    m.paper_search_gpu_days = 3150;
    m.genotype.normal = cell({
        {0, 1, kAv, kC5},
        {1, 2, kD3, kC3},
        {0, 2, kAv, kD5},
        {1, 3, kC5, kC3},
        {3, 4, kAv, kD5},
    });
    m.genotype.reduction = cell({
        {0, 1, kAv, kD5},
        {1, 0, kMx, kC5},
        {0, 2, kMx, kC5},
        {2, 3, kD3, kC3},
        {3, 4, kAv, kC5},
    });
    models.push_back(std::move(m));
  }

  // ENAS: parameter-sharing search result; conv-rich and energy-hungry in
  // the paper's measurements (16.65 mJ).
  {
    ReferenceModel m;
    m.name = "EnasNet";
    m.paper_test_error = 2.89;
    m.paper_search_gpu_days = 1;
    m.genotype.normal = cell({
        {0, 1, kC5, kC3},
        {1, 2, kC5, kC3},
        {1, 0, kAv, kD3},
        {2, 3, kC3, kD3},
        {0, 4, kD3, kAv},
    });
    m.genotype.reduction = cell({
        {0, 1, kMx, kC5},
        {1, 2, kAv, kC3},
        {1, 0, kMx, kC5},
        {3, 2, kC3, kD3},
        {3, 4, kD3, kC3},
    });
    models.push_back(std::move(m));
  }

  // PNASNet: progressive search result; 5x5-heavy and pool-rich — the most
  // expensive and the weakest accuracy of the six in Table 2.
  {
    ReferenceModel m;
    m.name = "PnasNet";
    m.paper_test_error = 3.63;
    m.paper_search_gpu_days = 150;
    m.genotype.normal = cell({
        {0, 1, kC5, kMx},
        {1, 1, kC5, kAv},
        {0, 2, kC5, kD5},
        {1, 3, kD5, kMx},
        {2, 4, kD5, kAv},
    });
    m.genotype.reduction = cell({
        {0, 1, kC5, kMx},
        {1, 0, kMx, kD5},
        {1, 2, kAv, kC5},
        {2, 3, kMx, kC5},
        {3, 4, kD5, kAv},
    });
    models.push_back(std::move(m));
  }

  return models;
}

}  // namespace

std::vector<ReferenceModel> reference_models() {
  return build_models();
}

const ReferenceModel& reference_model(const std::string& name) {
  static const std::vector<ReferenceModel> models = build_models();
  for (const auto& m : models)
    if (m.name == name) return m;
  throw std::invalid_argument("reference_model: unknown model '" + name + "'");
}

}  // namespace yoso
