#include "arch/network.h"

#include <stdexcept>

#include "arch/genotype.h"
#include "arch/ops.h"

namespace yoso {

NetworkSkeleton default_skeleton() {
  NetworkSkeleton s;
  s.cells = {CellKind::kNormal, CellKind::kNormal, CellKind::kReduction,
             CellKind::kNormal, CellKind::kNormal, CellKind::kReduction};
  s.stem_channels = 24;
  s.input_height = 32;
  s.input_width = 32;
  s.input_channels = 3;
  s.num_classes = 10;
  return s;
}

NetworkSkeleton tiny_skeleton(int input_hw, int stem_channels) {
  NetworkSkeleton s;
  s.cells = {CellKind::kNormal, CellKind::kReduction};
  s.stem_channels = stem_channels;
  s.input_height = input_hw;
  s.input_width = input_hw;
  s.input_channels = 3;
  s.num_classes = 10;
  return s;
}

std::int64_t Layer::macs() const {
  const auto oh = static_cast<std::int64_t>(out_h());
  const auto ow = static_cast<std::int64_t>(out_w());
  switch (kind) {
    case LayerKind::kConv:
      return oh * ow * kernel * kernel * in_c * out_c;
    case LayerKind::kDwConv:
      return oh * ow * kernel * kernel * in_c;
    case LayerKind::kPool:
      return 0;
    case LayerKind::kFullyConnected:
      return static_cast<std::int64_t>(in_c) * out_c;
  }
  throw std::logic_error("Layer::macs: invalid kind");
}

std::int64_t Layer::params() const {
  switch (kind) {
    case LayerKind::kConv:
      return static_cast<std::int64_t>(kernel) * kernel * in_c * out_c;
    case LayerKind::kDwConv:
      return static_cast<std::int64_t>(kernel) * kernel * in_c;
    case LayerKind::kPool:
      return 0;
    case LayerKind::kFullyConnected:
      return static_cast<std::int64_t>(in_c) * out_c + out_c;
  }
  throw std::logic_error("Layer::params: invalid kind");
}

std::int64_t Layer::input_accesses() const {
  const auto oh = static_cast<std::int64_t>(out_h());
  const auto ow = static_cast<std::int64_t>(out_w());
  switch (kind) {
    case LayerKind::kConv:
    case LayerKind::kDwConv:
    case LayerKind::kPool:
      return oh * ow * kernel * kernel * in_c;
    case LayerKind::kFullyConnected:
      return in_c;
  }
  throw std::logic_error("Layer::input_accesses: invalid kind");
}

std::int64_t Layer::output_elements() const {
  switch (kind) {
    case LayerKind::kFullyConnected:
      return out_c;
    default:
      return static_cast<std::int64_t>(out_h()) * out_w() * out_c;
  }
}

namespace {

/// Shape of a cell output as it flows between cells.
struct FeatureShape {
  int channels = 0;
  int h = 0;
  int w = 0;
};

}  // namespace

std::vector<Layer> extract_layers(const Genotype& g,
                                  const NetworkSkeleton& skeleton) {
  std::string error;
  if (!validate_genotype(g, &error))
    throw std::invalid_argument("extract_layers: invalid genotype: " + error);
  if (skeleton.cells.empty())
    throw std::invalid_argument("extract_layers: empty skeleton");

  std::vector<Layer> layers;
  // Stem + per-cell (2 preprocess + 2 ops per interior node) + GAP + FC.
  layers.reserve(3 + skeleton.cells.size() *
                         (2 + 2 * static_cast<std::size_t>(kInteriorNodes)));

  // Stem: 3x3 conv input_channels -> stem_channels.
  Layer stem;
  stem.kind = LayerKind::kConv;
  stem.in_h = skeleton.input_height;
  stem.in_w = skeleton.input_width;
  stem.in_c = skeleton.input_channels;
  stem.out_c = skeleton.stem_channels;
  stem.kernel = 3;
  stem.stride = 1;
  stem.name = "stem";
  layers.push_back(stem);

  FeatureShape prev{skeleton.stem_channels, skeleton.input_height,
                    skeleton.input_width};
  FeatureShape prev_prev = prev;

  int filters = skeleton.stem_channels;

  for (std::size_t ci = 0; ci < skeleton.cells.size(); ++ci) {
    const CellKind kind = skeleton.cells[ci];
    const bool reduce = kind == CellKind::kReduction;
    if (reduce) filters *= 2;
    const CellGenotype& cell = reduce ? g.reduction : g.normal;
    const std::string cell_tag = "cell" + std::to_string(ci);

    // Node spatial size inside this cell (after any reduction stride).
    const int node_h = reduce ? (prev.h + 1) / 2 : prev.h;
    const int node_w = reduce ? (prev.w + 1) / 2 : prev.w;

    // Preprocessing 1x1 convs map both inputs to `filters` channels and,
    // when the previous cell reduced, also align node-0's spatial size.
    auto add_preprocess = [&](const FeatureShape& src, int target_h,
                              const char* tag) {
      Layer pre;
      pre.kind = LayerKind::kConv;
      pre.in_h = src.h;
      pre.in_w = src.w;
      pre.in_c = src.channels;
      pre.out_c = filters;
      pre.kernel = 1;
      pre.stride = src.h > target_h ? 2 : 1;
      pre.name = cell_tag + ".pre" + tag;
      layers.push_back(pre);
    };
    add_preprocess(prev_prev, prev.h, "0");
    add_preprocess(prev, prev.h, "1");

    // Interior nodes: every op works on `filters` channels.  In a reduction
    // cell, edges reading node 0 or 1 (the cell inputs) have stride 2.
    for (int n = 0; n < kInteriorNodes; ++n) {
      const NodeSpec& spec = cell.nodes[static_cast<std::size_t>(n)];
      const int node_index = n + 2;
      auto add_op = [&](Op op, int input_node, const char* branch) {
        const bool from_input = input_node < 2;
        const bool strided = reduce && from_input;
        Layer l;
        l.in_c = filters;
        l.out_c = filters;
        l.kernel = op_kernel_size(op);
        l.stride = strided ? 2 : 1;
        l.in_h = strided ? prev.h : node_h;
        l.in_w = strided ? prev.w : node_w;
        l.name = cell_tag + ".node" + std::to_string(node_index) + "." + branch;
        if (op_is_conv(op)) {
          l.kind = LayerKind::kConv;
        } else if (op_is_depthwise(op)) {
          l.kind = LayerKind::kDwConv;
        } else {
          l.kind = LayerKind::kPool;
          l.is_max_pool = op == Op::kMaxPool3x3;
        }
        layers.push_back(l);
      };
      add_op(spec.op_a, spec.input_a, "a");
      add_op(spec.op_b, spec.input_b, "b");
    }

    const auto loose = loose_end_nodes(cell);
    FeatureShape out;
    out.channels = static_cast<int>(loose.size()) * filters;
    out.h = node_h;
    out.w = node_w;
    prev_prev = prev;
    prev = out;
  }

  // Classifier: global average pooling (modelled as a pool over the whole
  // map) followed by a fully connected layer.
  Layer gap;
  gap.kind = LayerKind::kPool;
  gap.in_h = prev.h;
  gap.in_w = prev.w;
  gap.in_c = prev.channels;
  gap.out_c = prev.channels;
  gap.kernel = prev.h;
  gap.stride = prev.h;
  gap.is_max_pool = false;
  gap.name = "global_avg_pool";
  layers.push_back(gap);

  Layer fc;
  fc.kind = LayerKind::kFullyConnected;
  fc.in_h = 1;
  fc.in_w = 1;
  fc.in_c = prev.channels;
  fc.out_c = skeleton.num_classes;
  fc.kernel = 1;
  fc.stride = 1;
  fc.name = "classifier";
  layers.push_back(fc);

  return layers;
}

NetworkStats network_stats(const std::vector<Layer>& layers) {
  NetworkStats s;
  s.num_layers = layers.size();
  for (const Layer& l : layers) {
    s.total_macs += l.macs();
    s.total_params += l.params();
    if (l.params() > 0) ++s.num_weight_layers;
  }
  return s;
}

}  // namespace yoso
