#pragma once
// From genotype to concrete network: skeleton description (which cells are
// stacked, stem width, input shape) and extraction of the concrete layer
// list that the accelerator simulator consumes.
//
// The paper's HyperNet uses 6 blocks: 4 normal cells and 2 reduction cells
// (§IV.B); we default to the DARTS-style arrangement N N R N N R.  Channel
// semantics follow the cell-search convention: every node inside a cell
// carries `filters` channels, the two cell inputs are mapped to `filters`
// channels by 1x1 preprocessing convolutions, the cell output concatenates
// the loose-end nodes, and the filter count doubles after each reduction
// cell while the spatial size halves.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/genotype.h"

namespace yoso {

enum class CellKind { kNormal, kReduction };

/// Static description of the network scaffold the searched cells plug into.
struct NetworkSkeleton {
  std::vector<CellKind> cells;  ///< stacking order, e.g. {N,N,R,N,N,R}
  int stem_channels = 24;       ///< filters of the first normal cells
  int input_height = 32;
  int input_width = 32;
  int input_channels = 3;
  int num_classes = 10;
};

/// The paper's 6-block skeleton (4 normal + 2 reduction) at CIFAR scale.
NetworkSkeleton default_skeleton();

/// A reduced skeleton for CPU-scale real-training runs (tests/examples).
NetworkSkeleton tiny_skeleton(int input_hw = 12, int stem_channels = 8);

/// Concrete layer kinds the accelerator simulator understands.
enum class LayerKind { kConv, kDwConv, kPool, kFullyConnected };

/// One concrete layer with fully resolved shape.  `same` padding is assumed
/// for convolutions and pools, so out_h = ceil(in_h / stride).
struct Layer {
  LayerKind kind = LayerKind::kConv;
  int in_h = 0;
  int in_w = 0;
  int in_c = 0;
  int out_c = 0;
  int kernel = 1;
  int stride = 1;
  bool is_max_pool = false;  ///< only meaningful for kPool
  std::string name;          ///< provenance, e.g. "cell3.node4.a"

  int out_h() const { return (in_h + stride - 1) / stride; }
  int out_w() const { return (in_w + stride - 1) / stride; }

  /// Multiply-accumulate count (0 for pools; pools still move data).
  std::int64_t macs() const;
  /// Trainable parameter count (weights only; no biases for conv, bias for FC).
  std::int64_t params() const;
  /// Elements read from the input feature map (with kernel reuse).
  std::int64_t input_accesses() const;
  /// Elements written to the output feature map.
  std::int64_t output_elements() const;
};

/// Aggregate statistics of an extracted network.
struct NetworkStats {
  std::int64_t total_macs = 0;
  std::int64_t total_params = 0;
  std::size_t num_layers = 0;
  std::size_t num_weight_layers = 0;
};

/// Expands (genotype, skeleton) into the full concrete layer list:
/// stem conv, per-cell preprocessing 1x1s, per-node op layers, classifier.
std::vector<Layer> extract_layers(const Genotype& g,
                                  const NetworkSkeleton& skeleton);

NetworkStats network_stats(const std::vector<Layer>& layers);

}  // namespace yoso
