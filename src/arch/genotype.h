#pragma once
// Cell-based DNN architecture genotype (paper §III.D, Fig 3).
//
// A cell is a DAG of B = 7 nodes.  Nodes 0 and 1 are the outputs of the two
// previous cells; each of the B-2 = 5 interior nodes is computed from two
// earlier nodes, each transformed by an operation from the 6-op candidate
// set:  I_i = theta_(i,j)(I_j) + theta_(i,k)(I_k),  j < i, k < i  (Eq. 5).
// The cell output is the concatenation of interior nodes that feed no other
// node ("loose ends").
//
// A full architecture is two cell genotypes (normal + reduction); reduction
// cells use stride 2 on edges reading the cell inputs.

#include <cstddef>
#include <string>
#include <vector>

#include "arch/ops.h"
#include "util/rng.h"

namespace yoso {

/// Number of nodes per cell (B in the paper).
inline constexpr int kNodesPerCell = 7;
/// Interior (searched) nodes per cell: nodes 2..6.
inline constexpr int kInteriorNodes = kNodesPerCell - 2;

/// One interior node: two input node indices and the two ops applied to them.
struct NodeSpec {
  int input_a = 0;
  int input_b = 0;
  Op op_a = Op::kConv3x3;
  Op op_b = Op::kConv3x3;

  bool operator==(const NodeSpec&) const = default;
};

/// Genotype of one cell: specs for interior nodes 2..B-1 in order.
struct CellGenotype {
  std::vector<NodeSpec> nodes;  // size kInteriorNodes

  bool operator==(const CellGenotype&) const = default;
};

/// Complete DNN genotype: a normal cell and a reduction cell.
struct Genotype {
  CellGenotype normal;
  CellGenotype reduction;

  bool operator==(const Genotype&) const = default;
};

/// Returns true and clears `error` if the cell genotype is well-formed:
/// right node count and every input index j satisfies j < i.
bool validate_cell(const CellGenotype& cell, std::string* error = nullptr);

/// Validates both cells of a genotype.
bool validate_genotype(const Genotype& g, std::string* error = nullptr);

/// Uniformly samples a well-formed cell genotype (matches the HyperNet's
/// uniform path-sampling distribution: inputs uniform over predecessors,
/// ops uniform over the 6 candidates — Eq. 6).
CellGenotype random_cell(Rng& rng);

/// Uniformly samples a full genotype.
Genotype random_genotype(Rng& rng);

/// Interior node indices (2-based absolute) whose output feeds no other
/// interior node; these are concatenated to form the cell output.
std::vector<int> loose_end_nodes(const CellGenotype& cell);

/// Human-readable single-line description, e.g. for table printing.
std::string to_string(const CellGenotype& cell);
std::string to_string(const Genotype& g);

/// Total number of distinct cell genotypes (for search-space size reports).
/// Per cell: prod_{i=2..6} (i^2 * 36); full genotype squares it.
double cell_space_size();
double genotype_space_size();

}  // namespace yoso
