#include "arch/encoding.h"

#include "arch/genotype.h"
#include "arch/ops.h"
#include "base/contract.h"

namespace yoso {

namespace {

void append_cell_steps(std::vector<ActionStep>& steps, const char* cell_name) {
  steps.reserve(steps.size() + 4 * static_cast<std::size_t>(kInteriorNodes));
  for (int n = 0; n < kInteriorNodes; ++n) {
    const int node_index = n + 2;
    const std::string prefix =
        std::string(cell_name) + ".node" + std::to_string(node_index) + ".";
    steps.push_back({ActionStep::Kind::kInput, node_index, prefix + "input_a"});
    steps.push_back({ActionStep::Kind::kInput, node_index, prefix + "input_b"});
    steps.push_back({ActionStep::Kind::kOp, kNumOps, prefix + "op_a"});
    steps.push_back({ActionStep::Kind::kOp, kNumOps, prefix + "op_b"});
  }
}

void append_cell_actions(std::vector<int>& actions, const CellGenotype& cell) {
  actions.reserve(actions.size() + 4 * cell.nodes.size());
  for (const NodeSpec& spec : cell.nodes) {
    actions.push_back(spec.input_a);
    actions.push_back(spec.input_b);
    actions.push_back(static_cast<int>(spec.op_a));
    actions.push_back(static_cast<int>(spec.op_b));
  }
}

CellGenotype decode_cell(std::span<const int> actions, std::size_t offset) {
  CellGenotype cell;
  cell.nodes.reserve(kInteriorNodes);
  for (int n = 0; n < kInteriorNodes; ++n) {
    const std::size_t base = offset + static_cast<std::size_t>(n) * 4;
    NodeSpec spec;
    spec.input_a = actions[base];
    spec.input_b = actions[base + 1];
    spec.op_a = static_cast<Op>(actions[base + 2]);
    spec.op_b = static_cast<Op>(actions[base + 3]);
    cell.nodes.push_back(spec);
  }
  return cell;
}

}  // namespace

std::vector<ActionStep> dnn_action_steps() {
  std::vector<ActionStep> steps;
  steps.reserve(kDnnActionCount);
  append_cell_steps(steps, "normal");
  append_cell_steps(steps, "reduction");
  return steps;
}

std::vector<int> encode_genotype(const Genotype& g) {
  std::string error;
  YOSO_REQUIRE(validate_genotype(g, &error),
               "encode_genotype: invalid genotype: ", error);
  std::vector<int> actions;
  actions.reserve(kDnnActionCount);
  append_cell_actions(actions, g.normal);
  append_cell_actions(actions, g.reduction);
  return actions;
}

Genotype decode_genotype(std::span<const int> actions) {
  YOSO_REQUIRE(actions.size() == static_cast<std::size_t>(kDnnActionCount),
               "decode_genotype: expected ", kDnnActionCount,
               " actions, got ", actions.size());
  const auto steps = dnn_action_steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    YOSO_REQUIRE(actions[i] >= 0 && actions[i] < steps[i].cardinality,
                 "decode_genotype: action ", i, " (", steps[i].name,
                 ") out of range: ", actions[i], " not in [0, ",
                 steps[i].cardinality, ")");
  }
  Genotype g;
  g.normal = decode_cell(actions, 0);
  g.reduction =
      decode_cell(actions, static_cast<std::size_t>(kInteriorNodes) * 4);
  std::string error;
  YOSO_REQUIRE(validate_genotype(g, &error),
               "decode_genotype: decoded invalid genotype: ", error);
  return g;
}

}  // namespace yoso
