#include "arch/genotype.h"

#include <sstream>

#include "arch/ops.h"
#include "util/rng.h"

namespace yoso {

bool validate_cell(const CellGenotype& cell, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (static_cast<int>(cell.nodes.size()) != kInteriorNodes)
    return fail("cell has " + std::to_string(cell.nodes.size()) +
                " interior nodes, expected " + std::to_string(kInteriorNodes));
  for (int n = 0; n < kInteriorNodes; ++n) {
    const NodeSpec& spec = cell.nodes[static_cast<std::size_t>(n)];
    const int node_index = n + 2;
    if (spec.input_a < 0 || spec.input_a >= node_index)
      return fail("node " + std::to_string(node_index) + ": input_a " +
                  std::to_string(spec.input_a) + " out of range");
    if (spec.input_b < 0 || spec.input_b >= node_index)
      return fail("node " + std::to_string(node_index) + ": input_b " +
                  std::to_string(spec.input_b) + " out of range");
    const int op_a = static_cast<int>(spec.op_a);
    const int op_b = static_cast<int>(spec.op_b);
    if (op_a < 0 || op_a >= kNumOps)
      return fail("node " + std::to_string(node_index) + ": bad op_a");
    if (op_b < 0 || op_b >= kNumOps)
      return fail("node " + std::to_string(node_index) + ": bad op_b");
  }
  if (error != nullptr) error->clear();
  return true;
}

bool validate_genotype(const Genotype& g, std::string* error) {
  std::string local;
  if (!validate_cell(g.normal, &local)) {
    if (error != nullptr) *error = "normal cell: " + local;
    return false;
  }
  if (!validate_cell(g.reduction, &local)) {
    if (error != nullptr) *error = "reduction cell: " + local;
    return false;
  }
  if (error != nullptr) error->clear();
  return true;
}

CellGenotype random_cell(Rng& rng) {
  CellGenotype cell;
  cell.nodes.reserve(kInteriorNodes);
  for (int n = 0; n < kInteriorNodes; ++n) {
    const int node_index = n + 2;
    NodeSpec spec;
    spec.input_a = rng.uniform_int(0, node_index - 1);
    spec.input_b = rng.uniform_int(0, node_index - 1);
    spec.op_a = static_cast<Op>(rng.uniform_int(0, kNumOps - 1));
    spec.op_b = static_cast<Op>(rng.uniform_int(0, kNumOps - 1));
    cell.nodes.push_back(spec);
  }
  return cell;
}

Genotype random_genotype(Rng& rng) {
  Genotype g;
  g.normal = random_cell(rng);
  g.reduction = random_cell(rng);
  return g;
}

std::vector<int> loose_end_nodes(const CellGenotype& cell) {
  std::vector<bool> used(kNodesPerCell, false);
  for (const NodeSpec& spec : cell.nodes) {
    used[static_cast<std::size_t>(spec.input_a)] = true;
    used[static_cast<std::size_t>(spec.input_b)] = true;
  }
  std::vector<int> loose;
  for (int i = 2; i < kNodesPerCell; ++i)
    if (!used[static_cast<std::size_t>(i)]) loose.push_back(i);
  // Degenerate (but valid) genotypes can consume every interior node; fall
  // back to the topmost node as the output so the cell always has one.
  if (loose.empty()) loose.push_back(kNodesPerCell - 1);
  return loose;
}

std::string to_string(const CellGenotype& cell) {
  std::ostringstream ss;
  ss << "[";
  for (std::size_t n = 0; n < cell.nodes.size(); ++n) {
    const NodeSpec& s = cell.nodes[n];
    if (n > 0) ss << " ";
    ss << (n + 2) << ":(" << s.input_a << "," << op_name(s.op_a) << ";"
       << s.input_b << "," << op_name(s.op_b) << ")";
  }
  ss << "]";
  return ss.str();
}

std::string to_string(const Genotype& g) {
  return "normal=" + to_string(g.normal) +
         " reduction=" + to_string(g.reduction);
}

double cell_space_size() {
  double total = 1.0;
  for (int node_index = 2; node_index < kNodesPerCell; ++node_index) {
    const double inputs = static_cast<double>(node_index);
    total *= inputs * inputs * static_cast<double>(kNumOps * kNumOps);
  }
  return total;
}

double genotype_space_size() {
  return cell_space_size() * cell_space_size();
}

}  // namespace yoso
