#pragma once
// Flat parameter storage for the RL controller: values, gradients and Adam
// moments live in parallel arrays; tensors are (offset, size) views.  This
// keeps the LSTM/BPTT code free of allocation and makes the Adam update a
// single pass.
//
// The store is controller state: proposals and REINFORCE feedback mutate it
// strictly in episode order on the thread driving the search, never from
// evaluator workers (DESIGN.md §9).  The arrays are guarded by a
// coordinator ThreadRole so clang's -Wthread-safety rejects any future
// parallel-region write instead of leaving the rule to review.

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.h"
#include "base/thread_annotations.h"

namespace yoso {

/// A view handle into the store (one logical weight tensor).
struct ParamView {
  std::size_t offset = 0;
  std::size_t size = 0;
};

class ParamStore {
 public:
  /// Reserves `n` doubles initialised uniformly in [-scale, scale].
  ParamView alloc(std::size_t n, Rng& rng, double scale = 0.1);

  std::span<double> value(ParamView v) {
    ThreadRoleGuard coordinator(role_);
    return std::span<double>(value_).subspan(v.offset, v.size);
  }
  std::span<const double> value(ParamView v) const {
    ThreadRoleGuard coordinator(role_);
    return std::span<const double>(value_).subspan(v.offset, v.size);
  }
  std::span<double> grad(ParamView v) {
    ThreadRoleGuard coordinator(role_);
    return std::span<double>(grad_).subspan(v.offset, v.size);
  }

  std::size_t size() const {
    ThreadRoleGuard coordinator(role_);
    return value_.size();
  }

  void zero_grad();

  /// Adam update over every parameter; increments the internal step count.
  void adam_step(double lr, double beta1 = 0.9, double beta2 = 0.999,
                 double eps = 1e-8);

  /// Global L2 norm of the gradient (for clipping / diagnostics).
  double grad_norm() const;

  /// Scales all gradients by `factor`.
  void scale_grad(double factor);

  /// Serialises values + Adam state (not gradients) as text; enables
  /// checkpoint/resume of a search.  load() requires the store to have the
  /// identical layout (same alloc sequence) and throws std::invalid_argument
  /// on any mismatch or malformed input.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  mutable ThreadRole role_;
  std::vector<double> value_ YOSO_GUARDED_BY(role_);
  std::vector<double> grad_ YOSO_GUARDED_BY(role_);
  std::vector<double> adam_m_ YOSO_GUARDED_BY(role_);
  std::vector<double> adam_v_ YOSO_GUARDED_BY(role_);
  long long adam_t_ YOSO_GUARDED_BY(role_) = 0;
};

}  // namespace yoso
