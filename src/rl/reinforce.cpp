#include "rl/reinforce.h"

#include "obs/metrics.h"
#include "rl/controller.h"
#include "util/rng.h"

namespace yoso {

void ReinforceTrainer::feedback(const Episode& episode, double reward) {
  const double b =
      options_.use_baseline && !baseline_.empty() ? baseline_.value() : 0.0;
  const double advantage = reward - b;
  controller_.accumulate_gradient(episode, advantage,
                                  options_.entropy_weight);
  baseline_.add(reward);
  ++episodes_;
  obs::counter_add("rl.episodes");
  if (++pending_ >= options_.batch_size) {
    controller_.update(options_.lr, options_.max_grad_norm);
    pending_ = 0;
    obs::counter_add("rl.updates");
  }
}

std::vector<int> RandomSearcher::propose(Rng& rng) const {
  std::vector<int> actions(cardinalities_.size());
  for (std::size_t i = 0; i < cardinalities_.size(); ++i)
    actions[i] = rng.uniform_int(0, cardinalities_[i] - 1);
  return actions;
}

}  // namespace yoso
