#include "rl/controller.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "base/contract.h"
#include "util/rng.h"

namespace yoso {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// y += M x  where M is (rows x cols) row-major.
void matvec_acc(std::span<const double> m, std::span<const double> x,
                std::span<double> y, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const double* row = m.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] += acc;
  }
}

/// y += M^T x  where M is (rows x cols) row-major, x has `rows` entries.
void matvec_t_acc(std::span<const double> m, std::span<const double> x,
                  std::span<double> y, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = m.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

/// G += a b^T for G (rows x cols) row-major.
void outer_acc(std::span<double> g, std::span<const double> a,
               std::span<const double> b, std::size_t rows,
               std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double ar = a[r];
    if (ar == 0.0) continue;
    double* row = g.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += ar * b[c];
  }
}

}  // namespace

LstmController::LstmController(std::vector<int> cardinalities,
                               ControllerOptions options)
    : cardinalities_(std::move(cardinalities)), options_(options) {
  if (cardinalities_.empty())
    throw std::invalid_argument("LstmController: empty action space");
  for (int c : cardinalities_)
    if (c < 1) throw std::invalid_argument("LstmController: bad cardinality");

  Rng rng(options_.seed);
  const auto h = static_cast<std::size_t>(options_.hidden_size);
  const auto e = static_cast<std::size_t>(options_.embed_size);
  w_x_ = store_.alloc(4 * h * e, rng);
  w_h_ = store_.alloc(4 * h * h, rng, 0.08);
  b_ = store_.alloc(4 * h, rng, 0.0);
  start_ = store_.alloc(e, rng);
  embed_.resize(cardinalities_.size());
  head_w_.resize(cardinalities_.size());
  head_b_.resize(cardinalities_.size());
  for (std::size_t t = 0; t < cardinalities_.size(); ++t) {
    if (t >= 1)
      embed_[t] = store_.alloc(
          static_cast<std::size_t>(cardinalities_[t - 1]) * e, rng);
    head_w_[t] = store_.alloc(
        static_cast<std::size_t>(cardinalities_[t]) * h, rng);
    head_b_[t] =
        store_.alloc(static_cast<std::size_t>(cardinalities_[t]), rng, 0.0);
  }
}

std::vector<double> LstmController::step_forward(Episode& ep, int t,
                                                 int prev_action) {
  const auto h = static_cast<std::size_t>(options_.hidden_size);
  const auto e = static_cast<std::size_t>(options_.embed_size);
  const auto ti = static_cast<std::size_t>(t);

  // Input embedding.
  ep.x[ti].assign(e, 0.0);
  if (t == 0) {
    const auto sv = store_.value(start_);
    for (std::size_t i = 0; i < e; ++i) ep.x[ti][i] = sv[i];
  } else {
    const auto ev = store_.value(embed_[ti]);
    YOSO_REQUIRE(prev_action >= 0 &&
                     static_cast<std::size_t>(prev_action + 1) * e <=
                         ev.size(),
                 "Controller::step_forward: prev_action ", prev_action,
                 " out of range");
    for (std::size_t i = 0; i < e; ++i)
      ep.x[ti][i] = ev[static_cast<std::size_t>(prev_action) * e + i];
  }

  // Gate pre-activations.
  std::vector<double> pre(4 * h);
  {
    const auto bv = store_.value(b_);
    for (std::size_t i = 0; i < 4 * h; ++i) pre[i] = bv[i];
  }
  matvec_acc(store_.value(w_x_), ep.x[ti], pre, 4 * h, e);
  if (t > 0) matvec_acc(store_.value(w_h_), ep.h[ti - 1], pre, 4 * h, h);

  ep.gi[ti].resize(h);
  ep.gf[ti].resize(h);
  ep.gg[ti].resize(h);
  ep.go[ti].resize(h);
  ep.c[ti].resize(h);
  ep.h[ti].resize(h);
  for (std::size_t i = 0; i < h; ++i) {
    ep.gi[ti][i] = sigmoid(pre[i]);
    ep.gf[ti][i] = sigmoid(pre[h + i]);
    ep.gg[ti][i] = std::tanh(pre[2 * h + i]);
    ep.go[ti][i] = sigmoid(pre[3 * h + i]);
    const double c_prev = t > 0 ? ep.c[ti - 1][i] : 0.0;
    ep.c[ti][i] = ep.gf[ti][i] * c_prev + ep.gi[ti][i] * ep.gg[ti][i];
    ep.h[ti][i] = ep.go[ti][i] * std::tanh(ep.c[ti][i]);
  }

  // Head logits with temperature + tanh-constant squashing.
  const auto card = static_cast<std::size_t>(cardinalities_[ti]);
  ep.head_u[ti].assign(card, 0.0);
  {
    const auto bv = store_.value(head_b_[ti]);
    for (std::size_t i = 0; i < card; ++i) ep.head_u[ti][i] = bv[i];
  }
  matvec_acc(store_.value(head_w_[ti]), ep.h[ti], ep.head_u[ti], card, h);

  std::vector<double> z(card);
  for (std::size_t i = 0; i < card; ++i)
    z[i] = options_.tanh_constant *
           std::tanh(ep.head_u[ti][i] / options_.temperature);
  return z;
}

Episode LstmController::sample(Rng& rng) {
  const int t_max = num_steps();
  Episode ep;
  const auto n = static_cast<std::size_t>(t_max);
  ep.actions.resize(n);
  ep.x.resize(n);
  ep.h.resize(n);
  ep.c.resize(n);
  ep.gi.resize(n);
  ep.gf.resize(n);
  ep.gg.resize(n);
  ep.go.resize(n);
  ep.probs.resize(n);
  ep.head_u.resize(n);

  int prev = 0;
  for (int t = 0; t < t_max; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    const std::vector<double> z = step_forward(ep, t, prev);
    // Softmax.
    double zmax = z[0];
    for (double v : z) zmax = std::max(zmax, v);
    double denom = 0.0;
    ep.probs[ti].resize(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) {
      ep.probs[ti][i] = std::exp(z[i] - zmax);
      denom += ep.probs[ti][i];
    }
    double ent = 0.0;
    for (auto& p : ep.probs[ti]) {
      p /= denom;
      if (p > 0.0) ent -= p * std::log(p);
    }
    const auto a = rng.weighted_index(ep.probs[ti]);
    ep.actions[ti] = static_cast<int>(a);
    ep.log_prob += std::log(std::max(ep.probs[ti][a], 1e-300));
    ep.entropy += ent;
    prev = static_cast<int>(a);
  }
  return ep;
}

std::vector<int> LstmController::argmax_actions() {
  const int t_max = num_steps();
  Episode ep;
  const auto n = static_cast<std::size_t>(t_max);
  ep.actions.resize(n);
  ep.x.resize(n);
  ep.h.resize(n);
  ep.c.resize(n);
  ep.gi.resize(n);
  ep.gf.resize(n);
  ep.gg.resize(n);
  ep.go.resize(n);
  ep.probs.resize(n);
  ep.head_u.resize(n);

  int prev = 0;
  for (int t = 0; t < t_max; ++t) {
    const std::vector<double> z = step_forward(ep, t, prev);
    int best = 0;
    for (std::size_t i = 1; i < z.size(); ++i)
      if (z[i] > z[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
    ep.actions[static_cast<std::size_t>(t)] = best;
    prev = best;
  }
  return ep.actions;
}

void LstmController::accumulate_gradient(const Episode& ep, double advantage,
                                         double entropy_weight) {
  const int t_max = num_steps();
  const auto h = static_cast<std::size_t>(options_.hidden_size);
  const auto e = static_cast<std::size_t>(options_.embed_size);

  std::vector<double> dh_next(h, 0.0);
  std::vector<double> dc_next(h, 0.0);
  std::vector<double> dx(e);

  for (int t = t_max - 1; t >= 0; --t) {
    const auto ti = static_cast<std::size_t>(t);
    const auto card = static_cast<std::size_t>(cardinalities_[ti]);
    const auto& p = ep.probs[ti];
    const auto a = static_cast<std::size_t>(ep.actions[ti]);

    // dL/dz with L = -advantage * log p(a) - entropy_weight * H.
    double step_entropy = 0.0;
    for (std::size_t k = 0; k < card; ++k)
      if (p[k] > 0.0) step_entropy -= p[k] * std::log(p[k]);
    std::vector<double> dz(card);
    for (std::size_t k = 0; k < card; ++k) {
      const double logp = p[k] > 0.0 ? std::log(p[k]) : -700.0;
      dz[k] = advantage * (p[k] - (k == a ? 1.0 : 0.0)) +
              entropy_weight * p[k] * (logp + step_entropy);
    }

    // Through z = C * tanh(u / T).
    std::vector<double> du(card);
    for (std::size_t k = 0; k < card; ++k) {
      const double th = std::tanh(ep.head_u[ti][k] / options_.temperature);
      du[k] = dz[k] * options_.tanh_constant * (1.0 - th * th) /
              options_.temperature;
    }

    // Head gradients and dh from the head.
    outer_acc(store_.grad(head_w_[ti]), du, ep.h[ti], card, h);
    {
      auto gb = store_.grad(head_b_[ti]);
      for (std::size_t k = 0; k < card; ++k) gb[k] += du[k];
    }
    std::vector<double> dh(h, 0.0);
    matvec_t_acc(store_.value(head_w_[ti]), du, dh, card, h);
    for (std::size_t i = 0; i < h; ++i) dh[i] += dh_next[i];

    // LSTM cell backward.
    std::vector<double> dpre(4 * h);
    std::vector<double> dc(h);
    for (std::size_t i = 0; i < h; ++i) {
      const double tc = std::tanh(ep.c[ti][i]);
      dc[i] = dc_next[i] + dh[i] * ep.go[ti][i] * (1.0 - tc * tc);
      const double do_ = dh[i] * tc;
      const double c_prev = t > 0 ? ep.c[ti - 1][i] : 0.0;
      const double di = dc[i] * ep.gg[ti][i];
      const double dg = dc[i] * ep.gi[ti][i];
      const double df = dc[i] * c_prev;
      dpre[i] = di * ep.gi[ti][i] * (1.0 - ep.gi[ti][i]);
      dpre[h + i] = df * ep.gf[ti][i] * (1.0 - ep.gf[ti][i]);
      dpre[2 * h + i] = dg * (1.0 - ep.gg[ti][i] * ep.gg[ti][i]);
      dpre[3 * h + i] = do_ * ep.go[ti][i] * (1.0 - ep.go[ti][i]);
      dc_next[i] = dc[i] * ep.gf[ti][i];
    }

    outer_acc(store_.grad(w_x_), dpre, ep.x[ti], 4 * h, e);
    if (t > 0) outer_acc(store_.grad(w_h_), dpre, ep.h[ti - 1], 4 * h, h);
    {
      auto gb = store_.grad(b_);
      for (std::size_t i = 0; i < 4 * h; ++i) gb[i] += dpre[i];
    }

    std::fill(dx.begin(), dx.end(), 0.0);
    matvec_t_acc(store_.value(w_x_), dpre, dx, 4 * h, e);
    if (t == 0) {
      auto gs = store_.grad(start_);
      for (std::size_t i = 0; i < e; ++i) gs[i] += dx[i];
    } else {
      auto ge = store_.grad(embed_[ti]);
      const auto prev = static_cast<std::size_t>(ep.actions[ti - 1]);
      for (std::size_t i = 0; i < e; ++i) ge[prev * e + i] += dx[i];
    }

    std::fill(dh_next.begin(), dh_next.end(), 0.0);
    if (t > 0) matvec_t_acc(store_.value(w_h_), dpre, dh_next, 4 * h, h);
  }
}

void LstmController::save(std::ostream& os) const {
  os << "yoso-controller-v1 " << cardinalities_.size();
  for (int c : cardinalities_) os << " " << c;
  os << " " << options_.hidden_size << " " << options_.embed_size << "\n";
  store_.save(os);
}

void LstmController::load(std::istream& is) {
  std::string magic;
  std::size_t steps = 0;
  if (!(is >> magic >> steps) || magic != "yoso-controller-v1")
    throw std::invalid_argument("LstmController::load: bad header");
  if (steps != cardinalities_.size())
    throw std::invalid_argument(
        "LstmController::load: action-count mismatch");
  for (std::size_t i = 0; i < steps; ++i) {
    int c = 0;
    if (!(is >> c) || c != cardinalities_[i])
      throw std::invalid_argument(
          "LstmController::load: cardinality mismatch at step " +
          std::to_string(i));
  }
  int hidden = 0, embed = 0;
  if (!(is >> hidden >> embed) || hidden != options_.hidden_size ||
      embed != options_.embed_size)
    throw std::invalid_argument("LstmController::load: shape mismatch");
  store_.load(is);
}

void LstmController::update(double lr, double max_grad_norm) {
  const double norm = store_.grad_norm();
  if (norm > max_grad_norm && norm > 0.0)
    store_.scale_grad(max_grad_norm / norm);
  store_.adam_step(lr);
  store_.zero_grad();
}

}  // namespace yoso
