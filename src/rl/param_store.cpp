#include "rl/param_store.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/rng.h"

namespace yoso {

ParamView ParamStore::alloc(std::size_t n, Rng& rng, double scale) {
  ThreadRoleGuard coordinator(role_);
  ParamView v{value_.size(), n};
  value_.reserve(value_.size() + n);
  for (std::size_t i = 0; i < n; ++i)
    value_.push_back(rng.uniform(-scale, scale));
  grad_.resize(value_.size(), 0.0);
  adam_m_.resize(value_.size(), 0.0);
  adam_v_.resize(value_.size(), 0.0);
  return v;
}

void ParamStore::zero_grad() {
  ThreadRoleGuard coordinator(role_);
  std::fill(grad_.begin(), grad_.end(), 0.0);
}

void ParamStore::adam_step(double lr, double beta1, double beta2, double eps) {
  ThreadRoleGuard coordinator(role_);
  ++adam_t_;
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(adam_t_));
  for (std::size_t i = 0; i < value_.size(); ++i) {
    adam_m_[i] = beta1 * adam_m_[i] + (1.0 - beta1) * grad_[i];
    adam_v_[i] = beta2 * adam_v_[i] + (1.0 - beta2) * grad_[i] * grad_[i];
    const double mhat = adam_m_[i] / bc1;
    const double vhat = adam_v_[i] / bc2;
    value_[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

double ParamStore::grad_norm() const {
  ThreadRoleGuard coordinator(role_);
  double acc = 0.0;
  for (double g : grad_) acc += g * g;
  return std::sqrt(acc);
}

void ParamStore::scale_grad(double factor) {
  ThreadRoleGuard coordinator(role_);
  for (double& g : grad_) g *= factor;
}

void ParamStore::save(std::ostream& os) const {
  ThreadRoleGuard coordinator(role_);
  os << "yoso-paramstore-v1 " << value_.size() << " " << adam_t_ << "\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < value_.size(); ++i)
    os << value_[i] << " " << adam_m_[i] << " " << adam_v_[i] << "\n";
}

void ParamStore::load(std::istream& is) {
  ThreadRoleGuard coordinator(role_);
  std::string magic;
  std::size_t n = 0;
  long long t = 0;
  if (!(is >> magic >> n >> t) || magic != "yoso-paramstore-v1")
    throw std::invalid_argument("ParamStore::load: bad header");
  if (n != value_.size())
    throw std::invalid_argument(
        "ParamStore::load: size mismatch (checkpoint " + std::to_string(n) +
        ", store " + std::to_string(value_.size()) + ")");
  std::vector<double> v(n), m(n), av(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> v[i] >> m[i] >> av[i]))
      throw std::invalid_argument("ParamStore::load: truncated at entry " +
                                  std::to_string(i));
  }
  value_ = std::move(v);
  adam_m_ = std::move(m);
  adam_v_ = std::move(av);
  adam_t_ = t;
  std::fill(grad_.begin(), grad_.end(), 0.0);
}

}  // namespace yoso
