#pragma once
// LSTM-based RL controller (paper §III.C).
//
// The controller treats a candidate co-design as an action sequence
// lambda = (d_1..d_S, c_1..c_L): 40 DNN actions + 4 hardware actions, each
// with its own cardinality.  An LSTM with 120 hidden units samples actions
// autoregressively through per-step softmax heads; the previously generated
// action is embedded and fed as the next input (zero input at the first
// step).  Sampling logits use the ENAS-style temperature and tanh-constant
// squashing (§IV.C: temperature 1.1, tanh constant 2.5).
//
// REINFORCE with a moving-average baseline and an entropy bonus updates the
// parameters (Eq. 4); the optimiser is Adam (lr 0.0035 in the paper).

#include <cstdint>
#include <vector>

#include "rl/param_store.h"
#include "util/rng.h"

namespace yoso {

struct ControllerOptions {
  int hidden_size = 120;   ///< LSTM hidden units (paper: 120)
  int embed_size = 32;     ///< action-embedding width
  double temperature = 1.1;
  double tanh_constant = 2.5;
  std::uint64_t seed = 1;
};

/// One sampled action sequence with everything needed for the policy
/// gradient.
struct Episode {
  std::vector<int> actions;
  double log_prob = 0.0;  ///< sum over steps of log pi(a_t)
  double entropy = 0.0;   ///< sum over steps of H(pi_t)

  // Per-step caches for backprop (sized [T][...]).
  std::vector<std::vector<double>> x, h, c;           // inputs and states
  std::vector<std::vector<double>> gi, gf, gg, go;    // gate activations
  std::vector<std::vector<double>> probs;             // softmax outputs
  std::vector<std::vector<double>> head_u;            // pre-squash logits
};

class LstmController {
 public:
  /// `cardinalities`: the per-step action-space sizes (44 entries for the
  /// full co-design space).
  LstmController(std::vector<int> cardinalities, ControllerOptions options);

  const std::vector<int>& cardinalities() const { return cardinalities_; }
  int num_steps() const { return static_cast<int>(cardinalities_.size()); }
  std::size_t param_count() const { return store_.size(); }

  /// Samples one action sequence (with caches for a later gradient pass).
  Episode sample(Rng& rng);

  /// Greedy (argmax) decode — used to report the controller's current
  /// preferred design.
  std::vector<int> argmax_actions();

  /// Accumulates the REINFORCE gradient of
  ///   L = -(advantage) * log pi(a) - entropy_weight * H(pi)
  /// for one episode into the parameter store.
  void accumulate_gradient(const Episode& episode, double advantage,
                           double entropy_weight);

  /// Applies an Adam step (after one or more accumulate_gradient calls) and
  /// zeroes gradients.  Gradients are clipped to `max_grad_norm`.
  void update(double lr, double max_grad_norm = 5.0);

  /// Checkpoint the controller (weights + optimiser state).  load() throws
  /// std::invalid_argument when the checkpoint's action space or sizes do
  /// not match this controller.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  /// Runs one LSTM step; fills episode caches at position t.
  /// Returns the logits (pre-softmax, after squashing) for step t.
  std::vector<double> step_forward(Episode& ep, int t, int prev_action);

  std::vector<int> cardinalities_;
  ControllerOptions options_;
  ParamStore store_;

  // LSTM weights.
  ParamView w_x_;  // (4H, E)
  ParamView w_h_;  // (4H, H)
  ParamView b_;    // (4H)
  ParamView start_;  // (E) input at t = 0
  // Per-step action embeddings (card_{t-1} x E) for t >= 1.
  std::vector<ParamView> embed_;
  // Per-step output heads (card_t x H) + bias (card_t).
  std::vector<ParamView> head_w_;
  std::vector<ParamView> head_b_;
};

}  // namespace yoso
