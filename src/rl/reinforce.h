#pragma once
// REINFORCE training loop around the LSTM controller (paper Eq. 3-4):
// the controller proposes an action sequence, the caller scores it with the
// multi-objective reward, and feedback() applies the policy gradient with a
// moving-average baseline (variance reduction that "significantly expedites
// the search") and an entropy bonus.

#include "rl/controller.h"
#include "util/rng.h"
#include "util/stats.h"

namespace yoso {

struct ReinforceOptions {
  double lr = 0.0035;            ///< Adam learning rate (paper §IV.C)
  double baseline_decay = 0.95;  ///< moving-average baseline decay
  double entropy_weight = 1e-4;  ///< paper: entropy weighted by 0.0001
  int batch_size = 1;            ///< episodes per Adam update
  double max_grad_norm = 5.0;
  bool use_baseline = true;      ///< off for the ablation bench
};

class ReinforceTrainer {
 public:
  ReinforceTrainer(LstmController& controller, ReinforceOptions options)
      : controller_(controller),
        options_(options),
        baseline_(options.baseline_decay) {}

  /// Samples one candidate action sequence.
  Episode propose(Rng& rng) { return controller_.sample(rng); }

  /// Feeds back the reward for an episode; accumulates the gradient and
  /// applies an Adam update every batch_size episodes.
  void feedback(const Episode& episode, double reward);

  double baseline_value() const {
    return baseline_.empty() ? 0.0 : baseline_.value();
  }
  std::size_t episodes_seen() const { return episodes_; }

 private:
  LstmController& controller_;
  ReinforceOptions options_;
  MovingAverage baseline_;
  std::size_t episodes_ = 0;
  int pending_ = 0;
};

/// Uniform-random baseline searcher over the same action space.
class RandomSearcher {
 public:
  explicit RandomSearcher(std::vector<int> cardinalities)
      : cardinalities_(std::move(cardinalities)) {}

  std::vector<int> propose(Rng& rng) const;

 private:
  std::vector<int> cardinalities_;
};

}  // namespace yoso
