#pragma once
// Regression-model zoo for the hardware performance predictor (paper §III.E,
// Fig 4): six model families are fitted to (design features -> energy or
// latency) samples collected from the simulator; the Gaussian process wins
// on MSE and becomes the search-time predictor.

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace yoso {

/// Common interface: fit on a sample matrix (rows = samples), then predict.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model.  x: (n, d), y: n targets.  Throws on shape mismatch.
  virtual void fit(const Matrix& x, std::span<const double> y) = 0;

  /// Predicts one sample (d features).
  virtual double predict(std::span<const double> x) const = 0;

  virtual std::string name() const = 0;

  /// Batch prediction convenience.
  std::vector<double> predict_all(const Matrix& x) const;
};

/// Feature standardisation fitted on training data (mean 0 / std 1).
class Standardizer {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  std::vector<double> transform_row(std::span<const double> x) const;
  /// Allocation-free variant: writes x.size() standardized values to `out`.
  void transform_row_into(std::span<const double> x, double* out) const;
  bool fitted() const { return !mean_.empty(); }

  /// Fitted moments, exposed so fitted models can be persisted
  /// (core/artifact.h) and rebuilt bit-identically via from_moments().
  std::span<const double> mean() const { return mean_; }
  std::span<const double> stddev() const { return std_; }

  /// Rebuilds a fitted scaler from previously exported moments (both spans
  /// must be the same non-zero length; ContractViolation otherwise).
  /// transform() on the restored object is bit-identical to the original.
  static Standardizer from_moments(std::vector<double> mean,
                                   std::vector<double> stddev);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace yoso
