#include "predictor/gp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "base/contract.h"
#include "linalg/matrix.h"
#include "obs/trace.h"
#include "predictor/regressor.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace yoso {

double GpRegressor::fit_from_dists(const Matrix& d2,
                                   std::span<const double> yc) {
  const std::size_t n = d2.rows();
  const double l = hp_.lengthscale;
  Matrix k(n, n);
  const double* din = d2.data().data();
  double* kout = k.data().data();
  // K = s^2 exp(-D / (2 l^2)), exponentiated row by row so an element's
  // vector/remainder position depends only on the row length — the same
  // rule the predict path follows.
  for (std::size_t i = 0; i < n; ++i)
    kernels::exp_scale(din + i * n, kout + i * n, n, -1.0 / (2.0 * l * l),
                       hp_.signal_variance);
  k.add_diagonal(hp_.noise_variance);
  chol_ = std::make_unique<Cholesky>(k);
  alpha_ = chol_->solve(yc);
  // log p(y) = -0.5 y^T alpha - 0.5 log|K| - n/2 log(2 pi)
  const double fit_term = kernels::dot(yc.data(), alpha_.data(), n);
  return -0.5 * fit_term - 0.5 * chol_->log_determinant() -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

void GpRegressor::stamp_train_fingerprint() {
  // FNV-1a over (n, d, first standardized row, last standardized row).
  // Cheap (O(d)) yet strong enough to catch the realistic caller bug —
  // predict_means_pair fed two models fitted on different sample sets.
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](const unsigned char* p, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      h ^= static_cast<std::uint64_t>(p[i]);
      h *= kPrime;
    }
  };
  const std::uint64_t shape[2] = {train_x_.rows(), train_x_.cols()};
  mix(reinterpret_cast<const unsigned char*>(shape), sizeof(shape));
  if (train_x_.rows() > 0) {
    const std::span<const double> first = train_x_.row(0);
    const std::span<const double> last = train_x_.row(train_x_.rows() - 1);
    mix(reinterpret_cast<const unsigned char*>(first.data()),
        first.size_bytes());
    mix(reinterpret_cast<const unsigned char*>(last.data()),
        last.size_bytes());
  }
  train_fingerprint_ = h;
}

void GpRegressor::fit(const Matrix& x, std::span<const double> y) {
  YOSO_TRACE_SPAN("gp.fit");
  YOSO_REQUIRE(x.rows() == y.size() && x.rows() > 0,
               "GpRegressor::fit: design matrix is ", x.rows(), "x", x.cols(),
               " but y has ", y.size(), " targets");
  dist_builds_ = {};
  updates_applied_ = 0;
  chol_kmm_.reset();
  b_.clear();
  inducing_idx_.clear();
  if (backend_ == GpBackend::kSparse) {
    fit_sparse(x, y);
    stamp_train_fingerprint();
    return;
  }
  scaler_.fit(x);
  train_x_ = scaler_.transform(x);

  y_mean_ = mean(y);
  std::vector<double> yc(y.size());
  double y_var = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    yc[i] = y[i] - y_mean_;
    y_var += yc[i] * yc[i];
  }
  y_var = std::max(y_var / static_cast<double>(y.size()), 1e-12);

  // One distance-matrix build per fit: only the exponentiation depends on
  // the hyper-parameters, so the tuning grid below re-reads this matrix
  // instead of recomputing O(n^2 d) kernel dots per grid point.
  const std::size_t n = train_x_.rows();
  packed_train_ =
      kernels::pack_rows(train_x_.data().data(), n, train_x_.cols());
  Matrix d2(n, n);
  kernels::pairwise_sq_dists(train_x_.data().data(), n, packed_train_,
                             d2.data().data(), nullptr);
  dist_builds_.full = 1;

  if (!tune_) {
    lml_ = fit_from_dists(d2, yc);
    stamp_train_fingerprint();
    return;
  }

  // Grid search: lengthscale scaled to feature dimension, noise relative to
  // target variance.  Signal variance is tied to the target variance.
  const double d = static_cast<double>(x.cols());
  const double base_l = std::sqrt(d);
  GpHyperParams best_hp;
  double best_lml = -1e300;
  std::vector<double> best_alpha;
  std::unique_ptr<Cholesky> best_chol;
  for (double lf : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    for (double nf : {1e-4, 1e-3, 1e-2}) {
      hp_.lengthscale = base_l * lf;
      hp_.signal_variance = y_var;
      hp_.noise_variance = y_var * nf;
      const double lml = fit_from_dists(d2, yc);
      if (lml > best_lml) {
        best_lml = lml;
        best_hp = hp_;
        best_alpha = std::move(alpha_);
        best_chol = std::move(chol_);
      }
    }
  }
  // The winning grid point's factorisation is kept as the fitted state —
  // no redundant refit of the best hyper-parameters.
  hp_ = best_hp;
  alpha_ = std::move(best_alpha);
  chol_ = std::move(best_chol);
  lml_ = best_lml;
  stamp_train_fingerprint();
}

void GpRegressor::predict_rows(const double* x, std::size_t nq, double* mu,
                               double* var, ThreadPool* pool) const {
  YOSO_REQUIRE(nq == 0 || (x != nullptr && mu != nullptr),
               "GpRegressor::predict_rows: null input/output");
  const std::size_t n = train_x_.rows();
  const std::size_t dim = train_x_.cols();
  const double l = hp_.lengthscale;
  const double scale = -1.0 / (2.0 * l * l);
  // Queries go through in fixed-size chunks so the K* panel stays cache
  // resident; the chunk size never affects results (each row's chain is
  // self-contained).
  constexpr std::size_t kChunk = 256;
  const std::size_t buf_rows = std::min(kChunk, nq);
  const bool sparse = backend_ == GpBackend::kSparse;
  std::vector<double> xs(buf_rows * dim);
  std::vector<double> kbuf(buf_rows * n);
  // The sparse (DTC) variance needs two triangular solves against an
  // intact kernel row, so it gets a separate per-row solve buffer; the
  // exact path keeps its in-place solve and allocates nothing extra.
  std::vector<double> vbuf((var != nullptr && sparse) ? buf_rows * n : 0);
  for (std::size_t lo = 0; lo < nq; lo += kChunk) {
    const std::size_t cnt = std::min(kChunk, nq - lo);
    // Standardize with the exact per-row arithmetic single predict() uses.
    for (std::size_t r = 0; r < cnt; ++r) {
      scaler_.transform_row_into(
          std::span<const double>(x + (lo + r) * dim, dim),
          xs.data() + r * dim);
    }
    kernels::pairwise_sq_dists(xs.data(), cnt, packed_train_, kbuf.data(),
                               pool);
    const auto row_work = [&](std::size_t r) {
      double* krow = kbuf.data() + r * n;
      // One fused pass: krow = s^2 exp(scale * d2), mean = krow . alpha.
      mu[lo + r] = y_mean_ + kernels::exp_scale_dot(krow, krow, alpha_.data(),
                                                    n, scale,
                                                    hp_.signal_variance);
      if (var != nullptr && !sparse) {
        // var = k(x,x) - k*^T K^-1 k*; the solve overwrites krow in place
        // (safe: forward substitution consumes krow[i] before writing it),
        // which keeps the hot per-row lambda allocation-free.
        chol_->solve_lower_into(std::span<const double>(krow, n), krow);
        const double reduce = kernels::dot(krow, krow, n);
        var[lo + r] = std::max(
            0.0, hp_.signal_variance + hp_.noise_variance - reduce);
      } else if (var != nullptr) {
        // DTC predictive variance:
        //   k** + nv - k^T K_mm^-1 k + nv * k^T A^-1 k
        // Both quadratic forms come from forward solves into the scratch
        // row (krow itself must stay intact between them).
        double* vrow = vbuf.data() + r * n;
        chol_kmm_->solve_lower_into(std::span<const double>(krow, n), vrow);
        const double prior_drop = kernels::dot(vrow, vrow, n);
        chol_->solve_lower_into(std::span<const double>(krow, n), vrow);
        const double info_gain = kernels::dot(vrow, vrow, n);
        var[lo + r] = std::max(
            0.0, hp_.signal_variance + hp_.noise_variance - prior_drop +
                     hp_.noise_variance * info_gain);
      }
    };
    if (pool != nullptr && pool->workers() > 0 && cnt > 1) {
      pool->parallel_for(0, cnt, row_work);
    } else {
      for (std::size_t r = 0; r < cnt; ++r) row_work(r);
    }
  }
}

double GpRegressor::predict(std::span<const double> x) const {
  YOSO_REQUIRE(!alpha_.empty(), "GpRegressor::predict: not fitted");
  YOSO_REQUIRE(x.size() == train_x_.cols(),
               "GpRegressor::predict: feature dimension ", x.size(),
               " != fitted dimension ", train_x_.cols());
  double mu = 0.0;
  predict_rows(x.data(), 1, &mu, nullptr, nullptr);
  return mu;
}

std::vector<double> GpRegressor::predict_batch(const Matrix& queries,
                                               ThreadPool* pool) const {
  YOSO_TRACE_SPAN("gp.predict_batch");
  obs::counter_add("gp.predict_rows", queries.rows());
  YOSO_REQUIRE(!alpha_.empty(), "GpRegressor::predict_batch: not fitted");
  YOSO_REQUIRE(queries.cols() == train_x_.cols(),
               "GpRegressor::predict_batch: feature dimension ",
               queries.cols(), " != fitted dimension ", train_x_.cols());
  std::vector<double> mu(queries.rows());
  if (!mu.empty())
    predict_rows(queries.data().data(), queries.rows(), mu.data(), nullptr,
                 pool);
  return mu;
}

void GpRegressor::predict_means_pair(const GpRegressor& a,
                                     const GpRegressor& b, const double* x,
                                     std::size_t nq, double* mu_a,
                                     double* mu_b, ThreadPool* pool) {
  YOSO_REQUIRE(!a.alpha_.empty() && !b.alpha_.empty(),
               "GpRegressor::predict_means_pair: not fitted");
  YOSO_REQUIRE(a.train_x_.rows() == b.train_x_.rows() &&
                   a.train_x_.cols() == b.train_x_.cols(),
               "GpRegressor::predict_means_pair: models were fitted on "
               "different training sets (", a.train_x_.rows(), "x",
               a.train_x_.cols(), " vs ", b.train_x_.rows(), "x",
               b.train_x_.cols(), ")");
  // The shared-panel trick is only sound when both models standardize to
  // the *same* training rows; the fingerprint (n, d, first/last row bytes)
  // catches same-shape-different-data callers that the REQUIRE above
  // cannot.
  YOSO_DCHECK(a.train_fingerprint_ == b.train_fingerprint_,
              "GpRegressor::predict_means_pair: training-set fingerprint "
              "mismatch — the models were fitted on different inputs");
  if (nq == 0) return;
  YOSO_REQUIRE(x != nullptr && mu_a != nullptr && mu_b != nullptr,
               "GpRegressor::predict_means_pair: null input/output");
  obs::counter_add("gp.predict_rows", 2 * nq);
  const std::size_t n = a.train_x_.rows();
  const std::size_t dim = a.train_x_.cols();
  const double scale_a =
      -1.0 / (2.0 * a.hp_.lengthscale * a.hp_.lengthscale);
  const double scale_b =
      -1.0 / (2.0 * b.hp_.lengthscale * b.hp_.lengthscale);
  constexpr std::size_t kChunk = 256;
  const std::size_t buf_rows = std::min(kChunk, nq);
  std::vector<double> xs(buf_rows * dim);
  std::vector<double> d2(buf_rows * n);   // shared K* distance panel
  std::vector<double> ebuf(buf_rows * n); // per-row exp scratch
  for (std::size_t lo = 0; lo < nq; lo += kChunk) {
    const std::size_t cnt = std::min(kChunk, nq - lo);
    // Standardize once with model a's scaler; identical training inputs
    // imply bitwise-identical scaler state, so this matches what model b's
    // own predict path would compute.
    for (std::size_t r = 0; r < cnt; ++r) {
      a.scaler_.transform_row_into(
          std::span<const double>(x + (lo + r) * dim, dim),
          xs.data() + r * dim);
    }
    kernels::pairwise_sq_dists(xs.data(), cnt, a.packed_train_, d2.data(),
                               pool);
    const auto row_work = [&](std::size_t r) {
      const double* drow = d2.data() + r * n;
      double* erow = ebuf.data() + r * n;
      // The distance row is read-only here (exp output goes to the scratch
      // row), so the second model reuses it untouched.
      mu_a[lo + r] = a.y_mean_ + kernels::exp_scale_dot(
                                     drow, erow, a.alpha_.data(), n, scale_a,
                                     a.hp_.signal_variance);
      mu_b[lo + r] = b.y_mean_ + kernels::exp_scale_dot(
                                     drow, erow, b.alpha_.data(), n, scale_b,
                                     b.hp_.signal_variance);
    };
    if (pool != nullptr && pool->workers() > 0 && cnt > 1) {
      pool->parallel_for(0, cnt, row_work);
    } else {
      for (std::size_t r = 0; r < cnt; ++r) row_work(r);
    }
  }
}

std::vector<std::pair<double, double>> GpRegressor::predict_batch_with_variance(
    const Matrix& queries, ThreadPool* pool) const {
  YOSO_REQUIRE(!alpha_.empty(),
               "GpRegressor::predict_batch_with_variance: not fitted");
  YOSO_REQUIRE(queries.cols() == train_x_.cols(),
               "GpRegressor::predict_batch_with_variance: feature dimension ",
               queries.cols(), " != fitted dimension ", train_x_.cols());
  std::vector<double> mu(queries.rows());
  std::vector<double> var(queries.rows());
  if (!mu.empty())
    predict_rows(queries.data().data(), queries.rows(), mu.data(), var.data(),
                 pool);
  std::vector<std::pair<double, double>> out(queries.rows());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = {mu[i], var[i]};
  return out;
}

std::pair<double, double> GpRegressor::predict_with_variance(
    std::span<const double> x) const {
  YOSO_REQUIRE(!alpha_.empty(),
               "GpRegressor::predict_with_variance: not fitted");
  YOSO_REQUIRE(x.size() == train_x_.cols(),
               "GpRegressor::predict_with_variance: feature dimension ",
               x.size(), " != fitted dimension ", train_x_.cols());
  double mu = 0.0;
  double var = 0.0;
  predict_rows(x.data(), 1, &mu, &var, nullptr);
  return {mu, var};
}

GpRegressorState GpRegressor::export_state() const {
  YOSO_REQUIRE(!alpha_.empty(), "GpRegressor::export_state: not fitted");
  GpRegressorState s;
  s.backend = backend_;
  s.tune = tune_;
  s.inducing_target = inducing_target_;
  s.hp = hp_;
  s.scaler_mean.assign(scaler_.mean().begin(), scaler_.mean().end());
  s.scaler_std.assign(scaler_.stddev().begin(), scaler_.stddev().end());
  s.train_x = train_x_;
  s.alpha = alpha_;
  s.chol_lower = chol_->lower();
  if (chol_kmm_ != nullptr) s.chol_kmm_lower = chol_kmm_->lower();
  s.b = b_;
  s.inducing_idx = inducing_idx_;
  s.y_mean = y_mean_;
  s.lml = lml_;
  s.updates_applied = updates_applied_;
  return s;
}

GpRegressor GpRegressor::from_state(const GpRegressorState& state) {
  const std::size_t n = state.train_x.rows();
  const std::size_t d = state.train_x.cols();
  YOSO_REQUIRE(state.backend == GpBackend::kExact ||
                   state.backend == GpBackend::kSparse,
               "GpRegressor::from_state: unknown backend tag");
  YOSO_REQUIRE(n > 0 && d > 0,
               "GpRegressor::from_state: empty training panel (", n, "x", d,
               ")");
  YOSO_REQUIRE(state.scaler_mean.size() == d && state.scaler_std.size() == d,
               "GpRegressor::from_state: scaler width ",
               state.scaler_mean.size(), "/", state.scaler_std.size(),
               " != panel width ", d);
  YOSO_REQUIRE(state.alpha.size() == n, "GpRegressor::from_state: alpha has ",
               state.alpha.size(), " entries for an ", n, "-row panel");
  YOSO_REQUIRE(state.chol_lower.rows() == n && state.chol_lower.cols() == n,
               "GpRegressor::from_state: Cholesky factor is ",
               state.chol_lower.rows(), "x", state.chol_lower.cols(),
               " for an ", n, "-row panel");
  YOSO_REQUIRE(state.hp.lengthscale > 0.0 && state.hp.signal_variance > 0.0,
               "GpRegressor::from_state: non-positive hyper-parameters");
  if (state.backend == GpBackend::kSparse) {
    YOSO_REQUIRE(state.chol_kmm_lower.rows() == n &&
                     state.chol_kmm_lower.cols() == n,
                 "GpRegressor::from_state: sparse K_mm factor is ",
                 state.chol_kmm_lower.rows(), "x",
                 state.chol_kmm_lower.cols(), " for m = ", n);
    YOSO_REQUIRE(state.b.size() == n,
                 "GpRegressor::from_state: sparse b has ", state.b.size(),
                 " entries for m = ", n);
    YOSO_REQUIRE(state.inducing_idx.size() == n,
                 "GpRegressor::from_state: ", state.inducing_idx.size(),
                 " inducing indices for m = ", n);
  } else {
    YOSO_REQUIRE(state.chol_kmm_lower.empty() && state.b.empty() &&
                     state.inducing_idx.empty(),
                 "GpRegressor::from_state: exact backend carries a sparse "
                 "tail");
  }

  GpRegressor gp(state.hp, state.tune, state.backend, state.inducing_target);
  gp.scaler_ = Standardizer::from_moments(state.scaler_mean, state.scaler_std);
  gp.train_x_ = state.train_x;
  gp.packed_train_ =
      kernels::pack_rows(gp.train_x_.data().data(), n, d);
  gp.alpha_ = state.alpha;
  gp.chol_ = std::make_unique<Cholesky>(Cholesky::from_lower(state.chol_lower));
  if (state.backend == GpBackend::kSparse) {
    gp.chol_kmm_ = std::make_unique<Cholesky>(
        Cholesky::from_lower(state.chol_kmm_lower));
    gp.b_ = state.b;
    gp.inducing_idx_ = state.inducing_idx;
  }
  gp.y_mean_ = state.y_mean;
  gp.lml_ = state.lml;
  gp.updates_applied_ = state.updates_applied;
  gp.stamp_train_fingerprint();
  return gp;
}

}  // namespace yoso
