#include "predictor/gp.h"

#include <cmath>
#include <numbers>

#include "util/contract.h"
#include "util/stats.h"

namespace yoso {

double GpRegressor::kernel(std::span<const double> a,
                           std::span<const double> b) const {
  const double d2 = squared_distance(a, b);
  return hp_.signal_variance *
         std::exp(-d2 / (2.0 * hp_.lengthscale * hp_.lengthscale));
}

double GpRegressor::fit_once(const Matrix& xs, std::span<const double> yc) {
  const std::size_t n = xs.rows();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(xs.row(i), xs.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += hp_.noise_variance;
  }
  chol_ = std::make_unique<Cholesky>(k);
  alpha_ = chol_->solve(yc);
  // log p(y) = -0.5 y^T alpha - 0.5 log|K| - n/2 log(2 pi)
  double fit_term = 0.0;
  for (std::size_t i = 0; i < n; ++i) fit_term += yc[i] * alpha_[i];
  return -0.5 * fit_term - 0.5 * chol_->log_determinant() -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

void GpRegressor::fit(const Matrix& x, std::span<const double> y) {
  YOSO_REQUIRE(x.rows() == y.size() && x.rows() > 0,
               "GpRegressor::fit: design matrix is ", x.rows(), "x", x.cols(),
               " but y has ", y.size(), " targets");
  scaler_.fit(x);
  train_x_ = scaler_.transform(x);

  y_mean_ = mean(y);
  std::vector<double> yc(y.size());
  double y_var = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    yc[i] = y[i] - y_mean_;
    y_var += yc[i] * yc[i];
  }
  y_var = std::max(y_var / static_cast<double>(y.size()), 1e-12);

  if (!tune_) {
    lml_ = fit_once(train_x_, yc);
    return;
  }

  // Grid search: lengthscale scaled to feature dimension, noise relative to
  // target variance.  Signal variance is tied to the target variance.
  const double d = static_cast<double>(x.cols());
  const double base_l = std::sqrt(d);
  GpHyperParams best_hp;
  double best_lml = -1e300;
  for (double lf : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    for (double nf : {1e-4, 1e-3, 1e-2}) {
      hp_.lengthscale = base_l * lf;
      hp_.signal_variance = y_var;
      hp_.noise_variance = y_var * nf;
      const double lml = fit_once(train_x_, yc);
      if (lml > best_lml) {
        best_lml = lml;
        best_hp = hp_;
      }
    }
  }
  hp_ = best_hp;
  lml_ = fit_once(train_x_, yc);
}

double GpRegressor::predict(std::span<const double> x) const {
  YOSO_REQUIRE(!alpha_.empty(), "GpRegressor::predict: not fitted");
  YOSO_REQUIRE(x.size() == train_x_.cols(),
               "GpRegressor::predict: feature dimension ", x.size(),
               " != fitted dimension ", train_x_.cols());
  // Mean-only prediction is O(n d) — no triangular solve.
  const auto xs = scaler_.transform_row(x);
  double mu = y_mean_;
  for (std::size_t i = 0; i < train_x_.rows(); ++i)
    mu += kernel(train_x_.row(i), xs) * alpha_[i];
  return mu;
}

std::pair<double, double> GpRegressor::predict_with_variance(
    std::span<const double> x) const {
  YOSO_REQUIRE(!alpha_.empty(), "GpRegressor::predict_with_variance: not fitted");
  YOSO_REQUIRE(x.size() == train_x_.cols(),
               "GpRegressor::predict_with_variance: feature dimension ",
               x.size(), " != fitted dimension ", train_x_.cols());
  const auto xs = scaler_.transform_row(x);
  const std::size_t n = train_x_.rows();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(train_x_.row(i), xs);
  double mu = y_mean_;
  for (std::size_t i = 0; i < n; ++i) mu += kstar[i] * alpha_[i];
  // var = k(x,x) - k*^T K^-1 k*
  const std::vector<double> v = chol_->solve_lower(kstar);
  double reduce = 0.0;
  for (double vi : v) reduce += vi * vi;
  const double var =
      std::max(0.0, hp_.signal_variance + hp_.noise_variance - reduce);
  return {mu, var};
}

}  // namespace yoso
