#pragma once
// Gaussian-process regression with an RBF kernel (paper Eq. 7-8):
//   y = f(lambda) + eps,  f ~ GP(mu, K),  K(a,b) = s^2 exp(-|a-b|^2/(2 l^2))
// Features are standardized and the target is centred; the lengthscale l,
// signal variance s^2 and noise variance are either fixed or selected from
// a small grid by maximizing the log marginal likelihood.
//
// Two backends share the public API:
//
//  * kExact — the paper's O(n^3) GP.  fit computes the pairwise
//    squared-distance matrix once and re-exponentiates it per
//    hyper-parameter grid point (the winning point's Cholesky/alpha are
//    reused directly, no final refit).
//  * kSparse — a Nystrom / deterministic-training-conditional (DTC)
//    approximation on m inducing points chosen by deterministic
//    farthest-point (k-center) selection over the standardized inputs.
//    fit is O(n m^2); predict is O(m d + m^2) per row instead of
//    O(n d + n^2); and update() folds one new observation into the fitted
//    model in O(m^2) via a rank-1 Cholesky update, with no refit.
//
// Both backends run their hot paths on the shared kernel layer
// (linalg/kernels.h), and prediction stores the (training | inducing) panel
// in the same packed layout, so predict() / predict_batch() /
// predict_means_pair() share one per-row operation chain: batched means are
// bit-identical to per-row calls at any thread count for either backend.

#include <cstdint>
#include <memory>
#include <utility>

#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "predictor/regressor.h"

namespace yoso {

class ThreadPool;

struct GpHyperParams {
  double lengthscale = 4.0;
  double signal_variance = 1.0;
  double noise_variance = 1e-3;
};

/// Which factorisation backs a GpRegressor.
enum class GpBackend {
  kExact,   ///< full n x n kernel matrix, O(n^3) fit
  kSparse,  ///< m inducing points (Nystrom/DTC), O(n m^2) fit, O(m^2) update
};

/// Distance-panel constructions during the last fit(), split by shape so
/// the sparse path's K_nm / K_mm builds are reported distinctly from the
/// exact path's one full matrix.
struct GpDistanceBuilds {
  std::size_t full = 0;      ///< n x n train-vs-train panels (exact fit)
  std::size_t cross = 0;     ///< n x m train-vs-inducing panels (sparse fit)
  std::size_t inducing = 0;  ///< m x m inducing-vs-inducing panels (sparse)
};

/// The complete fitted state of a GpRegressor, as plain matrices/vectors —
/// everything the predict/update paths read, nothing derived.  This is the
/// persistence boundary the binary artifact format (core/artifact.h)
/// serializes: export_state() -> save, load -> GpRegressor::from_state().
/// Derived structures (the packed kernel panel, the training fingerprint)
/// are deliberately absent — from_state() recomputes them with the same
/// deterministic code fit() runs, so a round-tripped model predicts
/// bit-identically to the original.
struct GpRegressorState {
  GpBackend backend = GpBackend::kExact;
  bool tune = true;
  std::size_t inducing_target = 512;
  GpHyperParams hp;                 ///< tuned values, not the constructor's
  std::vector<double> scaler_mean;  ///< input scaler moments, d each
  std::vector<double> scaler_std;
  Matrix train_x;     ///< standardized training (exact) / inducing (sparse)
  std::vector<double> alpha;
  Matrix chol_lower;      ///< exact: chol(K + nv I); sparse: chol(A)
  Matrix chol_kmm_lower;  ///< sparse only: chol(K_mm); empty for exact
  std::vector<double> b;  ///< sparse only: K_mn (y - mean) + updates
  std::vector<std::size_t> inducing_idx;  ///< sparse only, selection order
  double y_mean = 0.0;
  double lml = 0.0;
  std::size_t updates_applied = 0;
};

class GpRegressor : public Regressor {
 public:
  /// With `tune` true, a small grid search over lengthscale / noise maximises
  /// the marginal likelihood during fit().  `inducing_points` caps the
  /// sparse backend's inducing-set size m (clamped to n at fit time) and is
  /// ignored by the exact backend.
  explicit GpRegressor(GpHyperParams hp = {}, bool tune = true,
                       GpBackend backend = GpBackend::kExact,
                       std::size_t inducing_points = 512)
      : hp_(hp), tune_(tune), backend_(backend),
        inducing_target_(inducing_points) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override {
    return backend_ == GpBackend::kSparse ? "sparse_gaussian_process"
                                          : "gaussian_process";
  }

  /// Predictive means for every row of `queries` (raw feature space).
  /// Bit-identical to calling predict() per row, at any thread count; pass
  /// a pool to spread the K* rows across workers (never from inside a
  /// parallel_for body — nested pools throw).
  std::vector<double> predict_batch(const Matrix& queries,
                                    ThreadPool* pool = nullptr) const;

  /// Batched predictive mean + variance (same determinism contract).
  std::vector<std::pair<double, double>> predict_batch_with_variance(
      const Matrix& queries, ThreadPool* pool = nullptr) const;

  /// Fused means for two models fitted on the *same* training inputs (the
  /// performance predictor's energy/latency pair): the query rows are
  /// standardized once and one K* squared-distance panel feeds both models'
  /// kernel chains, so the shared O(n·d) work is paid once instead of
  /// twice.  Each output is bit-identical to the corresponding
  /// predict_batch() call at any thread count.  The shape check is always
  /// on; debug builds additionally YOSO_DCHECK a training-set fingerprint
  /// (n, d, first/last standardized-row hash) so fitting the models on
  /// different inputs trips a ContractViolation instead of silently
  /// reusing the wrong distance panel.
  static void predict_means_pair(const GpRegressor& a, const GpRegressor& b,
                                 const double* x, std::size_t nq,
                                 double* mu_a, double* mu_b, ThreadPool* pool);

  /// Predictive mean and variance for one input.
  std::pair<double, double> predict_with_variance(
      std::span<const double> x) const;

  /// Folds one new observation (raw feature space, raw target) into a
  /// fitted sparse model in O(m^2): a rank-1 Cholesky update of the
  /// information matrix plus one back-substitution.  The inducing set,
  /// input scaler and target mean stay frozen from fit(), so the training
  /// fingerprint — and predict_means_pair validity for a model pair updated
  /// in lockstep — is preserved.  ContractViolation on the exact backend
  /// (which has no incremental path) or before fit().
  void update(std::span<const double> x, double y);

  /// True when update() is available: a fitted sparse-backend model.
  bool supports_update() const {
    return backend_ == GpBackend::kSparse && !alpha_.empty();
  }

  /// Copies the fitted state out for persistence (ContractViolation before
  /// fit()).  The copy is deep; later update() calls on this model leave
  /// the exported state untouched.
  GpRegressorState export_state() const;

  /// Rebuilds a fitted model from exported (or artifact-loaded) state.
  /// Validates every cross-field shape contract (scaler width vs panel
  /// width, alpha length, factor squareness, the sparse-only tail) with
  /// ContractViolation on mismatch, then recomputes the packed kernel panel
  /// and training fingerprint exactly as fit() would — predict(),
  /// predict_batch(), predict_means_pair() and update() on the restored
  /// model are bit-identical to the original.
  static GpRegressor from_state(const GpRegressorState& state);

  GpBackend backend() const { return backend_; }

  /// Rank-1 updates applied since the last fit().
  std::size_t updates_applied() const { return updates_applied_; }

  /// Inducing rows actually selected by the last sparse fit (m <= n); the
  /// exact backend reports its full training-set size.
  std::size_t inducing_count() const { return train_x_.rows(); }

  /// Training-row indices of the selected inducing points, in selection
  /// order (empty for the exact backend).
  std::span<const std::size_t> inducing_indices() const {
    return inducing_idx_;
  }

  /// Log marginal likelihood of the fitted model on its training data (the
  /// sparse backend reports the DTC approximation's likelihood).
  double log_marginal_likelihood() const { return lml_; }

  const GpHyperParams& hyper_params() const { return hp_; }

  /// Total distance-panel constructions during the last fit(), any shape.
  /// The exact path builds exactly one full n x n matrix (the tuning grid
  /// shares it across all 15 grid points); the sparse path builds one
  /// n x m cross panel plus one m x m inducing panel, so this is 1 after an
  /// exact fit and 2 after a sparse fit.  update() builds none — the
  /// breakdown in distance_builds() staying flat across updates is the
  /// no-refit proof tests lean on.
  std::size_t distance_matrix_builds() const {
    return dist_builds_.full + dist_builds_.cross + dist_builds_.inducing;
  }

  /// Per-shape breakdown of the count above.
  const GpDistanceBuilds& distance_builds() const { return dist_builds_; }

  /// Fingerprint of the fitted training panel (n, d, first/last
  /// standardized-row bytes) backing predict_means_pair's caller contract.
  std::uint64_t training_fingerprint() const { return train_fingerprint_; }

  /// Fitted-state access so benches/tests can replicate the scalar
  /// per-candidate baseline against the same fitted model.  For the sparse
  /// backend train_inputs() is the standardized m-row inducing panel.
  const Matrix& train_inputs() const { return train_x_; }
  std::span<const double> alpha() const { return alpha_; }
  const Standardizer& input_scaler() const { return scaler_; }
  double target_mean() const { return y_mean_; }

 private:
  double fit_from_dists(const Matrix& d2, std::span<const double> yc);
  /// Sparse-backend fit body (gp_sparse.cpp).
  void fit_sparse(const Matrix& x, std::span<const double> y);
  /// Deterministic farthest-point selection over standardized rows; fills
  /// inducing_idx_ and the train_x_ / packed_train_ inducing panel.
  void select_inducing_rows(const Matrix& xs, std::size_t m);
  /// Recomputes train_fingerprint_ from the fitted panel.
  void stamp_train_fingerprint();
  /// Shared mean(/variance) path over `nq` contiguous raw query rows;
  /// `var` may be null for mean-only prediction.
  void predict_rows(const double* x, std::size_t nq, double* mu, double* var,
                    ThreadPool* pool) const;

  GpHyperParams hp_;
  bool tune_;
  GpBackend backend_ = GpBackend::kExact;
  std::size_t inducing_target_ = 512;
  Standardizer scaler_;
  Matrix train_x_;                    // standardized (inducing rows if sparse)
  kernels::PackedRows packed_train_;  // transposed train panel + row norms
  std::vector<double> alpha_;         // exact: K^-1 (y - mean); sparse: A^-1 b
  std::unique_ptr<Cholesky> chol_;    // exact: K + nv I; sparse: A
  std::unique_ptr<Cholesky> chol_kmm_;  // sparse only: K_mm (DTC variance)
  std::vector<double> b_;             // sparse only: K_mn (y - mean)
  std::vector<std::size_t> inducing_idx_;
  double y_mean_ = 0.0;
  double lml_ = 0.0;
  GpDistanceBuilds dist_builds_;
  std::size_t updates_applied_ = 0;
  std::uint64_t train_fingerprint_ = 0;
  // update() scratch (standardized query + kernel row), sized on first use
  // so repeated online refinements allocate nothing.
  std::vector<double> upd_xs_;
  std::vector<double> upd_k_;
};

}  // namespace yoso
