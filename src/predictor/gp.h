#pragma once
// Exact Gaussian-process regression with an RBF kernel (paper Eq. 7-8):
//   y = f(lambda) + eps,  f ~ GP(mu, K),  K(a,b) = s^2 exp(-|a-b|^2/(2 l^2))
// Features are standardized and the target is centred; the lengthscale l,
// signal variance s^2 and noise variance are either fixed or selected from
// a small grid by maximizing the log marginal likelihood.
//
// The hot paths run on the shared kernel layer (linalg/kernels.h): fit
// computes the pairwise squared-distance matrix once and re-exponentiates
// it per hyper-parameter grid point (the winning point's Cholesky/alpha are
// reused directly, no final refit), and prediction forms K* as one blocked
// kernel product.  predict() and predict_batch() share the same per-row
// operation chains, so batched means are bit-identical to per-row calls at
// any thread count.

#include <memory>
#include <utility>

#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "predictor/regressor.h"

namespace yoso {

class ThreadPool;

struct GpHyperParams {
  double lengthscale = 4.0;
  double signal_variance = 1.0;
  double noise_variance = 1e-3;
};

class GpRegressor : public Regressor {
 public:
  /// With `tune` true, a small grid search over lengthscale / noise maximises
  /// the marginal likelihood during fit().
  explicit GpRegressor(GpHyperParams hp = {}, bool tune = true)
      : hp_(hp), tune_(tune) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "gaussian_process"; }

  /// Predictive means for every row of `queries` (raw feature space).
  /// Bit-identical to calling predict() per row, at any thread count; pass
  /// a pool to spread the K* rows across workers (never from inside a
  /// parallel_for body — nested pools throw).
  std::vector<double> predict_batch(const Matrix& queries,
                                    ThreadPool* pool = nullptr) const;

  /// Batched predictive mean + variance (same determinism contract).
  std::vector<std::pair<double, double>> predict_batch_with_variance(
      const Matrix& queries, ThreadPool* pool = nullptr) const;

  /// Fused means for two models fitted on the *same* training inputs (the
  /// performance predictor's energy/latency pair): the query rows are
  /// standardized once and one K* squared-distance panel feeds both models'
  /// kernel chains, so the shared O(n·d) work is paid once instead of
  /// twice.  Each output is bit-identical to the corresponding
  /// predict_batch() call at any thread count.  Only the training-set shape
  /// is checked; fitting the models on different inputs is a caller bug.
  static void predict_means_pair(const GpRegressor& a, const GpRegressor& b,
                                 const double* x, std::size_t nq,
                                 double* mu_a, double* mu_b, ThreadPool* pool);

  /// Predictive mean and variance for one input.
  std::pair<double, double> predict_with_variance(
      std::span<const double> x) const;

  /// Log marginal likelihood of the fitted model on its training data.
  double log_marginal_likelihood() const { return lml_; }

  const GpHyperParams& hyper_params() const { return hp_; }

  /// Full pairwise distance-matrix constructions during the last fit():
  /// the tuning grid shares one matrix across all 15 (lengthscale, noise)
  /// points, so this is 1 after any fit.
  std::size_t distance_matrix_builds() const { return distance_builds_; }

  /// Fitted-state access so benches/tests can replicate the scalar
  /// per-candidate baseline against the same fitted model.
  const Matrix& train_inputs() const { return train_x_; }
  std::span<const double> alpha() const { return alpha_; }
  const Standardizer& input_scaler() const { return scaler_; }
  double target_mean() const { return y_mean_; }

 private:
  double fit_from_dists(const Matrix& d2, std::span<const double> yc);
  /// Shared mean(/variance) path over `nq` contiguous raw query rows;
  /// `var` may be null for mean-only prediction.
  void predict_rows(const double* x, std::size_t nq, double* mu, double* var,
                    ThreadPool* pool) const;

  GpHyperParams hp_;
  bool tune_;
  Standardizer scaler_;
  Matrix train_x_;                    // standardized
  kernels::PackedRows packed_train_;  // transposed train panel + row norms
  std::vector<double> alpha_;         // K^-1 (y - mean)
  std::unique_ptr<Cholesky> chol_;
  double y_mean_ = 0.0;
  double lml_ = 0.0;
  std::size_t distance_builds_ = 0;
};

}  // namespace yoso
