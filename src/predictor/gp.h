#pragma once
// Exact Gaussian-process regression with an RBF kernel (paper Eq. 7-8):
//   y = f(lambda) + eps,  f ~ GP(mu, K),  K(a,b) = s^2 exp(-|a-b|^2/(2 l^2))
// Features are standardized and the target is centred; the lengthscale l,
// signal variance s^2 and noise variance are either fixed or selected from
// a small grid by maximizing the log marginal likelihood.

#include <memory>
#include <optional>

#include "linalg/matrix.h"
#include "predictor/regressor.h"

namespace yoso {

struct GpHyperParams {
  double lengthscale = 4.0;
  double signal_variance = 1.0;
  double noise_variance = 1e-3;
};

class GpRegressor : public Regressor {
 public:
  /// With `tune` true, a small grid search over lengthscale / noise maximises
  /// the marginal likelihood during fit().
  explicit GpRegressor(GpHyperParams hp = {}, bool tune = true)
      : hp_(hp), tune_(tune) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "gaussian_process"; }

  /// Predictive mean and variance for one input.
  std::pair<double, double> predict_with_variance(
      std::span<const double> x) const;

  /// Log marginal likelihood of the fitted model on its training data.
  double log_marginal_likelihood() const { return lml_; }

  const GpHyperParams& hyper_params() const { return hp_; }

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;
  double fit_once(const Matrix& xs, std::span<const double> yc);

  GpHyperParams hp_;
  bool tune_;
  Standardizer scaler_;
  Matrix train_x_;               // standardized
  std::vector<double> alpha_;    // K^-1 (y - mean)
  std::unique_ptr<Cholesky> chol_;
  double y_mean_ = 0.0;
  double lml_ = 0.0;
};

}  // namespace yoso
