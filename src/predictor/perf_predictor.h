#pragma once
// Search-time hardware performance prediction (paper §III.E): sample
// (DNN, accelerator-config) pairs, simulate them once, fit one GP for energy
// and one for latency, then answer queries ~10^3x faster than simulation.

#include <vector>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "linalg/matrix.h"
#include "predictor/gp.h"
#include "util/rng.h"

namespace yoso {

struct ArchFeatures;  // surrogate/accuracy_model.h

/// Feature vector for the regression models: architecture descriptors +
/// hardware configuration descriptors + a couple of interaction terms.
std::vector<double> codesign_features(const Genotype& g,
                                      const AcceleratorConfig& config,
                                      const NetworkSkeleton& skeleton);

/// Width of a co-design feature row (10 arch + 5 hw + dataflow one-hot +
/// 2 interaction terms).
inline constexpr std::size_t kCodesignFeatureDim =
    17 + static_cast<std::size_t>(kNumDataflows);

/// Allocation-free variant for batched hot paths: writes the same row into
/// `out` (>= kCodesignFeatureDim doubles) from pre-computed architecture
/// descriptors, so callers that also need `af` for the accuracy proxy
/// extract layers once per candidate instead of twice.  `af` must be
/// ArchFeatures::compute(g, skeleton) for the genotype this row describes.
void codesign_features_into(const ArchFeatures& af,
                            const AcceleratorConfig& config, double* out);

/// One simulated training sample.
struct PerfSample {
  Genotype genotype;
  AcceleratorConfig config;
  std::vector<double> features;
  double energy_mj = 0.0;
  double latency_ms = 0.0;
};

/// Draws `count` uniform random (genotype, config) pairs and simulates them.
/// The draws always consume `rng` on the calling thread in sample order;
/// only the (read-only) simulation fans out across `pool` (null = inline),
/// so the returned set is identical at any thread count.
std::vector<PerfSample> collect_samples(std::size_t count,
                                        const SystolicSimulator& simulator,
                                        const ConfigSpace& space,
                                        const NetworkSkeleton& skeleton,
                                        Rng& rng, ThreadPool* pool = nullptr);

/// Splits samples into feature matrix + target vectors.
struct SampleMatrix {
  Matrix x;
  std::vector<double> energy;
  std::vector<double> latency;
};
SampleMatrix to_matrix(const std::vector<PerfSample>& samples);

/// The fitted state of a PerformancePredictor: the lockstep latency/energy
/// GP pair plus the skeleton they were fitted for.  This is what the binary
/// artifact format (core/artifact.h) persists so Step-1 products become
/// load-once files shared across search runs.
struct PerfPredictorState {
  NetworkSkeleton skeleton;
  GpRegressorState latency;
  GpRegressorState energy;
  std::size_t refinements = 0;
};

/// The GP pair used inside the search loop.  `backend` selects the GP
/// factorisation: kExact is the paper's O(n^3) fit; kSparse caps both
/// models at `inducing_points` inducing rows (O(n m^2) fit) and unlocks
/// refine() — O(m^2) online folding of accurate-simulator results into the
/// fitted pair during the search.
class PerformancePredictor {
 public:
  explicit PerformancePredictor(NetworkSkeleton skeleton,
                                GpBackend backend = GpBackend::kExact,
                                std::size_t inducing_points = 512)
      : skeleton_(std::move(skeleton)),
        energy_gp_({}, true, backend, inducing_points),
        latency_gp_({}, true, backend, inducing_points) {}

  /// Fits both GPs on simulated samples.
  void fit(const std::vector<PerfSample>& samples);

  double predict_energy_mj(const Genotype& g,
                           const AcceleratorConfig& config) const;
  double predict_latency_ms(const Genotype& g,
                            const AcceleratorConfig& config) const;

  /// Batched predictions over pre-computed feature rows (one row per
  /// candidate, from codesign_features).  One blocked K* product instead of
  /// per-candidate scalar kernel dots; bit-identical to the per-candidate
  /// calls at any thread count.  `pool` must not be a pool this thread is
  /// already running a parallel_for on.
  std::vector<double> predict_energy_mj_batch(const Matrix& features,
                                              ThreadPool* pool = nullptr)
      const;
  std::vector<double> predict_latency_ms_batch(const Matrix& features,
                                               ThreadPool* pool = nullptr)
      const;

  /// Fused batch prediction of both targets over `rows` contiguous raw
  /// feature rows (row-major, kCodesignFeatureDim wide): because both GPs
  /// are fitted on the same inputs, standardization and the K* squared-
  /// distance panel are computed once and shared, roughly halving the
  /// per-candidate GP cost versus the two separate *_batch calls.  Outputs
  /// are bit-identical to predict_latency_ms_batch / predict_energy_mj_batch
  /// at any thread count.
  void predict_latency_energy_batch(const double* features, std::size_t rows,
                                    ThreadPool* pool, double* latency_ms,
                                    double* energy_mj) const;

  /// Folds one accurate-simulator result into both fitted GPs in O(m^2)
  /// each (log-space targets, matching fit()).  Both models are updated in
  /// lockstep so the fused predict_latency_energy_batch contract — same
  /// training inputs — keeps holding.  Returns false (a no-op) when the
  /// backend has no incremental path (exact) or before fit().
  bool refine(const Genotype& g, const AcceleratorConfig& config,
              double latency_ms, double energy_mj);

  /// True when refine() would apply: a fitted sparse-backend pair.
  bool supports_refinement() const {
    return latency_gp_.supports_update() && energy_gp_.supports_update();
  }

  /// Accurate results folded in since the last fit().
  std::size_t refinements() const { return refinements_; }

  bool fitted() const { return fitted_; }
  const NetworkSkeleton& skeleton() const { return skeleton_; }
  const GpRegressor& energy_model() const { return energy_gp_; }
  const GpRegressor& latency_model() const { return latency_gp_; }

  /// Deep-copies the fitted pair out for persistence (ContractViolation
  /// before fit()).
  PerfPredictorState export_state() const;

  /// Rebuilds a fitted predictor from exported (or artifact-loaded) state.
  /// Both GPs are restored through GpRegressor::from_state, so predictions
  /// — including the fused predict_latency_energy_batch and later refine()
  /// calls — are bit-identical to the original pair.  ContractViolation
  /// when the two models disagree on backend or feature width.
  static PerformancePredictor from_state(const PerfPredictorState& state);

 private:
  NetworkSkeleton skeleton_;
  GpRegressor energy_gp_;
  GpRegressor latency_gp_;
  bool fitted_ = false;
  std::size_t refinements_ = 0;
};

}  // namespace yoso
