#include "predictor/regressor.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "base/contract.h"
#include "linalg/matrix.h"

namespace yoso {

std::vector<double> Regressor::predict_all(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
  return out;
}

void Standardizer::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("Standardizer: empty data");
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x(r, c);
  for (double& m : mean_) m /= static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < d; ++c) {
      const double dl = x(r, c) - mean_[c];
      std_[c] += dl * dl;
    }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(x.rows()));
    if (s < 1e-12) s = 1.0;  // constant feature
  }
}

Matrix Standardizer::transform(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("Standardizer: not fitted");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out(r, c) = (x(r, c) - mean_[c]) / std_[c];
  return out;
}

std::vector<double> Standardizer::transform_row(
    std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("Standardizer: not fitted");
  if (x.size() != mean_.size())
    throw std::invalid_argument("Standardizer: dimension mismatch");
  std::vector<double> out(x.size());
  transform_row_into(x, out.data());
  return out;
}

void Standardizer::transform_row_into(std::span<const double> x,
                                      double* out) const {
  if (!fitted()) throw std::logic_error("Standardizer: not fitted");
  if (x.size() != mean_.size())
    throw std::invalid_argument("Standardizer: dimension mismatch");
  if (out == nullptr)
    throw std::invalid_argument("Standardizer: null output buffer");
  for (std::size_t c = 0; c < x.size(); ++c)
    out[c] = (x[c] - mean_[c]) / std_[c];
}

Standardizer Standardizer::from_moments(std::vector<double> mean,
                                        std::vector<double> stddev) {
  YOSO_REQUIRE(!mean.empty() && mean.size() == stddev.size(),
               "Standardizer::from_moments: need matching non-empty moment "
               "vectors, got ", mean.size(), " means and ", stddev.size(),
               " stddevs");
  for (std::size_t c = 0; c < stddev.size(); ++c)
    YOSO_REQUIRE(stddev[c] > 0.0,
                 "Standardizer::from_moments: non-positive stddev at column ",
                 c);
  Standardizer s;
  s.mean_ = std::move(mean);
  s.std_ = std::move(stddev);
  return s;
}

}  // namespace yoso
