#pragma once
// The six regression families compared in Fig 4: linear least squares,
// ridge, k-nearest-neighbours, decision tree (CART), random forest, and the
// Gaussian process (in gp.h).  All operate on standardized features.

#include <cstdint>
#include <memory>

#include "linalg/matrix.h"
#include "predictor/regressor.h"
#include "util/rng.h"

namespace yoso {

/// Ordinary least squares with a bias column (lambda == 0) or ridge.
class LinearRegressor : public Regressor {
 public:
  /// lambda: L2 regularisation strength (0 = plain least squares).
  explicit LinearRegressor(double lambda = 0.0, std::string name = "linear")
      : lambda_(lambda), name_(std::move(name)) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return name_; }

 private:
  double lambda_;
  std::string name_;
  Standardizer scaler_;
  std::vector<double> weights_;  // d + 1 (bias last)
};

/// Distance-weighted k-nearest-neighbour regression.
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(int k = 8) : k_(k) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "knn"; }

 private:
  int k_;
  Standardizer scaler_;
  Matrix train_x_;
  std::vector<double> train_y_;
};

/// CART regression tree with variance-reduction splits.
class DecisionTreeRegressor : public Regressor {
 public:
  DecisionTreeRegressor(int max_depth = 12, int min_samples_leaf = 4,
                        int feature_subset = 0, std::uint64_t seed = 1)
      : max_depth_(max_depth),
        min_samples_leaf_(min_samples_leaf),
        feature_subset_(feature_subset),
        seed_(seed) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "decision_tree"; }

 private:
  struct Node {
    int feature = -1;       // -1: leaf
    double threshold = 0.0;
    double value = 0.0;     // leaf prediction
    int left = -1, right = -1;
  };

  int build(const Matrix& x, std::span<const double> y,
            std::vector<std::size_t>& idx, std::size_t begin, std::size_t end,
            int depth, Rng& rng);

  int max_depth_;
  int min_samples_leaf_;
  int feature_subset_;  // 0 = all features
  std::uint64_t seed_;
  std::vector<Node> nodes_;
};

/// Bagged ensemble of randomized CART trees.
class RandomForestRegressor : public Regressor {
 public:
  RandomForestRegressor(int num_trees = 40, int max_depth = 12,
                        int min_samples_leaf = 3, std::uint64_t seed = 17)
      : num_trees_(num_trees),
        max_depth_(max_depth),
        min_samples_leaf_(min_samples_leaf),
        seed_(seed) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "random_forest"; }

 private:
  int num_trees_;
  int max_depth_;
  int min_samples_leaf_;
  std::uint64_t seed_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace yoso
