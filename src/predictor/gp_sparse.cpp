// Sparse (Nystrom / DTC) backend of GpRegressor: deterministic
// farthest-point inducing selection, an O(n m^2) fit over the same blocked
// distance + exp kernel layer the exact path uses, and an O(m^2) rank-1
// update path for online refinement.
//
// Model: with m inducing rows Z (a subset of the standardized training
// rows), information matrix A = nv * K_mm + K_mn K_nm and b = K_mn (y -
// mean), the predictive mean is k_m(x)^T A^-1 b — so the fitted state
// stores Z as the training panel and w = A^-1 b as alpha, and every
// predict path (predict, predict_batch, predict_means_pair) runs the
// exact backend's per-row chain unchanged.  update(x, y) folds one new
// observation in by A += k k^T (rank-1 Cholesky update), b += k (y -
// mean), and one O(m^2) re-solve; the inducing set, input scaler and
// target mean stay frozen from fit().

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "base/contract.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "predictor/gp.h"
#include "util/stats.h"

namespace yoso {
namespace {

// Per-lengthscale panels shared by the noise-grid points: the kernel
// matrices depend only on the lengthscale, so the dominant O(n m^2) gram
// product is paid once per lengthscale instead of once per grid point.
struct SparsePanels {
  Matrix kmm;                          // m x m inducing kernel
  Matrix gram;                         // K_mn K_nm
  std::vector<double> b;               // K_mn (y - mean)
  std::unique_ptr<Cholesky> chol_kmm;  // factor of kmm (DTC variance, lml)
  double kmm_logdet = 0.0;
};

void build_panels(const GpHyperParams& hp, const Matrix& d_mm,
                  const Matrix& d_nm, std::span<const double> yc,
                  SparsePanels* p) {
  const std::size_t n = d_nm.rows();
  const std::size_t m = d_mm.rows();
  const double scale = -1.0 / (2.0 * hp.lengthscale * hp.lengthscale);
  p->kmm = Matrix(m, m);
  for (std::size_t i = 0; i < m; ++i)
    kernels::exp_scale(d_mm.data().data() + i * m,
                       p->kmm.data().data() + i * m, m, scale,
                       hp.signal_variance);
  Matrix knm(n, m);
  for (std::size_t i = 0; i < n; ++i)
    kernels::exp_scale(d_nm.data().data() + i * m, knm.data().data() + i * m,
                       m, scale, hp.signal_variance);
  const Matrix kmn = knm.transpose();
  p->gram = Matrix(m, m);
  kernels::gemm(kmn.data().data(), knm.data().data(), p->gram.data().data(),
                m, n, m);
  p->b = knm.matvec_transposed(yc);
  p->chol_kmm = std::make_unique<Cholesky>(p->kmm);
  p->kmm_logdet = p->chol_kmm->log_determinant();
}

// One noise-grid point: factor A = nv * K_mm + gram, solve for the
// weights, and return the DTC log marginal likelihood via the matrix
// determinant lemma:
//   log|Q + nv I| = (n - m) log nv + log|A| - log|K_mm|
//   y^T (Q + nv I)^-1 y = (y^T y - b^T A^-1 b) / nv
double eval_noise_point(const SparsePanels& p, double nv, double y_sq,
                        std::size_t n, std::unique_ptr<Cholesky>* chol_out,
                        std::vector<double>* alpha_out) {
  const std::size_t m = p.kmm.rows();
  Matrix a = p.gram;
  const double* kd = p.kmm.data().data();
  double* ad = a.data().data();
  for (std::size_t i = 0; i < m * m; ++i) ad[i] += nv * kd[i];
  auto chol = std::make_unique<Cholesky>(a);
  std::vector<double> alpha = chol->solve(p.b);
  const double quad = (y_sq - kernels::dot(p.b.data(), alpha.data(), m)) / nv;
  const double logdet_cov = static_cast<double>(n - m) * std::log(nv) +
                            chol->log_determinant() - p.kmm_logdet;
  const double lml = -0.5 * quad - 0.5 * logdet_cov -
                     0.5 * static_cast<double>(n) *
                         std::log(2.0 * std::numbers::pi);
  *chol_out = std::move(chol);
  *alpha_out = std::move(alpha);
  return lml;
}

}  // namespace

void GpRegressor::select_inducing_rows(const Matrix& xs, std::size_t m) {
  YOSO_TRACE_SPAN("gp.sparse_select");
  YOSO_REQUIRE(m >= 1, "GpRegressor: inducing-set size m must be >= 1");
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();
  inducing_idx_.clear();
  inducing_idx_.reserve(m);
  if (m >= n) {
    for (std::size_t i = 0; i < n; ++i) inducing_idx_.push_back(i);
  } else {
    // Greedy k-center (farthest-point) over the standardized rows: the
    // seed is the row with the largest squared norm (ties -> lowest
    // index) and every step adds the row farthest from the chosen set.
    // The sweep is serial and depends only on the input rows — never on
    // targets, hyper-parameters or thread count — so two models fitted on
    // the same X select identical inducing sets, the property
    // predict_means_pair's shared-panel contract rests on.  Each step
    // costs one SIMD 1 x n distance row plus an O(n) min/argmax scan.
    const kernels::PackedRows packed_all =
        kernels::pack_rows(xs.data().data(), n, d);
    std::size_t pick = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (packed_all.norms[i] > packed_all.norms[pick]) pick = i;
    std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
    std::vector<double> dist_row(n);
    for (std::size_t k = 0; k < m; ++k) {
      inducing_idx_.push_back(pick);
      if (k + 1 == m) break;
      kernels::pairwise_sq_dists(xs.row(pick).data(), 1, packed_all,
                                 dist_row.data(), nullptr);
      std::size_t next = 0;
      double best = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        min_d2[i] = std::min(min_d2[i], dist_row[i]);
        if (min_d2[i] > best) {
          best = min_d2[i];
          next = i;
        }
      }
      pick = next;
    }
  }
  const std::size_t mm = inducing_idx_.size();
  train_x_ = Matrix(mm, d);
  double* dst = train_x_.data().data();
  for (std::size_t r = 0; r < mm; ++r) {
    const std::span<const double> src = xs.row(inducing_idx_[r]);
    std::copy(src.begin(), src.end(), dst + r * d);
  }
  packed_train_ = kernels::pack_rows(dst, mm, d);
}

void GpRegressor::fit_sparse(const Matrix& x, std::span<const double> y) {
  YOSO_TRACE_SPAN("gp.sparse_fit");
  scaler_.fit(x);
  const Matrix xs = scaler_.transform(x);
  const std::size_t n = xs.rows();

  y_mean_ = mean(y);
  std::vector<double> yc(y.size());
  double y_sq = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    yc[i] = y[i] - y_mean_;
    y_sq += yc[i] * yc[i];
  }
  const double y_var = std::max(y_sq / static_cast<double>(n), 1e-12);

  const std::size_t m =
      std::min(std::max<std::size_t>(inducing_target_, 1), n);
  select_inducing_rows(xs, m);
  const std::size_t mm = train_x_.rows();

  // Two distance panels per fit (vs the exact path's one full n x n
  // matrix); the tuning grid below re-exponentiates them per grid point,
  // mirroring the exact flow's build-once discipline.
  Matrix d_nm(n, mm);
  kernels::pairwise_sq_dists(xs.data().data(), n, packed_train_,
                             d_nm.data().data(), nullptr);
  dist_builds_.cross = 1;
  Matrix d_mm(mm, mm);
  kernels::pairwise_sq_dists(train_x_.data().data(), mm, packed_train_,
                             d_mm.data().data(), nullptr);
  dist_builds_.inducing = 1;

  SparsePanels panels;
  if (!tune_) {
    build_panels(hp_, d_mm, d_nm, yc, &panels);
    lml_ = eval_noise_point(panels, hp_.noise_variance, y_sq, n, &chol_,
                            &alpha_);
    chol_kmm_ = std::move(panels.chol_kmm);
    b_ = std::move(panels.b);
    return;
  }

  // Same 15-point grid as the exact backend, with the gram/b panels hoisted
  // per lengthscale (the noise term only shifts A's diagonal load).
  const double base_l = std::sqrt(static_cast<double>(x.cols()));
  GpHyperParams best_hp;
  double best_lml = -1e300;
  std::vector<double> best_alpha;
  std::vector<double> best_b;
  std::unique_ptr<Cholesky> best_chol;
  std::unique_ptr<Cholesky> best_kmm;
  std::unique_ptr<Cholesky> trial_chol;
  std::vector<double> trial_alpha;
  for (double lf : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    hp_.lengthscale = base_l * lf;
    hp_.signal_variance = y_var;
    build_panels(hp_, d_mm, d_nm, yc, &panels);
    bool lf_won = false;
    for (double nf : {1e-4, 1e-3, 1e-2}) {
      hp_.noise_variance = y_var * nf;
      const double lml = eval_noise_point(panels, hp_.noise_variance, y_sq, n,
                                          &trial_chol, &trial_alpha);
      if (lml > best_lml) {
        best_lml = lml;
        best_hp = hp_;
        best_alpha = std::move(trial_alpha);
        best_chol = std::move(trial_chol);
        lf_won = true;
      }
    }
    if (lf_won) {
      best_kmm = std::move(panels.chol_kmm);
      best_b = std::move(panels.b);
    }
  }
  // As in the exact flow, the winning grid point's factorisation IS the
  // fitted state — no redundant refit.
  hp_ = best_hp;
  alpha_ = std::move(best_alpha);
  chol_ = std::move(best_chol);
  chol_kmm_ = std::move(best_kmm);
  b_ = std::move(best_b);
  lml_ = best_lml;
}

void GpRegressor::update(std::span<const double> x, double y) {
  YOSO_TRACE_SPAN("gp.sparse_update");
  YOSO_REQUIRE(backend_ == GpBackend::kSparse,
               "GpRegressor::update: the exact backend has no incremental "
               "path — construct with GpBackend::kSparse");
  YOSO_REQUIRE(!alpha_.empty(), "GpRegressor::update: not fitted");
  YOSO_REQUIRE(x.size() == train_x_.cols(),
               "GpRegressor::update: feature dimension ", x.size(),
               " != fitted dimension ", train_x_.cols());
  const std::size_t m = train_x_.rows();
  const double l = hp_.lengthscale;
  const double scale = -1.0 / (2.0 * l * l);
  // Scratch is member-owned and sized once, so a refinement stream of
  // updates allocates only inside the O(m^2) solve.
  upd_xs_.resize(train_x_.cols());
  upd_k_.resize(m);
  scaler_.transform_row_into(x, upd_xs_.data());
  kernels::pairwise_sq_dists(upd_xs_.data(), 1, packed_train_, upd_k_.data(),
                             nullptr);
  kernels::exp_scale(upd_k_.data(), upd_k_.data(), m, scale,
                     hp_.signal_variance);
  // A += k k^T (rank-1, O(m^2)), b += k (y - mean), one re-solve.  No
  // distance panel is rebuilt — distance_builds() stays flat, which is the
  // counter-based no-refit proof the tests assert.
  chol_->rank1_update(upd_k_);
  const double r = y - y_mean_;
  for (std::size_t i = 0; i < m; ++i) b_[i] += upd_k_[i] * r;
  alpha_ = chol_->solve(b_);
  ++updates_applied_;
  obs::counter_add("gp.sparse_updates", 1);
}

}  // namespace yoso
