#include "predictor/perf_predictor.h"

#include <cmath>
#include <stdexcept>

#include "obs/trace.h"
#include "surrogate/accuracy_model.h"
#include "util/thread_pool.h"

namespace yoso {

std::vector<double> codesign_features(const Genotype& g,
                                      const AcceleratorConfig& config,
                                      const NetworkSkeleton& skeleton) {
  const ArchFeatures af = ArchFeatures::compute(g, skeleton);
  std::vector<double> f;
  f.reserve(24);
  // Architecture.
  f.push_back(af.log10_macs);
  f.push_back(af.log10_params);
  f.push_back(af.conv_frac);
  f.push_back(af.dw_frac);
  f.push_back(af.pool_frac);
  f.push_back(af.k5_frac);
  f.push_back(af.depth_normal);
  f.push_back(af.depth_reduction);
  f.push_back(af.loose_normal);
  f.push_back(af.loose_reduction);
  // Hardware.
  f.push_back(std::log2(static_cast<double>(config.pe_rows)));
  f.push_back(std::log2(static_cast<double>(config.pe_cols)));
  f.push_back(std::log2(static_cast<double>(config.num_pes())));
  f.push_back(std::log2(static_cast<double>(config.g_buf_kb)));
  f.push_back(std::log2(static_cast<double>(config.r_buf_bytes)));
  for (int d = 0; d < kNumDataflows; ++d)
    f.push_back(config.dataflow == static_cast<Dataflow>(d) ? 1.0 : 0.0);
  // Interactions: compute intensity and weight-to-buffer pressure.
  f.push_back(af.log10_macs -
              std::log10(static_cast<double>(config.num_pes())));
  f.push_back(af.log10_params -
              std::log10(static_cast<double>(config.g_buf_kb) * 1024.0 / 2.0));
  return f;
}

std::vector<PerfSample> collect_samples(std::size_t count,
                                        const SystolicSimulator& simulator,
                                        const ConfigSpace& space,
                                        const NetworkSkeleton& skeleton,
                                        Rng& rng, std::size_t threads) {
  YOSO_TRACE_SPAN("step1.collect_samples");
  obs::counter_add("step1.samples", count);
  // Serial phase: all RNG draws, in the same per-sample order as the old
  // fully-serial loop (genotype first, then the config actions).
  std::vector<PerfSample> samples(count);
  for (std::size_t i = 0; i < count; ++i) {
    PerfSample& s = samples[i];
    s.genotype = random_genotype(rng);
    std::vector<int> actions(ConfigSpace::kActionCount);
    for (int a = 0; a < ConfigSpace::kActionCount; ++a)
      actions[static_cast<std::size_t>(a)] =
          rng.uniform_int(0, space.cardinality(a) - 1);
    s.config = space.decode(actions);
  }
  // Parallel phase: simulation dominates collection cost and is read-only.
  ThreadPool pool(ThreadPool::resolve_threads(threads) - 1);
  pool.parallel_for(0, count, [&](std::size_t i) {
    PerfSample& s = samples[i];
    const SimulationResult r =
        simulator.simulate_network(s.genotype, skeleton, s.config);
    s.energy_mj = r.energy_mj;
    s.latency_ms = r.latency_ms;
    s.features = codesign_features(s.genotype, s.config, skeleton);
  });
  return samples;
}

SampleMatrix to_matrix(const std::vector<PerfSample>& samples) {
  if (samples.empty()) throw std::invalid_argument("to_matrix: no samples");
  SampleMatrix m;
  m.x = Matrix(samples.size(), samples.front().features.size());
  m.energy.reserve(samples.size());
  m.latency.reserve(samples.size());
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const auto& f = samples[r].features;
    if (f.size() != m.x.cols())
      throw std::invalid_argument("to_matrix: ragged features");
    for (std::size_t c = 0; c < f.size(); ++c) m.x(r, c) = f[c];
    m.energy.push_back(samples[r].energy_mj);
    m.latency.push_back(samples[r].latency_ms);
  }
  return m;
}

void PerformancePredictor::fit(const std::vector<PerfSample>& samples) {
  YOSO_TRACE_SPAN("step1.fit_gp");
  const SampleMatrix m = to_matrix(samples);
  // Both targets are positive with heavy upper tails (NLR configs are many
  // times slower than OS); the GPs regress log(y) and predictions
  // exponentiate back.
  std::vector<double> log_e(m.energy.size()), log_l(m.latency.size());
  for (std::size_t i = 0; i < m.energy.size(); ++i) {
    log_e[i] = std::log(std::max(m.energy[i], 1e-9));
    log_l[i] = std::log(std::max(m.latency[i], 1e-9));
  }
  energy_gp_.fit(m.x, log_e);
  latency_gp_.fit(m.x, log_l);
  fitted_ = true;
}

double PerformancePredictor::predict_energy_mj(
    const Genotype& g, const AcceleratorConfig& config) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  return std::exp(energy_gp_.predict(codesign_features(g, config, skeleton_)));
}

double PerformancePredictor::predict_latency_ms(
    const Genotype& g, const AcceleratorConfig& config) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  return std::exp(
      latency_gp_.predict(codesign_features(g, config, skeleton_)));
}

std::vector<double> PerformancePredictor::predict_energy_mj_batch(
    const Matrix& features, ThreadPool* pool) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  std::vector<double> out = energy_gp_.predict_batch(features, pool);
  for (double& v : out) v = std::exp(v);
  return out;
}

std::vector<double> PerformancePredictor::predict_latency_ms_batch(
    const Matrix& features, ThreadPool* pool) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  std::vector<double> out = latency_gp_.predict_batch(features, pool);
  for (double& v : out) v = std::exp(v);
  return out;
}

}  // namespace yoso
