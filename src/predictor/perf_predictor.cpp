#include "predictor/perf_predictor.h"

#include <cmath>
#include <stdexcept>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "base/contract.h"
#include "linalg/matrix.h"
#include "obs/trace.h"
#include "predictor/gp.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace yoso {

void codesign_features_into(const ArchFeatures& af,
                            const AcceleratorConfig& config, double* out) {
  YOSO_REQUIRE(out != nullptr, "codesign_features_into: null output");
  // Architecture.
  *out++ = af.log10_macs;
  *out++ = af.log10_params;
  *out++ = af.conv_frac;
  *out++ = af.dw_frac;
  *out++ = af.pool_frac;
  *out++ = af.k5_frac;
  *out++ = af.depth_normal;
  *out++ = af.depth_reduction;
  *out++ = af.loose_normal;
  *out++ = af.loose_reduction;
  // Hardware.
  *out++ = std::log2(static_cast<double>(config.pe_rows));
  *out++ = std::log2(static_cast<double>(config.pe_cols));
  *out++ = std::log2(static_cast<double>(config.num_pes()));
  *out++ = std::log2(static_cast<double>(config.g_buf_kb));
  *out++ = std::log2(static_cast<double>(config.r_buf_bytes));
  for (int d = 0; d < kNumDataflows; ++d)
    *out++ = config.dataflow == static_cast<Dataflow>(d) ? 1.0 : 0.0;
  // Interactions: compute intensity and weight-to-buffer pressure.
  *out++ = af.log10_macs - std::log10(static_cast<double>(config.num_pes()));
  *out++ = af.log10_params -
           std::log10(static_cast<double>(config.g_buf_kb) * 1024.0 / 2.0);
}

std::vector<double> codesign_features(const Genotype& g,
                                      const AcceleratorConfig& config,
                                      const NetworkSkeleton& skeleton) {
  const ArchFeatures af = ArchFeatures::compute(g, skeleton);
  std::vector<double> f(kCodesignFeatureDim);
  codesign_features_into(af, config, f.data());
  return f;
}

std::vector<PerfSample> collect_samples(std::size_t count,
                                        const SystolicSimulator& simulator,
                                        const ConfigSpace& space,
                                        const NetworkSkeleton& skeleton,
                                        Rng& rng, ThreadPool* pool) {
  YOSO_TRACE_SPAN("step1.collect_samples");
  obs::counter_add("step1.samples", count);
  // Serial phase: all RNG draws, in the same per-sample order as the old
  // fully-serial loop (genotype first, then the config actions).
  std::vector<PerfSample> samples(count);
  std::vector<int> actions(ConfigSpace::kActionCount);  // overwritten per sample
  for (std::size_t i = 0; i < count; ++i) {
    PerfSample& s = samples[i];
    s.genotype = random_genotype(rng);
    for (int a = 0; a < ConfigSpace::kActionCount; ++a)
      actions[static_cast<std::size_t>(a)] =
          rng.uniform_int(0, space.cardinality(a) - 1);
    s.config = space.decode(actions);
  }
  // Parallel phase: simulation dominates collection cost and is read-only.
  // The injected pool is shared with the rest of the framework
  // (util/exec_context.h); null runs inline.
  ThreadPool inline_pool(0);
  (pool != nullptr ? *pool : inline_pool)
      .parallel_for(0, count, [&](std::size_t i) {
        PerfSample& s = samples[i];
        const SimulationResult r =
            simulator.simulate_network(s.genotype, skeleton, s.config);
        s.energy_mj = r.energy_mj;
        s.latency_ms = r.latency_ms;
        s.features = codesign_features(s.genotype, s.config, skeleton);
      });
  return samples;
}

SampleMatrix to_matrix(const std::vector<PerfSample>& samples) {
  if (samples.empty()) throw std::invalid_argument("to_matrix: no samples");
  SampleMatrix m;
  m.x = Matrix(samples.size(), samples.front().features.size());
  m.energy.reserve(samples.size());
  m.latency.reserve(samples.size());
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const auto& f = samples[r].features;
    if (f.size() != m.x.cols())
      throw std::invalid_argument("to_matrix: ragged features");
    for (std::size_t c = 0; c < f.size(); ++c) m.x(r, c) = f[c];
    m.energy.push_back(samples[r].energy_mj);
    m.latency.push_back(samples[r].latency_ms);
  }
  return m;
}

void PerformancePredictor::fit(const std::vector<PerfSample>& samples) {
  YOSO_TRACE_SPAN("step1.fit_gp");
  const SampleMatrix m = to_matrix(samples);
  // Both targets are positive with heavy upper tails (NLR configs are many
  // times slower than OS); the GPs regress log(y) and predictions
  // exponentiate back.
  std::vector<double> log_e(m.energy.size()), log_l(m.latency.size());
  for (std::size_t i = 0; i < m.energy.size(); ++i) {
    log_e[i] = std::log(std::max(m.energy[i], 1e-9));
    log_l[i] = std::log(std::max(m.latency[i], 1e-9));
  }
  energy_gp_.fit(m.x, log_e);
  latency_gp_.fit(m.x, log_l);
  fitted_ = true;
  refinements_ = 0;
}

bool PerformancePredictor::refine(const Genotype& g,
                                  const AcceleratorConfig& config,
                                  double latency_ms, double energy_mj) {
  if (!supports_refinement()) return false;
  const std::vector<double> f = codesign_features(g, config, skeleton_);
  // Same log transform as fit(); updating both models with the same input
  // row keeps their training fingerprints in lockstep.
  latency_gp_.update(f, std::log(std::max(latency_ms, 1e-9)));
  energy_gp_.update(f, std::log(std::max(energy_mj, 1e-9)));
  ++refinements_;
  return true;
}

double PerformancePredictor::predict_energy_mj(
    const Genotype& g, const AcceleratorConfig& config) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  return std::exp(energy_gp_.predict(codesign_features(g, config, skeleton_)));
}

double PerformancePredictor::predict_latency_ms(
    const Genotype& g, const AcceleratorConfig& config) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  return std::exp(
      latency_gp_.predict(codesign_features(g, config, skeleton_)));
}

std::vector<double> PerformancePredictor::predict_energy_mj_batch(
    const Matrix& features, ThreadPool* pool) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  std::vector<double> out = energy_gp_.predict_batch(features, pool);
  for (double& v : out) v = std::exp(v);
  return out;
}

std::vector<double> PerformancePredictor::predict_latency_ms_batch(
    const Matrix& features, ThreadPool* pool) const {
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  std::vector<double> out = latency_gp_.predict_batch(features, pool);
  for (double& v : out) v = std::exp(v);
  return out;
}

void PerformancePredictor::predict_latency_energy_batch(
    const double* features, std::size_t rows, ThreadPool* pool,
    double* latency_ms, double* energy_mj) const {
  YOSO_REQUIRE(rows == 0 || (features != nullptr && latency_ms != nullptr &&
                             energy_mj != nullptr),
               "predict_latency_energy_batch: null input/output");
  if (!fitted_) throw std::logic_error("PerformancePredictor: not fitted");
  // Both GPs were fitted on the same feature matrix (fit() above), which is
  // the precondition letting the pair call share one standardization and
  // one K* distance panel.
  GpRegressor::predict_means_pair(latency_gp_, energy_gp_, features, rows,
                                  latency_ms, energy_mj, pool);
  for (std::size_t r = 0; r < rows; ++r) {
    latency_ms[r] = std::exp(latency_ms[r]);
    energy_mj[r] = std::exp(energy_mj[r]);
  }
}

PerfPredictorState PerformancePredictor::export_state() const {
  YOSO_REQUIRE(fitted_, "PerformancePredictor::export_state: not fitted");
  PerfPredictorState s;
  s.skeleton = skeleton_;
  s.latency = latency_gp_.export_state();
  s.energy = energy_gp_.export_state();
  s.refinements = refinements_;
  return s;
}

PerformancePredictor PerformancePredictor::from_state(
    const PerfPredictorState& state) {
  YOSO_REQUIRE(state.latency.backend == state.energy.backend,
               "PerformancePredictor::from_state: latency/energy models "
               "disagree on backend");
  YOSO_REQUIRE(state.latency.train_x.cols() == state.energy.train_x.cols(),
               "PerformancePredictor::from_state: latency/energy models "
               "disagree on feature width (", state.latency.train_x.cols(),
               " vs ", state.energy.train_x.cols(), ")");
  PerformancePredictor p(state.skeleton, state.latency.backend,
                         state.latency.inducing_target);
  p.latency_gp_ = GpRegressor::from_state(state.latency);
  p.energy_gp_ = GpRegressor::from_state(state.energy);
  p.fitted_ = true;
  p.refinements_ = state.refinements;
  return p;
}

}  // namespace yoso
