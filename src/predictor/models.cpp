#include "predictor/models.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "base/contract.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace yoso {

// ------------------------------------------------------- LinearRegressor

void LinearRegressor::fit(const Matrix& x, std::span<const double> y) {
  scaler_.fit(x);
  const Matrix xs = scaler_.transform(x);
  // Append a bias column.
  Matrix xb(xs.rows(), xs.cols() + 1);
  for (std::size_t r = 0; r < xs.rows(); ++r) {
    for (std::size_t c = 0; c < xs.cols(); ++c) xb(r, c) = xs(r, c);
    xb(r, xs.cols()) = 1.0;
  }
  weights_ = ridge_solve(xb, y, lambda_);
}

double LinearRegressor::predict(std::span<const double> x) const {
  if (weights_.empty()) throw std::logic_error("LinearRegressor: not fitted");
  const auto xs = scaler_.transform_row(x);
  double acc = weights_.back();
  for (std::size_t c = 0; c < xs.size(); ++c) acc += weights_[c] * xs[c];
  return acc;
}

// ---------------------------------------------------------- KnnRegressor

void KnnRegressor::fit(const Matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0)
    throw std::invalid_argument("KnnRegressor::fit: bad shapes");
  scaler_.fit(x);
  train_x_ = scaler_.transform(x);
  train_y_.assign(y.begin(), y.end());
}

double KnnRegressor::predict(std::span<const double> x) const {
  if (train_y_.empty()) throw std::logic_error("KnnRegressor: not fitted");
  const auto xs = scaler_.transform_row(x);
  const int k = std::min<int>(k_, static_cast<int>(train_y_.size()));
  // Partial sort of (distance, index).
  std::vector<std::pair<double, std::size_t>> d;
  d.reserve(train_x_.rows());
  for (std::size_t r = 0; r < train_x_.rows(); ++r)
    d.emplace_back(squared_distance(train_x_.row(r), xs), r);
  std::partial_sort(d.begin(), d.begin() + k, d.end());
  double wsum = 0.0, acc = 0.0;
  for (int i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(d[static_cast<std::size_t>(i)].first) + 1e-6);
    acc += w * train_y_[d[static_cast<std::size_t>(i)].second];
    wsum += w;
  }
  return acc / wsum;
}

// ----------------------------------------------- DecisionTreeRegressor

void DecisionTreeRegressor::fit(const Matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0)
    throw std::invalid_argument("DecisionTreeRegressor::fit: bad shapes");
  nodes_.clear();
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Rng rng(seed_);
  build(x, y, idx, 0, idx.size(), 0, rng);
}

int DecisionTreeRegressor::build(const Matrix& x, std::span<const double> y,
                                 std::vector<std::size_t>& idx,
                                 std::size_t begin, std::size_t end,
                                 int depth, Rng& rng) {
  YOSO_DCHECK(begin < end && end <= idx.size(),
              "DecisionTreeRegressor::build: bad range [", begin, ", ", end,
              ")");
  const std::size_t n = end - begin;
  double mean = 0.0;
  for (std::size_t i = begin; i < end; ++i) mean += y[idx[i]];
  mean /= static_cast<double>(n);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[static_cast<std::size_t>(node_id)].value = mean;

  if (depth >= max_depth_ ||
      n < 2 * static_cast<std::size_t>(min_samples_leaf_))
    return node_id;

  // Candidate features (all, or a random subset for forest trees).
  std::vector<int> features;
  const int d = static_cast<int>(x.cols());
  if (feature_subset_ > 0 && feature_subset_ < d) {
    const auto perm = rng.permutation(static_cast<std::size_t>(d));
    for (int i = 0; i < feature_subset_; ++i)
      features.push_back(static_cast<int>(perm[static_cast<std::size_t>(i)]));
  } else {
    features.resize(static_cast<std::size_t>(d));
    std::iota(features.begin(), features.end(), 0);
  }

  double best_score = std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::size_t>> vals(n);
  for (int f : features) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = idx[begin + i];
      vals[i] = {x(row, static_cast<std::size_t>(f)), row};
    }
    std::sort(vals.begin(), vals.end());
    // Prefix sums for O(n) split evaluation.
    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total_sum += y[vals[i].second];
      total_sq += y[vals[i].second] * y[vals[i].second];
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double yv = y[vals[i].second];
      left_sum += yv;
      left_sq += yv * yv;
      const std::size_t nl = i + 1, nr = n - nl;
      if (nl < static_cast<std::size_t>(min_samples_leaf_) ||
          nr < static_cast<std::size_t>(min_samples_leaf_))
        continue;
      if (vals[i].first == vals[i + 1].first) continue;  // no split point
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse_left = left_sq - left_sum * left_sum / nl;
      const double sse_right = right_sq - right_sum * right_sum / nr;
      const double score = sse_left + sse_right;
      if (score < best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition idx[begin..end) by the chosen split.
  const auto mid_it = std::stable_partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return x(row, static_cast<std::size_t>(best_feature)) <=
               best_threshold;
      });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split

  const int left = build(x, y, idx, begin, mid, depth + 1, rng);
  const int right = build(x, y, idx, mid, end, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  if (nodes_.empty())
    throw std::logic_error("DecisionTreeRegressor: not fitted");
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    cur = x[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].value;
}

// ----------------------------------------------- RandomForestRegressor

void RandomForestRegressor::fit(const Matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0)
    throw std::invalid_argument("RandomForestRegressor::fit: bad shapes");
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(num_trees_));
  Rng rng(seed_);
  const int subset =
      std::max(1, static_cast<int>(x.cols()) * 2 / 3);
  // Bootstrap buffers are fully overwritten per tree; allocate them once.
  Matrix bx(x.rows(), x.cols());
  std::vector<double> by(x.rows());
  for (int t = 0; t < num_trees_; ++t) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const std::size_t src = rng.uniform_index(x.rows());
      for (std::size_t c = 0; c < x.cols(); ++c) bx(r, c) = x(src, c);
      by[r] = y[src];
    }
    DecisionTreeRegressor tree(max_depth_, min_samples_leaf_, subset,
                               rng.next_u64());
    tree.fit(bx, by);
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::predict(std::span<const double> x) const {
  if (trees_.empty())
    throw std::logic_error("RandomForestRegressor: not fitted");
  double acc = 0.0;
  for (const auto& t : trees_) acc += t.predict(x);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace yoso
