#pragma once
// Clang thread-safety annotations + annotated synchronization primitives.
//
// Under clang the YOSO_* macros expand to the thread-safety-analysis
// attributes, so the lock discipline DESIGN.md §9 states in prose is checked
// at compile time by -Wthread-safety (enabled, with -Werror, by the clang CI
// job; see DESIGN.md §11 for the conventions).  Under gcc every macro is a
// no-op, so the tree builds identically there — the annotations cost nothing
// at runtime either way.
//
// Three primitives build on the macros:
//
//   Mutex / MutexLock      an annotated std::mutex and its scoped guard;
//                          Mutex::wait(cv) lets a condition variable block
//                          while the analysis still tracks the capability.
//   ThreadRole /           a *fictional* capability (no lock at runtime)
//   ThreadRoleGuard        naming a serial execution context, e.g. "the
//                          search coordinator thread".  State declared
//                          YOSO_GUARDED_BY(role_) can only be touched where
//                          a ThreadRoleGuard is visibly in scope — a worker
//                          lambda, whose body the analysis checks as its own
//                          function with an empty capability set, fails to
//                          compile.  This is how FastEvaluator's memo cache
//                          encodes "main-thread-only" (core/evaluator.h).
//   Synchronized<T>        a value merged with the mutex that guards it;
//                          access only through with_lock(), so unguarded
//                          reads are unrepresentable rather than diagnosed.

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define YOSO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define YOSO_THREAD_ANNOTATION(x)  // no-op under gcc and others
#endif

// Type attributes.
#define YOSO_CAPABILITY(x) YOSO_THREAD_ANNOTATION(capability(x))
#define YOSO_SCOPED_CAPABILITY YOSO_THREAD_ANNOTATION(scoped_lockable)

// Data-member attributes.
#define YOSO_GUARDED_BY(x) YOSO_THREAD_ANNOTATION(guarded_by(x))
#define YOSO_PT_GUARDED_BY(x) YOSO_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attributes.
#define YOSO_REQUIRES(...) \
  YOSO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define YOSO_REQUIRES_SHARED(...) \
  YOSO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define YOSO_ACQUIRE(...) \
  YOSO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define YOSO_ACQUIRE_SHARED(...) \
  YOSO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define YOSO_RELEASE(...) \
  YOSO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define YOSO_RELEASE_SHARED(...) \
  YOSO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define YOSO_TRY_ACQUIRE(...) \
  YOSO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define YOSO_EXCLUDES(...) YOSO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define YOSO_ASSERT_CAPABILITY(x) \
  YOSO_THREAD_ANNOTATION(assert_capability(x))
#define YOSO_RETURN_CAPABILITY(x) YOSO_THREAD_ANNOTATION(lock_returned(x))
#define YOSO_NO_THREAD_SAFETY_ANALYSIS \
  YOSO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace yoso {

/// std::mutex carrying the `capability` attribute so the analysis can track
/// it.  Satisfies BasicLockable, so std::lock_guard etc. still work, but
/// prefer MutexLock, which keeps the analysis informed.
class YOSO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() YOSO_ACQUIRE() { m_.lock(); }
  void unlock() YOSO_RELEASE() { m_.unlock(); }
  bool try_lock() YOSO_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Blocks on `cv` with this (held) mutex released for the duration of the
  /// wait, exactly like std::condition_variable::wait.  The mutex is held
  /// again when this returns, which is also what the analysis assumes — the
  /// release/reacquire inside the wait is invisible to it, the same
  /// compromise every annotated mutex + condvar pairing makes.
  void wait(std::condition_variable& cv) YOSO_REQUIRES(this) {
    std::unique_lock<std::mutex> relock(m_, std::adopt_lock);
    cv.wait(relock);
    relock.release();  // ownership stays with the caller's guard
  }

 private:
  std::mutex m_;
};

/// Scoped lock for Mutex (the std::lock_guard shape, annotation-aware).
class YOSO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) YOSO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() YOSO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A fictional capability: nothing is locked at runtime (acquire/release are
/// empty inline functions), but to the analysis it is a mutex like any
/// other.  Declaring state YOSO_GUARDED_BY(role) therefore means "only code
/// lexically inside a ThreadRoleGuard scope may touch this" — and since a
/// lambda body is analysed as its own function that holds nothing, handing
/// such state to a ThreadPool worker is a compile error under clang, not a
/// comment in a header.  Used for coordinator-only state: the evaluator memo
/// cache, finalist pool, search-loop counters and the RL parameter store.
class YOSO_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void acquire() YOSO_ACQUIRE() {}
  void release() YOSO_RELEASE() {}
};

/// Scope marker asserting "this code runs in `role`'s serial context".
class YOSO_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole& role) YOSO_ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~ThreadRoleGuard() YOSO_RELEASE() { role_.release(); }

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

/// A value fused with the mutex that guards it.  All access goes through
/// with_lock(), so the guarded_by discipline holds by construction — there
/// is no way to name the value without the lock.  Intended for small
/// critical sections (the thread-pool error slot is the house example);
/// anything long-lived should hold a MutexLock and structure the code so
/// the analysis sees it.
template <typename T>
class Synchronized {
 public:
  Synchronized() = default;
  explicit Synchronized(T value) : value_(std::move(value)) {}

  Synchronized(const Synchronized&) = delete;
  Synchronized& operator=(const Synchronized&) = delete;

  /// Runs fn(value) with the lock held; returns fn's result.
  template <typename Fn>
  decltype(auto) with_lock(Fn&& fn) {
    MutexLock lock(mutex_);
    return std::forward<Fn>(fn)(value_);
  }

  template <typename Fn>
  decltype(auto) with_lock(Fn&& fn) const {
    MutexLock lock(mutex_);
    return std::forward<Fn>(fn)(value_);
  }

  /// Copies the value out under the lock.
  T load() const {
    MutexLock lock(mutex_);
    return value_;
  }

  /// Replaces the value under the lock.
  void store(T value) {
    MutexLock lock(mutex_);
    value_ = std::move(value);
  }

 private:
  mutable Mutex mutex_;
  T value_ YOSO_GUARDED_BY(mutex_);
};

}  // namespace yoso
