#pragma once
// Runtime contract checking for YOSO's public entry points.
//
// The fast evaluator's trustworthiness (<4 % error vs the cycle-level
// simulator) and the search's reproducibility both die silently when a
// precondition is violated — an out-of-bounds mapping, a dimension-mismatched
// GP update, a NaN reward term.  These macros turn such violations into a
// thrown yoso::ContractViolation carrying the failed expression, source
// location and a formatted context message, instead of undefined behaviour.
//
// Policy (DESIGN.md §10):
//   YOSO_REQUIRE(cond, msg...)  precondition at an API boundary.  Always
//                               checked, in every build type.
//   YOSO_CHECK(cond, msg...)    internal invariant worth keeping in Release
//                               (cheap relative to the code it guards).
//   YOSO_DCHECK(cond, msg...)   inner-loop invariant; compiled out unless
//                               NDEBUG is undefined (Debug builds) or
//                               YOSO_ENABLE_DCHECKS is defined.
//
// The message arguments are streamed (`YOSO_REQUIRE(i < n, "i=", i, " n=", n)`)
// and are only evaluated when the condition fails.

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace yoso {

/// Thrown when a YOSO_REQUIRE / YOSO_CHECK / YOSO_DCHECK condition fails.
/// Derives from std::invalid_argument so call sites that predate the
/// contract layer and catch std::invalid_argument / std::logic_error keep
/// working unchanged.
class ContractViolation : public std::invalid_argument {
 public:
  ContractViolation(std::string expression, std::string file, int line,
                    std::string message)
      : std::invalid_argument(format(expression, file, line, message)),
        expression_(std::move(expression)),
        file_(std::move(file)),
        line_(line),
        message_(std::move(message)) {}

  const std::string& expression() const { return expression_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }
  /// The formatted context message (empty when none was supplied).
  const std::string& message() const { return message_; }

 private:
  static std::string format(const std::string& expression,
                            const std::string& file, int line,
                            const std::string& message) {
    std::ostringstream os;
    os << "contract violation: (" << expression << ") at " << file << ":"
       << line;
    if (!message.empty()) os << " — " << message;
    return os.str();
  }

  std::string expression_;
  std::string file_;
  int line_;
  std::string message_;
};

namespace detail {

inline std::string contract_message() { return {}; }

template <typename... Args>
std::string contract_message(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

[[noreturn]] inline void contract_fail(const char* expression,
                                       const char* file, int line,
                                       std::string message) {
  throw ContractViolation(expression, file, line, std::move(message));
}

}  // namespace detail
}  // namespace yoso

/// Precondition at a public API boundary; always checked.
#define YOSO_REQUIRE(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::yoso::detail::contract_fail(                                  \
          #cond, __FILE__, __LINE__,                                  \
          ::yoso::detail::contract_message(__VA_ARGS__));             \
    }                                                                 \
  } while (false)

/// Internal invariant kept in Release builds.
#define YOSO_CHECK(cond, ...) YOSO_REQUIRE(cond, __VA_ARGS__)

/// Inner-loop invariant; a no-op in optimised builds (NDEBUG) unless
/// YOSO_ENABLE_DCHECKS is defined.  The condition is not evaluated when
/// disabled, so it may be arbitrarily expensive.
#if !defined(NDEBUG) || defined(YOSO_ENABLE_DCHECKS)
#define YOSO_DCHECK(cond, ...) YOSO_REQUIRE(cond, __VA_ARGS__)
#else
#define YOSO_DCHECK(cond, ...) \
  do {                         \
  } while (false)
#endif
