#include "linalg/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "base/contract.h"
#include "util/thread_pool.h"

#if defined(__x86_64__)
#include <immintrin.h>
#define YOSO_KERNELS_X86 1
#endif

// Engine layout: every kernel has a generic scalar body plus (on x86-64) an
// AVX2+FMA body carrying __attribute__((target("avx2,fma"))), all in this
// one TU so there is no cross-TU ODR hazard from mixed -m flags.  The
// engine is picked once per process by use_avx2(); block partitioning is a
// fixed row granularity (kRowBlock) so results are bit-identical at any
// thread count, and the single-row micro-kernel variants issue the same
// per-element operation chains as the paired-row variants, so a row's
// result never depends on how the surrounding rows were grouped.

namespace yoso::kernels {
namespace {

constexpr std::size_t kRowBlock = 8;    // pool partition unit (rows)
constexpr std::size_t kAccIBlock = 128; // i-blocking for A^T B accumulation

bool use_avx2() {
#if YOSO_KERNELS_X86
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

// Runs fn(row_begin, row_end) over [0, rows) in fixed kRowBlock chunks.
// Block boundaries are independent of the worker count (that is the
// determinism contract), and block starts are always multiples of
// kRowBlock, so paired-row micro-kernels pair the same rows whether the
// range arrives whole or split.
template <typename Fn>
void for_row_blocks(ThreadPool* pool, std::size_t rows, const Fn& fn) {
  if (pool == nullptr || pool->workers() == 0 || rows <= kRowBlock) {
    fn(std::size_t{0}, rows);
    return;
  }
  const std::size_t blocks = (rows + kRowBlock - 1) / kRowBlock;
  pool->parallel_for(0, blocks, [&](std::size_t b) {
    const std::size_t lo = b * kRowBlock;
    fn(lo, std::min(rows, lo + kRowBlock));
  });
}

// --- exp: range-reduced polynomial shared by both engines ------------------
// exp(x) = 2^k * exp(r), k = round(x / ln 2), r = x - k ln2_hi - k ln2_lo,
// exp(r) by a degree-12 Taylor/Horner polynomial on |r| <= ln2/2 (max
// relative error ~3e-16 vs std::exp).  The scalar core below is the exact
// operation sequence of the vector body, so the vector remainder lanes can
// call it and still satisfy "element i depends only on in[i] and i".

constexpr double kExpLo = -708.0;
constexpr double kExpHi = 708.0;
constexpr double kLog2E = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kExpC[13] = {1.0,
                              1.0,
                              1.0 / 2,
                              1.0 / 6,
                              1.0 / 24,
                              1.0 / 120,
                              1.0 / 720,
                              1.0 / 5040,
                              1.0 / 40320,
                              1.0 / 362880,
                              1.0 / 3628800,
                              1.0 / 39916800,
                              1.0 / 479001600};

double exp_core(double x) {
  x = std::min(kExpHi, std::max(kExpLo, x));
  const double kd = static_cast<double>(std::lrint(x * kLog2E));
  double r = std::fma(-kd, kLn2Hi, x);
  r = std::fma(-kd, kLn2Lo, r);
  double p = kExpC[12];
  for (int ci = 11; ci >= 0; --ci) p = std::fma(p, r, kExpC[ci]);
  const std::uint64_t bits =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(kd) + 1023) << 52;
  return p * std::bit_cast<double>(bits);
}

// --- generic engine --------------------------------------------------------

double dot_generic(const double* a, const double* b, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void gemm_rows_generic(const double* a, const double* b, double* c,
                       std::size_t r0, std::size_t r1, std::size_t kk,
                       std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    const double* ai = a + i * kk;
    double* ci = c + i * n;
    std::fill(ci, ci + n, 0.0);
    for (std::size_t t = 0; t < kk; ++t) {
      const double av = ai[t];
      const double* bt = b + t * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bt[j];
    }
  }
}

void sgemm_ab_rows_generic(const float* a, const float* b, float* c,
                           std::size_t r0, std::size_t r1, std::size_t kk,
                           std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* ai = a + i * kk;
    float* ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
    for (std::size_t t = 0; t < kk; ++t) {
      const float av = ai[t];
      const float* bt = b + t * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bt[j];
    }
  }
}

void satb_rows_generic(const float* a, const float* b, float* c,
                       std::size_t t0, std::size_t t1, std::size_t m,
                       std::size_t kk, std::size_t n) {
  // i is blocked at a fixed granularity so the per-element accumulation
  // chains (C reloaded once per i-block) do not depend on the t-range
  // partition a pool hands us.
  for (std::size_t ib = 0; ib < m; ib += kAccIBlock) {
    const std::size_t ie = std::min(m, ib + kAccIBlock);
    for (std::size_t t = t0; t < t1; ++t) {
      float* ct = c + t * n;
      for (std::size_t j = 0; j < n; ++j) {
        float s = ct[j];
        for (std::size_t i = ib; i < ie; ++i)
          s += a[i * kk + t] * b[i * n + j];
        ct[j] = s;
      }
    }
  }
}

void pairwise_rows_generic(const double* q, std::size_t d, std::size_t r0,
                           std::size_t r1, const double* trn,
                           const double* tn, std::size_t n, double* out) {
  for (std::size_t i = r0; i < r1; ++i) {
    const double* qi = q + i * d;
    const double qn = dot_generic(qi, qi, d);
    double* oi = out + i * n;
    for (std::size_t t = 0; t < n; ++t) oi[t] = qn + tn[t];
    for (std::size_t c = 0; c < d; ++c) {
      const double qv = -2.0 * qi[c];
      const double* col = trn + c * n;
      for (std::size_t t = 0; t < n; ++t) oi[t] += qv * col[t];
    }
    for (std::size_t t = 0; t < n; ++t) oi[t] = std::max(0.0, oi[t]);
  }
}

double exp_scale_dot_generic(const double* in, double* out, const double* w,
                             std::size_t n, double scale, double mult) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = mult * exp_core(scale * in[i]);
    sum = std::fma(out[i], w[i], sum);
  }
  return sum;
}

void exp_scale_generic(const double* in, double* out, std::size_t n,
                       double scale, double mult) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = mult * exp_core(scale * in[i]);
}

// --- AVX2+FMA engine -------------------------------------------------------
// Register-tiled micro-kernels: 2 rows x 16 columns of doubles (8 ymm
// accumulators) / 2 rows x 32 floats, broadcast-FMA over the shared
// dimension.  Each output element owns one accumulator lane updated in a
// fixed order, so there is never a cross-lane reduction whose order could
// depend on tiling, and the single-row variants replay the identical
// per-element chains as the paired variants.

#if YOSO_KERNELS_X86

__attribute__((target("avx2,fma"))) double dot_avx2(const double* a,
                                                    const double* b,
                                                    std::size_t n) {
  __m256d l0 = _mm256_setzero_pd();
  __m256d l1 = _mm256_setzero_pd();
  __m256d l2 = _mm256_setzero_pd();
  __m256d l3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    l0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), l0);
    l1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                         _mm256_loadu_pd(b + i + 4), l1);
    l2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                         _mm256_loadu_pd(b + i + 8), l2);
    l3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                         _mm256_loadu_pd(b + i + 12), l3);
  }
  for (; i + 4 <= n; i += 4)
    l0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), l0);
  const __m256d s =
      _mm256_add_pd(_mm256_add_pd(l0, l1), _mm256_add_pd(l2, l3));
  double tmp[4];
  _mm256_storeu_pd(tmp, s);
  double acc = (tmp[0] + tmp[1]) + (tmp[2] + tmp[3]);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((target("avx2,fma"))) void gemm_rows_avx2(
    const double* a, const double* b, double* c, std::size_t r0,
    std::size_t r1, std::size_t kk, std::size_t n) {
  std::size_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = a + i * kk;
    const double* a1 = a0 + kk;
    double* c0 = c + i * n;
    double* c1 = c0 + n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256d s00 = _mm256_setzero_pd(), s01 = _mm256_setzero_pd();
      __m256d s02 = _mm256_setzero_pd(), s03 = _mm256_setzero_pd();
      __m256d s10 = _mm256_setzero_pd(), s11 = _mm256_setzero_pd();
      __m256d s12 = _mm256_setzero_pd(), s13 = _mm256_setzero_pd();
      for (std::size_t t = 0; t < kk; ++t) {
        const double* bt = b + t * n + j;
        const __m256d b0 = _mm256_loadu_pd(bt);
        const __m256d b1 = _mm256_loadu_pd(bt + 4);
        const __m256d b2 = _mm256_loadu_pd(bt + 8);
        const __m256d b3 = _mm256_loadu_pd(bt + 12);
        const __m256d v0 = _mm256_set1_pd(a0[t]);
        const __m256d v1 = _mm256_set1_pd(a1[t]);
        s00 = _mm256_fmadd_pd(v0, b0, s00);
        s01 = _mm256_fmadd_pd(v0, b1, s01);
        s02 = _mm256_fmadd_pd(v0, b2, s02);
        s03 = _mm256_fmadd_pd(v0, b3, s03);
        s10 = _mm256_fmadd_pd(v1, b0, s10);
        s11 = _mm256_fmadd_pd(v1, b1, s11);
        s12 = _mm256_fmadd_pd(v1, b2, s12);
        s13 = _mm256_fmadd_pd(v1, b3, s13);
      }
      _mm256_storeu_pd(c0 + j, s00);
      _mm256_storeu_pd(c0 + j + 4, s01);
      _mm256_storeu_pd(c0 + j + 8, s02);
      _mm256_storeu_pd(c0 + j + 12, s03);
      _mm256_storeu_pd(c1 + j, s10);
      _mm256_storeu_pd(c1 + j + 4, s11);
      _mm256_storeu_pd(c1 + j + 8, s12);
      _mm256_storeu_pd(c1 + j + 12, s13);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d s0 = _mm256_setzero_pd();
      __m256d s1 = _mm256_setzero_pd();
      for (std::size_t t = 0; t < kk; ++t) {
        const __m256d bv = _mm256_loadu_pd(b + t * n + j);
        s0 = _mm256_fmadd_pd(_mm256_set1_pd(a0[t]), bv, s0);
        s1 = _mm256_fmadd_pd(_mm256_set1_pd(a1[t]), bv, s1);
      }
      _mm256_storeu_pd(c0 + j, s0);
      _mm256_storeu_pd(c1 + j, s1);
    }
    for (; j < n; ++j) {
      double s0 = 0.0, s1 = 0.0;
      for (std::size_t t = 0; t < kk; ++t) {
        const double bv = b[t * n + j];
        s0 = std::fma(a0[t], bv, s0);
        s1 = std::fma(a1[t], bv, s1);
      }
      c0[j] = s0;
      c1[j] = s1;
    }
  }
  for (; i < r1; ++i) {
    const double* a0 = a + i * kk;
    double* c0 = c + i * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256d s00 = _mm256_setzero_pd(), s01 = _mm256_setzero_pd();
      __m256d s02 = _mm256_setzero_pd(), s03 = _mm256_setzero_pd();
      for (std::size_t t = 0; t < kk; ++t) {
        const double* bt = b + t * n + j;
        const __m256d v0 = _mm256_set1_pd(a0[t]);
        s00 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(bt), s00);
        s01 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(bt + 4), s01);
        s02 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(bt + 8), s02);
        s03 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(bt + 12), s03);
      }
      _mm256_storeu_pd(c0 + j, s00);
      _mm256_storeu_pd(c0 + j + 4, s01);
      _mm256_storeu_pd(c0 + j + 8, s02);
      _mm256_storeu_pd(c0 + j + 12, s03);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d s0 = _mm256_setzero_pd();
      for (std::size_t t = 0; t < kk; ++t)
        s0 = _mm256_fmadd_pd(_mm256_set1_pd(a0[t]),
                             _mm256_loadu_pd(b + t * n + j), s0);
      _mm256_storeu_pd(c0 + j, s0);
    }
    for (; j < n; ++j) {
      double s0 = 0.0;
      for (std::size_t t = 0; t < kk; ++t)
        s0 = std::fma(a0[t], b[t * n + j], s0);
      c0[j] = s0;
    }
  }
}

__attribute__((target("avx2,fma"))) void sgemm_ab_rows_avx2(
    const float* a, const float* b, float* c, std::size_t r0, std::size_t r1,
    std::size_t kk, std::size_t n) {
  std::size_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const float* a0 = a + i * kk;
    const float* a1 = a0 + kk;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    std::size_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 s00 = _mm256_setzero_ps(), s01 = _mm256_setzero_ps();
      __m256 s02 = _mm256_setzero_ps(), s03 = _mm256_setzero_ps();
      __m256 s10 = _mm256_setzero_ps(), s11 = _mm256_setzero_ps();
      __m256 s12 = _mm256_setzero_ps(), s13 = _mm256_setzero_ps();
      for (std::size_t t = 0; t < kk; ++t) {
        const float* bt = b + t * n + j;
        const __m256 b0 = _mm256_loadu_ps(bt);
        const __m256 b1 = _mm256_loadu_ps(bt + 8);
        const __m256 b2 = _mm256_loadu_ps(bt + 16);
        const __m256 b3 = _mm256_loadu_ps(bt + 24);
        const __m256 v0 = _mm256_set1_ps(a0[t]);
        const __m256 v1 = _mm256_set1_ps(a1[t]);
        s00 = _mm256_fmadd_ps(v0, b0, s00);
        s01 = _mm256_fmadd_ps(v0, b1, s01);
        s02 = _mm256_fmadd_ps(v0, b2, s02);
        s03 = _mm256_fmadd_ps(v0, b3, s03);
        s10 = _mm256_fmadd_ps(v1, b0, s10);
        s11 = _mm256_fmadd_ps(v1, b1, s11);
        s12 = _mm256_fmadd_ps(v1, b2, s12);
        s13 = _mm256_fmadd_ps(v1, b3, s13);
      }
      _mm256_storeu_ps(c0 + j, s00);
      _mm256_storeu_ps(c0 + j + 8, s01);
      _mm256_storeu_ps(c0 + j + 16, s02);
      _mm256_storeu_ps(c0 + j + 24, s03);
      _mm256_storeu_ps(c1 + j, s10);
      _mm256_storeu_ps(c1 + j + 8, s11);
      _mm256_storeu_ps(c1 + j + 16, s12);
      _mm256_storeu_ps(c1 + j + 24, s13);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 s0 = _mm256_setzero_ps();
      __m256 s1 = _mm256_setzero_ps();
      for (std::size_t t = 0; t < kk; ++t) {
        const __m256 bv = _mm256_loadu_ps(b + t * n + j);
        s0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[t]), bv, s0);
        s1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[t]), bv, s1);
      }
      _mm256_storeu_ps(c0 + j, s0);
      _mm256_storeu_ps(c1 + j, s1);
    }
    for (; j < n; ++j) {
      float s0 = 0.0f, s1 = 0.0f;
      for (std::size_t t = 0; t < kk; ++t) {
        const float bv = b[t * n + j];
        s0 = std::fma(a0[t], bv, s0);
        s1 = std::fma(a1[t], bv, s1);
      }
      c0[j] = s0;
      c1[j] = s1;
    }
  }
  for (; i < r1; ++i) {
    const float* a0 = a + i * kk;
    float* c0 = c + i * n;
    std::size_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 s00 = _mm256_setzero_ps(), s01 = _mm256_setzero_ps();
      __m256 s02 = _mm256_setzero_ps(), s03 = _mm256_setzero_ps();
      for (std::size_t t = 0; t < kk; ++t) {
        const float* bt = b + t * n + j;
        const __m256 v0 = _mm256_set1_ps(a0[t]);
        s00 = _mm256_fmadd_ps(v0, _mm256_loadu_ps(bt), s00);
        s01 = _mm256_fmadd_ps(v0, _mm256_loadu_ps(bt + 8), s01);
        s02 = _mm256_fmadd_ps(v0, _mm256_loadu_ps(bt + 16), s02);
        s03 = _mm256_fmadd_ps(v0, _mm256_loadu_ps(bt + 24), s03);
      }
      _mm256_storeu_ps(c0 + j, s00);
      _mm256_storeu_ps(c0 + j + 8, s01);
      _mm256_storeu_ps(c0 + j + 16, s02);
      _mm256_storeu_ps(c0 + j + 24, s03);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 s0 = _mm256_setzero_ps();
      for (std::size_t t = 0; t < kk; ++t)
        s0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[t]),
                             _mm256_loadu_ps(b + t * n + j), s0);
      _mm256_storeu_ps(c0 + j, s0);
    }
    for (; j < n; ++j) {
      float s0 = 0.0f;
      for (std::size_t t = 0; t < kk; ++t)
        s0 = std::fma(a0[t], b[t * n + j], s0);
      c0[j] = s0;
    }
  }
}

__attribute__((target("avx2,fma"))) void satb_rows_avx2(
    const float* a, const float* b, float* c, std::size_t t0, std::size_t t1,
    std::size_t m, std::size_t kk, std::size_t n) {
  for (std::size_t ib = 0; ib < m; ib += kAccIBlock) {
    const std::size_t ie = std::min(m, ib + kAccIBlock);
    for (std::size_t t = t0; t < t1; ++t) {
      float* ct = c + t * n;
      const float* at = a + t;
      std::size_t j = 0;
      for (; j + 32 <= n; j += 32) {
        __m256 s0 = _mm256_loadu_ps(ct + j);
        __m256 s1 = _mm256_loadu_ps(ct + j + 8);
        __m256 s2 = _mm256_loadu_ps(ct + j + 16);
        __m256 s3 = _mm256_loadu_ps(ct + j + 24);
        for (std::size_t i = ib; i < ie; ++i) {
          const __m256 av = _mm256_set1_ps(at[i * kk]);
          const float* bi = b + i * n + j;
          s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bi), s0);
          s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bi + 8), s1);
          s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bi + 16), s2);
          s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bi + 24), s3);
        }
        _mm256_storeu_ps(ct + j, s0);
        _mm256_storeu_ps(ct + j + 8, s1);
        _mm256_storeu_ps(ct + j + 16, s2);
        _mm256_storeu_ps(ct + j + 24, s3);
      }
      for (; j + 8 <= n; j += 8) {
        __m256 s0 = _mm256_loadu_ps(ct + j);
        for (std::size_t i = ib; i < ie; ++i)
          s0 = _mm256_fmadd_ps(_mm256_set1_ps(at[i * kk]),
                               _mm256_loadu_ps(b + i * n + j), s0);
        _mm256_storeu_ps(ct + j, s0);
      }
      for (; j < n; ++j) {
        float s = ct[j];
        for (std::size_t i = ib; i < ie; ++i)
          s = std::fma(at[i * kk], b[i * n + j], s);
        ct[j] = s;
      }
    }
  }
}

__attribute__((target("avx2,fma"))) void pairwise_rows_avx2(
    const double* q, std::size_t d, std::size_t r0, std::size_t r1,
    const double* trn, const double* tn, std::size_t n, double* out) {
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vtwo = _mm256_set1_pd(2.0);
  std::size_t i = r0;
  // Four query rows per training-panel sweep: halves the panel traffic of
  // the paired loop below.  Every output element still accumulates one fma
  // per dimension in ascending order, so its value is bit-identical across
  // the 4-row / 2-row / single-row variants — row grouping never leaks
  // into results (see the SubRangeRowsMatchFullRange test).
  for (; i + 4 <= r1; i += 4) {
    const double* q0 = q + i * d;
    const double* q1 = q0 + d;
    const double* q2 = q1 + d;
    const double* q3 = q2 + d;
    const double qn0 = dot(q0, q0, d);
    const double qn1 = dot(q1, q1, d);
    const double qn2 = dot(q2, q2, d);
    const double qn3 = dot(q3, q3, d);
    const __m256d vqn0 = _mm256_set1_pd(qn0);
    const __m256d vqn1 = _mm256_set1_pd(qn1);
    const __m256d vqn2 = _mm256_set1_pd(qn2);
    const __m256d vqn3 = _mm256_set1_pd(qn3);
    double* o0 = out + i * n;
    double* o1 = o0 + n;
    double* o2 = o1 + n;
    double* o3 = o2 + n;
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
      __m256d s00 = _mm256_setzero_pd(), s01 = _mm256_setzero_pd();
      __m256d s10 = _mm256_setzero_pd(), s11 = _mm256_setzero_pd();
      __m256d s20 = _mm256_setzero_pd(), s21 = _mm256_setzero_pd();
      __m256d s30 = _mm256_setzero_pd(), s31 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < d; ++c) {
        const double* col = trn + c * n + t;
        const __m256d b0 = _mm256_loadu_pd(col);
        const __m256d b1 = _mm256_loadu_pd(col + 4);
        const __m256d v0 = _mm256_set1_pd(q0[c]);
        const __m256d v1 = _mm256_set1_pd(q1[c]);
        const __m256d v2 = _mm256_set1_pd(q2[c]);
        const __m256d v3 = _mm256_set1_pd(q3[c]);
        s00 = _mm256_fmadd_pd(v0, b0, s00);
        s01 = _mm256_fmadd_pd(v0, b1, s01);
        s10 = _mm256_fmadd_pd(v1, b0, s10);
        s11 = _mm256_fmadd_pd(v1, b1, s11);
        s20 = _mm256_fmadd_pd(v2, b0, s20);
        s21 = _mm256_fmadd_pd(v2, b1, s21);
        s30 = _mm256_fmadd_pd(v3, b0, s30);
        s31 = _mm256_fmadd_pd(v3, b1, s31);
      }
      const __m256d n0 = _mm256_loadu_pd(tn + t);
      const __m256d n1 = _mm256_loadu_pd(tn + t + 4);
      _mm256_storeu_pd(
          o0 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s00, _mm256_add_pd(vqn0, n0))));
      _mm256_storeu_pd(
          o0 + t + 4,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s01,
                                                _mm256_add_pd(vqn0, n1))));
      _mm256_storeu_pd(
          o1 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s10, _mm256_add_pd(vqn1, n0))));
      _mm256_storeu_pd(
          o1 + t + 4,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s11,
                                                _mm256_add_pd(vqn1, n1))));
      _mm256_storeu_pd(
          o2 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s20, _mm256_add_pd(vqn2, n0))));
      _mm256_storeu_pd(
          o2 + t + 4,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s21,
                                                _mm256_add_pd(vqn2, n1))));
      _mm256_storeu_pd(
          o3 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s30, _mm256_add_pd(vqn3, n0))));
      _mm256_storeu_pd(
          o3 + t + 4,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s31,
                                                _mm256_add_pd(vqn3, n1))));
    }
    for (; t + 4 <= n; t += 4) {
      __m256d s0 = _mm256_setzero_pd();
      __m256d s1 = _mm256_setzero_pd();
      __m256d s2 = _mm256_setzero_pd();
      __m256d s3 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < d; ++c) {
        const __m256d bv = _mm256_loadu_pd(trn + c * n + t);
        s0 = _mm256_fmadd_pd(_mm256_set1_pd(q0[c]), bv, s0);
        s1 = _mm256_fmadd_pd(_mm256_set1_pd(q1[c]), bv, s1);
        s2 = _mm256_fmadd_pd(_mm256_set1_pd(q2[c]), bv, s2);
        s3 = _mm256_fmadd_pd(_mm256_set1_pd(q3[c]), bv, s3);
      }
      const __m256d nv = _mm256_loadu_pd(tn + t);
      _mm256_storeu_pd(
          o0 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s0, _mm256_add_pd(vqn0, nv))));
      _mm256_storeu_pd(
          o1 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s1, _mm256_add_pd(vqn1, nv))));
      _mm256_storeu_pd(
          o2 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s2, _mm256_add_pd(vqn2, nv))));
      _mm256_storeu_pd(
          o3 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s3, _mm256_add_pd(vqn3, nv))));
    }
    for (; t < n; ++t) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        const double bv = trn[c * n + t];
        s0 = std::fma(q0[c], bv, s0);
        s1 = std::fma(q1[c], bv, s1);
        s2 = std::fma(q2[c], bv, s2);
        s3 = std::fma(q3[c], bv, s3);
      }
      o0[t] = std::max(0.0, std::fma(-2.0, s0, qn0 + tn[t]));
      o1[t] = std::max(0.0, std::fma(-2.0, s1, qn1 + tn[t]));
      o2[t] = std::max(0.0, std::fma(-2.0, s2, qn2 + tn[t]));
      o3[t] = std::max(0.0, std::fma(-2.0, s3, qn3 + tn[t]));
    }
  }
  for (; i + 2 <= r1; i += 2) {
    const double* q0 = q + i * d;
    const double* q1 = q0 + d;
    const double qn0 = dot(q0, q0, d);
    const double qn1 = dot(q1, q1, d);
    const __m256d vqn0 = _mm256_set1_pd(qn0);
    const __m256d vqn1 = _mm256_set1_pd(qn1);
    double* o0 = out + i * n;
    double* o1 = o0 + n;
    std::size_t t = 0;
    for (; t + 16 <= n; t += 16) {
      __m256d s00 = _mm256_setzero_pd(), s01 = _mm256_setzero_pd();
      __m256d s02 = _mm256_setzero_pd(), s03 = _mm256_setzero_pd();
      __m256d s10 = _mm256_setzero_pd(), s11 = _mm256_setzero_pd();
      __m256d s12 = _mm256_setzero_pd(), s13 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < d; ++c) {
        const double* col = trn + c * n + t;
        const __m256d b0 = _mm256_loadu_pd(col);
        const __m256d b1 = _mm256_loadu_pd(col + 4);
        const __m256d b2 = _mm256_loadu_pd(col + 8);
        const __m256d b3 = _mm256_loadu_pd(col + 12);
        const __m256d v0 = _mm256_set1_pd(q0[c]);
        const __m256d v1 = _mm256_set1_pd(q1[c]);
        s00 = _mm256_fmadd_pd(v0, b0, s00);
        s01 = _mm256_fmadd_pd(v0, b1, s01);
        s02 = _mm256_fmadd_pd(v0, b2, s02);
        s03 = _mm256_fmadd_pd(v0, b3, s03);
        s10 = _mm256_fmadd_pd(v1, b0, s10);
        s11 = _mm256_fmadd_pd(v1, b1, s11);
        s12 = _mm256_fmadd_pd(v1, b2, s12);
        s13 = _mm256_fmadd_pd(v1, b3, s13);
      }
      // Fused epilogue: d = max(0, (qn + tn) - 2 * cross), no second pass.
      const __m256d n0 = _mm256_loadu_pd(tn + t);
      const __m256d n1 = _mm256_loadu_pd(tn + t + 4);
      const __m256d n2 = _mm256_loadu_pd(tn + t + 8);
      const __m256d n3 = _mm256_loadu_pd(tn + t + 12);
      _mm256_storeu_pd(
          o0 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s00, _mm256_add_pd(vqn0, n0))));
      _mm256_storeu_pd(
          o0 + t + 4,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s01,
                                                _mm256_add_pd(vqn0, n1))));
      _mm256_storeu_pd(
          o0 + t + 8,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s02,
                                                _mm256_add_pd(vqn0, n2))));
      _mm256_storeu_pd(
          o0 + t + 12,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s03,
                                                _mm256_add_pd(vqn0, n3))));
      _mm256_storeu_pd(
          o1 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s10, _mm256_add_pd(vqn1, n0))));
      _mm256_storeu_pd(
          o1 + t + 4,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s11,
                                                _mm256_add_pd(vqn1, n1))));
      _mm256_storeu_pd(
          o1 + t + 8,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s12,
                                                _mm256_add_pd(vqn1, n2))));
      _mm256_storeu_pd(
          o1 + t + 12,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s13,
                                                _mm256_add_pd(vqn1, n3))));
    }
    for (; t + 4 <= n; t += 4) {
      __m256d s0 = _mm256_setzero_pd();
      __m256d s1 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < d; ++c) {
        const __m256d bv = _mm256_loadu_pd(trn + c * n + t);
        s0 = _mm256_fmadd_pd(_mm256_set1_pd(q0[c]), bv, s0);
        s1 = _mm256_fmadd_pd(_mm256_set1_pd(q1[c]), bv, s1);
      }
      const __m256d nv = _mm256_loadu_pd(tn + t);
      _mm256_storeu_pd(
          o0 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s0, _mm256_add_pd(vqn0, nv))));
      _mm256_storeu_pd(
          o1 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s1, _mm256_add_pd(vqn1, nv))));
    }
    for (; t < n; ++t) {
      double s0 = 0.0, s1 = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        const double bv = trn[c * n + t];
        s0 = std::fma(q0[c], bv, s0);
        s1 = std::fma(q1[c], bv, s1);
      }
      o0[t] = std::max(0.0, std::fma(-2.0, s0, qn0 + tn[t]));
      o1[t] = std::max(0.0, std::fma(-2.0, s1, qn1 + tn[t]));
    }
  }
  for (; i < r1; ++i) {
    const double* q0 = q + i * d;
    const double qn0 = dot(q0, q0, d);
    const __m256d vqn0 = _mm256_set1_pd(qn0);
    double* o0 = out + i * n;
    std::size_t t = 0;
    for (; t + 16 <= n; t += 16) {
      __m256d s00 = _mm256_setzero_pd(), s01 = _mm256_setzero_pd();
      __m256d s02 = _mm256_setzero_pd(), s03 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < d; ++c) {
        const double* col = trn + c * n + t;
        const __m256d v0 = _mm256_set1_pd(q0[c]);
        s00 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(col), s00);
        s01 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(col + 4), s01);
        s02 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(col + 8), s02);
        s03 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(col + 12), s03);
      }
      const __m256d n0 = _mm256_loadu_pd(tn + t);
      const __m256d n1 = _mm256_loadu_pd(tn + t + 4);
      const __m256d n2 = _mm256_loadu_pd(tn + t + 8);
      const __m256d n3 = _mm256_loadu_pd(tn + t + 12);
      _mm256_storeu_pd(
          o0 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s00, _mm256_add_pd(vqn0, n0))));
      _mm256_storeu_pd(
          o0 + t + 4,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s01,
                                                _mm256_add_pd(vqn0, n1))));
      _mm256_storeu_pd(
          o0 + t + 8,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s02,
                                                _mm256_add_pd(vqn0, n2))));
      _mm256_storeu_pd(
          o0 + t + 12,
          _mm256_max_pd(vzero, _mm256_fnmadd_pd(vtwo, s03,
                                                _mm256_add_pd(vqn0, n3))));
    }
    for (; t + 4 <= n; t += 4) {
      __m256d s0 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < d; ++c)
        s0 = _mm256_fmadd_pd(_mm256_set1_pd(q0[c]),
                             _mm256_loadu_pd(trn + c * n + t), s0);
      const __m256d nv = _mm256_loadu_pd(tn + t);
      _mm256_storeu_pd(
          o0 + t, _mm256_max_pd(vzero, _mm256_fnmadd_pd(
                                           vtwo, s0, _mm256_add_pd(vqn0, nv))));
    }
    for (; t < n; ++t) {
      double s0 = 0.0;
      for (std::size_t c = 0; c < d; ++c)
        s0 = std::fma(q0[c], trn[c * n + t], s0);
      o0[t] = std::max(0.0, std::fma(-2.0, s0, qn0 + tn[t]));
    }
  }
}

/// One vector of mult * exp(scale * x): the exact operation sequence of the
/// scalar exp_core, four lanes at a time.  Always inlined so every caller
/// produces bit-identical element values.
__attribute__((target("avx2,fma"), always_inline)) inline __m256d exp4(
    __m256d x, __m256d vscale, __m256d vmult) {
  x = _mm256_mul_pd(x, vscale);
  x = _mm256_min_pd(_mm256_set1_pd(kExpHi),
                    _mm256_max_pd(_mm256_set1_pd(kExpLo), x));
  // k = round-to-nearest-even(x * log2 e): matches std::lrint in the
  // scalar core under the default rounding mode.
  const __m128i k32 =
      _mm256_cvtpd_epi32(_mm256_mul_pd(x, _mm256_set1_pd(kLog2E)));
  const __m256d kd = _mm256_cvtepi32_pd(k32);
  __m256d r = _mm256_fnmadd_pd(kd, _mm256_set1_pd(kLn2Hi), x);
  r = _mm256_fnmadd_pd(kd, _mm256_set1_pd(kLn2Lo), r);
  __m256d p = _mm256_set1_pd(kExpC[12]);
  for (int ci = 11; ci >= 0; --ci)
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kExpC[ci]));
  // 2^k via exponent-field construction; k+1023 stays in [2, 2045] after
  // the clamp, so no overflow or denormal path.
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(k32), _mm256_set1_epi64x(1023)),
      52);
  const __m256d twok = _mm256_castsi256_pd(bits);
  return _mm256_mul_pd(_mm256_mul_pd(p, twok), vmult);
}

__attribute__((target("avx2,fma"))) void exp_scale_avx2(
    const double* in, double* out, std::size_t n, double scale, double mult) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vmult = _mm256_set1_pd(mult);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, exp4(_mm256_loadu_pd(in + i), vscale, vmult));
  for (; i < n; ++i) out[i] = mult * exp_core(scale * in[i]);
}

__attribute__((target("avx2,fma"))) double exp_scale_dot_avx2(
    const double* in, double* out, const double* w, std::size_t n,
    double scale, double mult) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vmult = _mm256_set1_pd(mult);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  // Four independent exp chains per iteration keep the FMA pipes busy (a
  // single Horner chain is latency-bound); each element's value chain is
  // the same as in the 4-wide loop below, and each dot accumulator lane
  // owns a fixed (i mod 16) slice, so the sum depends only on n.
  for (; i + 16 <= n; i += 16) {
    const __m256d e0 = exp4(_mm256_loadu_pd(in + i), vscale, vmult);
    const __m256d e1 = exp4(_mm256_loadu_pd(in + i + 4), vscale, vmult);
    const __m256d e2 = exp4(_mm256_loadu_pd(in + i + 8), vscale, vmult);
    const __m256d e3 = exp4(_mm256_loadu_pd(in + i + 12), vscale, vmult);
    _mm256_storeu_pd(out + i, e0);
    _mm256_storeu_pd(out + i + 4, e1);
    _mm256_storeu_pd(out + i + 8, e2);
    _mm256_storeu_pd(out + i + 12, e3);
    acc0 = _mm256_fmadd_pd(e0, _mm256_loadu_pd(w + i), acc0);
    acc1 = _mm256_fmadd_pd(e1, _mm256_loadu_pd(w + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(e2, _mm256_loadu_pd(w + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(e3, _mm256_loadu_pd(w + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d e = exp4(_mm256_loadu_pd(in + i), vscale, vmult);
    _mm256_storeu_pd(out + i, e);
    acc0 = _mm256_fmadd_pd(e, _mm256_loadu_pd(w + i), acc0);
  }
  const __m256d t =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, t);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    out[i] = mult * exp_core(scale * in[i]);
    sum = std::fma(out[i], w[i], sum);
  }
  return sum;
}

#endif  // YOSO_KERNELS_X86

}  // namespace

// --- public drivers --------------------------------------------------------

std::string active_isa() { return use_avx2() ? "avx2+fma" : "generic"; }

double dot(const double* a, const double* b, std::size_t n) {
#if YOSO_KERNELS_X86
  if (use_avx2()) return dot_avx2(a, b, n);
#endif
  return dot_generic(a, b, n);
}

void gemm(const double* a, const double* b, double* c, std::size_t m,
          std::size_t k, std::size_t n, ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  YOSO_REQUIRE(c != nullptr, "kernels::gemm: null output");
  if (k == 0) {
    std::fill(c, c + m * n, 0.0);
    return;
  }
  YOSO_REQUIRE(a != nullptr && b != nullptr, "kernels::gemm: null input");
  for_row_blocks(pool, m, [&](std::size_t r0, std::size_t r1) {
#if YOSO_KERNELS_X86
    if (use_avx2()) {
      gemm_rows_avx2(a, b, c, r0, r1, k, n);
      return;
    }
#endif
    gemm_rows_generic(a, b, c, r0, r1, k, n);
  });
}

void gemv(const double* a, const double* x, double* y, std::size_t m,
          std::size_t n) {
  if (m == 0) return;
  YOSO_REQUIRE(a != nullptr && x != nullptr && y != nullptr,
               "kernels::gemv: null operand");
  for (std::size_t i = 0; i < m; ++i) y[i] = dot(a + i * n, x, n);
}

void sgemm_ab(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  YOSO_REQUIRE(c != nullptr, "kernels::sgemm_ab: null output");
  if (k == 0) {
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  YOSO_REQUIRE(a != nullptr && b != nullptr, "kernels::sgemm_ab: null input");
  for_row_blocks(pool, m, [&](std::size_t r0, std::size_t r1) {
#if YOSO_KERNELS_X86
    if (use_avx2()) {
      sgemm_ab_rows_avx2(a, b, c, r0, r1, k, n);
      return;
    }
#endif
    sgemm_ab_rows_generic(a, b, c, r0, r1, k, n);
  });
}

void sgemm_abt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  YOSO_REQUIRE(c != nullptr, "kernels::sgemm_abt: null output");
  if (k == 0) {
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  YOSO_REQUIRE(a != nullptr && b != nullptr, "kernels::sgemm_abt: null input");
  YOSO_REQUIRE(k <= std::numeric_limits<std::size_t>::max() / n,
               "kernels::sgemm_abt: k*n overflows (k=", k, ", n=", n, ")");
  // Pack B (n x k) into B^T (k x n) so the product reads unit-stride
  // panels; A * B^T then runs through the same row kernel as sgemm_ab.
  std::vector<float> bt(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    const float* bj = b + j * k;
    for (std::size_t t = 0; t < k; ++t) bt[t * n + j] = bj[t];
  }
  const float* btp = bt.data();
  for_row_blocks(pool, m, [&](std::size_t r0, std::size_t r1) {
#if YOSO_KERNELS_X86
    if (use_avx2()) {
      sgemm_ab_rows_avx2(a, btp, c, r0, r1, k, n);
      return;
    }
#endif
    sgemm_ab_rows_generic(a, btp, c, r0, r1, k, n);
  });
}

void sgemm_atb_acc(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, ThreadPool* pool) {
  if (k == 0 || n == 0 || m == 0) return;
  YOSO_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
               "kernels::sgemm_atb_acc: null operand");
  for_row_blocks(pool, k, [&](std::size_t t0, std::size_t t1) {
#if YOSO_KERNELS_X86
    if (use_avx2()) {
      satb_rows_avx2(a, b, c, t0, t1, m, k, n);
      return;
    }
#endif
    satb_rows_generic(a, b, c, t0, t1, m, k, n);
  });
}

PackedRows pack_rows(const double* src, std::size_t rows, std::size_t dim) {
  YOSO_REQUIRE(src != nullptr || rows == 0, "kernels::pack_rows: null input");
  YOSO_REQUIRE(dim == 0 ||
                   rows <= std::numeric_limits<std::size_t>::max() / dim,
               "kernels::pack_rows: rows*dim overflows (rows=", rows,
               ", dim=", dim, ")");
  PackedRows p;
  p.rows = rows;
  p.dim = dim;
  p.data.resize(rows * dim);
  p.norms.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* sr = src + r * dim;
    for (std::size_t c = 0; c < dim; ++c) p.data[c * rows + r] = sr[c];
    p.norms[r] = dot(sr, sr, dim);
  }
  return p;
}

void pairwise_sq_dists(const double* queries, std::size_t q,
                       const PackedRows& packed, double* out,
                       ThreadPool* pool) {
  if (q == 0 || packed.rows == 0) return;
  YOSO_REQUIRE(queries != nullptr && out != nullptr,
               "kernels::pairwise_sq_dists: null operand");
  YOSO_REQUIRE(packed.data.size() == packed.rows * packed.dim &&
                   packed.norms.size() == packed.rows,
               "kernels::pairwise_sq_dists: inconsistent PackedRows");
  const double* trn = packed.data.data();
  const double* tn = packed.norms.data();
  const std::size_t d = packed.dim;
  const std::size_t n = packed.rows;
  for_row_blocks(pool, q, [&](std::size_t r0, std::size_t r1) {
#if YOSO_KERNELS_X86
    if (use_avx2()) {
      pairwise_rows_avx2(queries, d, r0, r1, trn, tn, n, out);
      return;
    }
#endif
    pairwise_rows_generic(queries, d, r0, r1, trn, tn, n, out);
  });
}

void exp_scale(const double* in, double* out, std::size_t n, double scale,
               double mult) {
  if (n == 0) return;
  YOSO_REQUIRE(in != nullptr && out != nullptr,
               "kernels::exp_scale: null operand");
#if YOSO_KERNELS_X86
  if (use_avx2()) {
    exp_scale_avx2(in, out, n, scale, mult);
    return;
  }
#endif
  exp_scale_generic(in, out, n, scale, mult);
}

double exp_scale_dot(const double* in, double* out, const double* w,
                     std::size_t n, double scale, double mult) {
  if (n == 0) return 0.0;
  YOSO_REQUIRE(in != nullptr && out != nullptr && w != nullptr,
               "kernels::exp_scale_dot: null operand");
#if YOSO_KERNELS_X86
  if (use_avx2()) return exp_scale_dot_avx2(in, out, w, n, scale, mult);
#endif
  return exp_scale_dot_generic(in, out, w, n, scale, mult);
}

}  // namespace yoso::kernels
