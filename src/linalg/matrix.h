#pragma once
// Minimal dense linear algebra: just enough for exact Gaussian-process
// regression (kernel matrices, Cholesky factorisation/solve) and the ridge /
// least-squares baselines of the Fig-4 predictor comparison.

#include <cstddef>
#include <span>
#include <vector>

namespace yoso {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);
  /// Builds a matrix from nested initialiser data; all rows must match.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw storage access (row-major).
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }
  /// View of one row.
  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data_).subspan(r * cols_, cols_);
  }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix scaled(double s) const;

  /// Matrix-vector product.
  std::vector<double> matvec(std::span<const double> x) const;
  /// Transposed matrix-vector product (A^T x).
  std::vector<double> matvec_transposed(std::span<const double> x) const;

  /// Adds `v` to every diagonal element (jitter / noise term).
  void add_diagonal(double v);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorisation A = L L^T of a symmetric positive-definite matrix.
/// Throws std::runtime_error if A is not positive definite (after exhausting
/// a small progressive jitter).
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a, double jitter = 1e-10);

  /// Rebuilds a factorisation object from a previously computed lower
  /// factor (e.g. one round-tripped through the binary artifact format,
  /// core/artifact.h).  No refactorisation happens: `lower` is adopted
  /// verbatim, so solves against the restored object are bit-identical to
  /// solves against the original.  Throws ContractViolation when `lower`
  /// is empty, non-square, or has a non-positive diagonal entry.
  static Cholesky from_lower(Matrix lower);

  const Matrix& lower() const { return l_; }

  /// Solves A x = b via the factorisation.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves L y = b (forward substitution).
  std::vector<double> solve_lower(std::span<const double> b) const;

  /// Allocation-free forward substitution: writes n values to `out`.
  /// In-place safe (`out` may alias `b.data()`): b[i] is consumed before
  /// y[i] is written and the dot product only reads y[0..i).
  void solve_lower_into(std::span<const double> b, double* out) const;

  /// Solves L^T x = y (backward substitution).
  std::vector<double> solve_lower_transposed(std::span<const double> y) const;

  /// log |A| = 2 * sum_i log L_ii, used for GP marginal likelihood.
  double log_determinant() const;

  /// Rewrites the factor in place so it factors A + v v^T.  O(n^2) via the
  /// classic hyperbolic-rotation sweep; `v` is copied to a function-scope
  /// workspace and left untouched.  The sweep is a fixed serial loop, so the
  /// result is bit-identical regardless of thread count or call site.
  void rank1_update(std::span<const double> v);

  /// Rewrites the factor in place so it factors A - v v^T.  Throws
  /// std::runtime_error if the downdated matrix is not positive definite
  /// (the factor is left in an unspecified state in that case).
  void rank1_downdate(std::span<const double> v);

 private:
  Cholesky() = default;  // from_lower() adopts the factor directly

  Matrix l_;
};

/// Solves the regularised normal equations (X^T X + lambda I) w = X^T y.
/// lambda = 0 gives ordinary least squares (requires full column rank).
std::vector<double> ridge_solve(const Matrix& x, std::span<const double> y,
                                double lambda);

double dot(std::span<const double> a, std::span<const double> b);
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace yoso
