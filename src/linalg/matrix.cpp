#include "linalg/matrix.h"

#include <cmath>
#include <stdexcept>

#include "linalg/kernels.h"
#include "base/contract.h"

namespace yoso {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix{};
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    YOSO_REQUIRE(rows[r].size() == cols, "Matrix::from_rows: row ", r,
                 " has ", rows[r].size(), " columns, expected ", cols);
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  YOSO_REQUIRE(cols_ == rhs.rows_, "Matrix::operator*: ", rows_, "x", cols_,
               " * ", rhs.rows_, "x", rhs.cols_);
  Matrix out(rows_, rhs.cols_);
  kernels::gemm(data_.data(), rhs.data_.data(), out.data_.data(), rows_,
                cols_, rhs.cols_);
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  YOSO_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "Matrix::operator-: ", rows_, "x", cols_, " - ", rhs.rows_,
               "x", rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  YOSO_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "Matrix::operator+=: ", rows_, "x", cols_, " += ", rhs.rows_,
               "x", rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

std::vector<double> Matrix::matvec(std::span<const double> x) const {
  YOSO_REQUIRE(x.size() == cols_, "Matrix::matvec: x has ", x.size(),
               " entries, matrix is ", rows_, "x", cols_);
  std::vector<double> y(rows_, 0.0);
  kernels::gemv(data_.data(), x.data(), y.data(), rows_, cols_);
  return y;
}

std::vector<double> Matrix::matvec_transposed(std::span<const double> x) const {
  YOSO_REQUIRE(x.size() == rows_, "Matrix::matvec_transposed: x has ",
               x.size(), " entries, matrix is ", rows_, "x", cols_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row_ptr = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

void Matrix::add_diagonal(double v) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += v;
}

Cholesky::Cholesky(const Matrix& a, double jitter) {
  YOSO_REQUIRE(a.rows() == a.cols(), "Cholesky: matrix not square (",
               a.rows(), "x", a.cols(), ")");
  const std::size_t n = a.rows();
  // Progressive jitter: retry with 10x larger diagonal boost on failure.
  double eps = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    l_ = Matrix(n, n);
    const double* ld = l_.data().data();
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = a(i, j) + (i == j ? eps : 0.0);
        sum -= kernels::dot(ld + i * n, ld + j * n, j);
        if (i == j) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          l_(i, i) = std::sqrt(sum);
        } else {
          l_(i, j) = sum / l_(j, j);
        }
      }
    }
    if (ok) return;
    eps = (eps == 0.0) ? jitter : eps * 10.0;
  }
  throw std::runtime_error("Cholesky: matrix not positive definite");
}

Cholesky Cholesky::from_lower(Matrix lower) {
  YOSO_REQUIRE(!lower.empty() && lower.rows() == lower.cols(),
               "Cholesky::from_lower: factor must be square and non-empty, "
               "got ", lower.rows(), "x", lower.cols());
  for (std::size_t i = 0; i < lower.rows(); ++i)
    YOSO_REQUIRE(lower(i, i) > 0.0,
                 "Cholesky::from_lower: non-positive diagonal at row ", i);
  Cholesky c;
  c.l_ = std::move(lower);
  return c;
}

std::vector<double> Cholesky::solve_lower(std::span<const double> b) const {
  std::vector<double> y(l_.rows());
  solve_lower_into(b, y.data());
  return y;
}

void Cholesky::solve_lower_into(std::span<const double> b,
                                double* out) const {
  const std::size_t n = l_.rows();
  YOSO_REQUIRE(b.size() == n, "Cholesky::solve_lower_into: b has ", b.size(),
               " entries, factor is ", n, "x", n);
  YOSO_REQUIRE(out != nullptr, "Cholesky::solve_lower_into: null output");
  const double* ld = l_.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    const double sum = b[i] - kernels::dot(ld + i * n, out, i);
    out[i] = sum / l_(i, i);
  }
}

std::vector<double> Cholesky::solve_lower_transposed(
    std::span<const double> y) const {
  const std::size_t n = l_.rows();
  YOSO_REQUIRE(y.size() == n, "Cholesky::solve_lower_transposed: y has ",
               y.size(), " entries, factor is ", n, "x", n);
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * x[k];
    x[i] = sum / l_(i, i);
  }
  return x;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  return solve_lower_transposed(solve_lower(b));
}

double Cholesky::log_determinant() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

void Cholesky::rank1_update(std::span<const double> v) {
  const std::size_t n = l_.rows();
  YOSO_REQUIRE(v.size() == n, "Cholesky::rank1_update: v has ", v.size(),
               " entries, factor is ", n, "x", n);
  std::vector<double> w(v.begin(), v.end());
  double* ld = l_.data().data();
  for (std::size_t j = 0; j < n; ++j) {
    const double ljj = ld[j * n + j];
    const double r = std::hypot(ljj, w[j]);
    const double c = r / ljj;
    const double s = w[j] / ljj;
    ld[j * n + j] = r;
    for (std::size_t i = j + 1; i < n; ++i) {
      double lij = ld[i * n + j];
      lij = (lij + s * w[i]) / c;
      ld[i * n + j] = lij;
      w[i] = c * w[i] - s * lij;
    }
  }
}

void Cholesky::rank1_downdate(std::span<const double> v) {
  const std::size_t n = l_.rows();
  YOSO_REQUIRE(v.size() == n, "Cholesky::rank1_downdate: v has ", v.size(),
               " entries, factor is ", n, "x", n);
  std::vector<double> w(v.begin(), v.end());
  double* ld = l_.data().data();
  for (std::size_t j = 0; j < n; ++j) {
    const double ljj = ld[j * n + j];
    const double rsq = ljj * ljj - w[j] * w[j];
    if (rsq <= 0.0)
      throw std::runtime_error(
          "Cholesky::rank1_downdate: result not positive definite");
    const double r = std::sqrt(rsq);
    const double c = r / ljj;
    const double s = w[j] / ljj;
    ld[j * n + j] = r;
    for (std::size_t i = j + 1; i < n; ++i) {
      double lij = ld[i * n + j];
      lij = (lij - s * w[i]) / c;
      ld[i * n + j] = lij;
      w[i] = c * w[i] - s * lij;
    }
  }
}

std::vector<double> ridge_solve(const Matrix& x, std::span<const double> y,
                                double lambda) {
  YOSO_REQUIRE(x.rows() == y.size(), "ridge_solve: x has ", x.rows(),
               " rows but y has ", y.size(), " targets");
  Matrix xtx = x.transpose() * x;
  xtx.add_diagonal(lambda);
  const std::vector<double> xty = x.matvec_transposed(y);
  // lambda == 0 may be singular; Cholesky's progressive jitter handles
  // near-singular gram matrices gracefully.
  Cholesky chol(xtx);
  return chol.solve(xty);
}

double dot(std::span<const double> a, std::span<const double> b) {
  YOSO_REQUIRE(a.size() == b.size(), "dot: sizes ", a.size(), " vs ",
               b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  YOSO_REQUIRE(a.size() == b.size(), "squared_distance: sizes ", a.size(),
               " vs ", b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace yoso
