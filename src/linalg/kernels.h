#pragma once
// Shared high-performance math kernels: the single substrate under
// Matrix::operator*, Cholesky, the im2col conv matmuls and the GP predict
// path (DESIGN.md §12).
//
// Every kernel is cache-blocked and FMA-friendly (restrict pointers,
// register-tiled multi-accumulator inner loops) with two engine variants
// selected once per process: an AVX2+FMA path (x86-64 hosts that report
// both features at runtime) and a portable generic path.  An optional
// ThreadPool parallelises over fixed-size row blocks.
//
// Determinism contract (matches the PR-1 batched-evaluation promise):
//   * results are bit-identical at any thread count, because row blocks are
//     a fixed size (independent of the worker count) and every output
//     element is produced by its own accumulator chain in a fixed reduction
//     order;
//   * a kernel invoked on a sub-range of rows produces bit-identical rows
//     to the full-range call (single-row and paired-row micro-kernel
//     variants issue the same per-element operation sequence), which is
//     what makes GpRegressor::predict() == predict_batch() row-for-row.
// Callers already inside a ThreadPool::parallel_for body must pass a null
// pool (nested parallel_for throws by contract).

#include <cstddef>
#include <string>
#include <vector>

namespace yoso {

class ThreadPool;

namespace kernels {

/// Engine selected for this process: "avx2+fma" or "generic".
std::string active_isa();

/// C (m x n) = A (m x k) * B (k x n); all row-major, C overwritten.
void gemm(const double* a, const double* b, double* c, std::size_t m,
          std::size_t k, std::size_t n, ThreadPool* pool = nullptr);

/// y (m) = A (m x n) * x; one fixed-order dot per output row.
void gemv(const double* a, const double* x, double* y, std::size_t m,
          std::size_t n);

/// Fixed-order dot product: four independent accumulator lanes combined as
/// ((l0+l1)+(l2+l3)) on every engine, so the reduction order never depends
/// on the caller.
double dot(const double* a, const double* b, std::size_t n);

/// C (m x n) = A (m x k) * B^T where B is (n x k): the im2col conv forward
/// product (out = cols * W^T).  B is packed to k x n internally.
void sgemm_abt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, ThreadPool* pool = nullptr);

/// C (m x n) = A (m x k) * B (k x n); C overwritten.
void sgemm_ab(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, ThreadPool* pool = nullptr);

/// C (k x n) += A^T * B where A is (m x k), B is (m x n): the conv weight
/// gradient accumulation.
void sgemm_atb_acc(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, ThreadPool* pool = nullptr);

/// Column-major pack of a row-major (rows x dim) matrix plus per-row
/// squared norms: the GP training set is packed once at fit time so every
/// predict reads unit-stride panels.
struct PackedRows {
  std::size_t rows = 0;
  std::size_t dim = 0;
  std::vector<double> data;   ///< dim x rows: data[c * rows + r] = src(r, c)
  std::vector<double> norms;  ///< norms[r] = dot(src_r, src_r)
};
PackedRows pack_rows(const double* src, std::size_t rows, std::size_t dim);

/// out (q x packed.rows) = clamped-at-zero squared Euclidean distances
/// between every query row and every packed row, via the norm expansion
/// |a-b|^2 = |a|^2 + |b|^2 - 2 a.b with the clamp fused into the product
/// epilogue (no second pass over the q x n block).
void pairwise_sq_dists(const double* queries, std::size_t q,
                       const PackedRows& packed, double* out,
                       ThreadPool* pool = nullptr);

/// out[i] = mult * exp(scale * in[i]); in == out aliasing is allowed.
/// Both engines use the same range-reduced polynomial (max relative error
/// ~3e-16 vs std::exp), and the vector path's remainder lanes run a scalar
/// replica of the identical operation sequence, so the result for element
/// i depends only on in[i] and i's position within the row.
void exp_scale(const double* in, double* out, std::size_t n, double scale,
               double mult);

/// Fused kernel-row evaluation: out[i] = mult * exp(scale * in[i]) and the
/// return value is sum_i out[i] * w[i], in one pass (in == out allowed).
/// The exp chains are those of exp_scale exactly (element values are
/// bit-identical); the dot accumulates in a fixed lane pattern that depends
/// only on n, so repeated calls on the same row always agree.  This is the
/// GP predictive-mean hot loop: K*(row) = exp of a distance row, mean
/// contribution = K*(row) . alpha.
double exp_scale_dot(const double* in, double* out, const double* w,
                     std::size_t n, double scale, double mult);

}  // namespace kernels
}  // namespace yoso
