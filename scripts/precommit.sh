#!/usr/bin/env bash
# Fast pre-commit gate: formatting plus the dependency-free lint tiers.
#
#   ./scripts/precommit.sh
#
# Runs in well under a second-per-tool and needs no build tree: the builtin
# formatting subset, then yoso-lint's regex and semantic engines (the
# libclang tier needs a compile database — that is scripts/check.sh's and
# CI's job, not this hook's).  Wire it up with:
#
#   ln -s ../../scripts/precommit.sh .git/hooks/pre-commit
set -euo pipefail

cd "$(dirname "$0")/.."

echo "precommit: format.check (builtin subset)"
python3 tools/yoso_format.py --root . --check --builtin-only

echo "precommit: yoso-lint (regex tier)"
python3 tools/yoso_lint.py --root . --engine regex

echo "precommit: yoso-lint (semantic tier)"
python3 tools/yoso_lint.py --root . --engine semantic

echo "precommit: ok"
