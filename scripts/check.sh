#!/usr/bin/env bash
# Full local correctness gate — the same sequence CI runs.
#
#   ./scripts/check.sh           # everything: -Werror build, ctest, lint,
#                                # ASan+UBSan ctest
#   ./scripts/check.sh --fast    # skip the sanitizer stage
#   ./scripts/check.sh --tsan    # additionally run the TSan stage
#
# Build trees are kept under build-check-* so the developer's own build/ is
# never clobbered.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
FAST=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --tsan) TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n==== %s ====\n' "$*"; }

step "1/4 configure + build (-Werror) and unit tests"
cmake -B build-check -S . -DYOSO_WERROR=ON
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check -j "$JOBS" --output-on-failure

step "2/4 yoso-lint (tree + self-test + standalone headers) + format + docs gates"
# yoso-lint splits its exit status: 0 clean, 1 violations in the tree,
# 2 tool error (missing/stale compile database, broken yoso_layers.json,
# unusable engine).  --require-fresh-db makes staleness a tool error here
# instead of silently degrading to a weaker engine, and the two failure
# modes get different messages so "the tree is dirty" and "the lint could
# not run" never masquerade as each other.
LINT_RC=0
python3 tools/yoso_lint.py --root . \
  --compile-db build-check/compile_commands.json --require-fresh-db \
  --check-headers --cxx "${CXX:-c++}" \
  --json build-check/lint_report.json || LINT_RC=$?
case "$LINT_RC" in
  0) ;;
  1)
    echo "error: yoso-lint found violations (see above; machine-readable" >&2
    echo "report at build-check/lint_report.json)." >&2
    exit 1 ;;
  *)
    echo "error: yoso-lint could not run (exit $LINT_RC): missing or stale" >&2
    echo "compile database, or broken tools/yoso_layers.json.  Reconfigure" >&2
    echo "with 'cmake -B build-check -S .' and retry." >&2
    exit "$LINT_RC" ;;
esac
python3 tools/yoso_format.py --root . --check --builtin-only
python3 tools/yoso_docs_check.py .

if [ "$FAST" -eq 1 ]; then
  step "skipping sanitizer stages (--fast)"
else
  step "3/4 ASan+UBSan build and unit tests"
  cmake -B build-check-asan -S . -DYOSO_SANITIZE=address,undefined
  cmake --build build-check-asan -j "$JOBS"
  ctest --test-dir build-check-asan -j "$JOBS" --output-on-failure

  if [ "$TSAN" -eq 1 ]; then
    step "4/4 TSan build and threaded tests (--tsan)"
    cmake -B build-check-tsan -S . -DYOSO_SANITIZE=thread
    cmake --build build-check-tsan -j "$JOBS"
    # The threaded surfaces: pool, batched evaluator, parallel drivers.
    ctest --test-dir build-check-tsan -j "$JOBS" --output-on-failure \
      -R 'ThreadPool|Parallel|Evaluator|Batch'
  else
    step "4/4 TSan stage skipped (pass --tsan to enable)"
  fi
fi

printf '\nAll checks passed.\n'
