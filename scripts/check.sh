#!/usr/bin/env bash
# Full local correctness gate — the same sequence CI runs.
#
#   ./scripts/check.sh           # everything: -Werror build, ctest, lint,
#                                # ASan+UBSan ctest
#   ./scripts/check.sh --fast    # skip the sanitizer stage
#   ./scripts/check.sh --tsan    # additionally run the TSan stage
#
# Build trees are kept under build-check-* so the developer's own build/ is
# never clobbered.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
FAST=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --tsan) TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n==== %s ====\n' "$*"; }

step "1/4 configure + build (-Werror) and unit tests"
cmake -B build-check -S . -DYOSO_WERROR=ON
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check -j "$JOBS" --output-on-failure

step "2/4 yoso-lint (tree + self-test + standalone headers) + format + docs gates"
# yoso-lint's clang engine reads the exported compile database; fail fast
# with a clear message if it is missing (configure didn't run / ancient
# CMake) or stale (older than the top-level CMakeLists.txt), instead of
# letting the lint silently degrade to a weaker engine.
COMPILE_DB=build-check/compile_commands.json
if [ ! -f "$COMPILE_DB" ]; then
  echo "error: $COMPILE_DB is missing." >&2
  echo "CMAKE_EXPORT_COMPILE_COMMANDS=ON should have produced it during the" >&2
  echo "configure step above; rerun 'cmake -B build-check -S .' and check" >&2
  echo "for configure errors before trusting any lint result." >&2
  exit 1
fi
if [ CMakeLists.txt -nt "$COMPILE_DB" ]; then
  echo "error: $COMPILE_DB is stale (older than CMakeLists.txt)." >&2
  echo "Reconfigure with 'cmake -B build-check -S .' so yoso-lint analyses" >&2
  echo "the flags the tree actually builds with." >&2
  exit 1
fi
cmake --build build-check --target lint
python3 tools/yoso_format.py --root . --check --builtin-only
python3 tools/yoso_docs_check.py .

if [ "$FAST" -eq 1 ]; then
  step "skipping sanitizer stages (--fast)"
else
  step "3/4 ASan+UBSan build and unit tests"
  cmake -B build-check-asan -S . -DYOSO_SANITIZE=address,undefined
  cmake --build build-check-asan -j "$JOBS"
  ctest --test-dir build-check-asan -j "$JOBS" --output-on-failure

  if [ "$TSAN" -eq 1 ]; then
    step "4/4 TSan build and threaded tests (--tsan)"
    cmake -B build-check-tsan -S . -DYOSO_SANITIZE=thread
    cmake --build build-check-tsan -j "$JOBS"
    # The threaded surfaces: pool, batched evaluator, parallel drivers.
    ctest --test-dir build-check-tsan -j "$JOBS" --output-on-failure \
      -R 'ThreadPool|Parallel|Evaluator|Batch'
  else
    step "4/4 TSan stage skipped (pass --tsan to enable)"
  fi
fi

printf '\nAll checks passed.\n'
