#!/usr/bin/env bash
# Full local correctness gate — the same sequence CI runs.
#
#   ./scripts/check.sh           # everything: -Werror build, ctest, lint,
#                                # ASan+UBSan ctest
#   ./scripts/check.sh --fast    # skip the sanitizer stage
#   ./scripts/check.sh --tsan    # additionally run the TSan stage
#
# Each gate announces itself when it starts and the script prints a
# per-gate wall-time summary on exit (success or failure), so a slow or
# failing stage is identifiable at a glance.  A stale or missing
# compile_commands.json is regenerated automatically before the lint gate
# instead of failing fast and making the user re-run cmake by hand.
#
# Build trees are kept under build-check-* so the developer's own build/ is
# never clobbered.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
FAST=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --tsan) TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

GATE_NAMES=()
GATE_SECS=()
CURRENT_GATE=""
GATE_T0=0

gate_begin() {
  CURRENT_GATE="$1"
  GATE_T0=$SECONDS
  printf '\n==== gate: %s ====\n' "$1"
}

gate_end() {
  GATE_NAMES+=("$CURRENT_GATE")
  GATE_SECS+=($((SECONDS - GATE_T0)))
  CURRENT_GATE=""
}

print_summary() {
  local status=$?
  printf '\n---- gate wall-time summary ----\n'
  local i
  for i in "${!GATE_NAMES[@]}"; do
    printf '  %-38s %4ds\n' "${GATE_NAMES[$i]}" "${GATE_SECS[$i]}"
  done
  if [ -n "$CURRENT_GATE" ]; then
    printf '  %-38s %4ds  (FAILED here)\n' "$CURRENT_GATE" \
      $((SECONDS - GATE_T0))
  fi
  printf '  %-38s %4ds\n' "total" "$SECONDS"
  if [ "$status" -eq 0 ]; then
    printf '\nAll checks passed.\n'
  else
    printf '\nFAILED (exit %d).\n' "$status"
  fi
}
trap print_summary EXIT

gate_begin "configure + build (-Werror)"
cmake -B build-check -S . -DYOSO_WERROR=ON
cmake --build build-check -j "$JOBS"
gate_end

gate_begin "unit tests (ctest)"
ctest --test-dir build-check -j "$JOBS" --output-on-failure
gate_end

gate_begin "yoso-lint (tree + self-test + headers)"
# A compile database older than the top-level CMakeLists.txt records flags
# the tree no longer builds with; reconfigure to refresh it rather than
# letting the lint gate fail with a tool error.
DB=build-check/compile_commands.json
if [ ! -f "$DB" ] || [ "$DB" -ot CMakeLists.txt ]; then
  echo "compile database missing or stale — regenerating via cmake"
  cmake -B build-check -S . -DYOSO_WERROR=ON
fi
# yoso-lint splits its exit status: 0 clean, 1 violations in the tree,
# 2 tool error (missing/stale compile database, broken yoso_layers.json,
# unusable engine).  --require-fresh-db makes staleness a tool error here
# instead of silently degrading to a weaker engine, and the two failure
# modes get different messages so "the tree is dirty" and "the lint could
# not run" never masquerade as each other.
LINT_RC=0
python3 tools/yoso_lint.py --root . \
  --compile-db "$DB" --require-fresh-db \
  --check-headers --cxx "${CXX:-c++}" \
  --json build-check/lint_report.json || LINT_RC=$?
case "$LINT_RC" in
  0) ;;
  1)
    echo "error: yoso-lint found violations (see above; machine-readable" >&2
    echo "report at build-check/lint_report.json)." >&2
    exit 1 ;;
  *)
    echo "error: yoso-lint could not run (exit $LINT_RC): missing or stale" >&2
    echo "compile database, or broken tools/yoso_layers.json.  Reconfigure" >&2
    echo "with 'cmake -B build-check -S .' and retry." >&2
    exit "$LINT_RC" ;;
esac
gate_end

gate_begin "format + docs gates"
python3 tools/yoso_format.py --root . --check --builtin-only
python3 tools/yoso_docs_check.py .
gate_end

if [ "$FAST" -eq 1 ]; then
  printf '\n(sanitizer gates skipped: --fast)\n'
else
  gate_begin "ASan+UBSan build and unit tests"
  cmake -B build-check-asan -S . -DYOSO_SANITIZE=address,undefined
  cmake --build build-check-asan -j "$JOBS"
  ctest --test-dir build-check-asan -j "$JOBS" --output-on-failure
  gate_end

  if [ "$TSAN" -eq 1 ]; then
    gate_begin "TSan build and threaded tests"
    cmake -B build-check-tsan -S . -DYOSO_SANITIZE=thread
    cmake --build build-check-tsan -j "$JOBS"
    # The threaded surfaces: pool, batched evaluator, parallel drivers.
    ctest --test-dir build-check-tsan -j "$JOBS" --output-on-failure \
      -R 'ThreadPool|Parallel|Evaluator|Batch'
    gate_end
  else
    printf '\n(TSan gate skipped: pass --tsan to enable)\n'
  fi
fi
