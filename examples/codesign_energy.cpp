// Energy-constrained co-design: the scenario from the paper's introduction
// — an edge/IoT vision system with a hard energy budget per inference.
//
// This example runs the energy-weighted co-search (the paper's yoso_eer
// setting), then compares the found co-design against the two-stage flow
// applied to two published-style reference networks, printing the per-layer
// energy breakdown of the winner so a hardware engineer can see where the
// joules go.

#include <algorithm>
#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "core/two_stage.h"
#include "util/table.h"

int main() {
  using namespace yoso;

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);

  // Tighter budget than the paper default: 6 mJ per inference.
  RewardParams reward = energy_opt_reward();
  reward.t_eer_mj = 6.0;
  std::cout << "goal: best accuracy within " << reward.t_eer_mj
            << " mJ and " << reward.t_lat_ms << " ms per inference\n";

  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = 400, .seed = 7});
  AccurateEvaluator accurate(skeleton);

  SearchOptions options;
  options.iterations = 1800;
  options.reward = reward;
  options.seed = 99;
  const SearchResult result = YosoSearch(space, options).run(fast, &accurate);
  const RankedCandidate& yoso = result.best.value();

  // Two-stage alternative: take strong published cells, then pick each
  // one's best accelerator configuration.
  TextTable table({"approach", "err %", "energy mJ", "latency ms",
                   "within budget", "config"});
  for (const char* name : {"Darts_v2", "EnasNet"}) {
    const auto row = two_stage_best_config(reference_model(name), space,
                                           accurate, reward);
    table.add_row({"two-stage " + row.name,
                   TextTable::fmt((1.0 - row.result.accuracy) * 100.0, 2),
                   TextTable::fmt(row.result.energy_mj, 2),
                   TextTable::fmt(row.result.latency_ms, 2),
                   row.feasible ? "yes" : "NO",
                   row.design.config.to_string()});
  }
  table.add_row({"single-stage YOSO",
                 TextTable::fmt((1.0 - yoso.accurate_result.accuracy) * 100.0,
                                2),
                 TextTable::fmt(yoso.accurate_result.energy_mj, 2),
                 TextTable::fmt(yoso.accurate_result.latency_ms, 2),
                 yoso.feasible ? "yes" : "NO",
                 yoso.candidate.config.to_string()});
  std::cout << "\n";
  table.print(std::cout);

  // Energy breakdown of the YOSO solution.
  const SimulationResult sim = accurate.simulator().simulate_network(
      yoso.candidate.genotype, skeleton, yoso.candidate.config);
  std::cout << "\nYOSO solution energy breakdown:\n"
            << "  DRAM   " << TextTable::fmt(sim.dram_mj, 2) << " mJ\n"
            << "  g-buf  " << TextTable::fmt(sim.gbuf_mj, 2) << " mJ\n"
            << "  r-buf  " << TextTable::fmt(sim.rbuf_mj, 2) << " mJ\n"
            << "  MACs   " << TextTable::fmt(sim.mac_mj, 2) << " mJ\n"
            << "  static " << TextTable::fmt(sim.static_mj, 2) << " mJ\n"
            << "  PE utilisation " << TextTable::fmt(sim.mean_utilization, 2)
            << "\n";

  // Top-3 energy-hungriest layers.
  const auto layers = extract_layers(yoso.candidate.genotype, skeleton);
  std::vector<std::pair<double, std::string>> hot;
  for (std::size_t i = 0; i < sim.layers.size(); ++i)
    hot.emplace_back(sim.layers[i].energy_pj, layers[i].name);
  std::sort(hot.rbegin(), hot.rend());
  std::cout << "hottest layers:\n";
  for (int i = 0; i < 3 && i < static_cast<int>(hot.size()); ++i)
    std::cout << "  " << hot[static_cast<std::size_t>(i)].second << "  "
              << TextTable::fmt(hot[static_cast<std::size_t>(i)].first * 1e-9,
                                3)
              << " mJ\n";
  return 0;
}
