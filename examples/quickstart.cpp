// Quickstart: the whole YOSO pipeline in ~60 lines.
//
//  1. Describe the joint design space (40 DNN actions + 4 hardware actions).
//  2. Build the fast evaluator (Step 1): simulate a few hundred random
//     co-designs and fit the GP performance predictors.
//  3. Run the RL co-search (Step 2) under a multi-objective reward.
//  4. Rerank the top candidates with the accurate evaluator (Step 3) and
//     print the winning network + accelerator configuration.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/search.h"
#include "util/table.h"

int main() {
  using namespace yoso;

  // 1. The joint co-design space from the paper (Table 1 hardware ranges,
  //    NASNet-style cell space for the DNN).
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  std::cout << "joint design space: 10^" << TextTable::fmt(space.log10_size(), 1)
            << " candidates, " << space.num_actions() << " actions\n";

  // 2. Step 1 — fast evaluator: GP predictors trained on simulator samples,
  //    plus the HyperNet-style accuracy proxy.
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  std::cout << "building fast evaluator (sampling the simulator)...\n";
  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = 400, .seed = 1});

  // 3. Step 2 — RL search with the balanced composite reward
  //    (thresholds: 9 mJ, 1.2 ms).
  SearchOptions options;
  options.iterations = 1500;
  options.top_n = 10;
  options.reward = balanced_reward();
  options.seed = 42;
  std::cout << "searching (" << options.iterations << " iterations, reward "
            << options.reward.to_string() << ")...\n";

  // 4. Step 3 — accurate reranking of the finalists.
  AccurateEvaluator accurate(skeleton);
  YosoSearch search(space, options);
  const SearchResult result = search.run(fast, &accurate);

  const RankedCandidate& best = result.best.value();
  std::cout << "\n=== final co-design ===\n"
            << "network:      " << to_string(best.candidate.genotype) << "\n"
            << "accelerator:  " << best.candidate.config.to_string() << "\n"
            << "test error:   "
            << TextTable::fmt((1.0 - best.accurate_result.accuracy) * 100.0, 2)
            << " %\n"
            << "energy:       "
            << TextTable::fmt(best.accurate_result.energy_mj, 2) << " mJ\n"
            << "latency:      "
            << TextTable::fmt(best.accurate_result.latency_ms, 2) << " ms\n"
            << "feasible:     " << (best.feasible ? "yes" : "no")
            << "  (thresholds: 9 mJ, 1.2 ms)\n";

  const auto stats =
      network_stats(extract_layers(best.candidate.genotype, skeleton));
  std::cout << "network size: " << stats.total_macs / 1000000 << " MMACs, "
            << stats.total_params / 1000 << " k params, " << stats.num_layers
            << " layers\n";
  return 0;
}
