// Deep-dive on one co-design: train the network for real (SynthCIFAR at
// tiny scale), inspect *what* it gets wrong (confusion matrix, top-k),
// check how it survives fixed-point deployment (quantisation sweep), and
// explain the hardware fit (roofline).  Everything a design review needs
// beyond a single accuracy number.

#include <iostream>

#include "accel/config.h"
#include "accel/roofline.h"
#include "arch/network.h"
#include "nn/dataset.h"
#include "nn/metrics.h"
#include "nn/network.h"
#include "nn/quantize.h"
#include "nn/trainer.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace yoso;

  // --- train a model on the tiny task ---
  SynthCifar task(12, 10, 7);
  const Dataset train = task.generate(40, 1);
  const Dataset val = task.generate(12, 2);
  const NetworkSkeleton skeleton = tiny_skeleton(12, 8);
  Rng rng(42);
  const Genotype g = random_genotype(rng);
  PathNetwork net(skeleton, 99);
  TrainOptions options;
  options.epochs = 8;
  options.batch_size = 25;
  std::cout << "training a candidate network (" << options.epochs
            << " epochs)...\n";
  const auto logs = train_standalone(net, g, train, val, options, rng);
  std::cout << "final validation accuracy: "
            << TextTable::fmt(logs.back().val_accuracy, 3) << "\n\n";

  // --- confusion analysis ---
  ConfusionMatrix cm = evaluate_confusion(net, g, val, 24);
  std::cout << "per-class recall:\n";
  TextTable recall({"class", "recall", "precision"});
  for (int c = 0; c < cm.num_classes(); ++c)
    recall.add_row({TextTable::fmt_int(c), TextTable::fmt(cm.recall(c), 2),
                    TextTable::fmt(cm.precision(c), 2)});
  recall.print(std::cout);
  const auto [worst_true, worst_pred] = cm.worst_confusion();
  std::cout << "most confused pair: true class " << worst_true
            << " predicted as " << worst_pred << " ("
            << cm.at(worst_true, worst_pred) << " times)\n\n";

  // --- quantisation sweep ---
  std::cout << "fixed-point deployment sweep:\n";
  TextTable quant({"weight bits", "val accuracy"});
  quant.add_row({"float32", TextTable::fmt(net.evaluate(g, val, 24), 3)});
  for (int bits : {16, 8, 6, 4, 3, 2})
    quant.add_row({TextTable::fmt_int(bits),
                   TextTable::fmt(evaluate_quantized(net, g, val, bits, 24),
                                  3)});
  quant.print(std::cout);
  std::cout << "(the accelerator model assumes a 16-bit datapath — "
               "typically lossless here)\n\n";

  // --- hardware fit: roofline on the default accelerator ---
  const AcceleratorConfig cfg{16, 32, 512, 512,
                              Dataflow::kOutputStationary};
  const auto layers = extract_layers(g, default_skeleton());
  const RooflineSummary roof = roofline_analysis(layers, cfg);
  std::cout << "roofline on " << cfg.to_string() << ": peak "
            << TextTable::fmt(roof.peak_gmacs, 0) << " GMAC/s, balance "
            << TextTable::fmt(roof.balance_intensity, 1) << " MACs/byte\n"
            << roof.memory_bound_layers << " of " << roof.layers.size()
            << " weight layers memory-bound; roofline efficiency "
            << TextTable::fmt(roof.mean_efficiency * 100.0, 0) << " %\n";
  TextTable hot({"layer", "intensity (MAC/B)", "achieved GMAC/s", "bound"});
  for (std::size_t i = 0; i < std::min<std::size_t>(roof.layers.size(), 6);
       ++i) {
    const auto& p = roof.layers[i];
    hot.add_row({p.layer_name, TextTable::fmt(p.intensity, 1),
                 TextTable::fmt(p.achieved_gmacs, 0),
                 p.memory_bound ? "memory" : "compute"});
  }
  hot.print(std::cout);
  return 0;
}
