# Runs yoso_cli with the same seed at two thread counts and fails unless the
# finalist CSVs are bit-identical.  Guards the DESIGN.md §9 promise at the CLI
# layer: no default (batch size included) may be derived from --threads.
foreach(threads 1 3)
  execute_process(
    COMMAND ${YOSO_CLI}
      --iterations 40 --samples 80 --seed 21 --threads ${threads}
      --finalists ${WORK_DIR}/finalists_t${threads}.csv
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "yoso_cli --threads ${threads} exited with ${rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/finalists_t1.csv ${WORK_DIR}/finalists_t3.csv
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "finalists differ between --threads 1 and --threads 3 for the same seed; "
    "a CLI default is leaking the thread count into the search trajectory")
endif()
