// Tour of the hardware performance predictor: sample the simulator, fit
// the GP pair, inspect prediction quality and uncertainty, and use the
// predictor to sweep one design axis cheaply (the kind of what-if a
// hardware architect asks during design-space exploration).

#include <cmath>
#include <iostream>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "predictor/perf_predictor.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace yoso;

  const NetworkSkeleton skeleton = default_skeleton();
  const ConfigSpace space = default_config_space();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);

  // Collect and split samples.
  Rng rng(11);
  std::cout << "simulating 500 random co-designs...\n";
  const auto samples = collect_samples(500, simulator, space, skeleton, rng);
  const std::vector<PerfSample> train(samples.begin(), samples.begin() + 400);
  const std::vector<PerfSample> test(samples.begin() + 400, samples.end());

  PerformancePredictor predictor(skeleton);
  predictor.fit(train);

  // Held-out accuracy.
  std::vector<double> pe, te, pl, tl;
  for (const auto& s : test) {
    pe.push_back(predictor.predict_energy_mj(s.genotype, s.config));
    te.push_back(s.energy_mj);
    pl.push_back(predictor.predict_latency_ms(s.genotype, s.config));
    tl.push_back(s.latency_ms);
  }
  std::cout << "held-out quality: energy rel-err "
            << TextTable::fmt(mean_relative_error(pe, te) * 100.0, 1)
            << " % (r=" << TextTable::fmt(pearson(pe, te), 3)
            << "), latency rel-err "
            << TextTable::fmt(mean_relative_error(pl, tl) * 100.0, 1)
            << " % (r=" << TextTable::fmt(pearson(pl, tl), 3) << ")\n\n";

  // What-if sweep: same network, grow the PE array.
  const Genotype g = random_genotype(rng);
  TextTable sweep({"PE array", "predicted L (ms)", "simulated L (ms)",
                   "predicted E (mJ)", "simulated E (mJ)"});
  for (const auto& [rows, cols] : space.pe_shapes) {
    AcceleratorConfig cfg{rows, cols, 512, 256,
                          Dataflow::kOutputStationary};
    const auto sim = simulator.simulate_network(g, skeleton, cfg);
    sweep.add_row({std::to_string(rows) + "x" + std::to_string(cols),
                   TextTable::fmt(predictor.predict_latency_ms(g, cfg), 2),
                   TextTable::fmt(sim.latency_ms, 2),
                   TextTable::fmt(predictor.predict_energy_mj(g, cfg), 2),
                   TextTable::fmt(sim.energy_mj, 2)});
  }
  std::cout << "what-if: growing the PE array for one fixed network\n";
  sweep.print(std::cout);

  // Uncertainty: the GP knows what it has not seen.
  const auto f_seen =
      codesign_features(train[0].genotype, train[0].config, skeleton);
  AcceleratorConfig rare{8, 8, 1024, 1024, Dataflow::kNoLocalReuse};
  const auto f_rare = codesign_features(g, rare, skeleton);
  const auto [mu_seen, var_seen] =
      predictor.energy_model().predict_with_variance(f_seen);
  const auto [mu_rare, var_rare] =
      predictor.energy_model().predict_with_variance(f_rare);
  std::cout << "\nGP predictive stddev (log-energy): at a training point "
            << TextTable::fmt(std::sqrt(var_seen), 3)
            << ", at an unusual corner " << TextTable::fmt(std::sqrt(var_rare), 3)
            << " -> the model flags extrapolation\n";
  (void)mu_seen;
  (void)mu_rare;
  return 0;
}
