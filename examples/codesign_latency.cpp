// Latency-constrained co-design: a real-time vision pipeline that must hit
// a frame deadline (the paper's yoso_lat setting).  This example also
// demonstrates how different deadlines move the chosen hardware: the search
// is run for several latency thresholds and the selected PE array /
// dataflow are compared.

#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "util/table.h"

int main() {
  using namespace yoso;

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = 400, .seed = 17});
  AccurateEvaluator accurate(skeleton);

  TextTable table({"deadline", "err %", "latency ms", "energy mJ",
                   "PE array", "dataflow", "feasible"});
  for (const double deadline_ms : {1.5, 1.0, 0.7}) {
    RewardParams reward = latency_opt_reward();
    reward.t_lat_ms = deadline_ms;
    SearchOptions options;
    options.iterations = 1500;
    options.reward = reward;
    options.seed = 1000 + static_cast<std::uint64_t>(deadline_ms * 10);
    const SearchResult result =
        YosoSearch(space, options).run(fast, &accurate);
    const RankedCandidate& best = result.best.value();
    const auto& cfg = best.candidate.config;
    table.add_row(
        {TextTable::fmt(deadline_ms, 1) + " ms",
         TextTable::fmt((1.0 - best.accurate_result.accuracy) * 100.0, 2),
         TextTable::fmt(best.accurate_result.latency_ms, 2),
         TextTable::fmt(best.accurate_result.energy_mj, 2),
         std::to_string(cfg.pe_rows) + "x" + std::to_string(cfg.pe_cols),
         dataflow_name(cfg.dataflow), best.feasible ? "yes" : "no"});
  }
  std::cout << "latency-constrained co-design across deadlines:\n";
  table.print(std::cout);
  std::cout << "\nexpectation: tighter deadlines push toward larger PE "
               "arrays and leaner networks; the dataflow stays "
               "output-stationary, as in the paper's Table 2.\n";
  return 0;
}
