// The real-NN path end to end: train a weight-sharing HyperNet with uniform
// path sampling on SynthCIFAR, evaluate candidate architectures in a single
// test pass using inherited weights (no per-candidate training), then fully
// train the best candidate standalone — exactly the accuracy-evaluation
// flow of paper §III.D, at CPU scale.

#include <iostream>

#include "arch/network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace yoso;

  // A tiny classification task and skeleton so everything runs in seconds.
  SynthCifar task(12, 10, 7);
  const Dataset train = task.generate(40, 1);  // 400 images
  const Dataset val = task.generate(12, 2);    // 120 images
  const NetworkSkeleton skeleton = tiny_skeleton(12, 8);

  // --- one-time HyperNet training with uniform path sampling (Eq. 6) ---
  std::cout << "training the HyperNet (uniform path sampling)...\n";
  PathNetwork hypernet(skeleton, 2020);
  TrainOptions options;  // paper hyper-parameters (momentum, cosine LR, wd)
  options.epochs = 10;
  options.batch_size = 25;
  Rng rng(42);
  const auto logs = train_hypernet(hypernet, train, val, options, rng);
  std::cout << "final epoch: loss " << TextTable::fmt(logs.back().train_loss, 3)
            << ", sampled sub-model accuracy "
            << TextTable::fmt(logs.back().val_accuracy, 3) << "\n"
            << "shared weight bank: " << hypernet.param_count()
            << " parameters\n\n";

  // --- score candidates by weight inheritance: one test pass each ---
  const int candidates = 6;
  std::cout << "scoring " << candidates
            << " random candidates with inherited weights:\n";
  TextTable table({"candidate", "one-shot acc", "genotype (normal cell)"});
  Genotype best_genotype;
  double best_score = -1.0;
  for (int i = 0; i < candidates; ++i) {
    const Genotype g = random_genotype(rng);
    const double acc = hypernet.evaluate(g, val, 25);
    if (acc > best_score) {
      best_score = acc;
      best_genotype = g;
    }
    table.add_row({TextTable::fmt_int(i), TextTable::fmt(acc, 3),
                   to_string(g.normal).substr(0, 60) + "..."});
  }
  table.print(std::cout);

  // --- fully train the winner standalone (the paper's Step 3) ---
  std::cout << "\nfully training the best candidate standalone...\n";
  PathNetwork standalone(skeleton, 777);
  TrainOptions full;
  full.epochs = 8;
  full.batch_size = 25;
  Rng srng(7);
  const auto flogs =
      train_standalone(standalone, best_genotype, train, val, full, srng);
  std::cout << "one-shot estimate " << TextTable::fmt(best_score, 3)
            << "  ->  fully-trained accuracy "
            << TextTable::fmt(flogs.back().val_accuracy, 3) << "\n"
            << "(the one-shot score underestimates but preserves ranking — "
               "the Fig 5(b) property)\n";
  return 0;
}
