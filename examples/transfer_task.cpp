// Transferability demo (paper: "This framework is easily transferable to
// different applications").  The same co-search machinery is pointed at a
// *different* application profile without touching framework code:
//
//   task A — "camera preview": 32x32 inputs, balanced latency/energy;
//   task B — "always-on audio-event detector": narrower network skeleton,
//     much stricter energy budget, relaxed latency.
//
// Only the skeleton and reward change; Step 1 (predictor fitting) is redone
// per task because the layer statistics shift with the skeleton.

#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "util/table.h"

namespace {

using namespace yoso;

struct TaskSpec {
  std::string name;
  NetworkSkeleton skeleton;
  RewardParams reward;
};

void run_task(const TaskSpec& task, TextTable& table) {
  DesignSpace space;
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  FastEvaluator fast(space, task.skeleton, simulator,
                     {.predictor_samples = 400, .seed = 5});
  AccurateEvaluator accurate(task.skeleton);

  SearchOptions options;
  options.iterations = 1200;
  options.reward = task.reward;
  options.seed = 11;
  const SearchResult result =
      YosoSearch(space, options).run(fast, &accurate);
  const RankedCandidate& best = result.best.value();
  const auto stats =
      network_stats(extract_layers(best.candidate.genotype, task.skeleton));
  table.add_row(
      {task.name,
       TextTable::fmt((1.0 - best.accurate_result.accuracy) * 100.0, 2),
       TextTable::fmt(best.accurate_result.energy_mj, 2),
       TextTable::fmt(best.accurate_result.latency_ms, 2),
       TextTable::fmt_int(stats.total_macs / 1000000),
       best.candidate.config.to_string(), best.feasible ? "yes" : "no"});
}

}  // namespace

int main() {
  TaskSpec camera;
  camera.name = "camera preview";
  camera.skeleton = default_skeleton();  // 32x32, 6 cells
  camera.reward = balanced_reward();

  TaskSpec audio;
  audio.name = "always-on audio";
  audio.skeleton = default_skeleton();
  audio.skeleton.input_height = 24;  // smaller spectrogram-like inputs
  audio.skeleton.input_width = 24;
  audio.skeleton.stem_channels = 16;
  audio.reward = energy_opt_reward();
  audio.reward.t_eer_mj = 3.0;   // strict: always-on power budget
  audio.reward.t_lat_ms = 4.0;   // relaxed: no frame deadline

  TextTable table({"task", "err %", "E (mJ)", "L (ms)", "MMACs",
                   "config", "feasible"});
  std::cout << "re-targeting the identical framework at two applications...\n";
  run_task(camera, table);
  run_task(audio, table);
  table.print(std::cout);
  std::cout << "\nexpectation: the audio task's tight energy budget pulls "
               "the co-search toward a leaner network and a smaller, "
               "lower-leakage accelerator than the camera task — with zero "
               "framework changes.\n";
  return 0;
}
