// Command-line driver for the full framework: choose the search strategy,
// reward preset, thresholds and budget, and optionally dump the iteration
// trace / finalist table as CSV for plotting.
//
//   ./build/examples/yoso_cli --searcher rl --reward energy
//       --iterations 3000 --seed 7 --trace trace.csv --finalists top.csv
//
// Flags (all optional):
//   --searcher   rl | random | evolution | bayes        [rl]
//   --reward     balanced | energy | latency            [balanced]
//   --iterations N                                      [2000]
//   --samples    N   (GP training samples, Step 1)      [500]
//   --predictor  exact | sparse  (GP backend, Step 1)   [exact]
//   --inducing-points N  (sparse GP inducing rows)      [512]
//   --refine-every N  (fold an accurate result into the
//                      sparse GPs every N iterations;
//                      0 = off, requires --predictor sparse) [0]
//   --top-n      N   (finalists for Step-3 rerank)      [10]
//   --threads    N   (evaluation threads, 0 = all HW)   [1]
//   --batch      N   (candidates evaluated per round)   [8]
//   --seed       N                                      [7]
//   --t-lat      X   latency threshold, ms              [1.2]
//   --t-eer      X   energy threshold, mJ               [9.0]
//   --trace      FILE  write iteration trace CSV
//   --finalists  FILE  write finalist CSV
//   --report     FILE  write a markdown design report for the winner
//   --rtl        FILE  write a SystemVerilog skeleton of the winning config
//   --metrics-out FILE  write the metrics snapshot as JSON (enables
//                       observability for the run)
//   --trace-out  FILE  write Chrome trace_event JSON for chrome://tracing /
//                      Perfetto (enables observability for the run)
//   --save-artifact FILE  after Step 1, save the trained fast evaluator as a
//                      checksummed binary artifact (docs/ARTIFACTS.md) that
//                      yoso_serve and --load-artifact can reuse
//   --load-artifact FILE  restore the fast evaluator from an artifact
//                      instead of training it, skipping Step-1 sample
//                      collection entirely (--samples/--predictor/
//                      --inducing-points then come from the artifact)
//
// Either observability flag also prints the per-phase cost table
// (docs/OBSERVABILITY.md) after the results.

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "accel/area.h"
#include "accel/rtl_export.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "base/contract.h"
#include "core/alt_search.h"
#include "core/artifact.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/report.h"
#include "core/reward.h"
#include "core/search.h"
#include "core/serialize.h"
#include "core/trace_io.h"
#include "obs/metrics.h"
#include "obs/timebase.h"
#include "obs/trace.h"
#include "predictor/gp.h"
#include "util/exec_context.h"
#include "util/table.h"

namespace {

using namespace yoso;

struct CliOptions {
  std::string searcher = "rl";
  std::string reward = "balanced";
  std::size_t iterations = 2000;
  std::size_t samples = 500;
  std::string predictor = "exact";
  std::size_t inducing_points = 512;
  std::size_t refine_every = 0;
  std::size_t top_n = 10;
  std::size_t threads = 1;
  // Fixed default, deliberately NOT derived from --threads: the search
  // trajectory depends on batch_size, so a thread-following default would
  // make --threads change the results and break the bit-identical promise
  // (DESIGN.md §9).
  std::size_t batch = 8;
  std::uint64_t seed = 7;
  double t_lat = 1.2;
  double t_eer = 9.0;
  std::string trace_file;
  std::string finalists_file;
  std::string report_file;
  std::string rtl_file;
  std::string metrics_out;
  std::string trace_out;
  std::string save_artifact;
  std::string load_artifact;

  bool observe() const { return !metrics_out.empty() || !trace_out.empty(); }
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "yoso_cli: " << message
            << "\nsee the header comment of examples/yoso_cli.cpp for flags\n";
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opt;
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage_error("unexpected argument " + key);
    if (i + 1 >= argc) usage_error("missing value for " + key);
    kv[key.substr(2)] = argv[++i];
  }
  for (const auto& [key, value] : kv) {
    try {
      if (key == "searcher") opt.searcher = value;
      else if (key == "reward") opt.reward = value;
      else if (key == "iterations") opt.iterations = std::stoul(value);
      else if (key == "samples") opt.samples = std::stoul(value);
      else if (key == "predictor") opt.predictor = value;
      else if (key == "inducing-points") opt.inducing_points = std::stoul(value);
      else if (key == "refine-every") opt.refine_every = std::stoul(value);
      else if (key == "top-n") opt.top_n = std::stoul(value);
      else if (key == "threads") opt.threads = std::stoul(value);
      else if (key == "batch") opt.batch = std::stoul(value);
      else if (key == "seed") opt.seed = std::stoull(value);
      else if (key == "t-lat") opt.t_lat = std::stod(value);
      else if (key == "t-eer") opt.t_eer = std::stod(value);
      else if (key == "trace") opt.trace_file = value;
      else if (key == "finalists") opt.finalists_file = value;
      else if (key == "report") opt.report_file = value;
      else if (key == "rtl") opt.rtl_file = value;
      else if (key == "metrics-out") opt.metrics_out = value;
      else if (key == "trace-out") opt.trace_out = value;
      else if (key == "save-artifact") opt.save_artifact = value;
      else if (key == "load-artifact") opt.load_artifact = value;
      else usage_error("unknown flag --" + key);
    } catch (const std::exception&) {
      usage_error("bad value '" + value + "' for --" + key);
    }
  }
  return opt;
}

RewardParams pick_reward(const CliOptions& opt) {
  RewardParams reward;
  if (opt.reward == "balanced") reward = balanced_reward();
  else if (opt.reward == "energy") reward = energy_opt_reward();
  else if (opt.reward == "latency") reward = latency_opt_reward();
  else usage_error("unknown reward preset '" + opt.reward + "'");
  reward.t_lat_ms = opt.t_lat;
  reward.t_eer_mj = opt.t_eer;
  return reward;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_args(argc, argv);
  const bool observe = cli.observe();
  if (observe) obs::set_enabled(true);
  const Stopwatch wall;  // denominator of the per-phase cost table

  SearchOptions options;
  options.iterations = cli.iterations;
  options.top_n = cli.top_n;
  options.reward = pick_reward(cli);
  options.seed = cli.seed;
  options.batch_size = cli.batch;
  options.observe = observe;
  if (cli.predictor == "exact") options.predictor = GpBackend::kExact;
  else if (cli.predictor == "sparse") options.predictor = GpBackend::kSparse;
  else usage_error("unknown predictor backend '" + cli.predictor + "'");
  options.inducing_points = cli.inducing_points;
  options.refine_every = cli.refine_every;

  // --load-artifact replaces Step 1 wholesale: the predictor backend and
  // inducing budget recorded in the artifact override the corresponding
  // flags so validate() (e.g. refine-every-requires-sparse) judges what
  // will actually run.
  std::optional<FastEvaluatorArtifact> bundle;
  if (!cli.load_artifact.empty()) {
    try {
      bundle.emplace(load_fast_evaluator_artifact(cli.load_artifact));
    } catch (const std::exception& e) {
      usage_error("--load-artifact " + cli.load_artifact + ": " + e.what());
    }
    options.predictor = bundle->predictor.latency.backend;
    options.inducing_points = bundle->predictor.latency.inducing_target;
  }
  // Reject unusable option combinations before paying for Step 1: the
  // contracts live in SearchOptions::validate(), shared with every driver.
  try {
    options.validate();
  } catch (const ContractViolation& violation) {
    usage_error(violation.what());
  }

  DesignSpace space;
  const NetworkSkeleton skeleton =
      bundle.has_value() ? bundle->skeleton : default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);

  // One parallelism knob: a single ExecContext shared by both evaluators
  // (and injected again via run(), which is a no-op re-injection here).
  const ExecContextPtr exec = ExecContext::create(cli.threads);
  if (bundle.has_value()) {
    std::cout << "[1/3] restoring the fast evaluator from "
              << cli.load_artifact << " (" << exec->threads()
              << " thread(s))...\n";
  } else {
    std::cout << "[1/3] building the fast evaluator (" << cli.samples
              << " simulator samples, " << exec->threads()
              << " thread(s))...\n";
  }
  // The evaluator and result objects outlive the phases, so the top-level
  // phase spans use the manual begin/end API rather than a scoped block.
  // FastEvaluator is non-movable; both branches of the conditional are
  // prvalues, so `fast` is constructed in place either way.
  obs::begin_span("phase.build_evaluator");
  FastEvaluator fast =
      bundle.has_value()
          ? make_fast_evaluator(*bundle, exec)
          : FastEvaluator(space, skeleton, simulator,
                          {.predictor_samples = cli.samples,
                           .seed = cli.seed,
                           .predictor_backend = options.predictor,
                           .inducing_points = options.inducing_points,
                           .exec = exec});
  if (!cli.save_artifact.empty()) {
    save_fast_evaluator(cli.save_artifact, fast, "yoso_cli",
                        "seed=" + std::to_string(cli.seed));
    std::cout << "artifact written to " << cli.save_artifact << "\n";
  }
  AccurateEvaluator accurate(skeleton, SystolicSimulator({},
                                                         SimFidelity::kCycleLevel),
                             exec);
  obs::end_span("phase.build_evaluator");

  std::cout << "[2/3] running " << cli.searcher << " search ("
            << cli.iterations << " iterations, "
            << options.reward.to_string() << ")...\n";
  SearchResult result;
  obs::begin_span("phase.search");
  if (cli.searcher == "rl") {
    result = YosoSearch(space, options).run(fast, &accurate, exec);
  } else if (cli.searcher == "random") {
    result = RandomSearchDriver(space, options).run(fast, &accurate, exec);
  } else if (cli.searcher == "evolution") {
    result = EvolutionarySearch(space, options).run(fast, &accurate, exec);
  } else if (cli.searcher == "bayes") {
    result = BayesOptSearch(space, options).run(fast, &accurate, exec);
  } else {
    usage_error("unknown searcher '" + cli.searcher + "'");
  }
  obs::end_span("phase.search");

  obs::begin_span("phase.outputs");
  std::cout << "[3/3] results\n\n";
  TextTable table({"rank", "err %", "E (mJ)", "L (ms)", "area (mm2)",
                   "feasible", "config"});
  for (std::size_t i = 0; i < result.finalists.size(); ++i) {
    const RankedCandidate& f = result.finalists[i];
    table.add_row(
        {TextTable::fmt_int(static_cast<long long>(i)),
         TextTable::fmt((1.0 - f.accurate_result.accuracy) * 100.0, 2),
         TextTable::fmt(f.accurate_result.energy_mj, 2),
         TextTable::fmt(f.accurate_result.latency_ms, 2),
         TextTable::fmt(total_area_mm2(f.candidate.config), 2),
         f.feasible ? "yes" : "no", f.candidate.config.to_string()});
  }
  table.print(std::cout);

  if (result.best) {
    std::cout << "\nwinning design:\n  "
              << serialize_candidate(result.best->candidate) << "\n";
  }
  if (!cli.trace_file.empty()) {
    std::ofstream os(cli.trace_file);
    if (!os) usage_error("cannot open " + cli.trace_file);
    write_trace_csv(os, result);
    std::cout << "trace written to " << cli.trace_file << "\n";
  }
  if (!cli.finalists_file.empty()) {
    std::ofstream os(cli.finalists_file);
    if (!os) usage_error("cannot open " + cli.finalists_file);
    write_finalists_csv(os, result);
    std::cout << "finalists written to " << cli.finalists_file << "\n";
  }
  if (!cli.report_file.empty() && result.best) {
    std::ofstream os(cli.report_file);
    if (!os) usage_error("cannot open " + cli.report_file);
    os << render_design_report(result, skeleton, options.reward);
    std::cout << "design report written to " << cli.report_file << "\n";
  }
  if (!cli.rtl_file.empty() && result.best) {
    std::ofstream os(cli.rtl_file);
    if (!os) usage_error("cannot open " + cli.rtl_file);
    os << export_systolic_rtl(result.best->candidate.config);
    std::cout << "RTL skeleton written to " << cli.rtl_file << "\n";
  }
  obs::end_span("phase.outputs");

  if (observe) {
    std::cout << "\n"
              << obs::render_phase_table(obs::summarize_spans(),
                                         wall.elapsed_seconds());
    if (!cli.metrics_out.empty()) {
      std::ofstream os(cli.metrics_out);
      if (!os) usage_error("cannot open " + cli.metrics_out);
      obs::write_metrics_json(os, obs::metrics_registry().snapshot());
      std::cout << "metrics written to " << cli.metrics_out << "\n";
    }
    if (!cli.trace_out.empty()) {
      std::ofstream os(cli.trace_out);
      if (!os) usage_error("cannot open " + cli.trace_out);
      obs::write_chrome_trace(os);
      std::cout << "chrome trace written to " << cli.trace_out
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
  }
  return 0;
}
