// Fig 6(c) — RL search toward the accuracy-latency trade-off region
// (stronger coefficient pair on the latency term).  Thresholds: t_eer 9 mJ,
// t_lat 1.2 ms.

#include "tradeoff_bench.h"

int main() {
  yoso::TradeoffSpec spec;
  spec.figure = "Fig 6(c)";
  spec.metric_name = "latency (ms)";
  spec.reward = yoso::latency_opt_reward();
  spec.metric = [](const yoso::EvalResult& r) { return r.latency_ms; };
  yoso::run_tradeoff_bench(spec);
  return 0;
}
