// §III.E claim — the GP performance predictor replaces cycle-level
// simulation at "nearly 2000x speed improvement with less than 4% accuracy
// loss".  This bench times both paths on the same candidate batch and
// reports the measured speedup and relative error.  (Note: the paper's
// baseline is the Python nn_dataflow simulator; our C++ cycle-level
// simulator is itself much faster, which compresses the measured ratio —
// the conclusion that prediction is orders of magnitude cheaper holds.)

#include <benchmark/benchmark.h>
#include <iostream>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "obs/trace.h"
#include "predictor/perf_predictor.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace yoso;

NetworkSkeleton g_skeleton;
ConfigSpace g_space;
std::vector<PerfSample> g_eval;
PerformancePredictor* g_predictor = nullptr;

void run_speedup() {
  g_skeleton = default_skeleton();
  g_space = default_config_space();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  Rng rng(2020);
  const std::size_t train_n = scaled(700, 200);
  const auto train = collect_samples(train_n, simulator, g_space, g_skeleton,
                                     rng);
  static PerformancePredictor predictor(g_skeleton);
  predictor.fit(train);
  g_predictor = &predictor;

  const std::size_t eval_n = scaled(100, 40);
  g_eval = collect_samples(eval_n, simulator, g_space, g_skeleton, rng);

  // Both paths are timed through the observability layer — the same spans
  // a --trace-out run records — instead of ad-hoc stopwatches, so the
  // numbers printed here and the per-phase table of a real run agree by
  // construction (docs/OBSERVABILITY.md).
  obs::set_enabled(true);
  obs::reset_tracing();
  {
    YOSO_TRACE_SPAN("speedup.simulate");
    for (const auto& s : g_eval)
      simulator.simulate_network(s.genotype, g_skeleton, s.config);
  }
  // Predictor timing + accuracy (features computed per query, as in the
  // search loop).
  std::vector<double> pe, te, pl, tl;
  {
    YOSO_TRACE_SPAN("speedup.gp_predict");
    for (const auto& s : g_eval) {
      pe.push_back(g_predictor->predict_energy_mj(s.genotype, s.config));
      pl.push_back(g_predictor->predict_latency_ms(s.genotype, s.config));
    }
  }
  obs::set_enabled(false);
  double sim_us = 0.0, gp_us = 0.0;
  for (const obs::SpanAggregate& a : obs::summarize_spans()) {
    // total_ns, not self_ns: the nested sim.network / gp child spans are
    // part of the path under test.
    if (a.name == "speedup.simulate")
      sim_us = static_cast<double>(a.total_ns) / 1e3 /
               static_cast<double>(eval_n);
    if (a.name == "speedup.gp_predict")
      gp_us = static_cast<double>(a.total_ns) / 1e3 /
              static_cast<double>(eval_n) / 2.0;  // per query
  }
  for (const auto& s : g_eval) {
    te.push_back(s.energy_mj);
    tl.push_back(s.latency_ms);
  }

  TextTable table({"path", "time per evaluation", "mean rel err vs simulator"});
  table.add_row({"cycle-level simulation",
                 TextTable::fmt(sim_us / 1000.0, 3) + " ms", "-"});
  table.add_row({"GP energy predictor", TextTable::fmt(gp_us, 1) + " us",
                 TextTable::fmt(mean_relative_error(pe, te) * 100.0, 2) + " %"});
  table.add_row({"GP latency predictor", TextTable::fmt(gp_us, 1) + " us",
                 TextTable::fmt(mean_relative_error(pl, tl) * 100.0, 2) + " %"});
  table.print(std::cout);
  std::cout << "\nmeasured speedup: " << TextTable::fmt(sim_us / gp_us, 0)
            << "x  (paper: ~2000x vs the Python nn_dataflow simulator)\n"
            << "accuracy loss: energy "
            << TextTable::fmt(mean_relative_error(pe, te) * 100.0, 2)
            << " %, latency "
            << TextTable::fmt(mean_relative_error(pl, tl) * 100.0, 2)
            << " %  (paper: < 4 %)\n";
}

void BM_Simulate(benchmark::State& state) {
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = g_eval[i++ % g_eval.size()];
    benchmark::DoNotOptimize(
        simulator.simulate_network(s.genotype, g_skeleton, s.config));
  }
}
BENCHMARK(BM_Simulate)->Unit(benchmark::kMillisecond);

void BM_GpPredict(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = g_eval[i++ % g_eval.size()];
    benchmark::DoNotOptimize(
        g_predictor->predict_energy_mj(s.genotype, s.config));
  }
}
BENCHMARK(BM_GpPredict)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  Stopwatch sw;
  bench_banner("§III.E", "GP predictor vs cycle-level simulation speedup");
  run_speedup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench_footer(sw);
  return 0;
}
