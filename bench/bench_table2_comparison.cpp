// Table 2 + Fig 7 — single-stage YOSO vs the two-stage method.
//
// Two-stage: each reference network (NasNet-A, DARTS v1/v2, AmoebaNet-A,
// EnasNet, PnasNet) is fixed and every accelerator configuration is
// enumerated to find its best config under the composite score.
// Single-stage: YOSO searches the joint space twice — once latency-weighted
// (yoso_lat) and once energy-weighted (yoso_eer) — then fully evaluates the
// top-10 candidates and keeps the best feasible one.
//
// Fig 7 normalises every row's energy/latency to the best; the paper's
// headline is 1.42x-2.29x energy or 1.79x-3.07x latency reduction at the
// same level of precision.

#include <iostream>
#include <map>

#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "core/two_stage.h"

namespace {

using namespace yoso;

struct Row {
  std::string name;
  std::string search_time;
  double paper_error, error, energy, latency;
  std::string config;
};

Row yoso_row(const std::string& name, const RewardParams& reward,
             DesignSpace& space, FastEvaluator& fast,
             AccurateEvaluator& accurate, std::uint64_t seed) {
  Stopwatch sw;
  SearchOptions opt;
  opt.iterations = scaled(3000, 400);
  opt.top_n = 10;  // paper: top-10 rerank with full training + simulation
  opt.reward = reward;
  opt.seed = seed;
  YosoSearch search(space, opt);
  const SearchResult result = search.run(fast, &accurate);
  const RankedCandidate& best = result.best.value();
  Row row;
  row.name = name;
  row.search_time = TextTable::fmt(sw.elapsed_seconds(), 0) + " s*";
  row.paper_error = name == "Yoso_lat" ? 3.18 : 3.05;
  row.error = (1.0 - best.accurate_result.accuracy) * 100.0;
  row.energy = best.accurate_result.energy_mj;
  row.latency = best.accurate_result.latency_ms;
  row.config = best.candidate.config.to_string();
  return row;
}

}  // namespace

int main() {
  Stopwatch sw;
  bench_banner("Table 2 / Fig 7", "single-stage YOSO vs the two-stage method");

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  std::cout << "building the fast evaluator (Step 1)...\n";
  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = scaled(700, 200), .seed = 3});
  AccurateEvaluator accurate(skeleton);

  // Paper energy/latency per Table 2 row, for side-by-side reporting.
  struct PaperPerf {
    double energy, latency;
  };
  const std::map<std::string, PaperPerf> paper_perf = {
      {"NasNet-A", {15.24, 2.11}},   {"Darts_v1", {10.63, 1.38}},
      {"Darts_v2", {11.01, 1.62}},   {"AmoebaNet-A", {13.67, 1.76}},
      {"EnasNet", {16.65, 2.25}},    {"PnasNet", {17.17, 2.37}},
      {"Yoso_lat", {8.16, 0.77}},    {"Yoso_eer", {7.50, 0.97}}};

  std::cout << "running the two-stage baseline (exhaustive config search per "
               "network, "
            << space.config_space().size() << " configs each)...\n";
  std::vector<Row> rows;
  const auto two_stage = two_stage_baseline(space, accurate,
                                            balanced_reward());
  for (const auto& ts : two_stage) {
    Row row;
    row.name = ts.name;
    row.search_time =
        TextTable::fmt(ts.paper_search_gpu_days, 2) + " GPU-days (paper)";
    row.paper_error = ts.paper_test_error;
    row.error = (1.0 - ts.result.accuracy) * 100.0;
    row.energy = ts.result.energy_mj;
    row.latency = ts.result.latency_ms;
    row.config = ts.design.config.to_string();
    rows.push_back(row);
  }

  std::cout << "running single-stage YOSO searches (Step 2 + Step 3 "
               "top-10 rerank)...\n\n";
  rows.push_back(yoso_row("Yoso_lat", latency_opt_reward(), space, fast,
                          accurate, 101));
  rows.push_back(yoso_row("Yoso_eer", energy_opt_reward(), space, fast,
                          accurate, 202));

  TextTable table({"Model", "Search time", "Err% (paper)", "Err% (ours)",
                   "E mJ (paper)", "E mJ (ours)", "L ms (paper)",
                   "L ms (ours)", "Config (ours)"});
  for (const auto& row : rows) {
    const auto& pp = paper_perf.at(row.name);
    table.add_row({row.name, row.search_time,
                   TextTable::fmt(row.paper_error, 2),
                   TextTable::fmt(row.error, 2), TextTable::fmt(pp.energy, 2),
                   TextTable::fmt(row.energy, 2),
                   TextTable::fmt(pp.latency, 2),
                   TextTable::fmt(row.latency, 2), row.config});
  }
  table.print(std::cout);
  std::cout << "*wall-clock on this machine; the paper reports 0.5 GPU-days "
               "per YOSO run on a P100\n";

  // --- Fig 7: normalised comparison + headline reduction bands. ---
  const Row& yoso_eer = rows[rows.size() - 1];
  const Row& yoso_lat = rows[rows.size() - 2];
  double e_min = 1e300, e_max = 0.0, l_min = 1e300, l_max = 0.0;
  TextTable fig7({"Model", "energy / yoso_eer", "latency / yoso_lat"});
  for (std::size_t i = 0; i + 2 < rows.size() + 0; ++i) {
    const Row& row = rows[i];
    const double er = row.energy / yoso_eer.energy;
    const double lr = row.latency / yoso_lat.latency;
    e_min = std::min(e_min, er);
    e_max = std::max(e_max, er);
    l_min = std::min(l_min, lr);
    l_max = std::max(l_max, lr);
    fig7.add_row({row.name, TextTable::fmt(er, 2) + "x",
                  TextTable::fmt(lr, 2) + "x"});
  }
  std::cout << "\nFig 7 — normalised energy/latency vs the YOSO solutions:\n";
  fig7.print(std::cout);
  std::cout << "\nheadline bands (two-stage / YOSO over the six references):\n"
            << "  energy reduction:  measured " << TextTable::fmt(e_min, 2)
            << "x .. " << TextTable::fmt(e_max, 2)
            << "x   (paper: 1.42x .. 2.29x)\n"
            << "  latency reduction: measured " << TextTable::fmt(l_min, 2)
            << "x .. " << TextTable::fmt(l_max, 2)
            << "x   (paper: 1.79x .. 3.07x)\n"
            << "shape check: "
            << (e_min > 1.0 && l_min > 1.0
                    ? "YOSO dominates every two-stage row on its optimised "
                      "metric, as in the paper"
                    : "MISMATCH: some two-stage row beats YOSO")
            << "\n";
  bench_footer(sw);
  return 0;
}
