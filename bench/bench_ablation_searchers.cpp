// Ablation — search-strategy shoot-out on the joint co-design space.
//
// Paper §III.B justifies the LSTM+RL searcher: "Compared to typically
// search methods such as Bayesian Optimization, Bandit algorithms that
// behave like random search in high dimensional search space, the search
// efficiency of the adopted searcher is significantly boosted."  This bench
// runs four strategies with the identical evaluation budget and reward —
// RL (paper), regularized evolution, GP-based Bayesian optimisation, and
// uniform random — and compares best reward, late-phase mean and the
// hypervolume of the explored accuracy-energy front.

#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/alt_search.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/pareto.h"
#include "core/reward.h"
#include "core/search.h"
#include "util/stats.h"

namespace {

using namespace yoso;

struct Outcome {
  std::string name;
  double best = 0.0;
  double tail_mean = 0.0;
  double hypervolume = 0.0;
  double seconds = 0.0;
};

Outcome summarise(const std::string& name, const SearchResult& r,
                  double seconds) {
  Outcome o;
  o.name = name;
  o.best = r.best_fast_reward;
  o.seconds = seconds;
  std::vector<double> tail;
  std::vector<EvalResult> evals;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    evals.push_back(r.trace[i].result);
    if (i >= r.trace.size() * 3 / 4) tail.push_back(r.trace[i].reward);
  }
  o.tail_mean = mean(tail);
  const auto points = to_tradeoff_points(evals, TradeoffMetric::kEnergy);
  o.hypervolume = hypervolume_2d(points, {40.0, 25.0});
  return o;
}

}  // namespace

int main() {
  Stopwatch total;
  bench_banner("Ablation",
               "RL vs evolution vs Bayesian optimisation vs random");

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = scaled(500, 150), .seed = 31});

  SearchOptions opt;
  opt.iterations = scaled(1500, 250);
  opt.trace_every = std::max<std::size_t>(opt.iterations / 60, 1);
  opt.reward = balanced_reward();
  opt.seed = 2020;
  std::cout << "budget: " << opt.iterations
            << " evaluations per strategy, reward "
            << opt.reward.to_string() << "\n\n";

  std::vector<Outcome> outcomes;
  {
    Stopwatch sw;
    YosoSearch rl(space, opt);
    const SearchResult r = rl.run(fast, nullptr);
    outcomes.push_back(summarise("RL + LSTM (paper)", r,
                                 sw.elapsed_seconds()));
  }
  {
    Stopwatch sw;
    EvolutionarySearch evo(space, opt);
    const SearchResult r = evo.run(fast, nullptr);
    outcomes.push_back(summarise("regularized evolution", r,
                                 sw.elapsed_seconds()));
  }
  {
    Stopwatch sw;
    BayesOptOptions bopt;
    bopt.initial_random = 40;
    bopt.refit_every = 25;
    bopt.acquisition_pool = 48;
    BayesOptSearch bo(space, opt, bopt);
    const SearchResult r = bo.run(fast, nullptr);
    outcomes.push_back(summarise("bayesian optimisation", r,
                                 sw.elapsed_seconds()));
  }
  {
    Stopwatch sw;
    RandomSearchDriver random(space, opt);
    const SearchResult r = random.run(fast, nullptr);
    outcomes.push_back(summarise("random search", r,
                                 sw.elapsed_seconds()));
  }

  TextTable table({"strategy", "best reward", "late-phase mean",
                   "explored hypervolume", "time (s)"});
  for (const Outcome& o : outcomes)
    table.add_row({o.name, TextTable::fmt(o.best, 3),
                   TextTable::fmt(o.tail_mean, 3),
                   TextTable::fmt(o.hypervolume, 0),
                   TextTable::fmt(o.seconds, 1)});
  table.print(std::cout);

  const Outcome& rl = outcomes[0];
  const Outcome& random = outcomes.back();
  std::cout << "\nshape check: "
            << (rl.tail_mean > random.tail_mean
                    ? "the RL searcher converges above random search"
                    : "MISMATCH: RL did not beat random")
            << "; BO late-phase "
            << TextTable::fmt(outcomes[2].tail_mean, 3)
            << " vs random " << TextTable::fmt(random.tail_mean, 3)
            << " (paper expects BO to behave like random in this "
               "44-dimensional space)\n";
  bench_footer(total);
  return 0;
}
