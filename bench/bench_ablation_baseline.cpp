// Ablation — the moving-average baseline in REINFORCE (paper Eq. 4: "It is
// very effective to insert the average baseline mechanism that reduces the
// variance of gradient estimation ... which can significantly expedite the
// search").  We run the identical co-search with the baseline enabled and
// disabled across several seeds and compare late-phase reward.

#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/search.h"
#include "util/stats.h"

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Ablation", "REINFORCE moving-average baseline on/off");

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = scaled(500, 150), .seed = 17});

  const std::size_t iterations = scaled(1200, 200);
  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  std::cout << "iterations per run: " << iterations << ", seeds: "
            << seeds.size() << "\n\n";

  TextTable table({"baseline", "seed", "late-phase mean reward",
                   "best reward"});
  std::vector<double> with_tail, without_tail;
  for (const bool use_baseline : {true, false}) {
    for (const std::uint64_t seed : seeds) {
      SearchOptions opt;
      opt.iterations = iterations;
      opt.trace_every = std::max<std::size_t>(iterations / 40, 1);
      opt.reward = balanced_reward();
      opt.seed = seed;
      opt.reinforce.use_baseline = use_baseline;
      YosoSearch search(space, opt);
      const SearchResult result = search.run(fast, nullptr);
      std::vector<double> tail;
      for (std::size_t i = result.trace.size() * 3 / 4;
           i < result.trace.size(); ++i)
        tail.push_back(result.trace[i].reward);
      const double tail_mean = mean(tail);
      (use_baseline ? with_tail : without_tail).push_back(tail_mean);
      table.add_row({use_baseline ? "on (paper)" : "off",
                     TextTable::fmt_int(static_cast<long long>(seed)),
                     TextTable::fmt(tail_mean, 3),
                     TextTable::fmt(result.best_fast_reward, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nmean late-phase reward: baseline on "
            << TextTable::fmt(mean(with_tail), 3) << " vs off "
            << TextTable::fmt(mean(without_tail), 3) << "\n"
            << "shape check: "
            << (mean(with_tail) >= mean(without_tail)
                    ? "the baseline expedites the search, as the paper states"
                    : "MISMATCH at this scale (stochastic; rerun with "
                      "YOSO_SCALE>1)")
            << "\n";
  bench_footer(sw);
  return 0;
}
