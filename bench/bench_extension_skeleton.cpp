// Extension — searching the skeleton too.
//
// Table 1 lists <N_Cells, R_cells> among the co-design variables; the
// paper's experiments fix the skeleton to 6 blocks and a fixed stem width.
// This bench compares the fixed-skeleton 44-action search against the
// 46-action extended search (network depth and stem width become actions)
// under a *tight* energy budget, where shrinking the skeleton is the only
// way to stay feasible without giving up the whole accuracy budget.

#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/extended_space.h"
#include "core/reward.h"
#include "core/search.h"

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Extension", "fixed skeleton (44 actions) vs searched "
                            "skeleton (46 actions)");

  RewardParams reward = energy_opt_reward();
  reward.t_eer_mj = 4.0;  // tight: the fixed 6-cell skeleton barely fits
  std::cout << "tight energy budget: " << reward.t_eer_mj << " mJ (paper "
            << "default is 9 mJ)\n\n";

  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  SearchOptions opt;
  opt.iterations = scaled(1500, 250);
  opt.reward = reward;
  opt.seed = 44;

  // Fixed-skeleton baseline.
  DesignSpace fixed_space;
  const NetworkSkeleton skeleton = default_skeleton();
  FastEvaluator fixed_fast(fixed_space, skeleton, simulator,
                           {.predictor_samples = scaled(500, 150), .seed = 1});
  AccurateEvaluator fixed_accurate(skeleton);
  const SearchResult fixed =
      YosoSearch(fixed_space, opt).run(fixed_fast, &fixed_accurate);

  // Extended search.
  ExtendedDesignSpace ext_space;
  ExtendedFastEvaluator ext_fast(ext_space, simulator, scaled(500, 150), 2);
  ExtendedAccurateEvaluator ext_accurate;
  const ExtendedSearchResult ext =
      ExtendedSearch(ext_space, opt).run(ext_fast, &ext_accurate);

  TextTable table({"space", "err %", "E (mJ)", "L (ms)", "cells", "stem",
                   "feasible", "config"});
  {
    const RankedCandidate& b = fixed.best.value();
    table.add_row({"fixed skeleton",
                   TextTable::fmt((1.0 - b.accurate_result.accuracy) * 100.0,
                                  2),
                   TextTable::fmt(b.accurate_result.energy_mj, 2),
                   TextTable::fmt(b.accurate_result.latency_ms, 2),
                   TextTable::fmt_int(static_cast<long long>(
                       skeleton.cells.size())),
                   TextTable::fmt_int(skeleton.stem_channels),
                   b.feasible ? "yes" : "no",
                   b.candidate.config.to_string()});
  }
  {
    const ExtendedRanked& b = ext.best.value();
    table.add_row({"searched skeleton",
                   TextTable::fmt((1.0 - b.accurate_result.accuracy) * 100.0,
                                  2),
                   TextTable::fmt(b.accurate_result.energy_mj, 2),
                   TextTable::fmt(b.accurate_result.latency_ms, 2),
                   TextTable::fmt_int(static_cast<long long>(
                       b.candidate.skeleton.cells.size())),
                   TextTable::fmt_int(b.candidate.skeleton.stem_channels),
                   b.feasible ? "yes" : "no",
                   b.candidate.config.to_string()});
  }
  table.print(std::cout);

  const double fixed_reward = fixed.best->accurate_reward;
  const double ext_reward = ext.best->accurate_reward;
  std::cout << "\naccurate composite reward: fixed "
            << TextTable::fmt(fixed_reward, 3) << " vs searched "
            << TextTable::fmt(ext_reward, 3) << "\n"
            << "shape check: "
            << (ext_reward >= fixed_reward - 0.02
                    ? "widening the space to Table 1's skeleton variables "
                      "does not hurt, and under tight budgets helps"
                    : "fixed skeleton won at this scale (stochastic)")
            << "\n";
  bench_footer(sw);
  return 0;
}
