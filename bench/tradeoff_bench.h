#pragma once
// Shared driver for Fig 6(b)/(c): run the RL co-search under a
// latency/energy-weighted reward, print the (accuracy, perf) trajectory
// every k-th iteration, and check that the population drifts toward the
// Pareto region.  The paper uses 12000 iterations and plots every 20th.

#include <functional>
#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "util/stats.h"

namespace yoso {

struct TradeoffSpec {
  std::string figure;          // "Fig 6(b)"
  std::string metric_name;     // "energy (mJ)"
  RewardParams reward;
  /// Extracts the traded-off metric from an evaluation.
  std::function<double(const EvalResult&)> metric;
};

inline void run_tradeoff_bench(const TradeoffSpec& spec) {
  Stopwatch sw;
  bench_banner(spec.figure,
               "search trajectory toward the accuracy-" + spec.metric_name +
                   " trade-off region");

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = scaled(600, 150), .seed = 23});

  SearchOptions opt;
  opt.iterations = scaled(2400, 300);
  opt.trace_every = std::max<std::size_t>(opt.iterations / 30, 1);
  opt.reward = spec.reward;
  opt.seed = 77;
  std::cout << "iterations: " << opt.iterations
            << " (paper: 12000, every 20th plotted), reward: "
            << opt.reward.to_string() << "\n\n";

  YosoSearch search(space, opt);
  AccurateEvaluator accurate(skeleton);
  const SearchResult result = search.run(fast, &accurate);

  TextTable table({"iteration", "reward", "accuracy", spec.metric_name});
  for (const auto& point : result.trace)
    table.add_row({TextTable::fmt_int(static_cast<long long>(point.iteration)),
                   TextTable::fmt(point.reward, 3),
                   TextTable::fmt(point.result.accuracy, 4),
                   TextTable::fmt(spec.metric(point.result), 3)});
  table.print(std::cout);

  // Drift check: late-phase samples must score better on the combined
  // objective and consume less of the traded metric than early samples.
  std::vector<double> early_m, late_m, early_r, late_r;
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const auto& p = result.trace[i];
    if (i < result.trace.size() / 4) {
      early_m.push_back(spec.metric(p.result));
      early_r.push_back(p.reward);
    } else if (i >= result.trace.size() * 3 / 4) {
      late_m.push_back(spec.metric(p.result));
      late_r.push_back(p.reward);
    }
  }
  std::cout << "\nearly-phase mean " << spec.metric_name << ": "
            << TextTable::fmt(mean(early_m), 3) << ", late-phase: "
            << TextTable::fmt(mean(late_m), 3) << "\n"
            << "early-phase mean reward: " << TextTable::fmt(mean(early_r), 3)
            << ", late-phase: " << TextTable::fmt(mean(late_r), 3) << "\n";
  if (result.best) {
    const auto& b = *result.best;
    std::cout << "final solution: error "
              << TextTable::fmt((1.0 - b.accurate_result.accuracy) * 100.0, 2)
              << " %, energy " << TextTable::fmt(b.accurate_result.energy_mj, 2)
              << " mJ, latency "
              << TextTable::fmt(b.accurate_result.latency_ms, 2) << " ms, "
              << b.candidate.config.to_string()
              << (b.feasible ? " (feasible)" : " (INFEASIBLE)") << "\n";
  }
  std::cout << "shape check: "
            << (mean(late_r) > mean(early_r)
                    ? "search drifts toward the higher combined-score region, "
                      "as in the paper"
                    : "MISMATCH: no drift toward the Pareto region")
            << "\n";
  bench_footer(sw);
}

}  // namespace yoso
