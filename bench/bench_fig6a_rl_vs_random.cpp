// Fig 6(a) — RL-based search vs random search on the composite score
// (alpha1 0.5, omega1 -0.4, alpha2 0.5, omega2 -0.4; thresholds 9 mJ /
// 1.2 ms).  The paper runs 10000 iterations and plots every 10th sample;
// the RL searcher gradually finds higher-reward solutions while random
// search stays flat.  Default here: 2000 iterations (YOSO_SCALE=5 for the
// paper's count).

#include <iostream>

#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/search.h"
#include "util/stats.h"

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Fig 6(a)", "RL search vs random search, composite reward");

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  FastEvaluator fast(space, skeleton, simulator,
                     {.predictor_samples = scaled(600, 150), .seed = 11});

  SearchOptions opt;
  opt.iterations = scaled(2000, 300);
  opt.trace_every = std::max<std::size_t>(opt.iterations / 40, 1);
  opt.reward = balanced_reward();
  opt.seed = 2020;
  std::cout << "iterations: " << opt.iterations << " (paper: 10000), reward: "
            << opt.reward.to_string() << "\n\n";

  YosoSearch rl(space, opt);
  const SearchResult rl_result = rl.run(fast, nullptr);
  RandomSearchDriver random(space, opt);
  const SearchResult random_result = random.run(fast, nullptr);

  TextTable table({"iteration", "RL reward", "random reward", "RL best-so-far",
                   "random best-so-far"});
  double rl_best = 0.0, rnd_best = 0.0;
  for (std::size_t i = 0; i < rl_result.trace.size(); ++i) {
    rl_best = std::max(rl_best, rl_result.trace[i].reward);
    rnd_best = std::max(rnd_best, random_result.trace[i].reward);
    table.add_row({TextTable::fmt_int(
                       static_cast<long long>(rl_result.trace[i].iteration)),
                   TextTable::fmt(rl_result.trace[i].reward, 3),
                   TextTable::fmt(random_result.trace[i].reward, 3),
                   TextTable::fmt(rl_best, 3), TextTable::fmt(rnd_best, 3)});
  }
  table.print(std::cout);

  auto tail_mean = [](const SearchResult& r) {
    std::vector<double> tail;
    for (std::size_t i = r.trace.size() * 3 / 4; i < r.trace.size(); ++i)
      tail.push_back(r.trace[i].reward);
    return mean(tail);
  };
  const double rl_tail = tail_mean(rl_result);
  const double rnd_tail = tail_mean(random_result);
  std::cout << "\nlate-phase mean reward: RL " << TextTable::fmt(rl_tail, 3)
            << " vs random " << TextTable::fmt(rnd_tail, 3) << "\n"
            << "best reward found:      RL "
            << TextTable::fmt(rl_result.best_fast_reward, 3) << " vs random "
            << TextTable::fmt(random_result.best_fast_reward, 3) << "\n"
            << "shape check: "
            << (rl_tail > rnd_tail && rl_result.best_fast_reward >=
                                          random_result.best_fast_reward
                    ? "RL finds better results than random search, as in "
                      "Fig 6(a)"
                    : "MISMATCH vs the paper's Fig 6(a)")
            << "\n";
  bench_footer(sw);
  return 0;
}
