// Ablation — is searching the dataflow worth it?  Table 1 makes the
// dataflow one of the four hardware actions; every Table-2 best config the
// paper reports ends up output-stationary.  For each reference network we
// freeze the dataflow, enumerate the remaining configuration axes, and
// report the best reachable energy/latency — quantifying the cost of
// committing to the wrong dataflow up front.

#include <iostream>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/two_stage.h"

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Ablation", "dataflow fixed vs searched (two-stage view)");

  const NetworkSkeleton skeleton = default_skeleton();
  AccurateEvaluator evaluator(skeleton,
                              SystolicSimulator({}, SimFidelity::kAnalytical));
  const RewardParams reward = balanced_reward();
  const ConfigSpace cs = default_config_space();

  TextTable table({"model", "dataflow", "best E (mJ)", "best L (ms)",
                   "best reward", "chosen config"});
  for (const auto& model : reference_models()) {
    std::string winner;
    double winner_reward = -1e300;
    for (int d = 0; d < kNumDataflows; ++d) {
      const auto df = static_cast<Dataflow>(d);
      double best_reward = -1e300;
      EvalResult best{};
      AcceleratorConfig best_cfg{};
      for (const AcceleratorConfig& config : cs.enumerate()) {
        if (config.dataflow != df) continue;
        const EvalResult r =
            evaluator.evaluate(CandidateDesign{model.genotype, config});
        const double score = reward.compute(r);
        if (score > best_reward) {
          best_reward = score;
          best = r;
          best_cfg = config;
        }
      }
      if (best_reward > winner_reward) {
        winner_reward = best_reward;
        winner = dataflow_name(df);
      }
      table.add_row({model.name, dataflow_name(df),
                     TextTable::fmt(best.energy_mj, 2),
                     TextTable::fmt(best.latency_ms, 2),
                     TextTable::fmt(best_reward, 3), best_cfg.to_string()});
    }
    table.add_row({model.name + " ->", "searched: " + winner,
                   "", "", TextTable::fmt(winner_reward, 3), ""});
  }
  table.print(std::cout);
  std::cout << "\nexpectation: OS/WS dominate RS/NLR on this template — the "
               "paper's Table-2 best configs are all OS; fixing the wrong "
               "dataflow costs large factors in latency and energy.\n";
  bench_footer(sw);
  return 0;
}
