// Ablation — uniform vs biased path sampling for HyperNet training.
// Paper §III.D: "applying a uniform sampling strategy to HyperNet training
// plays a vital role in reflecting the true accuracy relation between
// models"; biased sampling trains some edges far more than others and
// confuses the ranking.  We train two HyperNets at CPU scale that differ
// only in the path-sampling distribution and compare how well their
// inherited-weight scores rank K sub-models against standalone training.

#include <iostream>

#include "arch/network.h"
#include "bench_common.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Ablation", "uniform vs biased HyperNet path sampling");

  SynthCifar task(10, 10, 7);
  const Dataset train = task.generate(24, 1);
  const Dataset val = task.generate(8, 2);
  const NetworkSkeleton skeleton = tiny_skeleton(10, 8);
  const int k = static_cast<int>(scaled(6, 4));

  TrainOptions opt;
  opt.epochs = static_cast<int>(scaled(8, 3));
  opt.batch_size = 24;

  // The K probe sub-models and their standalone ("true") accuracies are
  // shared by both arms.
  Rng probe_rng(13);
  std::vector<Genotype> probes;
  std::vector<double> truth;
  for (int i = 0; i < k; ++i) {
    probes.push_back(random_genotype(probe_rng));
    PathNetwork standalone(skeleton, 500 + static_cast<std::uint64_t>(i));
    TrainOptions sopt;
    sopt.epochs = static_cast<int>(scaled(4, 2));
    sopt.batch_size = 24;
    Rng srng(900 + static_cast<std::uint64_t>(i));
    const auto logs =
        train_standalone(standalone, probes.back(), train, val, sopt, srng);
    truth.push_back(logs.back().val_accuracy);
  }

  struct Arm {
    const char* name;
    PathSampler sampler;
  };
  const Arm arms[] = {{"uniform (paper)", uniform_path_sampler},
                      {"biased (ablation)", biased_path_sampler}};

  TextTable table({"sampling", "Spearman vs standalone", "Pearson",
                   "mean |proxy - truth|"});
  for (const Arm& arm : arms) {
    PathNetwork hypernet(skeleton, 2021);
    Rng rng(31);
    train_hypernet(hypernet, train, val, opt, rng, arm.sampler);
    std::vector<double> proxy;
    double abs_gap = 0.0;
    for (int i = 0; i < k; ++i) {
      const double acc = hypernet.evaluate(probes[static_cast<std::size_t>(i)],
                                           val, 24);
      proxy.push_back(acc);
      abs_gap += std::abs(acc - truth[static_cast<std::size_t>(i)]);
    }
    table.add_row({arm.name, TextTable::fmt(spearman(proxy, truth), 3),
                   TextTable::fmt(pearson(proxy, truth), 3),
                   TextTable::fmt(abs_gap / k, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpectation (paper §III.D): uniform sampling ranks "
               "sub-models more faithfully than biased sampling; at this "
               "miniature scale the gap is noisy but uniform should not "
               "lose decisively.\n";
  bench_footer(sw);
  return 0;
}
