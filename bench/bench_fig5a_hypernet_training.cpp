// Fig 5(a) — HyperNet training curve.  The paper trains a 6-block HyperNet
// on CIFAR-10 for 300 epochs (batch 144, SGD momentum 0.9, cosine LR
// 0.05 -> 0.0001, weight decay 4e-5, random-crop augmentation) and plots,
// per epoch, the validation accuracy of a randomly sampled sub-model.
//
// This bench runs the *real* trainable HyperNet (the from-scratch NN
// library) on SynthCIFAR at CPU scale: a 2-cell skeleton, reduced images
// and epochs.  All optimiser hyper-parameters match the paper.  The series
// must rise from chance (10 %) and flatten — the figure's shape.

#include <iostream>

#include "arch/network.h"
#include "bench_common.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "util/rng.h"

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Fig 5(a)",
               "HyperNet training: per-epoch accuracy of a random sub-model");

  const int epochs = static_cast<int>(scaled(16, 5));
  SynthCifar task(10, 10, 7);
  const Dataset train = task.generate(40, 1);  // 400 images
  const Dataset val = task.generate(10, 2);    // 100 images
  const NetworkSkeleton skeleton = tiny_skeleton(10, 8);
  PathNetwork hypernet(skeleton, 2020);

  TrainOptions opt;  // paper hyper-parameters
  opt.epochs = epochs;
  opt.batch_size = 25;  // paper: 144 at CIFAR scale
  opt.lr_max = 0.05;
  opt.lr_min = 0.0001;
  opt.momentum = 0.9;
  opt.weight_decay = 4e-5;
  opt.augment = true;

  std::cout << "skeleton: " << skeleton.cells.size()
            << " cells (paper: 6), images 10x10 SynthCIFAR (paper: 32x32 "
               "CIFAR-10), epochs "
            << epochs << " (paper: 300)\n\n";

  Rng rng(42);
  const auto logs = train_hypernet(hypernet, train, val, opt, rng);

  TextTable table({"epoch", "train loss", "sampled sub-model val acc"});
  for (const auto& log : logs)
    table.add_row({TextTable::fmt_int(log.epoch),
                   TextTable::fmt(log.train_loss, 3),
                   TextTable::fmt(log.val_accuracy, 3)});
  table.print(std::cout);

  const double first = logs.front().val_accuracy;
  double best = 0.0;
  for (const auto& log : logs) best = std::max(best, log.val_accuracy);
  std::cout << "\nshape check: accuracy rises from " << TextTable::fmt(first, 3)
            << " (chance = 0.100) to a best of " << TextTable::fmt(best, 3)
            << " -> " << (best > 0.15 ? "rising, as in Fig 5(a)" : "NOT rising")
            << "\n";
  std::cout << "hypernet parameters materialised: " << hypernet.param_count()
            << "\n";
  bench_footer(sw);
  return 0;
}
