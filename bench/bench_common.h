#pragma once
// Shared scaffolding for the experiment benches.  Every bench binary prints
// a banner, runs at a CPU-friendly default scale, and grows linearly with
// the YOSO_SCALE environment variable (YOSO_SCALE=4 approaches the paper's
// raw sample/iteration counts where that is meaningful).

#include <iostream>
#include <string>

#include "util/env.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace yoso {

inline void bench_banner(const std::string& id, const std::string& title) {
  std::cout << "\n================================================================\n"
            << id << " — " << title << "\n"
            << "scale: YOSO_SCALE=" << experiment_scale()
            << " (set YOSO_SCALE>1 for paper-scale runs)\n"
            << "================================================================\n";
}

inline void bench_footer(const Stopwatch& sw) {
  std::cout << "[bench completed in " << TextTable::fmt(sw.elapsed_seconds(), 1)
            << " s]\n";
}

}  // namespace yoso
