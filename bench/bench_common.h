#pragma once
// Shared scaffolding for the experiment benches.  Every bench binary prints
// a banner, runs at a CPU-friendly default scale, and grows linearly with
// the YOSO_SCALE environment variable (YOSO_SCALE=4 approaches the paper's
// raw sample/iteration counts where that is meaningful).

#include <cstdlib>
#include <iostream>
#include <string>

#include "util/env.h"
#include "obs/timebase.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace yoso {

inline void bench_banner(const std::string& id, const std::string& title) {
  std::cout << "\n================================================================\n"
            << id << " — " << title << "\n"
            << "scale: YOSO_SCALE=" << experiment_scale()
            << " (set YOSO_SCALE>1 for paper-scale runs)\n"
            << "================================================================\n";
}

/// Worker-thread count for parallel bench sections: YOSO_THREADS if set,
/// otherwise every hardware thread.
inline std::size_t bench_threads() {
  if (const char* v = std::getenv("YOSO_THREADS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return ThreadPool::resolve_threads(0);
}

inline void bench_footer(const Stopwatch& sw) {
  std::cout << "[bench completed in " << TextTable::fmt(sw.elapsed_seconds(), 1)
            << " s]\n";
}

}  // namespace yoso
