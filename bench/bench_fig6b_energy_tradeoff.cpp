// Fig 6(b) — RL search toward the accuracy-energy trade-off region
// (stronger coefficient pair on the energy term; see core/reward.h for the
// coefficient-order note).  Thresholds: t_eer 9 mJ, t_lat 1.2 ms.

#include "tradeoff_bench.h"

int main() {
  yoso::TradeoffSpec spec;
  spec.figure = "Fig 6(b)";
  spec.metric_name = "energy (mJ)";
  spec.reward = yoso::energy_opt_reward();
  spec.metric = [](const yoso::EvalResult& r) { return r.energy_mj; };
  yoso::run_tradeoff_bench(spec);
  return 0;
}
