// Fig 5(b) — correlation between the HyperNet (inherited-weight) validation
// accuracy and the actual validation accuracy of fully trained stand-alone
// models.  The paper samples 130 random sub-models, evaluates them with
// shared weights, then trains each for 70 epochs and reports that the two
// measurements correlate.
//
// Two reproductions are run:
//   1. the *real* NN path at CPU scale — K random sub-models are scored by
//      a trained HyperNet's inherited weights and by short standalone
//      training, and the rank correlation is reported;
//   2. the calibrated surrogate path at the paper's K = 130 — the
//      hypernet-mode and full-training-mode outputs of the accuracy model.

#include <iostream>

#include "arch/network.h"
#include "bench_common.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace yoso;

void real_nn_path() {
  const int k = static_cast<int>(scaled(8, 4));
  std::cout << "--- real NN path: K=" << k
            << " sub-models (paper: 130), SynthCIFAR ---\n";

  SynthCifar task(10, 10, 7);
  const Dataset train = task.generate(32, 1);
  const Dataset val = task.generate(10, 2);
  const NetworkSkeleton skeleton = tiny_skeleton(10, 8);

  // Train the HyperNet once (one-time cost, as in the paper).
  PathNetwork hypernet(skeleton, 99);
  TrainOptions hopt;
  hopt.epochs = static_cast<int>(scaled(16, 5));
  hopt.batch_size = 32;
  Rng rng(5);
  train_hypernet(hypernet, train, val, hopt, rng);

  TextTable table({"sub-model", "hypernet acc", "standalone acc"});
  std::vector<double> proxy, truth;
  for (int i = 0; i < k; ++i) {
    const Genotype g = random_genotype(rng);
    const double hyper_acc = hypernet.evaluate(g, val, 32);
    PathNetwork standalone(skeleton, 1000 + static_cast<std::uint64_t>(i));
    TrainOptions sopt;
    sopt.epochs = static_cast<int>(scaled(6, 3));
    sopt.batch_size = 32;
    Rng srng(100 + static_cast<std::uint64_t>(i));
    const auto logs = train_standalone(standalone, g, train, val, sopt, srng);
    const double true_acc = logs.back().val_accuracy;
    proxy.push_back(hyper_acc);
    truth.push_back(true_acc);
    table.add_row({TextTable::fmt_int(i), TextTable::fmt(hyper_acc, 3),
                   TextTable::fmt(true_acc, 3)});
  }
  table.print(std::cout);
  std::cout << "Pearson r = " << TextTable::fmt(pearson(proxy, truth), 3)
            << ", Spearman rho = " << TextTable::fmt(spearman(proxy, truth), 3)
            << "  (small-K estimate; the surrogate path below runs the "
               "paper's K)\n\n";
}

void surrogate_path() {
  const int k = 130;  // the paper's count
  std::cout << "--- surrogate path: K=" << k
            << " sub-models at CIFAR calibration ---\n";
  AccuracyModel model;
  Rng rng(7);
  std::vector<double> proxy, truth;
  for (int i = 0; i < k; ++i) {
    const Genotype g = random_genotype(rng);
    proxy.push_back(100.0 - model.hypernet_error(g));   // accuracy, %
    truth.push_back(100.0 - model.test_error(g));
  }
  TextTable table({"metric", "value"});
  table.add_row({"Pearson r", TextTable::fmt(pearson(proxy, truth), 3)});
  table.add_row({"Spearman rho", TextTable::fmt(spearman(proxy, truth), 3)});
  table.add_row({"Kendall tau", TextTable::fmt(kendall_tau(proxy, truth), 3)});
  table.add_row({"proxy acc range",
                 TextTable::fmt(min_value(proxy), 1) + " .. " +
                     TextTable::fmt(max_value(proxy), 1)});
  table.add_row({"true acc range",
                 TextTable::fmt(min_value(truth), 1) + " .. " +
                     TextTable::fmt(max_value(truth), 1)});
  table.print(std::cout);
  std::cout << "shape check: strong positive correlation -> inherited weights "
               "can rank models, as Fig 5(b) claims\n";
}

}  // namespace

int main() {
  yoso::Stopwatch sw;
  yoso::bench_banner("Fig 5(b)",
                     "HyperNet accuracy vs fully-trained accuracy correlation");
  real_nn_path();
  surrogate_path();
  yoso::bench_footer(sw);
  return 0;
}
