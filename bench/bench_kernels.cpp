// Kernel-layer microbenchmarks: the blocked/SIMD engines in linalg/kernels
// against faithful naive baselines (the code the kernels replaced), at the
// shapes the search loop actually runs — HyperNet conv GEMMs and batched GP
// inference over the co-design feature space.
//
// Targets (full run): >=3x float GEMM at the HyperNet hot shape and >=5x
// batched GP predict vs the per-candidate scalar loop.  `--smoke` runs the
// same code at tiny sizes with no thresholds (CI wiring check).  Either way
// the numbers land in BENCH_kernels.json.

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "predictor/gp.h"
#include "util/rng.h"

namespace {

using namespace yoso;

double g_sink = 0.0;  // defeats dead-code elimination across timed regions

/// Best-of-`reps` wall time of fn(), in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

std::vector<float> random_vecf(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<double> random_vec(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// The dot-form loop matmul_abt used before the kernel layer existed.
void naive_abt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t t = 0; t < k; ++t) acc += a[i * k + t] * b[j * k + t];
      c[i * n + j] = acc;
    }
}

void naive_gemm(const double* a, const double* b, double* c, std::size_t m,
                std::size_t k, std::size_t n) {
  std::memset(c, 0, m * n * sizeof(double));
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t t = 0; t < k; ++t)
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] += a[i * k + t] * b[t * n + j];
}

void bench_gemm_float(BenchJson& json, bool smoke) {
  // The HyperNet hot shape: im2col'd 3x3 conv at 32x32 on 64 channels —
  // matmul_abt(m = batch*oh*ow, n = out_ch, k = in_ch*3*3).
  const std::size_t m = smoke ? 64 : 4096;
  const std::size_t n = smoke ? 16 : 128;
  const std::size_t k = smoke ? 32 : 576;
  Rng rng(101);
  const auto a = random_vecf(rng, m * k);
  const auto b = random_vecf(rng, n * k);
  std::vector<float> c(m * n);
  const int reps = smoke ? 1 : 5;
  const double t_naive =
      time_best(reps, [&] { naive_abt(a.data(), b.data(), c.data(), m, n, k); });
  g_sink += c[m * n - 1];
  const double t_kernel = time_best(reps, [&] {
    kernels::sgemm_abt(a.data(), b.data(), c.data(), m, n, k);
  });
  g_sink += c[m * n - 1];
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const double speedup = t_naive / t_kernel;

  TextTable table({"gemm f32 abt", "time (ms)", "GFLOP/s", "speedup"});
  table.add_row({"naive dot loop", TextTable::fmt(t_naive * 1e3, 2),
                 TextTable::fmt(flops / t_naive * 1e-9, 2), "1.00"});
  table.add_row({"kernel layer", TextTable::fmt(t_kernel * 1e3, 2),
                 TextTable::fmt(flops / t_kernel * 1e-9, 2),
                 TextTable::fmt(speedup, 2)});
  std::cout << "\nfloat GEMM, HyperNet conv shape (" << m << "x" << n << "x"
            << k << "):\n";
  table.print(std::cout);
  if (!smoke)
    std::cout << "target >=3x: " << (speedup >= 3.0 ? "met" : "MISSED")
              << "\n";

  json.record("gemm_f32_abt");
  json.value("m", static_cast<double>(m));
  json.value("n", static_cast<double>(n));
  json.value("k", static_cast<double>(k));
  json.value("naive_ms", t_naive * 1e3);
  json.value("kernel_ms", t_kernel * 1e3);
  json.value("kernel_gflops", flops / t_kernel * 1e-9);
  json.value("speedup", speedup);
}

void bench_gemm_double(BenchJson& json, bool smoke) {
  const std::size_t m = smoke ? 32 : 384, k = smoke ? 32 : 384,
                    n = smoke ? 32 : 384;
  Rng rng(103);
  const auto a = random_vec(rng, m * k);
  const auto b = random_vec(rng, k * n);
  std::vector<double> c(m * n);
  const int reps = smoke ? 1 : 5;
  const double t_naive = time_best(
      reps, [&] { naive_gemm(a.data(), b.data(), c.data(), m, k, n); });
  g_sink += c[m * n - 1];
  const double t_kernel = time_best(
      reps, [&] { kernels::gemm(a.data(), b.data(), c.data(), m, k, n); });
  g_sink += c[m * n - 1];
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const double speedup = t_naive / t_kernel;

  TextTable table({"gemm f64", "time (ms)", "GFLOP/s", "speedup"});
  table.add_row({"naive ikj", TextTable::fmt(t_naive * 1e3, 2),
                 TextTable::fmt(flops / t_naive * 1e-9, 2), "1.00"});
  table.add_row({"kernel layer", TextTable::fmt(t_kernel * 1e3, 2),
                 TextTable::fmt(flops / t_kernel * 1e-9, 2),
                 TextTable::fmt(speedup, 2)});
  std::cout << "\ndouble GEMM (" << m << "x" << k << "x" << n << "):\n";
  table.print(std::cout);

  json.record("gemm_f64");
  json.value("m", static_cast<double>(m));
  json.value("k", static_cast<double>(k));
  json.value("n", static_cast<double>(n));
  json.value("naive_ms", t_naive * 1e3);
  json.value("kernel_ms", t_kernel * 1e3);
  json.value("kernel_gflops", flops / t_kernel * 1e-9);
  json.value("speedup", speedup);
}

void bench_pairwise(BenchJson& json, bool smoke) {
  // The GP K* panel shape: a 256-candidate batch against ~1000 training
  // rows in the 22-dim co-design feature space.
  const std::size_t q = smoke ? 16 : 256;
  const std::size_t n = smoke ? 32 : 1000;
  const std::size_t d = 22;
  Rng rng(107);
  const auto train = random_vec(rng, n * d);
  const auto queries = random_vec(rng, q * d);
  const kernels::PackedRows packed = kernels::pack_rows(train.data(), n, d);
  std::vector<double> out(q * n);
  const int reps = smoke ? 1 : 20;
  const double t_naive = time_best(reps, [&] {
    for (std::size_t i = 0; i < q; ++i)
      for (std::size_t j = 0; j < n; ++j)
        out[i * n + j] = squared_distance(
            std::span<const double>(queries.data() + i * d, d),
            std::span<const double>(train.data() + j * d, d));
  });
  g_sink += out[q * n - 1];
  const double t_kernel = time_best(reps, [&] {
    kernels::pairwise_sq_dists(queries.data(), q, packed, out.data());
  });
  g_sink += out[q * n - 1];
  const double pairs = static_cast<double>(q) * n;
  const double speedup = t_naive / t_kernel;

  TextTable table({"pairwise sq dists", "time (us)", "ns/pair", "speedup"});
  table.add_row({"scalar loop", TextTable::fmt(t_naive * 1e6, 1),
                 TextTable::fmt(t_naive / pairs * 1e9, 2), "1.00"});
  table.add_row({"kernel layer", TextTable::fmt(t_kernel * 1e6, 1),
                 TextTable::fmt(t_kernel / pairs * 1e9, 2),
                 TextTable::fmt(speedup, 2)});
  std::cout << "\npairwise squared distances (" << q << " queries x " << n
            << " train rows, d=" << d << "):\n";
  table.print(std::cout);

  json.record("pairwise_sq_dists");
  json.value("queries", static_cast<double>(q));
  json.value("train_rows", static_cast<double>(n));
  json.value("dim", static_cast<double>(d));
  json.value("naive_us", t_naive * 1e6);
  json.value("kernel_us", t_kernel * 1e6);
  json.value("kernel_ns_per_pair", t_kernel / pairs * 1e9);
  json.value("speedup", speedup);
}

void bench_gp_predict(BenchJson& json, bool smoke) {
  // Batched GP inference against the per-candidate scalar loop the
  // evaluator ran before predict_batch existed: standardize one row, one
  // squared_distance + std::exp per training row, dot with alpha.
  const std::size_t n_train = smoke ? 64 : 1000;
  const std::size_t batch = smoke ? 16 : 256;
  const std::size_t d = 22;
  Rng rng(109);
  Matrix x(n_train, d);
  std::vector<double> y(n_train);
  for (std::size_t r = 0; r < n_train; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      x(r, c) = rng.uniform(-2.0, 2.0);
      s += x(r, c);
    }
    y[r] = std::sin(s) + 0.05 * rng.normal();
  }
  // Fixed hyper-parameters: tuning cost is a fit-time story; this bench
  // isolates inference.
  GpRegressor gp({}, /*tune=*/false);
  gp.fit(x, y);

  Matrix queries(batch, d);
  for (std::size_t r = 0; r < batch; ++r)
    for (std::size_t c = 0; c < d; ++c) queries(r, c) = rng.uniform(-2.0, 2.0);

  const Matrix& tx = gp.train_inputs();
  const std::span<const double> alpha = gp.alpha();
  const GpHyperParams& hp = gp.hyper_params();
  const double scale = -1.0 / (2.0 * hp.lengthscale * hp.lengthscale);
  std::vector<double> mu(batch);
  const int reps = smoke ? 1 : 10;
  const double t_scalar = time_best(reps, [&] {
    std::vector<double> raw(d);
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t c = 0; c < d; ++c) raw[c] = queries(i, c);
      const std::vector<double> xs = gp.input_scaler().transform_row(raw);
      double acc = 0.0;
      for (std::size_t j = 0; j < n_train; ++j) {
        const double d2 = squared_distance(
            xs, std::span<const double>(tx.data().data() + j * d, d));
        acc += hp.signal_variance * std::exp(scale * d2) * alpha[j];
      }
      mu[i] = gp.target_mean() + acc;
    }
  });
  g_sink += mu[batch - 1];
  const double t_batch =
      time_best(reps, [&] { mu = gp.predict_batch(queries); });
  g_sink += mu[batch - 1];
  const double speedup = t_scalar / t_batch;

  TextTable table({"gp predict", "time (us)", "us/query", "speedup"});
  table.add_row({"scalar loop", TextTable::fmt(t_scalar * 1e6, 1),
                 TextTable::fmt(t_scalar / static_cast<double>(batch) * 1e6, 2),
                 "1.00"});
  table.add_row({"predict_batch", TextTable::fmt(t_batch * 1e6, 1),
                 TextTable::fmt(t_batch / static_cast<double>(batch) * 1e6, 2),
                 TextTable::fmt(speedup, 2)});
  std::cout << "\nbatched GP inference (batch " << batch << ", n_train "
            << n_train << ", d=" << d << "):\n";
  table.print(std::cout);
  if (!smoke)
    std::cout << "target >=5x: " << (speedup >= 5.0 ? "met" : "MISSED")
              << "\n";

  json.record("gp_predict_batch");
  json.value("batch", static_cast<double>(batch));
  json.value("n_train", static_cast<double>(n_train));
  json.value("dim", static_cast<double>(d));
  json.value("scalar_us", t_scalar * 1e6);
  json.value("batch_us", t_batch * 1e6);
  json.value("us_per_query", t_batch / static_cast<double>(batch) * 1e6);
  json.value("speedup", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace yoso;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  Stopwatch sw;
  bench_banner("Kernels", smoke ? "blocked/SIMD kernel layer (smoke)"
                                : "blocked/SIMD kernel layer");
  std::cout << "active ISA: " << kernels::active_isa() << "\n";

  BenchJson json("kernels");
  json.field("isa", kernels::active_isa());
  json.field("smoke", smoke ? 1.0 : 0.0);

  bench_gemm_float(json, smoke);
  bench_gemm_double(json, smoke);
  bench_pairwise(json, smoke);
  bench_gp_predict(json, smoke);

  const std::string path = json.write();
  std::cout << "\n[wrote " << (path.empty() ? "<failed>" : path)
            << "]  [checksum " << TextTable::fmt(g_sink, 3) << "]\n";
  bench_footer(sw);
  return path.empty() ? 1 : 0;
}
