// Fig 4 — comparison of machine-learning regression models for the hardware
// performance predictor.  The paper fits six model families on 3000
// simulator samples and tests on 600; the Gaussian process has the lowest
// MSE and becomes the search-time predictor.  We reproduce the comparison
// for both targets (energy, latency); the default runs at 750/150 samples
// (YOSO_SCALE=4 reaches the paper's 3000/600).

#include <benchmark/benchmark.h>
#include <cmath>
#include <iostream>
#include <memory>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "predictor/gp.h"
#include "predictor/models.h"
#include "predictor/perf_predictor.h"
#include "predictor/regressor.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace yoso;

std::vector<PerfSample> g_samples;  // shared with the micro-benchmarks

void run_comparison() {
  const std::size_t train_n = scaled(750, 100);
  const std::size_t test_n = scaled(150, 30);

  const NetworkSkeleton skeleton = default_skeleton();
  const ConfigSpace space = default_config_space();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  Rng rng(2020);
  g_samples = collect_samples(train_n + test_n, simulator, space, skeleton,
                              rng);
  const std::vector<PerfSample> train(g_samples.begin(),
                                      g_samples.begin() +
                                          static_cast<std::ptrdiff_t>(train_n));
  const std::vector<PerfSample> test(
      g_samples.begin() + static_cast<std::ptrdiff_t>(train_n),
      g_samples.end());
  const SampleMatrix tm = to_matrix(train);
  const SampleMatrix em = to_matrix(test);
  std::cout << "training samples: " << train_n << ", test samples: " << test_n
            << " (paper: 3000/600)\n\n";

  auto make_models = [] {
    std::vector<std::unique_ptr<Regressor>> models;
    models.push_back(std::make_unique<LinearRegressor>(0.0, "linear"));
    models.push_back(std::make_unique<LinearRegressor>(1.0, "ridge"));
    models.push_back(std::make_unique<KnnRegressor>(8));
    models.push_back(std::make_unique<DecisionTreeRegressor>(14, 3));
    models.push_back(std::make_unique<RandomForestRegressor>(40, 14, 2));
    models.push_back(std::make_unique<GpRegressor>());
    return models;
  };

  for (const char* target : {"energy (mJ)", "latency (ms)"}) {
    const bool is_energy = std::string(target) == "energy (mJ)";
    const auto& train_y = is_energy ? tm.energy : tm.latency;
    const auto& test_y = is_energy ? em.energy : em.latency;
    // Both targets are positive with heavy upper tails (NLR configs are
    // many times slower than OS), so every model fits log(y) and is scored
    // in the original space — the same preprocessing for all six families.
    std::vector<double> train_log(train_y.size());
    for (std::size_t i = 0; i < train_y.size(); ++i)
      train_log[i] = std::log(train_y[i]);

    TextTable table({"model", "MSE", "RMSE", "mean rel err", "fit time (s)"});
    double gp_mse = 0.0, best_other = 1e300;
    for (auto& model : make_models()) {
      Stopwatch sw;
      model->fit(tm.x, train_log);
      const double fit_s = sw.elapsed_seconds();
      auto pred = model->predict_all(em.x);
      for (double& v : pred) v = std::exp(v);
      const double m = mse(pred, test_y);
      if (model->name() == "gaussian_process") gp_mse = m;
      else best_other = std::min(best_other, m);
      table.add_row({model->name(), TextTable::fmt(m, 4),
                     TextTable::fmt(rmse(pred, test_y), 4),
                     TextTable::fmt(mean_relative_error(pred, test_y), 4),
                     TextTable::fmt(fit_s, 2)});
    }
    std::cout << "--- target: " << target << " ---\n";
    table.print(std::cout);
    std::cout << "GP wins: " << (gp_mse < best_other ? "yes" : "NO")
              << "  (paper Fig 4: GP has the lowest MSE of the six)\n\n";
  }
}

void BM_GpFit(benchmark::State& state) {
  const std::size_t n = std::min<std::size_t>(
      static_cast<std::size_t>(state.range(0)), g_samples.size());
  const std::vector<PerfSample> sub(g_samples.begin(),
                                    g_samples.begin() +
                                        static_cast<std::ptrdiff_t>(n));
  const SampleMatrix m = to_matrix(sub);
  for (auto _ : state) {
    GpRegressor gp({}, /*tune=*/false);
    gp.fit(m.x, m.energy);
    benchmark::DoNotOptimize(gp);
  }
}
BENCHMARK(BM_GpFit)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  yoso::Stopwatch sw;
  yoso::bench_banner("Fig 4", "regression-model comparison for the hardware "
                              "performance predictor");
  run_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  yoso::bench_footer(sw);
  return 0;
}
