// Sparse-GP scaling bench — the Nystrom/DTC backend against the exact
// O(n^3) GP at training-set sizes the exact path cannot reach in a search
// loop.  For each n the bench fits both backends on the same synthetic
// data at matched hyper-parameters (tuned once on the sparse model, so the
// comparison isolates the factorisation, not the grid search), then
// reports:
//
//   * fit wall time and the exact/sparse ratio (target: sparse >= 10x
//     faster at n = 10k with m = 512 inducing points);
//   * held-out RMSE for both backends (target: sparse within 5% relative
//     of exact at n = 10k);
//   * predict_batch latency per query, plus the O(m^2) update() cost;
//   * a thread 1/2/8 bit-identity check on sparse predict_batch — any
//     differing byte fails the run, smoke or full.
//
// The exact fit is skipped above kExactCeiling (the n x n Cholesky alone
// would take tens of minutes) and the skip is recorded in the JSON rather
// than silently capped.  `--smoke` runs tiny sizes with no speed/RMSE
// thresholds (CI wiring + bit-identity check); either way the numbers land
// in BENCH_gp_sparse.json.

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "linalg/matrix.h"
#include "predictor/gp.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace {

using namespace yoso;

constexpr std::size_t kDim = 22;            // co-design feature width
constexpr std::size_t kExactCeiling = 10000;  // exact fit skipped above this

double g_sink = 0.0;  // defeats dead-code elimination across timed regions

/// Best-of-`reps` wall time of fn(), in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

/// Synthetic co-design-like data: feature rows in the real predictor are
/// 22 values derived from a handful of discrete architecture/accelerator
/// choices, so they live on a low-dimensional manifold.  The generator
/// mirrors that — a 4-dim latent mixed up to kDim ambient features (fixed
/// mixing matrix + small ambient jitter), with a smooth response on the
/// latent coordinates plus observation noise.
constexpr std::size_t kLatent = 4;

void fill_data(Rng& rng, Matrix& x, std::vector<double>& y) {
  Rng wrng(7);  // the SAME mixing matrix for every call (train and test)
  double w[kLatent][kDim];
  for (std::size_t k = 0; k < kLatent; ++k)
    for (std::size_t c = 0; c < kDim; ++c) w[k][c] = wrng.uniform(-1.0, 1.0);
  double u[kLatent];
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t k = 0; k < kLatent; ++k) u[k] = rng.uniform(-2.0, 2.0);
    for (std::size_t c = 0; c < kDim; ++c) {
      double s = 0.0;
      for (std::size_t k = 0; k < kLatent; ++k) s += w[k][c] * u[k];
      x(r, c) = s + 0.05 * rng.normal();
    }
    y[r] = std::sin(u[0]) + 0.3 * std::cos(2.0 * u[1]) + 0.2 * u[2] * u[3] +
           0.05 * rng.normal();
  }
}

double rmse(std::span<const double> pred, std::span<const double> truth) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - truth[i];
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(pred.size()));
}

/// predict_batch at 1/2/8 threads must agree byte-for-byte; returns false
/// (and reports) on the first mismatch.
bool check_thread_bit_identity(const GpRegressor& gp, const Matrix& queries) {
  const std::vector<double> serial = gp.predict_batch(queries);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const ExecContextPtr exec = ExecContext::create(threads);
    const std::vector<double> parallel =
        gp.predict_batch(queries, &exec->pool());
    if (std::memcmp(serial.data(), parallel.data(),
                    serial.size() * sizeof(double)) != 0) {
      std::cout << "BIT-IDENTITY FAILURE: sparse predict_batch at "
                << threads << " threads differs from serial\n";
      return false;
    }
  }
  g_sink += serial.back();
  return true;
}

struct ScaleResult {
  bool exact_ran = false;
  double exact_fit_s = 0.0, sparse_fit_s = 0.0;
  double exact_rmse = 0.0, sparse_rmse = 0.0;
  double exact_predict_us = 0.0, sparse_predict_us = 0.0;
  double update_us = 0.0;
  bool bit_identical = false;
};

ScaleResult run_scale(const GpHyperParams& hp, std::size_t n, std::size_t m,
                      std::size_t n_test, bool smoke) {
  ScaleResult res;
  Rng rng(0xC0DE + n);
  Matrix x(n, kDim);
  std::vector<double> y(n);
  fill_data(rng, x, y);
  Matrix xq(n_test, kDim);
  std::vector<double> yq(n_test);
  fill_data(rng, xq, yq);

  GpRegressor sparse(hp, /*tune=*/false, GpBackend::kSparse, m);
  res.sparse_fit_s = time_best(1, [&] { sparse.fit(x, y); });

  res.exact_ran = n <= kExactCeiling;
  GpRegressor exact(hp, /*tune=*/false);
  if (res.exact_ran) {
    res.exact_fit_s = time_best(1, [&] { exact.fit(x, y); });
    const std::vector<double> pe = exact.predict_batch(xq);
    res.exact_rmse = rmse(pe, yq);
    res.exact_predict_us = time_best(smoke ? 1 : 3, [&] {
      g_sink += exact.predict_batch(xq)[0];
    }) / static_cast<double>(n_test) * 1e6;
  }

  const std::vector<double> ps = sparse.predict_batch(xq);
  res.sparse_rmse = rmse(ps, yq);
  res.sparse_predict_us = time_best(smoke ? 1 : 3, [&] {
    g_sink += sparse.predict_batch(xq)[0];
  }) / static_cast<double>(n_test) * 1e6;
  res.bit_identical = check_thread_bit_identity(sparse, xq);

  // O(m^2) online refresh: fold a handful of held-out points in and report
  // the per-call cost (no refit happens — distance_builds() stays flat).
  const std::size_t n_upd = std::min<std::size_t>(8, n_test);
  std::vector<double> row(kDim);
  const double t_upd = time_best(1, [&] {
    for (std::size_t i = 0; i < n_upd; ++i) {
      for (std::size_t c = 0; c < kDim; ++c) row[c] = xq(i, c);
      sparse.update(row, yq[i]);
    }
  });
  res.update_us = t_upd / static_cast<double>(n_upd) * 1e6;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  Stopwatch sw;
  bench_banner("SparseGP", smoke
                               ? "Nystrom/DTC vs exact GP scaling (smoke)"
                               : "Nystrom/DTC vs exact GP scaling");

  const std::size_t m = smoke ? 32 : 512;
  const std::size_t n_test = smoke ? 64 : 500;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{1000, 10000, 50000};

  // Hyper-parameters tuned once on a small sparse fit, then frozen for
  // every timed fit: both backends see identical hp, so fit time and RMSE
  // compare factorisations rather than grid-search luck.
  GpHyperParams hp;
  {
    Rng rng(0xC0DE);
    const std::size_t n_tune = smoke ? 128 : 1000;
    Matrix x(n_tune, kDim);
    std::vector<double> y(n_tune);
    fill_data(rng, x, y);
    GpRegressor tuner({}, /*tune=*/true, GpBackend::kSparse, m);
    tuner.fit(x, y);
    hp = tuner.hyper_params();
    std::cout << "tuned hp (sparse, n=" << n_tune << "): lengthscale "
              << TextTable::fmt(hp.lengthscale, 3) << ", noise "
              << TextTable::fmt(hp.noise_variance, 5) << "\n\n";
  }

  BenchJson json("gp_sparse");
  json.field("smoke", smoke ? 1.0 : 0.0);
  json.field("inducing_points", static_cast<double>(m));
  json.field("dim", static_cast<double>(kDim));
  json.field("n_test", static_cast<double>(n_test));

  TextTable table({"n", "exact fit (s)", "sparse fit (s)", "fit speedup",
                   "exact rmse", "sparse rmse", "sparse us/query",
                   "update us", "threads 1/2/8"});
  bool ok = true;
  double speedup_10k = 0.0, rmse_rel_10k = 0.0;
  for (const std::size_t n : sizes) {
    const ScaleResult r = run_scale(hp, n, m, n_test, smoke);
    const double speedup =
        r.exact_ran ? r.exact_fit_s / r.sparse_fit_s : 0.0;
    table.add_row(
        {TextTable::fmt_int(static_cast<long long>(n)),
         r.exact_ran ? TextTable::fmt(r.exact_fit_s, 3) : "skipped",
         TextTable::fmt(r.sparse_fit_s, 3),
         r.exact_ran ? TextTable::fmt(speedup, 1) + "x" : "-",
         r.exact_ran ? TextTable::fmt(r.exact_rmse, 4) : "-",
         TextTable::fmt(r.sparse_rmse, 4),
         TextTable::fmt(r.sparse_predict_us, 2),
         TextTable::fmt(r.update_us, 1),
         r.bit_identical ? "bit-identical" : "DIFFER"});
    json.record("n_" + std::to_string(n));
    json.value("n", static_cast<double>(n));
    json.value("exact_fit_s", r.exact_ran ? r.exact_fit_s : -1.0);
    json.value("exact_skipped", r.exact_ran ? 0.0 : 1.0);
    json.value("sparse_fit_s", r.sparse_fit_s);
    json.value("fit_speedup", speedup);
    json.value("exact_rmse", r.exact_ran ? r.exact_rmse : -1.0);
    json.value("sparse_rmse", r.sparse_rmse);
    json.value("rmse_rel_delta",
               r.exact_ran && r.exact_rmse > 0.0
                   ? (r.sparse_rmse - r.exact_rmse) / r.exact_rmse
                   : -1.0);
    json.value("exact_predict_us_per_query",
               r.exact_ran ? r.exact_predict_us : -1.0);
    json.value("sparse_predict_us_per_query", r.sparse_predict_us);
    json.value("update_us", r.update_us);
    json.value("threads_bit_identical", r.bit_identical ? 1.0 : 0.0);
    ok = ok && r.bit_identical;
    if (n == 10000 && r.exact_ran) {
      speedup_10k = speedup;
      rmse_rel_10k = (r.sparse_rmse - r.exact_rmse) / r.exact_rmse;
    }
    if (!r.exact_ran)
      std::cout << "n=" << n << ": exact fit skipped (above the "
                << kExactCeiling << "-row ceiling), sparse only\n";
  }
  table.print(std::cout);

  if (!smoke) {
    const bool speed_ok = speedup_10k >= 10.0;
    const bool rmse_ok = rmse_rel_10k <= 0.05;
    std::cout << "\nn=10k gates: fit speedup "
              << TextTable::fmt(speedup_10k, 1) << "x (target >=10x, "
              << (speed_ok ? "met" : "MISSED") << "), rmse delta "
              << TextTable::fmt(rmse_rel_10k * 100.0, 2)
              << " % (target <=5 %, " << (rmse_ok ? "met" : "MISSED")
              << ")\n";
    ok = ok && speed_ok && rmse_ok;
  }

  const std::string path = json.write();
  std::cout << "[wrote " << (path.empty() ? "<failed>" : path)
            << "]  [checksum " << TextTable::fmt(g_sink, 3) << "]\n";
  bench_footer(sw);
  return (ok && !path.empty()) ? 0 : 1;
}
