// Extension — batch/throughput mode.
//
// The paper evaluates single-image (batch-1) edge inference.  Server-style
// deployment batches images, amortising weight traffic; this bench sweeps
// the batch size for the Table-2 networks and shows how per-image energy
// falls and saturates at the activation-bound floor — and how the best
// accelerator configuration can shift once weights stop dominating.

#include <iostream>

#include "bench_common.h"
#include "core/two_stage.h"

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Extension", "batch-size sweep: per-image energy and "
                            "throughput");

  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const NetworkSkeleton skeleton = default_skeleton();
  const AcceleratorConfig cfg{16, 32, 512, 512,
                              Dataflow::kOutputStationary};

  TextTable table({"model", "batch", "E/img (mJ)", "L/img (ms)",
                   "throughput (fps)"});
  for (const char* name : {"Darts_v1", "EnasNet"}) {
    const auto& g = reference_model(name).genotype;
    for (int batch : {1, 2, 4, 8, 16}) {
      const auto r = sim.simulate_network(g, skeleton, cfg, batch);
      table.add_row({name, TextTable::fmt_int(batch),
                     TextTable::fmt(r.energy_mj, 2),
                     TextTable::fmt(r.latency_ms, 2),
                     TextTable::fmt(r.throughput_fps, 0)});
    }
  }
  table.print(std::cout);

  // Does the best config change with batching?  Compare the exhaustive best
  // config at batch 1 vs batch 16 for one network.
  const auto& g = reference_model("Darts_v2").genotype;
  const ConfigSpace space = default_config_space();
  TextTable best({"batch", "best config (min E/img)", "E/img (mJ)"});
  for (int batch : {1, 16}) {
    double best_e = 1e18;
    AcceleratorConfig best_cfg{};
    for (const AcceleratorConfig& c : space.enumerate()) {
      const auto r = sim.simulate_network(g, skeleton, c, batch);
      if (r.energy_mj < best_e) {
        best_e = r.energy_mj;
        best_cfg = c;
      }
    }
    best.add_row({TextTable::fmt_int(batch), best_cfg.to_string(),
                  TextTable::fmt(best_e, 2)});
  }
  std::cout << "\nenergy-optimal configuration vs batch (Darts_v2):\n";
  best.print(std::cout);
  std::cout << "\nshape check: per-image energy decreases monotonically with "
               "batch and saturates at the activation-traffic floor.\n";
  bench_footer(sw);
  return 0;
}
