// Extension — batch/throughput mode.
//
// Part 1 — candidate evaluation throughput: the search-loop hot path.  A
// stream of controller-style proposals (fresh designs mixed with revisits)
// is scored per-candidate with Evaluator::evaluate() (the serial baseline)
// and then with the batched engine (FastEvaluator::evaluate_batch — thread
// pool + memoization) at 1, 2, 4 and 8 workers.  On multi-core hosts the
// fan-out alone clears 2x at 4 threads; the memo cache compounds it on the
// revisited fraction regardless of core count.
//
// Part 2 — inference batch-size sweep: the paper evaluates single-image
// (batch-1) edge inference.  Server-style deployment batches images,
// amortising weight traffic; this sweeps the batch size for the Table-2
// networks and shows how per-image energy falls and saturates at the
// activation-bound floor — and how the best accelerator configuration can
// shift once weights stop dominating.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/evaluator.h"
#include "core/two_stage.h"
#include "obs/trace.h"

namespace {

void bench_candidate_throughput(yoso::BenchJson& json) {
  using namespace yoso;
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  FastEvaluator fast(space, skeleton, sim,
                     {.predictor_samples = scaled(300, 100),
                      .seed = 11,
                      .threads = bench_threads()});

  // A controller-style proposal stream: ~85 % of submissions revisit one of
  // `unique` designs already seen, as a converging RL controller does.
  Rng rng(29);
  const std::size_t unique = scaled(300, 50);
  const std::size_t total = scaled(2000, 400);
  std::vector<CandidateDesign> pool;
  pool.reserve(unique);
  for (std::size_t i = 0; i < unique; ++i)
    pool.push_back(space.random_candidate(rng));
  std::vector<CandidateDesign> stream;
  stream.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    stream.push_back(pool[rng.uniform_index(unique)]);

  // Serial baseline: one candidate at a time through evaluate().
  Stopwatch serial_sw;
  double sink = 0.0;
  for (const CandidateDesign& c : stream) sink += fast.evaluate(c).energy_mj;
  const double serial_s = serial_sw.elapsed_seconds();
  const double serial_cps = static_cast<double>(total) / serial_s;

  TextTable table({"mode", "threads", "cand/s", "speedup"});
  table.add_row({"serial evaluate()", "1", TextTable::fmt(serial_cps, 0),
                 "1.00"});
  json.field("proposals", static_cast<double>(total));
  json.field("distinct", static_cast<double>(unique));
  json.record("serial_evaluate");
  json.value("threads", 1.0);
  json.value("cand_per_s", serial_cps);
  json.value("speedup", 1.0);
  const std::size_t batch = 64;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    fast.set_parallelism(threads);
    fast.clear_cache();
    Stopwatch batch_sw;
    for (std::size_t i = 0; i < total; i += batch) {
      const std::size_t n = std::min(batch, total - i);
      const auto results = fast.evaluate_batch(
          std::span<const CandidateDesign>(stream.data() + i, n));
      sink += results.front().energy_mj;
    }
    const double cps = static_cast<double>(total) / batch_sw.elapsed_seconds();
    table.add_row({"batched+memo", TextTable::fmt_int(
                       static_cast<long long>(threads)),
                   TextTable::fmt(cps, 0), TextTable::fmt(cps / serial_cps, 2)});
    json.record("batched_memo");
    json.value("threads", static_cast<double>(threads));
    json.value("batch", static_cast<double>(batch));
    json.value("cand_per_s", cps);
    json.value("speedup", cps / serial_cps);
  }
  std::cout << "\ncandidate evaluation throughput ("
            << total << " proposals, " << unique << " distinct, batch "
            << batch << "):\n";
  table.print(std::cout);
  std::cout << "cache now holds " << fast.cache_size()
            << " designs  [checksum " << TextTable::fmt(sink, 1) << "]\n";

  // Observability overhead guard (docs/OBSERVABILITY.md budget): the same
  // batched workload with the layer disabled (every instrument is one
  // relaxed load) and enabled (spans + counters recording).  The disabled
  // number must track the batched_memo records above; the enabled delta is
  // the price of --metrics-out/--trace-out.
  fast.set_parallelism(bench_threads());
  double cps_by_mode[2] = {0.0, 0.0};
  for (const bool on : {false, true}) {
    obs::set_enabled(on);
    fast.clear_cache();
    Stopwatch sw;
    for (std::size_t i = 0; i < total; i += batch) {
      const std::size_t n = std::min(batch, total - i);
      sink += fast
                  .evaluate_batch(std::span<const CandidateDesign>(
                      stream.data() + i, n))
                  .front()
                  .energy_mj;
    }
    cps_by_mode[on ? 1 : 0] =
        static_cast<double>(total) / sw.elapsed_seconds();
  }
  obs::set_enabled(false);
  const double overhead_pct =
      100.0 * (cps_by_mode[0] - cps_by_mode[1]) / cps_by_mode[0];
  std::cout << "observability guard: disabled "
            << TextTable::fmt(cps_by_mode[0], 0) << " cand/s, enabled "
            << TextTable::fmt(cps_by_mode[1], 0) << " cand/s  (overhead "
            << TextTable::fmt(overhead_pct, 1) << " %)\n";
  json.record("obs_guard");
  json.value("disabled_cand_per_s", cps_by_mode[0]);
  json.value("enabled_cand_per_s", cps_by_mode[1]);
  json.value("overhead_pct", overhead_pct);
}

}  // namespace

int main() {
  using namespace yoso;
  Stopwatch sw;
  bench_banner("Extension", "candidate-throughput + batch-size sweep");

  BenchJson json("throughput");
  bench_candidate_throughput(json);
  const std::string json_path = json.write();
  std::cout << "[wrote " << (json_path.empty() ? "<failed>" : json_path)
            << "]\n";

  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const NetworkSkeleton skeleton = default_skeleton();
  const AcceleratorConfig cfg{16, 32, 512, 512,
                              Dataflow::kOutputStationary};

  TextTable table({"model", "batch", "E/img (mJ)", "L/img (ms)",
                   "throughput (fps)"});
  for (const char* name : {"Darts_v1", "EnasNet"}) {
    const auto& g = reference_model(name).genotype;
    for (int batch : {1, 2, 4, 8, 16}) {
      const auto r = sim.simulate_network(g, skeleton, cfg, batch);
      table.add_row({name, TextTable::fmt_int(batch),
                     TextTable::fmt(r.energy_mj, 2),
                     TextTable::fmt(r.latency_ms, 2),
                     TextTable::fmt(r.throughput_fps, 0)});
    }
  }
  table.print(std::cout);

  // Does the best config change with batching?  Compare the exhaustive best
  // config at batch 1 vs batch 16 for one network.
  const auto& g = reference_model("Darts_v2").genotype;
  const ConfigSpace space = default_config_space();
  TextTable best({"batch", "best config (min E/img)", "E/img (mJ)"});
  for (int batch : {1, 16}) {
    double best_e = 1e18;
    AcceleratorConfig best_cfg{};
    for (const AcceleratorConfig& c : space.enumerate()) {
      const auto r = sim.simulate_network(g, skeleton, c, batch);
      if (r.energy_mj < best_e) {
        best_e = r.energy_mj;
        best_cfg = c;
      }
    }
    best.add_row({TextTable::fmt_int(batch), best_cfg.to_string(),
                  TextTable::fmt(best_e, 2)});
  }
  std::cout << "\nenergy-optimal configuration vs batch (Darts_v2):\n";
  best.print(std::cout);
  std::cout << "\nshape check: per-image energy decreases monotonically with "
               "batch and saturates at the activation-traffic floor.\n";
  bench_footer(sw);
  return 0;
}
