// Extension — batch/throughput mode.
//
// Part 1 — candidate evaluation throughput: the search-loop hot path.  Two
// workloads bracket what the controller produces:
//
//   * memo-cold: every proposal is a distinct design, so the whole stream
//     rides the two-stage worker/coordinator pipeline (the scaling story);
//   * revisit: ~85 % of submissions repeat one of `unique` designs already
//     seen, as a converging RL controller does (the memoization story).
//
// Each is scored per-candidate with Evaluator::evaluate() (the serial
// baseline) and with the batched engine (FastEvaluator::evaluate_batch —
// pipelined across an ExecContext + memoized) at 1, 2, 4 and 8 threads.
// Every configuration reports the best of kReps repetitions (min total
// time) to damp scheduler noise; the cache is cleared before every
// repetition so each sees the same hit/miss profile.
//
// `--smoke` runs a trimmed memo-cold sweep and exits non-zero when the
// 8-thread pipeline falls below 0.85x the 1-thread pipeline — the CI guard
// that threading never becomes a pessimization (on multi-core hosts it is a
// speedup; the tolerance keeps single-core runners honest).
//
// `--emit-profile [PATH]` runs predictor construction plus one memo-cold
// pass with tracing enabled and writes the merged span aggregates as the
// span-cost profile yoso-lint's perf rules consume (the committed copy
// lives at tools/yoso_hot_profile.json; DESIGN.md §15).
//
// Part 2 — inference batch-size sweep: the paper evaluates single-image
// (batch-1) edge inference.  Server-style deployment batches images,
// amortising weight traffic; this sweeps the batch size for the Table-2
// networks and shows how per-image energy falls and saturates at the
// activation-bound floor — and how the best accelerator configuration can
// shift once weights stop dominating.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "accel/config.h"
#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "bench_json.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/two_stage.h"
#include "obs/trace.h"
#include "predictor/gp.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace {

constexpr std::size_t kReps = 3;      // min-of-N repetitions per config
constexpr std::size_t kBatch = 64;    // candidates per evaluate_batch round
constexpr double kSmokeTolerance = 0.85;  // 8t must stay >= this x 1t

// One full pass of `stream` through evaluate_batch in kBatch-sized rounds;
// returns candidates/second for the fastest of kReps repetitions.
double batched_cand_per_s(yoso::FastEvaluator& fast,
                          const std::vector<yoso::CandidateDesign>& stream,
                          double& sink) {
  using namespace yoso;
  double best_s = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    fast.clear_cache();
    Stopwatch sw;
    for (std::size_t i = 0; i < stream.size(); i += kBatch) {
      const std::size_t n = std::min(kBatch, stream.size() - i);
      sink += fast
                  .evaluate_batch(std::span<const CandidateDesign>(
                      stream.data() + i, n))
                  .front()
                  .energy_mj;
    }
    best_s = std::min(best_s, sw.elapsed_seconds());
  }
  return static_cast<double>(stream.size()) / best_s;
}

/// Part 1.  Returns false when the smoke gate fails (only checked with
/// `smoke` set; the full bench always passes).
bool bench_candidate_throughput(yoso::BenchJson& json, bool smoke) {
  using namespace yoso;
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  FastEvaluator fast(space, skeleton, sim,
                     {.predictor_samples = smoke ? 60 : scaled(300, 100),
                      .seed = 11,
                      .exec = ExecContext::create(bench_threads())});

  Rng rng(29);
  const std::size_t unique = smoke ? 40 : scaled(300, 50);
  const std::size_t total = smoke ? 240 : scaled(2000, 400);
  // Memo-cold stream: `total` fresh draws (collisions in this space are
  // vanishingly rare), so every candidate goes through the pipeline.
  std::vector<CandidateDesign> cold;
  cold.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    cold.push_back(space.random_candidate(rng));
  // Revisit stream: proposals drawn from a pool of `unique` designs.
  std::vector<CandidateDesign> pool;
  pool.reserve(unique);
  for (std::size_t i = 0; i < unique; ++i)
    pool.push_back(space.random_candidate(rng));
  std::vector<CandidateDesign> revisit;
  revisit.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    revisit.push_back(pool[rng.uniform_index(unique)]);

  // Serial baseline: one candidate at a time through evaluate(), no memo.
  double sink = 0.0;
  double serial_s = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    Stopwatch sw;
    for (const CandidateDesign& c : cold) sink += fast.evaluate(c).energy_mj;
    serial_s = std::min(serial_s, sw.elapsed_seconds());
  }
  const double serial_cps = static_cast<double>(total) / serial_s;

  TextTable table({"mode", "threads", "cand/s", "speedup"});
  table.add_row({"serial evaluate()", "1", TextTable::fmt(serial_cps, 0),
                 "1.00"});
  json.field("proposals", static_cast<double>(total));
  json.field("distinct_revisit", static_cast<double>(unique));
  json.field("repetitions", static_cast<double>(kReps));
  json.record("serial_evaluate");
  json.value("threads", 1.0);
  json.value("cand_per_s", serial_cps);
  json.value("speedup", 1.0);

  double cold_1t = 0.0;
  double cold_8t = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    fast.set_exec_context(ExecContext::create(threads));
    const double cold_cps = batched_cand_per_s(fast, cold, sink);
    if (threads == 1) cold_1t = cold_cps;
    if (threads == 8) cold_8t = cold_cps;
    table.add_row({"batched cold",
                   TextTable::fmt_int(static_cast<long long>(threads)),
                   TextTable::fmt(cold_cps, 0),
                   TextTable::fmt(cold_cps / serial_cps, 2)});
    json.record("batched_cold");
    json.value("threads", static_cast<double>(threads));
    json.value("batch", static_cast<double>(kBatch));
    json.value("cand_per_s", cold_cps);
    json.value("speedup", cold_cps / serial_cps);
    if (!smoke) {
      const double memo_cps = batched_cand_per_s(fast, revisit, sink);
      table.add_row({"batched+memo",
                     TextTable::fmt_int(static_cast<long long>(threads)),
                     TextTable::fmt(memo_cps, 0),
                     TextTable::fmt(memo_cps / serial_cps, 2)});
      json.record("batched_memo");
      json.value("threads", static_cast<double>(threads));
      json.value("batch", static_cast<double>(kBatch));
      json.value("cand_per_s", memo_cps);
      json.value("speedup", memo_cps / serial_cps);
    }
  }
  std::cout << "\ncandidate evaluation throughput (" << total
            << " proposals, batch " << kBatch << ", best of " << kReps
            << " reps):\n";
  table.print(std::cout);
  std::cout << "cache now holds " << fast.cache_size()
            << " designs  [checksum " << TextTable::fmt(sink, 1) << "]\n";

  if (smoke) {
    const bool ok = cold_8t >= kSmokeTolerance * cold_1t;
    std::cout << "smoke gate: 8t " << TextTable::fmt(cold_8t, 0)
              << " cand/s vs 1t " << TextTable::fmt(cold_1t, 0)
              << " cand/s (ratio " << TextTable::fmt(cold_8t / cold_1t, 2)
              << ", floor " << TextTable::fmt(kSmokeTolerance, 2) << ") — "
              << (ok ? "PASS" : "FAIL") << "\n";
    json.record("smoke_gate");
    json.value("ratio_8t_over_1t", cold_8t / cold_1t);
    json.value("floor", kSmokeTolerance);
    json.value("pass", ok ? 1.0 : 0.0);
    return ok;
  }

  // Observability overhead guard (docs/OBSERVABILITY.md budget): the same
  // batched memo-cold workload with the layer disabled (every instrument is
  // one relaxed load) and enabled (spans + counters recording).  The
  // disabled number must track the batched_cold records above; the enabled
  // delta is the price of --metrics-out/--trace-out.
  fast.set_exec_context(ExecContext::create(bench_threads()));
  double cps_by_mode[2] = {0.0, 0.0};
  for (const bool on : {false, true}) {
    obs::set_enabled(on);
    cps_by_mode[on ? 1 : 0] = batched_cand_per_s(fast, cold, sink);
  }
  obs::set_enabled(false);
  const double overhead_pct =
      100.0 * (cps_by_mode[0] - cps_by_mode[1]) / cps_by_mode[0];
  std::cout << "observability guard: disabled "
            << TextTable::fmt(cps_by_mode[0], 0) << " cand/s, enabled "
            << TextTable::fmt(cps_by_mode[1], 0) << " cand/s  (overhead "
            << TextTable::fmt(overhead_pct, 1) << " %)\n";
  json.record("obs_guard");
  json.value("disabled_cand_per_s", cps_by_mode[0]);
  json.value("enabled_cand_per_s", cps_by_mode[1]);
  json.value("overhead_pct", overhead_pct);
  return true;
}

/// `--emit-profile`: one instrumented predictor build + memo-cold pass,
/// span aggregates written as the yoso-lint hot-set profile.
int emit_profile(const std::string& path) {
  using namespace yoso;
  obs::set_enabled(true);
  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  // Predictor construction runs Step-1 collection and the GP fits under
  // tracing, so step1.* / sim.* / gp.fit land in the profile alongside the
  // eval.* spans from the batched pass below.
  FastEvaluator fast(space, skeleton, sim,
                     {.predictor_samples = 60,
                      .seed = 11,
                      .exec = ExecContext::create(bench_threads())});
  Rng rng(29);
  constexpr std::size_t kProfileStream = 256;
  std::vector<CandidateDesign> stream;
  stream.reserve(kProfileStream);
  for (std::size_t i = 0; i < kProfileStream; ++i)
    stream.push_back(space.random_candidate(rng));
  double sink = 0.0;
  (void)batched_cand_per_s(fast, stream, sink);

  // Same build + memo-cold pass on the sparse predictor backend, plus a few
  // online refinements, so the gp.sparse_fit / gp.sparse_select /
  // gp.sparse_update spans land in the profile and the perf-lint hot set
  // covers the sparse paths too.
  FastEvaluator sparse_fast(space, skeleton, sim,
                            {.predictor_samples = 60,
                             .seed = 11,
                             .predictor_backend = GpBackend::kSparse,
                             .inducing_points = 32,
                             .exec = ExecContext::create(bench_threads())});
  (void)batched_cand_per_s(sparse_fast, stream, sink);
  AccurateEvaluator accurate(skeleton, sim);
  for (std::size_t i = 0; i < 4; ++i)
    (void)sparse_fast.refine(stream[i], accurate.evaluate(stream[i]));

  const std::vector<obs::SpanAggregate> spans = obs::summarize_spans();
  obs::set_enabled(false);
  std::ofstream os(path);
  if (!os) {
    std::cerr << "emit-profile: cannot open " << path << " for writing\n";
    return 1;
  }
  os << "{\n  \"tool\": \"bench_throughput\",\n  \"schema\": 1,\n"
     << "  \"spans\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::SpanAggregate& s = spans[i];
    os << "    {\"name\": \"" << s.name << "\", \"count\": " << s.count
       << ", \"total_ns\": " << s.total_ns << ", \"self_ns\": " << s.self_ns
       << "}" << (i + 1 < spans.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::cout << "emit-profile: wrote " << spans.size() << " span(s) to "
            << path << "  [checksum " << TextTable::fmt(sink, 1) << "]\n";
  for (const obs::SpanAggregate& s : spans)
    std::cout << "  " << s.name << "  count " << s.count << "  self "
              << s.self_ns << " ns\n";
  return os ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace yoso;
  const bool smoke =
      argc > 1 && std::string_view(argv[1]) == std::string_view("--smoke");
  if (argc > 1 && std::string_view(argv[1]) ==
                      std::string_view("--emit-profile")) {
    return emit_profile(argc > 2 ? argv[2] : "yoso_hot_profile.json");
  }
  Stopwatch sw;
  bench_banner("Extension", smoke ? "candidate-throughput smoke"
                                  : "candidate-throughput + batch-size sweep");

  BenchJson json(smoke ? "throughput_smoke" : "throughput");
  const bool ok = bench_candidate_throughput(json, smoke);
  const std::string json_path = json.write();
  std::cout << "[wrote " << (json_path.empty() ? "<failed>" : json_path)
            << "]\n";
  if (smoke) {
    bench_footer(sw);
    return ok ? 0 : 1;
  }

  SystolicSimulator sim({}, SimFidelity::kAnalytical);
  const NetworkSkeleton skeleton = default_skeleton();
  const AcceleratorConfig cfg{16, 32, 512, 512,
                              Dataflow::kOutputStationary};

  TextTable table({"model", "batch", "E/img (mJ)", "L/img (ms)",
                   "throughput (fps)"});
  for (const char* name : {"Darts_v1", "EnasNet"}) {
    const auto& g = reference_model(name).genotype;
    for (int batch : {1, 2, 4, 8, 16}) {
      const auto r = sim.simulate_network(g, skeleton, cfg, batch);
      table.add_row({name, TextTable::fmt_int(batch),
                     TextTable::fmt(r.energy_mj, 2),
                     TextTable::fmt(r.latency_ms, 2),
                     TextTable::fmt(r.throughput_fps, 0)});
    }
  }
  table.print(std::cout);

  // Does the best config change with batching?  Compare the exhaustive best
  // config at batch 1 vs batch 16 for one network.
  const auto& g = reference_model("Darts_v2").genotype;
  const ConfigSpace space = default_config_space();
  TextTable best({"batch", "best config (min E/img)", "E/img (mJ)"});
  for (int batch : {1, 16}) {
    double best_e = 1e18;
    AcceleratorConfig best_cfg{};
    for (const AcceleratorConfig& c : space.enumerate()) {
      const auto r = sim.simulate_network(g, skeleton, c, batch);
      if (r.energy_mj < best_e) {
        best_e = r.energy_mj;
        best_cfg = c;
      }
    }
    best.add_row({TextTable::fmt_int(batch), best_cfg.to_string(),
                  TextTable::fmt(best_e, 2)});
  }
  std::cout << "\nenergy-optimal configuration vs batch (Darts_v2):\n";
  best.print(std::cout);
  std::cout << "\nshape check: per-image energy decreases monotonically with "
               "batch and saturates at the activation-traffic floor.\n";
  bench_footer(sw);
  return 0;
}
