// Ablation — does the in-loop predictor's quality change the search
// outcome?  Fig 4 picks the GP because it has the lowest MSE; this bench
// swaps the search-time performance model (GP vs plain linear regression,
// the worst family in Fig 4) while keeping everything else identical, and
// reranks both runs' finalists with the accurate simulator.

#include <iostream>
#include <memory>

#include "accel/simulator.h"
#include "arch/network.h"
#include "bench_common.h"
#include "core/design_space.h"
#include "core/evaluator.h"
#include "core/reward.h"
#include "core/search.h"
#include "predictor/gp.h"
#include "predictor/models.h"
#include "predictor/perf_predictor.h"
#include "predictor/regressor.h"
#include "surrogate/accuracy_model.h"
#include "util/rng.h"

namespace {

using namespace yoso;

/// Fast evaluator with a pluggable regressor pair for the performance
/// model (accuracy still comes from the hypernet proxy).
class PluggableFastEvaluator : public Evaluator {
 public:
  PluggableFastEvaluator(const NetworkSkeleton& skeleton,
                         const std::vector<PerfSample>& samples,
                         std::unique_ptr<Regressor> energy,
                         std::unique_ptr<Regressor> latency)
      : skeleton_(skeleton),
        accuracy_(skeleton),
        energy_(std::move(energy)),
        latency_(std::move(latency)) {
    const SampleMatrix m = to_matrix(samples);
    energy_->fit(m.x, m.energy);
    latency_->fit(m.x, m.latency);
  }

  EvalResult evaluate(const CandidateDesign& c) override {
    const auto f = codesign_features(c.genotype, c.config, skeleton_);
    EvalResult r;
    r.accuracy = accuracy_.hypernet_accuracy(c.genotype);
    r.energy_mj = std::max(1e-3, energy_->predict(f));
    r.latency_ms = std::max(1e-3, latency_->predict(f));
    return r;
  }

 private:
  NetworkSkeleton skeleton_;
  AccuracyModel accuracy_;
  std::unique_ptr<Regressor> energy_;
  std::unique_ptr<Regressor> latency_;
};

}  // namespace

int main() {
  Stopwatch sw;
  bench_banner("Ablation", "GP vs linear performance predictor in the loop");

  DesignSpace space;
  const NetworkSkeleton skeleton = default_skeleton();
  SystolicSimulator simulator({}, SimFidelity::kCycleLevel);
  Rng rng(5);
  const auto samples = collect_samples(scaled(500, 150), simulator,
                                       space.config_space(), skeleton, rng);
  AccurateEvaluator accurate(skeleton);
  const RewardParams reward = energy_opt_reward();

  TextTable table({"in-loop predictor", "seed", "best accurate reward",
                   "final E (mJ)", "final L (ms)", "feasible"});
  std::vector<double> gp_scores, lin_scores;
  for (const std::uint64_t seed : {7ull, 77ull}) {
    for (const bool use_gp : {true, false}) {
      std::unique_ptr<Regressor> e, l;
      if (use_gp) {
        e = std::make_unique<GpRegressor>();
        l = std::make_unique<GpRegressor>();
      } else {
        e = std::make_unique<LinearRegressor>(0.0, "linear");
        l = std::make_unique<LinearRegressor>(0.0, "linear");
      }
      PluggableFastEvaluator fast(skeleton, samples, std::move(e),
                                  std::move(l));
      SearchOptions opt;
      opt.iterations = scaled(1200, 200);
      opt.reward = reward;
      opt.seed = seed;
      YosoSearch search(space, opt);
      const SearchResult result = search.run(fast, &accurate);
      const RankedCandidate& best = result.best.value();
      (use_gp ? gp_scores : lin_scores).push_back(best.accurate_reward);
      table.add_row({use_gp ? "gaussian process (paper)" : "linear",
                     TextTable::fmt_int(static_cast<long long>(seed)),
                     TextTable::fmt(best.accurate_reward, 3),
                     TextTable::fmt(best.accurate_result.energy_mj, 2),
                     TextTable::fmt(best.accurate_result.latency_ms, 2),
                     best.feasible ? "yes" : "no"});
    }
  }
  table.print(std::cout);
  const double gp_mean = mean(gp_scores);
  const double lin_mean = mean(lin_scores);
  std::cout << "\nmean best accurate reward: GP " << TextTable::fmt(gp_mean, 3)
            << " vs linear " << TextTable::fmt(lin_mean, 3) << "\n"
            << "shape check: "
            << (gp_mean >= lin_mean
                    ? "the better predictor yields better final co-designs "
                      "(why Fig 4 matters)"
                    : "linear matched GP at this scale (stochastic; rerun "
                      "with YOSO_SCALE>1)")
            << "\n";
  bench_footer(sw);
  return 0;
}
