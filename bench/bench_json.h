#pragma once
// Machine-readable bench output.  Each bench binary builds one BenchJson,
// adds scalar fields plus a flat array of result records, and writes
// BENCH_<name>.json into the working directory so CI and scripts can track
// kernel/throughput numbers without scraping the text tables.

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace yoso {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// A key/value on the top-level object.
  void field(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, quote(value));
  }
  void field(const std::string& key, double value) {
    fields_.emplace_back(key, number(value));
  }

  /// Starts a new record in the "results" array; subsequent value() calls
  /// fill it until the next record().
  void record(const std::string& label) {
    records_.emplace_back();
    records_.back().emplace_back("label", quote(label));
  }
  void value(const std::string& key, double v) {
    records_.back().emplace_back(key, number(v));
  }
  void value(const std::string& key, const std::string& v) {
    records_.back().emplace_back(key, quote(v));
  }

  /// Writes BENCH_<name>.json; returns the path (empty on failure).
  std::string write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) return "";
    out << "{\n  \"bench\": " << quote(name_);
    for (const auto& [k, v] : fields_) out << ",\n  " << quote(k) << ": " << v;
    out << ",\n  \"results\": [";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n") << "    {";
      for (std::size_t i = 0; i < records_[r].size(); ++i)
        out << (i == 0 ? "" : ", ") << quote(records_[r][i].first) << ": "
            << records_[r][i].second;
      out << "}";
    }
    out << "\n  ]\n}\n";
    return out ? path : "";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      q += c;
    }
    return q + "\"";
  }
  static std::string number(double v) {
    std::ostringstream ss;
    ss.precision(10);
    ss << v;
    return ss.str();
  }

  using Pairs = std::vector<std::pair<std::string, std::string>>;
  std::string name_;
  Pairs fields_;
  std::vector<Pairs> records_;
};

}  // namespace yoso
