#include <cmath>
#include <functional>
#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace yoso {
namespace {

// ------------------------------------------------------------------------
// Numerical gradient-check machinery: for a module m and a random linear
// readout v, define loss(x, w) = sum(v .* m.forward(x)).  Analytic grads
// come from m.backward(v); numeric grads from central differences.
// ------------------------------------------------------------------------

Tensor random_tensor(std::vector<int> shape, Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

double readout(const Tensor& y, const Tensor& v) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    acc += static_cast<double>(y[i]) * v[i];
  return acc;
}

/// Returns max absolute error between analytic and numeric input gradients,
/// and (via out-params) parameter-gradient max error.
void gradient_check(Module& m, Tensor x, Rng& rng, double tol) {
  Tensor y = m.forward(x);
  const Tensor v = random_tensor(y.shape(), rng);
  const Tensor gx = m.backward(v);
  ASSERT_EQ(gx.shape(), x.shape());

  const float eps = 1e-3f;

  // Input gradients.
  for (std::size_t i = 0; i < x.numel(); i += std::max<std::size_t>(1, x.numel() / 17)) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    m.clear_cache();
    const double lp = readout(m.forward(xp), v);
    m.clear_cache();
    const double lm = readout(m.forward(xm), v);
    m.clear_cache();
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gx[i], numeric, tol) << "input grad at " << i;
  }

  // Parameter gradients.
  std::vector<Param*> params;
  m.collect_params(params);
  for (Param* p : params) {
    ASSERT_EQ(p->grad.numel(), p->value.numel());
    EXPECT_TRUE(p->dirty);
    for (std::size_t i = 0; i < p->value.numel();
         i += std::max<std::size_t>(1, p->value.numel() / 13)) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      m.clear_cache();
      const double lp = readout(m.forward(x), v);
      p->value[i] = orig - eps;
      m.clear_cache();
      const double lm = readout(m.forward(x), v);
      p->value[i] = orig;
      m.clear_cache();
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol) << "param grad at " << i;
    }
  }
}

TEST(Conv2d, ForwardKnownValues) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, rng);
  // Identity-ish kernel: centre 1, rest 0.
  conv.weight().value.fill(0.0f);
  conv.weight().value.at(0, 0, 1, 1) = 1.0f;
  Tensor x({1, 1, 3, 3});
  for (int i = 0; i < 9; ++i) x[static_cast<std::size_t>(i)] = static_cast<float>(i);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), x.shape());
  for (int i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(y[static_cast<std::size_t>(i)], static_cast<float>(i));
}

TEST(Conv2d, SamePaddingEdges) {
  Rng rng(2);
  Conv2d conv(1, 1, 3, 1, rng);
  conv.weight().value.fill(1.0f);  // box filter
  Tensor x({1, 1, 2, 2}, 1.0f);
  const Tensor y = conv.forward(x);
  // Corner sees a 2x2 window of ones.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);
}

TEST(Conv2d, StrideTwoOutputShape) {
  Rng rng(3);
  Conv2d conv(2, 4, 3, 2, rng);
  Tensor x({2, 2, 7, 7});
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.dim(2), 4);  // ceil(7/2)
}

TEST(Conv2d, WrongChannelsThrows) {
  Rng rng(4);
  Conv2d conv(3, 4, 3, 1, rng);
  Tensor x({1, 2, 4, 4});
  EXPECT_THROW(conv.forward(x), std::invalid_argument);
}

TEST(Conv2d, BackwardWithoutForwardThrows) {
  Rng rng(5);
  Conv2d conv(1, 1, 3, 1, rng);
  Tensor g({1, 1, 2, 2});
  EXPECT_THROW(conv.backward(g), std::logic_error);
}

TEST(Conv2d, GradientCheck) {
  Rng rng(6);
  Conv2d conv(2, 3, 3, 1, rng);
  gradient_check(conv, random_tensor({2, 2, 4, 4}, rng), rng, 2e-2);
}

TEST(Conv2d, GradientCheckStride2Kernel5) {
  Rng rng(7);
  Conv2d conv(2, 2, 5, 2, rng);
  gradient_check(conv, random_tensor({1, 2, 6, 6}, rng), rng, 2e-2);
}

TEST(DwConv2d, ChannelsStayIndependent) {
  Rng rng(8);
  DwConv2d dw(2, 3, 1, rng);
  dw.weight().value.fill(0.0f);
  dw.weight().value.at(0, 0, 1, 1) = 2.0f;  // channel 0: x2
  dw.weight().value.at(1, 0, 1, 1) = 3.0f;  // channel 1: x3
  Tensor x({1, 2, 2, 2}, 1.0f);
  const Tensor y = dw.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 3.0f);
}

TEST(DwConv2d, GradientCheck) {
  Rng rng(9);
  DwConv2d dw(3, 3, 1, rng);
  gradient_check(dw, random_tensor({2, 3, 4, 4}, rng), rng, 2e-2);
}

TEST(DwConv2d, GradientCheckStride2) {
  Rng rng(10);
  DwConv2d dw(2, 5, 2, rng);
  gradient_check(dw, random_tensor({1, 2, 5, 5}, rng), rng, 2e-2);
}

TEST(Pool2d, MaxPoolSelectsMaximum) {
  Pool2d pool(3, 1, true);
  Tensor x({1, 1, 3, 3});
  x.at(0, 0, 1, 1) = 5.0f;
  x.at(0, 0, 0, 0) = 2.0f;
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);  // window includes the centre
}

TEST(Pool2d, MaxPoolBackwardRoutesToArgmax) {
  // With k=3, stride 3, pad 1, the single output window covers input rows
  // and cols -1..1, i.e. the top-left 2x2 region of a 3x3 input.
  Pool2d pool(3, 3, true);
  Tensor x({1, 1, 3, 3});
  x.at(0, 0, 1, 1) = 9.0f;
  x.at(0, 0, 2, 2) = 99.0f;  // outside the window; must be ignored
  Tensor y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  Tensor g({1, 1, 1, 1}, 1.0f);
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 2, 2), 0.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 0.0f);
}

TEST(Pool2d, AvgPoolValues) {
  Pool2d pool(3, 3, false);
  Tensor x({1, 1, 3, 3}, 2.0f);
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(Pool2d, AvgPoolGradientCheck) {
  Rng rng(11);
  Pool2d pool(3, 2, false);
  gradient_check(pool, random_tensor({1, 2, 5, 5}, rng), rng, 2e-2);
}

TEST(Pool2d, MaxPoolGradientCheck) {
  Rng rng(12);
  Pool2d pool(3, 2, true);
  // Spread values so the argmax is stable under +-eps.
  Tensor x({1, 2, 5, 5});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(i % 13) + 0.1f * static_cast<float>(i % 7);
  gradient_check(pool, x, rng, 2e-2);
}

TEST(Relu, ForwardClampsNegatives) {
  Relu relu;
  Tensor x({1, 4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = -0.5f;
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Relu, BackwardMasks) {
  Relu relu;
  Tensor x({1, 2});
  x[0] = -1.0f;
  x[1] = 3.0f;
  relu.forward(x);
  Tensor g({1, 2}, 1.0f);
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
}

TEST(GlobalAvgPool, ForwardAndGradientCheck) {
  Rng rng(13);
  GlobalAvgPool gap;
  Tensor x({2, 3, 4, 4}, 1.0f);
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3}));
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1.0f);
  gap.clear_cache();
  gradient_check(gap, random_tensor({2, 3, 3, 3}, rng), rng, 1e-2);
}

TEST(Linear, ForwardKnownValues) {
  Rng rng(14);
  Linear lin(2, 2, rng);
  std::vector<Param*> params;
  lin.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  // weight = [[1,2],[3,4]], bias = [0.5, -0.5]
  params[0]->value[0] = 1.0f;
  params[0]->value[1] = 2.0f;
  params[0]->value[2] = 3.0f;
  params[0]->value[3] = 4.0f;
  params[1]->value[0] = 0.5f;
  params[1]->value[1] = -0.5f;
  Tensor x({1, 2});
  x[0] = 1.0f;
  x[1] = 1.0f;
  const Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 3.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 6.5f);
}

TEST(Linear, GradientCheck) {
  Rng rng(15);
  Linear lin(4, 3, rng);
  gradient_check(lin, random_tensor({3, 4}, rng), rng, 1e-2);
}

TEST(Sequential, ComposesAndBackprops) {
  Rng rng(16);
  Sequential seq;
  seq.add(std::make_unique<Relu>());
  seq.add(std::make_unique<Conv2d>(2, 2, 3, 1, rng));
  EXPECT_EQ(seq.size(), 2u);
  gradient_check(seq, random_tensor({1, 2, 4, 4}, rng), rng, 2e-2);
}

TEST(CacheStack, ModuleReusableTwiceInOneGraph) {
  // The same conv applied twice; backward in LIFO order must recover both.
  Rng rng(17);
  Conv2d conv(1, 1, 3, 1, rng);
  Tensor x1 = random_tensor({1, 1, 3, 3}, rng);
  Tensor x2 = random_tensor({1, 1, 3, 3}, rng);
  const Tensor y1 = conv.forward(x1);
  const Tensor y2 = conv.forward(x2);
  Tensor g({1, 1, 3, 3}, 1.0f);
  const Tensor gx2 = conv.backward(g);  // pops x2
  const Tensor gx1 = conv.backward(g);  // pops x1
  // Both input grads equal the same correlation with the kernel, evaluated
  // at different cached inputs — for identical upstream grads they match.
  for (std::size_t i = 0; i < gx1.numel(); ++i)
    EXPECT_FLOAT_EQ(gx1[i], gx2[i]);
}

TEST(SoftmaxXent, LossAndGradient) {
  Tensor logits({2, 3});
  logits.at2(0, 0) = 2.0f;
  logits.at2(0, 1) = 0.0f;
  logits.at2(0, 2) = -1.0f;
  logits.at2(1, 0) = 0.0f;
  logits.at2(1, 1) = 0.0f;
  logits.at2(1, 2) = 0.0f;
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, {0, 2}, &grad);
  EXPECT_GT(loss, 0.0);
  // Gradient rows sum to zero.
  for (int b = 0; b < 2; ++b) {
    float row = 0.0f;
    for (int c = 0; c < 3; ++c) row += grad.at2(b, c);
    EXPECT_NEAR(row, 0.0f, 1e-6f);
  }
  // Uniform logits: p = 1/3, grad at true label = (1/3 - 1)/N.
  EXPECT_NEAR(grad.at2(1, 2), (1.0 / 3.0 - 1.0) / 2.0, 1e-6);
}

TEST(SoftmaxXent, NumericalGradient) {
  Rng rng(18);
  Tensor logits = random_tensor({2, 4}, rng);
  const std::vector<int> labels = {1, 3};
  Tensor grad;
  softmax_cross_entropy(logits, labels, &grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    lp[i] += eps;
    Tensor lm = logits;
    lm[i] -= eps;
    const double numeric = (softmax_cross_entropy(lp, labels, nullptr) -
                            softmax_cross_entropy(lm, labels, nullptr)) /
                           (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-3);
  }
}

TEST(SoftmaxXent, BadLabelThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {5}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}, nullptr),
               std::invalid_argument);
}

TEST(CountCorrect, CountsArgmaxMatches) {
  Tensor logits({3, 2});
  logits.at2(0, 0) = 1.0f;  // pred 0
  logits.at2(1, 1) = 1.0f;  // pred 1
  logits.at2(2, 0) = 1.0f;  // pred 0
  EXPECT_EQ(count_correct(logits, {0, 1, 1}), 2);
}

}  // namespace
}  // namespace yoso
