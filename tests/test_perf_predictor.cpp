#include <cmath>
#include <gtest/gtest.h>
#include <memory>

#include "accel/config.h"
#include "accel/simulator.h"
#include "accel/tech.h"
#include "arch/genotype.h"
#include "arch/network.h"
#include "predictor/perf_predictor.h"
#include "util/rng.h"
#include "util/stats.h"

namespace yoso {
namespace {

class PerfPredictorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    skeleton_ = std::make_unique<NetworkSkeleton>(default_skeleton());
    simulator_ = std::make_unique<SystolicSimulator>(TechnologyParams{}, SimFidelity::kAnalytical);
    space_ = std::make_unique<ConfigSpace>(default_config_space());
    Rng rng(55);
    samples_ = std::make_unique<std::vector<PerfSample>>(
        collect_samples(260, *simulator_, *space_, *skeleton_, rng));
  }
  static void TearDownTestSuite() {
    samples_.reset();
    space_.reset();
    simulator_.reset();
    skeleton_.reset();
  }

  static std::unique_ptr<NetworkSkeleton> skeleton_;
  static std::unique_ptr<SystolicSimulator> simulator_;
  static std::unique_ptr<ConfigSpace> space_;
  static std::unique_ptr<std::vector<PerfSample>> samples_;
};

std::unique_ptr<NetworkSkeleton> PerfPredictorTest::skeleton_;
std::unique_ptr<SystolicSimulator> PerfPredictorTest::simulator_;
std::unique_ptr<ConfigSpace> PerfPredictorTest::space_;
std::unique_ptr<std::vector<PerfSample>> PerfPredictorTest::samples_;

TEST_F(PerfPredictorTest, FeaturesFixedWidthAndFinite) {
  Rng rng(1);
  const Genotype g = random_genotype(rng);
  const AcceleratorConfig c{16, 16, 512, 256, Dataflow::kRowStationary};
  const auto f = codesign_features(g, c, *skeleton_);
  EXPECT_EQ(f.size(), 21u);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(PerfPredictorTest, DataflowOneHotExactlyOne) {
  Rng rng(2);
  const Genotype g = random_genotype(rng);
  for (int d = 0; d < kNumDataflows; ++d) {
    AcceleratorConfig c{16, 16, 512, 256, static_cast<Dataflow>(d)};
    const auto f = codesign_features(g, c, *skeleton_);
    double onehot = 0.0;
    for (int k = 0; k < kNumDataflows; ++k)
      onehot += f[15 + static_cast<std::size_t>(k)];
    EXPECT_DOUBLE_EQ(onehot, 1.0);
    EXPECT_DOUBLE_EQ(f[15 + static_cast<std::size_t>(d)], 1.0);
  }
}

TEST_F(PerfPredictorTest, SamplesHaveSimulatedTargets) {
  EXPECT_EQ(samples_->size(), 260u);
  for (const auto& s : *samples_) {
    EXPECT_GT(s.energy_mj, 0.0);
    EXPECT_GT(s.latency_ms, 0.0);
    EXPECT_FALSE(s.features.empty());
    // Features must be reproducible from the stored pair.
    const auto f = codesign_features(s.genotype, s.config, *skeleton_);
    ASSERT_EQ(f.size(), s.features.size());
    for (std::size_t i = 0; i < f.size(); ++i)
      EXPECT_DOUBLE_EQ(f[i], s.features[i]);
  }
}

TEST_F(PerfPredictorTest, CollectSamplesDeterministic) {
  Rng rng1(9), rng2(9);
  const auto a = collect_samples(5, *simulator_, *space_, *skeleton_, rng1);
  const auto b = collect_samples(5, *simulator_, *space_, *skeleton_, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].genotype == b[i].genotype);
    EXPECT_EQ(a[i].config, b[i].config);
    EXPECT_DOUBLE_EQ(a[i].energy_mj, b[i].energy_mj);
  }
}

TEST_F(PerfPredictorTest, ToMatrixShapes) {
  const auto m = to_matrix(*samples_);
  EXPECT_EQ(m.x.rows(), samples_->size());
  EXPECT_EQ(m.x.cols(), samples_->front().features.size());
  EXPECT_EQ(m.energy.size(), samples_->size());
  EXPECT_EQ(m.latency.size(), samples_->size());
  EXPECT_THROW(to_matrix({}), std::invalid_argument);
}

TEST_F(PerfPredictorTest, PredictorAccurateOnHeldOut) {
  const std::vector<PerfSample> train(samples_->begin(),
                                      samples_->begin() + 200);
  const std::vector<PerfSample> test(samples_->begin() + 200,
                                     samples_->end());
  PerformancePredictor pred(*skeleton_);
  EXPECT_FALSE(pred.fitted());
  pred.fit(train);
  EXPECT_TRUE(pred.fitted());

  std::vector<double> pe, te, pl, tl;
  for (const auto& s : test) {
    pe.push_back(pred.predict_energy_mj(s.genotype, s.config));
    te.push_back(s.energy_mj);
    pl.push_back(pred.predict_latency_ms(s.genotype, s.config));
    tl.push_back(s.latency_ms);
  }
  // The paper claims < 4% accuracy loss at 3000 samples; at 200 samples we
  // allow 12%, and correlation must already be very strong.
  EXPECT_LT(mean_relative_error(pe, te), 0.12);
  EXPECT_LT(mean_relative_error(pl, tl), 0.20);
  EXPECT_GT(pearson(pe, te), 0.9);
  EXPECT_GT(pearson(pl, tl), 0.9);
}

TEST_F(PerfPredictorTest, UnfittedPredictorThrows) {
  PerformancePredictor pred(*skeleton_);
  Rng rng(3);
  const Genotype g = random_genotype(rng);
  const AcceleratorConfig c{16, 16, 512, 256, Dataflow::kWeightStationary};
  EXPECT_THROW(pred.predict_energy_mj(g, c), std::logic_error);
  EXPECT_THROW(pred.predict_latency_ms(g, c), std::logic_error);
}

TEST_F(PerfPredictorTest, PredictionRespondsToConfig) {
  PerformancePredictor pred(*skeleton_);
  pred.fit(*samples_);
  Rng rng(4);
  const Genotype g = random_genotype(rng);
  AcceleratorConfig small{8, 8, 108, 64, Dataflow::kOutputStationary};
  AcceleratorConfig large{16, 32, 512, 512, Dataflow::kOutputStationary};
  // More PEs -> the GP must predict lower latency for the same network.
  EXPECT_LT(pred.predict_latency_ms(g, large),
            pred.predict_latency_ms(g, small));
}

}  // namespace
}  // namespace yoso
