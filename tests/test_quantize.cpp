#include <cmath>
#include <gtest/gtest.h>

#include "nn/dataset.h"
#include "nn/module.h"
#include "nn/network.h"
#include "nn/quantize.h"
#include "nn/tensor.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace yoso {
namespace {

Param make_param(std::initializer_list<float> values) {
  Param p;
  p.value = Tensor({static_cast<int>(values.size())});
  std::size_t i = 0;
  for (float v : values) p.value[i++] = v;
  return p;
}

TEST(Quantize, RepresentableValuesSurvive) {
  // With max|w| = 1 and 8 bits, the grid step is 1/127 — grid points are
  // exactly representable.
  Param p = make_param({1.0f, -1.0f, 0.0f, 64.0f / 127.0f});
  std::vector<Param*> params = {&p};
  const auto stats = quantize_parameters(params, 8);
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
  EXPECT_FLOAT_EQ(p.value[1], -1.0f);
  EXPECT_FLOAT_EQ(p.value[2], 0.0f);
  EXPECT_NEAR(p.value[3], 64.0f / 127.0f, 1e-7f);
  EXPECT_EQ(stats.values, 4u);
  EXPECT_EQ(stats.tensors, 1u);
}

TEST(Quantize, ErrorBoundedByHalfStep) {
  Rng rng(3);
  Param p;
  p.value = Tensor({1000});
  for (float& v : p.value.data()) v = static_cast<float>(rng.normal(0, 0.2));
  float max_abs = 0.0f;
  for (float v : p.value.data()) max_abs = std::max(max_abs, std::abs(v));
  std::vector<Param*> params = {&p};
  const auto stats = quantize_parameters(params, 8);
  const double step = max_abs / 127.0;
  EXPECT_LE(stats.max_abs_error, step / 2.0 + 1e-7);
  EXPECT_GT(stats.mean_abs_error, 0.0);
}

TEST(Quantize, MoreBitsLessError) {
  Rng rng(5);
  std::vector<float> base(500);
  for (float& v : base) v = static_cast<float>(rng.normal(0, 0.3));
  double prev_err = 1e9;
  for (int bits : {4, 8, 12, 16}) {
    Param p;
    p.value = Tensor({500});
    for (std::size_t i = 0; i < base.size(); ++i) p.value[i] = base[i];
    std::vector<Param*> params = {&p};
    const auto stats = quantize_parameters(params, bits);
    EXPECT_LT(stats.max_abs_error, prev_err);
    prev_err = stats.max_abs_error;
  }
}

TEST(Quantize, AllZeroTensorUnchanged) {
  Param p = make_param({0.0f, 0.0f});
  std::vector<Param*> params = {&p};
  const auto stats = quantize_parameters(params, 8);
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);
  EXPECT_DOUBLE_EQ(stats.max_abs_error, 0.0);
}

TEST(Quantize, RejectsBadBits) {
  Param p = make_param({1.0f});
  std::vector<Param*> params = {&p};
  EXPECT_THROW(quantize_parameters(params, 1), std::invalid_argument);
  EXPECT_THROW(quantize_parameters(params, 17), std::invalid_argument);
}

TEST(WeightSnapshotTest, RestoresAfterMutation) {
  Rng rng(7);
  PathNetwork net(tiny_skeleton(8, 4), 11);
  const Genotype g = random_genotype(rng);
  // Materialise some params.
  Tensor images({1, 3, 8, 8}, 0.1f);
  net.forward(g, images);
  net.clear_cache();

  std::vector<Param*> params;
  net.collect_params(params);
  const float original = params[0]->value[0];
  {
    WeightSnapshot snap(net);
    params[0]->value[0] = 123.0f;
  }
  EXPECT_FLOAT_EQ(params[0]->value[0], original);
}

TEST(WeightSnapshotTest, ExplicitRestoreIdempotent) {
  PathNetwork net(tiny_skeleton(8, 4), 13);
  std::vector<Param*> params;
  net.collect_params(params);
  const float original = params[0]->value[0];
  WeightSnapshot snap(net);
  params[0]->value[0] = 5.0f;
  snap.restore();
  EXPECT_FLOAT_EQ(params[0]->value[0], original);
  params[0]->value[0] = 9.0f;
  snap.restore();  // second restore is a no-op
  EXPECT_FLOAT_EQ(params[0]->value[0], 9.0f);
}

TEST(EvaluateQuantized, SixteenBitsMatchesFloatAndRestores) {
  SynthCifar task(8, 10, 3);
  const Dataset train = task.generate(10, 1);
  const Dataset val = task.generate(5, 2);
  Rng rng(9);
  const Genotype g = random_genotype(rng);
  PathNetwork net(tiny_skeleton(8, 6), 17);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 20;
  train_standalone(net, g, train, val, opt, rng);

  const double fp = net.evaluate(g, val, 20);
  const double q16 = evaluate_quantized(net, g, val, 16, 20);
  // 16-bit grid is far finer than the decision boundaries at this scale.
  EXPECT_NEAR(q16, fp, 0.06);
  // Weights restored: float evaluation reproduces exactly.
  EXPECT_DOUBLE_EQ(net.evaluate(g, val, 20), fp);
}

TEST(EvaluateQuantized, VeryLowBitsDegrade) {
  SynthCifar task(8, 10, 5);
  const Dataset train = task.generate(10, 1);
  const Dataset val = task.generate(5, 2);
  Rng rng(11);
  const Genotype g = random_genotype(rng);
  PathNetwork net(tiny_skeleton(8, 6), 19);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 20;
  train_standalone(net, g, train, val, opt, rng);

  const double fp = net.evaluate(g, val, 20);
  const double q2 = evaluate_quantized(net, g, val, 2, 20);
  // 2-bit weights (values in {-2s,-s,0,s}) should not beat float.
  EXPECT_LE(q2, fp + 1e-9);
}

}  // namespace
}  // namespace yoso
